//! Offline stub for `rand` 0.8 — deterministic splitmix64 behind the API
//! subset used by this workspace. See offline-stubs/README.md.

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a range (stub of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}
float_range!(f32, f64);

/// User-facing sampling methods (stub of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Stand-in for the `Standard` distribution: types `Rng::gen` can produce.
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64) as f32
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Seedable generators (stub of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `StdRng`.
    ///
    /// NOTE: stream differs from the real `StdRng` (ChaCha12); only
    /// self-consistency (same seed ⇒ same stream) is preserved.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0xDEAD_BEEF_CAFE_F00D }
        }
    }

    /// Alias for the small generator; same engine in the stub.
    pub type SmallRng = StdRng;
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Stub of `rand::seq::SliceRandom` (the subset used here).
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (RngCore::next_u64(rng) % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((RngCore::next_u64(rng) % self.len() as u64) as usize)
            }
        }
    }
}

/// Stub of `rand::thread_rng` — deterministic, NOT entropy-seeded.
pub fn thread_rng() -> rngs::StdRng {
    <rngs::StdRng as SeedableRng>::seed_from_u64(0x5EED_0F_7852)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: usize = a.gen_range(0..17);
            assert!(x < 17);
            assert_eq!(x, b.gen_range(0..17));
        }
        let f: f64 = a.gen_range(-2.0..3.0);
        assert!((-2.0..3.0).contains(&f));
        let g: f64 = a.gen_range(0.0..=1.0);
        assert!((0.0..=1.0).contains(&g));
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(1);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
