//! Offline stub for `serde`: marker traits with blanket impls for common
//! std types, plus re-exported stub derives. Serialization itself is not
//! implemented — only the type-level API surface.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use crate::Serialize;
}

macro_rules! mark {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

mark!(bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, String);

impl Serialize for str {}

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}

impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}

impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
