//! Offline stub for `criterion`: same macro/builder surface, but a tiny
//! self-contained timing harness. Each benchmark prints one line:
//!
//! ```text
//! OFFLINE_BENCH <name> <median_ns> ns/iter (<iters>x<samples>)
//! ```
//!
//! Timing discipline: one warm-up call, then either `samples` batches sized
//! to ~5 ms each (fast bodies) or 3 single-iteration samples (slow bodies);
//! the reported figure is the per-iteration median across batches. No
//! statistics, plots, or baselines — just honest medians for quick offline
//! comparisons.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Per-sample time budget for fast benchmark bodies.
const SAMPLE_BUDGET_NS: u128 = 5_000_000;
/// Bodies slower than this run as single-iteration samples.
const SLOW_ITER_NS: u128 = 20_000_000;

/// Timing context handed to benchmark closures.
pub struct Bencher {
    /// Median ns/iter recorded by the last `iter` call.
    median_ns: u128,
    iters: u64,
    samples: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher { median_ns: 0, iters: 0, samples: 0 }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + cost probe.
        let probe = Instant::now();
        black_box(f());
        let t1 = probe.elapsed().as_nanos().max(1);

        let (iters, samples) = if t1 > SLOW_ITER_NS {
            (1u64, 3u64)
        } else {
            (((SAMPLE_BUDGET_NS / t1).max(1)).min(10_000_000) as u64, 5u64)
        };

        let mut per_iter: Vec<u128> = (0..samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed().as_nanos() / iters as u128
            })
            .collect();
        per_iter.sort_unstable();
        self.median_ns = per_iter[per_iter.len() / 2];
        self.iters = iters;
        self.samples = samples;
    }
}

fn run_bench(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new();
    f(&mut b);
    println!(
        "OFFLINE_BENCH {name} {} ns/iter ({}x{})",
        b.median_ns, b.iters, b.samples
    );
}

/// Benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { full: format!("{function_id}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { full: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        run_bench(&id.to_string(), &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

/// Named group of related benchmarks (prefixes the printed name).
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_positive_median() {
        let mut b = Bencher::new();
        b.iter(|| black_box((0..100u64).sum::<u64>()));
        assert!(b.median_ns > 0);
        assert!(b.iters >= 1);
    }

    #[test]
    fn group_and_ids_compose() {
        let mut c = Criterion::default().configure_from_args();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, n| {
            b.iter(|| black_box(*n * 2))
        });
        group.finish();
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
    }
}
