//! Offline stub for `serde_derive`: emits empty marker-trait impls.
//! Supports non-generic structs and enums only (all this workspace derives).

use proc_macro::{TokenStream, TokenTree};

/// Find the type name: the identifier following the `struct`/`enum` keyword
/// at the top level of the item.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => return name.to_string(),
                    other => panic!("offline serde stub: expected type name, got {other:?}"),
                }
            }
        }
    }
    panic!("offline serde stub: no struct/enum keyword found")
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    format!("impl ::serde::Serialize for {} {{}}", type_name(input))
        .parse()
        .expect("valid impl block")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    format!("impl<'de> ::serde::Deserialize<'de> for {} {{}}", type_name(input))
        .parse()
        .expect("valid impl block")
}
