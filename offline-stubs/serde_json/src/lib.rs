//! Offline stub for `serde_json`. The `json!` macro and [`Value`] work and
//! can be rendered via [`Value::to_json_string`] / [`Value::to_json_string_pretty`]
//! (or `Display`). The generic free functions [`to_string`] /
//! [`to_string_pretty`] compile against any `Serialize` type but always
//! return [`Error`]: the stub `serde` has no real serialization machinery,
//! so derive-driven serialization is unavailable offline.

use std::fmt;

/// Error type: always "offline stub cannot serialize this type".
#[derive(Debug)]
pub struct Error(&'static str);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json offline stub: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Minimal JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl serde::Serialize for Value {}

impl Value {
    fn render(&self, out: &mut String, indent: usize, pretty: bool) {
        let pad = |out: &mut String, n: usize| {
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(n));
            }
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Value::String(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    v.render(out, indent + 1, pretty);
                }
                if !items.is_empty() {
                    pad(out, indent);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    Value::String(k.clone()).render(out, indent + 1, pretty);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.render(out, indent + 1, pretty);
                }
                if !entries.is_empty() {
                    pad(out, indent);
                }
                out.push('}');
            }
        }
    }

    /// Compact JSON text for this value.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0, false);
        out
    }

    /// Pretty-printed (2-space indent) JSON text for this value.
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0, true);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

macro_rules! from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(v as f64) }
        }
    )*};
}
from_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

/// Always fails in the offline stub — derive-driven serialization is not
/// available. Use [`Value::to_json_string`] for stub-native values.
pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    Err(Error("derive-driven serialization unavailable offline"))
}

/// Always fails in the offline stub. See [`to_string`].
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    Err(Error("derive-driven serialization unavailable offline"))
}

/// Build a [`Value`] from JSON-ish syntax (object/array/expression forms).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::Value::from($val)) ),*
        ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($item) ),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_renders_compact_and_pretty() {
        let v = json!({ "name": "pool", "n": 3, "xs": [1, 2] });
        assert_eq!(
            v.to_json_string(),
            r#"{"name":"pool","n":3,"xs":[1,2]}"#
        );
        assert!(v.to_json_string_pretty().contains("\n  \"name\": \"pool\""));
    }

    #[test]
    fn generic_to_string_errors() {
        assert!(to_string_pretty(&1.0f64).is_err());
    }
}
