//! Offline stub for `proptest`: deterministic randomized testing with the
//! same surface syntax (`proptest!`, `Strategy`, `prop::collection`,
//! `prop_assert*`) but no shrinking and a fixed splitmix64 generator seeded
//! from the test name. Failures report the raw generated case only.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// Runner configuration; only `cases` is honoured by the stub.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — skip the case, draw another.
    Reject,
    /// `prop_assert*` failed — abort the test with this message.
    Fail(String),
}

pub mod test_runner {
    pub use crate::{ProptestConfig, TestCaseError};

    /// Deterministic splitmix64 stream seeded from the test name.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform usize in [0, n) for n > 0.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }
}

use test_runner::TestRng;

/// Value-generation strategy. The stub generates directly (no value trees,
/// no shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter_map<O, F>(self, _reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, f }
    }

    fn prop_filter<F>(self, _reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter_map` adapter: retries until the closure accepts (bounded).
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..1024 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("proptest stub: prop_filter_map rejected 1024 candidates in a row");
    }
}

/// `prop_filter` adapter: retries until the predicate accepts (bounded).
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("proptest stub: prop_filter rejected 1024 candidates in a row");
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                (self.start as i128 + (rng.next_u64() as i128 % span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128) - (lo as i128) + 1;
                (lo as i128 + (rng.next_u64() as i128 % span)) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start() + (rng.next_f64() as $t) * (self.end() - self.start())
            }
        }
    )*};
}
float_strategy!(f32, f64);

impl Strategy for Range<char> {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        char::from_u32(lo + (rng.next_u64() % (hi - lo).max(1) as u64) as u32).unwrap_or(self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

pub mod collection {
    use super::*;

    /// Inclusive size bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below(self.hi - self.lo + 1)
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = HashSet::with_capacity(n);
            // Bounded attempts: tolerate small element domains by returning
            // what was collected rather than spinning forever.
            for _ in 0..n.saturating_mul(64).max(256) {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

pub mod strategy {
    pub use crate::{Filter, FilterMap, Just, Map, Strategy};
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Runs each embedded test function over `cases` deterministic inputs.
/// Bodies already carry `#[test]`; attributes are re-emitted verbatim.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($cfg) $($rest)* }
    };
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut __done: u32 = 0;
                let mut __attempts: u32 = 0;
                while __done < __cfg.cases {
                    __attempts += 1;
                    if __attempts > __cfg.cases * 64 {
                        panic!("proptest stub: too many rejected cases in {}", stringify!($name));
                    }
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __done += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed: {}", __done, msg)
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @run ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {:?} != {:?}", __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {:?} == {:?}", __a, __b
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in -5i32..=5, f in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0u8..=255, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 4, "len {}", v.len());
        }

        #[test]
        fn maps_and_assume(v in (0u32..100).prop_map(|x| x * 2)) {
            prop_assume!(v != 4);
            prop_assert_eq!(v % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(s in prop::collection::hash_set(0i32..8, 1..4)) {
            prop_assert!(!s.is_empty());
        }
    }
}
