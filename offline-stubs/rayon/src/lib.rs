//! Offline stub for `rayon` — runs everything sequentially behind the
//! parallel-iterator API subset this workspace uses. Deterministic kernels
//! produce identical results; wall-clock is single-threaded.

/// Sequential stand-in for a rayon parallel iterator.
///
/// Implements [`Iterator`] by delegation, so every std combinator works;
/// rayon-specific methods (two-arg `reduce`, `flat_map_iter`, …) are
/// provided as inherent methods, which take precedence and re-wrap in
/// `ParIter` so later rayon-specific calls keep resolving.
pub struct ParIter<I>(pub I);

impl<I: Iterator> Iterator for ParIter<I> {
    type Item = I::Item;

    #[inline]
    fn next(&mut self) -> Option<I::Item> {
        self.0.next()
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<I: Iterator> ParIter<I> {
    #[inline]
    pub fn map<U, F: FnMut(I::Item) -> U>(self, f: F) -> ParIter<core::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    #[inline]
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<core::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    #[inline]
    pub fn enumerate(self) -> ParIter<core::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    #[inline]
    pub fn zip<J: IntoIterator>(self, other: J) -> ParIter<core::iter::Zip<I, J::IntoIter>> {
        ParIter(self.0.zip(other))
    }

    /// Rayon's `flat_map_iter`: flat-map with a serial inner iterator.
    #[inline]
    pub fn flat_map_iter<U, F>(self, f: F) -> ParIter<core::iter::FlatMap<I, U, F>>
    where
        U: IntoIterator,
        F: FnMut(I::Item) -> U,
    {
        ParIter(self.0.flat_map(f))
    }

    /// Rayon's two-argument `reduce(identity, op)`.
    #[inline]
    pub fn reduce<ID, OP>(mut self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        let mut acc = identity();
        while let Some(x) = self.0.next() {
            acc = op(acc, x);
        }
        acc
    }

    /// Rayon's `with_min_len` — a no-op when sequential.
    #[inline]
    pub fn with_min_len(self, _len: usize) -> Self {
        self
    }
}

/// Stub of `rayon::iter::IntoParallelIterator` for owned collections and
/// ranges.
pub trait IntoParallelIterator {
    type SeqIter: Iterator;
    fn into_par_iter(self) -> ParIter<Self::SeqIter>;
}

impl<C: IntoIterator> IntoParallelIterator for C {
    type SeqIter = C::IntoIter;

    #[inline]
    fn into_par_iter(self) -> ParIter<C::IntoIter> {
        ParIter(self.into_iter())
    }
}

/// Stub of the by-reference parallel iterator entry points on slices.
pub trait ParallelSlice<T> {
    fn par_iter(&self) -> ParIter<core::slice::Iter<'_, T>>;
    fn par_chunks(&self, chunk_size: usize) -> ParIter<core::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    #[inline]
    fn par_iter(&self) -> ParIter<core::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }

    #[inline]
    fn par_chunks(&self, chunk_size: usize) -> ParIter<core::slice::Chunks<'_, T>> {
        ParIter(self.chunks(chunk_size))
    }
}

/// Mutable counterpart of [`ParallelSlice`].
pub trait ParallelSliceMut<T> {
    fn par_iter_mut(&mut self) -> ParIter<core::slice::IterMut<'_, T>>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<core::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    #[inline]
    fn par_iter_mut(&mut self) -> ParIter<core::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }

    #[inline]
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<core::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(chunk_size))
    }
}

/// Number of "worker threads" — always 1 in the sequential stub.
pub fn current_num_threads() -> usize {
    1
}

/// Stub of `rayon::join`: runs the closures one after the other.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Stub of `rayon::ThreadPoolBuilder`: records the requested thread count
/// but always builds the inline (current-thread) pool stub.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { _num_threads: self.num_threads.max(1) })
    }
}

/// Stub of `rayon::ThreadPool`: `install` runs the closure inline on the
/// calling thread (the sequential stub has no worker threads to scope to).
#[derive(Debug)]
pub struct ThreadPool {
    _num_threads: usize,
}

impl ThreadPool {
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }
}

/// Stub of `rayon::ThreadPoolBuildError` — the stub builder never fails,
/// but callers match on the type.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl core::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("thread pool build error (stub)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

pub mod iter {
    pub use crate::{IntoParallelIterator, ParIter};
}

pub mod slice {
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_std() {
        let v: Vec<i32> = (0..10).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..10).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn two_arg_reduce() {
        let s = (1..=5).into_par_iter().map(|x| x as u64).reduce(|| 0, |a, b| a + b);
        assert_eq!(s, 15);
    }

    #[test]
    fn chunks_mut_zip_enumerate() {
        let mut a = vec![0u32; 6];
        let mut b = vec![0u32; 6];
        a.par_chunks_mut(2).zip(b.par_chunks_mut(2)).enumerate().for_each(|(i, (ra, rb))| {
            for v in ra.iter_mut().chain(rb.iter_mut()) {
                *v = i as u32;
            }
        });
        assert_eq!(a, [0, 0, 1, 1, 2, 2]);
        assert_eq!(a, b);
    }
}
