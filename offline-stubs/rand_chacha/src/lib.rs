//! Offline stub for `rand_chacha`: aliases the deterministic stub StdRng.
//! (The workspace declares the dependency but does not currently use it.)

pub type ChaCha8Rng = rand::rngs::StdRng;
pub type ChaCha12Rng = rand::rngs::StdRng;
pub type ChaCha20Rng = rand::rngs::StdRng;
