//! Advanced API tour: native pipeline evaluation, feature importance and
//! exploration introspection.
//!
//! Unlike `kfusion_tuning` (which uses the fast analytic device model),
//! this example *actually runs* the real KinectFusion pipeline on a tiny
//! synthetic sequence for each evaluated configuration, then analyzes
//! which parameters drove the measured objectives.
//!
//! Run with: `cargo run -p hm-examples --release --bin custom_space`

use hypermapper::{HyperMapper, OptimizerConfig, ParamImportance, ParamSpace};
use icl_nuim_synth::{NoiseModel, SequenceConfig, TrajectoryKind};
use randforest::ForestConfig;
use slambench::NativeKFusionEvaluator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A focused sub-space: only the parameters that matter most for the
    // real pipeline at this scale, so the run stays quick.
    let space = ParamSpace::builder()
        .ordinal("volume-resolution", [48.0, 64.0, 96.0, 128.0])
        .ordinal_log("mu", [0.05, 0.1, 0.2, 0.4])
        .ordinal("compute-size-ratio", [1.0, 2.0])
        .ordinal("tracking-rate", [1.0, 2.0, 3.0])
        .ordinal_log("icp-threshold", [1e-5, 1e-4, 1e-3, 1e-2])
        .ordinal("integration-rate", [1.0, 2.0, 4.0])
        .ordinal("pyramid-l0", [2.0, 4.0, 6.0])
        .ordinal("pyramid-l1", [2.0, 3.0])
        .ordinal("pyramid-l2", [1.0, 2.0])
        .build()?;
    println!("native-evaluation space: {} configurations", space.size());

    // A tiny sequence keeps each native run ~100 ms.
    let evaluator = NativeKFusionEvaluator::new(
        SequenceConfig {
            width: 48,
            height: 36,
            n_frames: 200,
            trajectory: TrajectoryKind::LivingRoomLoop,
            noise: NoiseModel::none(),
            seed: 0,
        },
        6, // frames per evaluation
    );

    let optimizer = HyperMapper::new(
        space.clone(),
        OptimizerConfig {
            random_samples: 20,
            max_iterations: 2,
            max_evals_per_iteration: 10,
            pool_size: 3_000,
            forest: ForestConfig { n_trees: 25, ..Default::default() },
            seed: 5,
            ..Default::default()
        },
    );
    println!("running real pipeline evaluations (this takes a few seconds)...");
    let result = optimizer.run(&evaluator);

    println!("\nmeasured Pareto front:");
    for s in result.pareto_samples() {
        println!(
            "  {:>7.4} s/frame  max ATE {:.4} m   {}",
            s.objectives[0],
            s.objectives[1],
            space.describe(&s.config)
        );
    }

    // Which parameters drive each objective?
    let forest_cfg = ForestConfig { n_trees: 50, seed: 9, ..Default::default() };
    for (k, name) in ["runtime", "max ATE"].iter().enumerate() {
        let imp = ParamImportance::from_samples(&space, &result.samples, k, &forest_cfg);
        println!("\nparameter importance for {name}:");
        for (pname, weight) in imp.ranked().into_iter().take(4) {
            println!("  {weight:>6.3}  {pname}");
        }
    }

    println!("\nactive-learning iterations:");
    for it in &result.iterations {
        println!(
            "  iteration {}: {} new evaluations (predicted front size {})",
            it.iteration, it.new_evaluations, it.predicted_front_size
        );
    }
    Ok(())
}
