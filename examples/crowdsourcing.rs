//! The crowd-sourcing experiment of §IV-D: transplant the Pareto-front
//! best-runtime configuration found on one device onto 83 other devices
//! and measure the speedup over the default configuration — a form of
//! zero-shot transfer.
//!
//! Run with: `cargo run -p hm-examples --release --bin crowdsourcing`

use device_models::{crowd_devices, kf_frame_time, KfParams};
use hypermapper::{pearson, spearman};

fn main() {
    // A tuned configuration in the spirit of the ODROID Pareto front
    // (derived offline with `fig5_crowdsourcing`, which runs the full DSE).
    let best = KfParams {
        volume_resolution: 128.0,
        mu: 0.2,
        compute_size_ratio: 2.0,
        tracking_rate: 1.0,
        icp_threshold: 1e-4,
        integration_rate: 8.0,
        pyramid: [4.0, 3.0, 2.0],
    };
    let default = KfParams::default_config();

    let devices = crowd_devices();
    println!("running default vs. tuned configuration on {} devices...\n", devices.len());

    let mut speedups = Vec::new();
    let mut default_times = Vec::new();
    let mut best_times = Vec::new();
    for dev in &devices {
        let t_def = kf_frame_time(&default, dev);
        let t_best = kf_frame_time(&best, dev);
        speedups.push(t_def / t_best);
        default_times.push(t_def);
        best_times.push(t_best);
    }

    let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let max = speedups.iter().copied().fold(0.0, f64::max);
    let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!("speedup: min {min:.1}x  mean {mean:.1}x  max {max:.1}x (paper: 2x .. >12x)");

    // Cross-device correlation — the paper cites [43]: configurations that
    // run well on one machine tend to run well on similar machines.
    println!(
        "\ncross-device correlation of default vs. tuned frame times:\n  Pearson {:.3}  Spearman {:.3}",
        pearson(&default_times, &best_times),
        spearman(&default_times, &best_times)
    );

    // Slowest / fastest five devices by default frame time.
    let mut order: Vec<usize> = (0..devices.len()).collect();
    order.sort_by(|&a, &b| speedups[b].total_cmp(&speedups[a]));
    println!("\nlargest speedups:");
    for &i in order.iter().take(5) {
        println!("  {:>5.1}x  {}", speedups[i], devices[i].name);
    }
    println!("smallest speedups:");
    for &i in order.iter().rev().take(5) {
        println!("  {:>5.1}x  {}", speedups[i], devices[i].name);
    }
}
