//! Fig. 5 at service scale: the KFusion DSE *and* the 83-device
//! crowd-sourcing sweep, sharded across N worker **processes** by
//! `hm-service` — with optional seeded chaos and a write-ahead journal so
//! any process (worker or coordinator) can be SIGKILLed and the rerun
//! produces a bit-identical result.
//!
//! Usage:
//!   cargo run -p hm-examples --release --bin fig5_service -- \
//!       [--workers <n>] [--quick] [--seed <s>] \
//!       [--journal <path>] [--resume] [--chaos-seed <s>] [--out <tag>] \
//!       [--transport stdio|socket] [--net-seed <s>] [--lose-workers] \
//!       [--listen <addr>]
//!
//! Transport: `--transport socket` runs the same pool over loopback TCP
//! (ephemeral port, spawned children dial back in); `--net-seed` turns on
//! the seeded network fault storm (drops, delays, reorders, retransmits,
//! truncated frames, partitions, reconnect storms); `--lose-workers` kills
//! every worker with no respawn budget so the run must degrade to the
//! in-process fallback. `--listen <addr>` waits for *remote* workers
//! started elsewhere as:
//!   fig5_service --connect <addr> --worker-id <i> [--phase dse|crowd] \
//!       [--best <hex>] [--epoch <e>] [--net-seed <s>]
//!
//! Phase 1 leases every DSE evaluation to the worker pool and writes
//! `results/<tag>.fingerprint` (same codec as `fig3_kfusion_dse`, so a
//! sequential run of the same seed/scale is byte-comparable). Phase 2
//! re-points the pool at the crowd-sourced device catalog — the deployed
//! best configuration crosses the process boundary bit-exactly through the
//! environment — and streams all 83 device models through the workers.
//!
//! The chaos gate (`scripts/ci.sh chaos`) runs this binary with 4 workers
//! under a fault storm, SIGKILLs workers and the coordinator, resumes, and
//! diffs the fingerprint against an undisturbed single-process run.

use device_models::{crowd_devices, kf_frame_time, odroid_xu3, DeviceModel, KfParams};
use hm_bench::experiments::{install_graceful_shutdown, kf_space, result_fingerprint, DseScale};
use hm_bench::report::write_results_file;
use hm_service::{
    run_socket_worker, worker_entry, ChaosPlan, NetChaosPlan, ServiceConfig, ServicePool,
    SocketWorkerParams, StatsSnapshot, TransportMode,
};
use hypermapper::{Evaluator, Journal, ParamSpace};
use slambench::{kf_params_from_config, kfusion_space, SimulatedKFusionEvaluator};
use std::path::PathBuf;

/// Which problem the worker processes of the *current* pool serve. Set by
/// the coordinator before `ServicePool::launch`; inherited by the children.
const ENV_PHASE: &str = "HM_FIG5_PHASE";
/// Phase-2 deployed configuration, as 9 comma-separated f64 bit patterns
/// (bit-exact across the process boundary).
const ENV_BEST: &str = "HM_FIG5_BEST";

/// The worker-side evaluator for either phase.
enum Fig5Evaluator {
    Dse(SimulatedKFusionEvaluator),
    Crowd { best: KfParams, devices: Vec<DeviceModel> },
}

impl Evaluator for Fig5Evaluator {
    fn n_objectives(&self) -> usize {
        2
    }

    fn objective_names(&self) -> Vec<String> {
        match self {
            Fig5Evaluator::Dse(inner) => inner.objective_names(),
            Fig5Evaluator::Crowd { .. } => vec!["default_time".into(), "best_time".into()],
        }
    }

    fn evaluate(&self, config: &hypermapper::Configuration) -> Vec<f64> {
        match self {
            Fig5Evaluator::Dse(inner) => inner.evaluate(config),
            Fig5Evaluator::Crowd { best, devices } => {
                let i = (config.value_f64(0) as usize).min(devices.len().saturating_sub(1));
                let device = &devices[i];
                vec![
                    kf_frame_time(&KfParams::default_config(), device),
                    kf_frame_time(best, device),
                ]
            }
        }
    }
}

fn encode_best(p: &KfParams) -> String {
    [
        p.volume_resolution,
        p.mu,
        p.compute_size_ratio,
        p.tracking_rate,
        p.icp_threshold,
        p.integration_rate,
        p.pyramid[0],
        p.pyramid[1],
        p.pyramid[2],
    ]
    .map(|v| format!("{:016x}", v.to_bits()))
    .join(",")
}

fn decode_best(s: &str) -> Option<KfParams> {
    let mut vals = [0.0f64; 9];
    let mut it = s.split(',');
    for v in vals.iter_mut() {
        *v = f64::from_bits(u64::from_str_radix(it.next()?, 16).ok()?);
    }
    if it.next().is_some() {
        return None;
    }
    Some(KfParams {
        volume_resolution: vals[0],
        mu: vals[1],
        compute_size_ratio: vals[2],
        tracking_rate: vals[3],
        icp_threshold: vals[4],
        integration_rate: vals[5],
        pyramid: [vals[6], vals[7], vals[8]],
    })
}

/// One ordinal "device index" per catalog entry; the value *is* the index.
fn crowd_space(n: usize) -> Result<ParamSpace, hypermapper::HmError> {
    ParamSpace::builder().ordinal("device", (0..n).map(|i| i as f64)).build()
}

/// Build the (space, evaluator) pair for whichever phase this worker
/// process was spawned to serve.
fn worker_factory() -> (ParamSpace, Fig5Evaluator) {
    let phase = std::env::var(ENV_PHASE).unwrap_or_default();
    if phase == "crowd" {
        let best = std::env::var(ENV_BEST).ok().and_then(|s| decode_best(&s));
        let Some(best) = best else {
            eprintln!("fig5_service worker: missing or malformed {ENV_BEST}");
            std::process::exit(2);
        };
        let devices = crowd_devices();
        let space = match crowd_space(devices.len()) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("fig5_service worker: {e}");
                std::process::exit(2);
            }
        };
        (space, Fig5Evaluator::Crowd { best, devices })
    } else {
        (kfusion_space(), Fig5Evaluator::Dse(SimulatedKFusionEvaluator::new(odroid_xu3())))
    }
}

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

struct RunShape {
    workers: usize,
    chaos: ChaosPlan,
    net_chaos: NetChaosPlan,
    transport: TransportMode,
    /// Kill every worker with no respawn budget, forcing the degradation
    /// path: the run must finish via the in-process fallback evaluator.
    lose_workers: bool,
}

fn service_config(shape: &RunShape, epoch: u64, sidecar: Option<PathBuf>) -> ServiceConfig {
    let mut cfg = ServiceConfig {
        workers: shape.workers,
        // Shorter than the storm's 400 ms stall so stalls exercise lease
        // expiry; comfortably above a model evaluation (microseconds).
        lease_ms: 250,
        heartbeat_ms: 50,
        heartbeat_grace: 10,
        chaos: shape.chaos.clone(),
        net_chaos: shape.net_chaos.clone(),
        transport: shape.transport.clone(),
        epoch,
        sidecar,
        ..ServiceConfig::default()
    };
    if shape.lose_workers {
        cfg.chaos = ChaosPlan { seed: 1, kill_permille: 1000, ..ChaosPlan::quiet() };
        cfg.respawn_budget = 0;
        cfg.reconnect_grace_ms = 400;
    }
    cfg
}

/// Launch a pool for the current phase, installing the in-process fallback
/// when the run is meant to survive losing every worker.
fn launch_pool(
    space: ParamSpace,
    names: Vec<String>,
    shape: &RunShape,
    epoch: u64,
    sidecar: Option<PathBuf>,
) -> Result<ServicePool, Box<dyn std::error::Error>> {
    let mut pool =
        ServicePool::launch(space, 2, names, service_config(shape, epoch, sidecar))?;
    if shape.lose_workers {
        pool = pool.with_local_fallback(Box::new(worker_factory().1));
    }
    if let (TransportMode::SocketRemote { .. }, Some(addr)) =
        (&shape.transport, pool.listen_addr())
    {
        let phase = std::env::var(ENV_PHASE).unwrap_or_default();
        let best = std::env::var(ENV_BEST).map(|b| format!(" --best {b}")).unwrap_or_default();
        println!(
            "listening on {addr} — start workers with: fig5_service --connect {addr} \
             --worker-id <0..{}> --phase {phase}{best}",
            shape.workers - 1,
        );
    }
    Ok(pool)
}

fn stats_line(s: &StatsSnapshot) -> String {
    format!(
        "leases {} accepted {} dup {} stale {} wrong-epoch {} garbled {} deaths {} \
         expiries {} respawns {} disconnects {} reconnects {} dup-reconnect {} local-fallback {}",
        s.leases_granted,
        s.accepted,
        s.duplicates_dropped,
        s.stale_dropped,
        s.wrong_epoch_dropped,
        s.garbled_frames,
        s.worker_deaths,
        s.lease_expiries,
        s.respawns,
        s.disconnects,
        s.reconnects,
        s.duplicates_after_reconnect,
        s.local_fallback_evals,
    )
}

/// `--connect` mode: this invocation *is* a remote worker. Serve until the
/// coordinator shuts us down or stays unreachable past the reconnect budget.
fn run_as_remote_worker(addr: String) -> Result<i32, Box<dyn std::error::Error>> {
    let worker: u32 = match flag_value("--worker-id") {
        Some(v) => v.parse().map_err(|_| "--worker-id takes an integer ≥ 0")?,
        None => 0,
    };
    let epoch: u64 = match flag_value("--epoch") {
        Some(v) => v.parse().map_err(|_| "--epoch takes an integer ≥ 1")?,
        None => 1, // the coordinator's welcome overrides this anyway
    };
    let phase = flag_value("--phase").unwrap_or_else(|| "dse".into());
    std::env::set_var(ENV_PHASE, &phase);
    if let Some(best) = flag_value("--best") {
        std::env::set_var(ENV_BEST, best);
    } else if phase == "crowd" {
        return Err("--phase crowd needs --best <hex> (printed by the coordinator)".into());
    }
    let chaos = match flag_value("--chaos-seed") {
        Some(v) => ChaosPlan::storm(v.parse().map_err(|_| "--chaos-seed takes an integer")?),
        None => ChaosPlan::quiet(),
    };
    let net_chaos = match flag_value("--net-seed") {
        Some(v) => NetChaosPlan::storm(v.parse().map_err(|_| "--net-seed takes an integer")?),
        None => NetChaosPlan::quiet(),
    };
    println!("worker {worker} dialing {addr} (phase {phase})");
    Ok(run_socket_worker(
        worker_factory,
        SocketWorkerParams { addr, worker, epoch, heartbeat_ms: 50, chaos, net_chaos },
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Spawned children route into the serve loop here and never return.
    worker_entry(worker_factory);

    // Remote-worker mode: this invocation serves an existing coordinator.
    if let Some(addr) = flag_value("--connect") {
        std::process::exit(run_as_remote_worker(addr)?);
    }

    let scale = DseScale::from_args();
    let workers: usize = match flag_value("--workers") {
        Some(v) => v.parse().map_err(|_| "--workers takes a count ≥ 1")?,
        None => 4,
    };
    let seed: u64 = match flag_value("--seed") {
        Some(v) => v.parse().map_err(|_| "--seed takes an integer")?,
        None => 2017,
    };
    let chaos = match flag_value("--chaos-seed") {
        Some(v) => ChaosPlan::storm(v.parse().map_err(|_| "--chaos-seed takes an integer")?),
        None => ChaosPlan::quiet(),
    };
    let net_chaos = match flag_value("--net-seed") {
        Some(v) => NetChaosPlan::storm(v.parse().map_err(|_| "--net-seed takes an integer")?),
        None => NetChaosPlan::quiet(),
    };
    let lose_workers = std::env::args().any(|a| a == "--lose-workers");
    let transport = if let Some(listen) = flag_value("--listen") {
        TransportMode::SocketRemote { listen }
    } else {
        match flag_value("--transport").as_deref() {
            None | Some("stdio") => {
                if net_chaos.is_active() || lose_workers {
                    // Network faults and worker loss are socket-layer
                    // stories; run them over loopback sockets.
                    TransportMode::Socket { listen: "127.0.0.1:0".into() }
                } else {
                    TransportMode::Stdio
                }
            }
            Some("socket") => TransportMode::Socket { listen: "127.0.0.1:0".into() },
            Some(other) => return Err(format!("unknown --transport {other}").into()),
        }
    };
    let shape = RunShape { workers, chaos: chaos.clone(), net_chaos, transport, lose_workers };
    let journal_path = flag_value("--journal");
    let resume = std::env::args().any(|a| a == "--resume");
    let tag = flag_value("--out").unwrap_or_else(|| "fig5_service".into());

    println!(
        "=== Fig. 5 via hm-service — scale {scale:?}, {workers} workers, {:?} transport{}{}{} ===",
        shape.transport,
        if chaos.is_active() { ", chaos ON" } else { "" },
        if shape.net_chaos.is_active() { ", net chaos ON" } else { "" },
        if lose_workers { ", LOSING ALL WORKERS" } else { "" },
    );

    // ---- Phase 1: the KFusion DSE, every evaluation leased to a worker ----
    let stop = install_graceful_shutdown();
    let mut journal = match &journal_path {
        Some(path) if resume => Some(Journal::open_or_create(path)?),
        Some(path) => Some(Journal::create(path)?),
        None => None,
    };
    // Each coordinator incarnation gets a fresh worker epoch, journaled
    // before any lease goes out: replies from a previous incarnation's
    // workers can then never be confused with this run's.
    let epoch = match journal.as_mut() {
        Some(j) => {
            if j.truncated_bytes() > 0 {
                println!(
                    "journal: discarded {} torn/corrupt tail bytes, resuming from last valid record",
                    j.truncated_bytes()
                );
            }
            let epoch = j.worker_epoch() + 1;
            j.append_worker_epoch(epoch)?;
            epoch
        }
        None => 1,
    };
    let sidecar = journal_path.as_ref().map(|p| PathBuf::from(format!("{p}.leases")));

    std::env::set_var(ENV_PHASE, "dse");
    let pool = launch_pool(
        kfusion_space(),
        vec!["kf_frame_time".into(), "kf_ate".into()],
        &shape,
        epoch,
        sidecar.clone(),
    )?;
    let hm = hypermapper::HyperMapper::new(kfusion_space(), scale.kfusion_optimizer(seed));
    let result = hm.try_run_controlled(&pool, journal.as_mut(), Some(stop))?;
    let stats = pool.stats();
    drop(pool);
    println!(
        "DSE: {} samples, {} failures | {}",
        result.samples.len(),
        result.failures.len(),
        stats_line(&stats),
    );
    write_results_file(
        &format!("{tag}.fingerprint"),
        &result_fingerprint(&kf_space(), &result),
    )?;
    println!("wrote results/{tag}.fingerprint");
    if result.interrupted {
        match &journal_path {
            Some(path) => println!(
                "interrupted — {} samples are journaled in {path}; \
                 rerun with --journal {path} --resume to continue",
                result.samples.len()
            ),
            None => println!("interrupted — rerun with --journal <path> for a resumable run"),
        }
        std::process::exit(130);
    }

    // ---- Phase 2: stream the device catalog through a fresh worker pool ----
    let best = result
        .samples
        .iter()
        .filter(|s| s.objectives[1] < 0.05) // the paper's 5 cm validity limit
        .min_by(|a, b| a.objectives[0].total_cmp(&b.objectives[0]))
        .map(|s| kf_params_from_config(&s.config))
        .ok_or("exploration found no configuration under the 5 cm validity limit")?;
    let devices = crowd_devices();
    let names: Vec<String> = devices.iter().map(|d| d.name.clone()).collect();
    std::env::set_var(ENV_PHASE, "crowd");
    std::env::set_var(ENV_BEST, encode_best(&best));
    let space = crowd_space(devices.len())?;
    let configs: Vec<_> = (0..devices.len() as u64).map(|f| space.config_at(f)).collect();
    let pool = launch_pool(
        space,
        vec!["default_time".into(), "best_time".into()],
        &shape,
        epoch,
        sidecar,
    )?;
    let outcomes = pool.evaluate_batch(&configs);
    let crowd_stats = pool.stats();
    drop(pool);

    let mut speedups = Vec::with_capacity(devices.len());
    let mut csv = String::from("device,default_time,best_time,speedup\n");
    for (name, outcome) in names.iter().zip(outcomes) {
        let times = outcome.map_err(|f| format!("crowd evaluation failed on {name}: {f:?}"))?;
        let speedup = times[0] / times[1];
        csv.push_str(&format!("{name},{:.6},{:.6},{speedup:.4}\n", times[0], times[1]));
        speedups.push(speedup);
    }
    let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let max = speedups.iter().copied().fold(0.0f64, f64::max);
    let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!(
        "crowd: {} devices through {workers} workers — speedups min {min:.2}x \
         mean {mean:.2}x max {max:.2}x (paper: 2x .. >12x) | {}",
        speedups.len(),
        stats_line(&crowd_stats),
    );
    write_results_file(&format!("{tag}_crowd.csv"), &csv)?;
    println!("wrote results/{tag}_crowd.csv");
    Ok(())
}
