//! Tune the KinectFusion algorithmic parameters for an embedded platform,
//! as in §IV-C of the paper (reduced scale so it finishes in seconds).
//!
//! Uses the simulated ODROID-XU3 device model as the evaluation target and
//! prints the accuracy/runtime Pareto front with the 5 cm validity limit.
//!
//! Run with: `cargo run -p hm-examples --release --bin kfusion_tuning`

use hypermapper::{HyperMapper, OptimizerConfig};
use randforest::ForestConfig;
use slambench::{kfusion_space, SimulatedKFusionEvaluator, ACCURACY_LIMIT_M};

fn main() {
    let space = kfusion_space();
    println!(
        "KFusion algorithmic space: {} configurations across {} parameters",
        space.size(),
        space.n_params()
    );

    let device = device_models::odroid_xu3();
    println!("target platform: {}", device.name);
    let evaluator = SimulatedKFusionEvaluator::new(device);

    let optimizer = HyperMapper::new(
        space.clone(),
        OptimizerConfig {
            random_samples: 500,
            max_iterations: 4,
            max_evals_per_iteration: 150,
            pool_size: 40_000,
            forest: ForestConfig { n_trees: 60, ..Default::default() },
            seed: 2017,
            ..Default::default()
        },
    );
    let result = optimizer.run(&evaluator);

    let default_fps = {
        use hypermapper::Evaluator as _;
        let c = slambench::spaces::kfusion_default_config(&space);
        1.0 / evaluator.evaluate(&c)[0]
    };
    println!("default configuration: {default_fps:.1} FPS\n");

    println!("Pareto front (runtime vs. max ATE, validity limit {ACCURACY_LIMIT_M} m):");
    for s in result.pareto_samples() {
        let valid = if s.objectives[1] < ACCURACY_LIMIT_M { "valid  " } else { "INVALID" };
        println!(
            "  {:>6.1} FPS  ATE {:.4} m  [{}]  {}",
            1.0 / s.objectives[0],
            s.objectives[1],
            valid,
            space.describe(&s.config)
        );
    }

    // The deployable configuration: fastest while staying under 5 cm.
    if let Some(best) = result
        .samples
        .iter()
        .filter(|s| s.objectives[1] < ACCURACY_LIMIT_M)
        .min_by(|a, b| a.objectives[0].total_cmp(&b.objectives[0]))
    {
        println!(
            "\ndeploy: {:.1} FPS at ATE {:.4} m ({:.2}x speedup over default)",
            1.0 / best.objectives[0],
            best.objectives[1],
            (1.0 / default_fps) / best.objectives[0],
        );
        println!("        {}", space.describe(&best.config));
    }
}
