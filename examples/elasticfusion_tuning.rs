//! Tune ElasticFusion on the desktop platform and print a Table-I-style
//! report (reduced scale).
//!
//! Run with: `cargo run -p hm-examples --release --bin elasticfusion_tuning`

use hypermapper::{Evaluator as _, HyperMapper, OptimizerConfig};
use randforest::ForestConfig;
use slambench::spaces::elasticfusion_default_config;
use slambench::{ef_params_from_config, elasticfusion_space, SimulatedEFusionEvaluator};

fn main() {
    let space = elasticfusion_space();
    println!(
        "ElasticFusion algorithmic space: {} configurations (3 numeric parameters + 5 flags)",
        space.size()
    );
    let evaluator = SimulatedEFusionEvaluator::new(device_models::gtx780ti());

    let default = elasticfusion_default_config(&space);
    let default_obj = evaluator.evaluate(&default);
    println!(
        "default: {:.1} s / 400-frame sequence, ATE {:.4} m",
        default_obj[0], default_obj[1]
    );

    let optimizer = HyperMapper::new(
        space.clone(),
        OptimizerConfig {
            random_samples: 400,
            max_iterations: 4,
            max_evals_per_iteration: 120,
            pool_size: 40_000,
            forest: ForestConfig { n_trees: 60, ..Default::default() },
            seed: 42,
            ..Default::default()
        },
    );
    let result = optimizer.run(&evaluator);

    println!("\nPareto points (sequence runtime vs. ATE):");
    println!("{:>9} {:>9}  ICP  Depth Conf  SO3 OL Reloc Fast FTF", "ATE(m)", "time(s)");
    for s in result.pareto_samples() {
        let p = ef_params_from_config(&s.config);
        println!(
            "{:>9.4} {:>9.1}  {:>4.1} {:>5.1} {:>4.1}  {:>3} {:>2} {:>5} {:>4} {:>3}",
            s.objectives[1],
            s.objectives[0],
            p.icp_weight,
            p.depth_cutoff,
            p.confidence,
            p.so3_disabled as u8,
            p.open_loop as u8,
            p.relocalisation as u8,
            p.fast_odom as u8,
            p.frame_to_frame_rgb as u8,
        );
    }

    if let Some(fastest) = result.best_by_objective(0) {
        println!(
            "\nbest speed: {:.2}x over default (ATE {:+.1}% vs default)",
            default_obj[0] / fastest.objectives[0],
            (fastest.objectives[1] / default_obj[1] - 1.0) * 100.0
        );
    }
    if let Some(accurate) = result.best_by_objective(1) {
        println!(
            "best accuracy: {:.2}x better than default at {:.2}x speedup",
            default_obj[1] / accurate.objectives[1],
            default_obj[0] / accurate.objectives[0]
        );
    }
}
