//! Quickstart: multi-objective tuning of a black-box function.
//!
//! Shows the minimal HyperMapper workflow on a toy problem: define a finite
//! parameter space, implement [`Evaluator`], run the active-learning
//! exploration, and read the Pareto front.
//!
//! Run with: `cargo run -p hm-examples --release --bin quickstart`

use hypermapper::{Configuration, Evaluator, HyperMapper, OptimizerConfig, ParamSpace};

/// A toy "application": latency rises with quality knobs, error falls.
struct ImageFilterApp;

impl Evaluator for ImageFilterApp {
    fn n_objectives(&self) -> usize {
        2
    }
    fn objective_names(&self) -> Vec<String> {
        vec!["latency (ms)".into(), "error".into()]
    }
    fn evaluate(&self, config: &Configuration) -> Vec<f64> {
        let kernel = config.value_f64(0); // filter kernel radius
        let passes = config.value_f64(1); // refinement passes
        let lossy = config.value_bool(2); // cheap approximate path
        let latency =
            0.4 * kernel * kernel + 2.0 * passes + if lossy { 1.0 } else { 4.0 } + (kernel * 1.3).sin().abs();
        let error = 8.0 / (1.0 + kernel) + 3.0 / (1.0 + passes) + if lossy { 1.5 } else { 0.0 };
        vec![latency, error]
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = ParamSpace::builder()
        .ordinal("kernel-radius", (1..=8).map(f64::from))
        .ordinal("passes", (0..=6).map(f64::from))
        .boolean("lossy-path")
        .build()?;
    println!("space size: {} configurations", space.size());

    let optimizer = HyperMapper::new(
        space.clone(),
        OptimizerConfig { random_samples: 25, max_iterations: 4, seed: 7, ..Default::default() },
    );
    let result = optimizer.run(&ImageFilterApp);

    println!(
        "evaluated {} configurations ({} random + {} active-learning)",
        result.samples.len(),
        result.random_samples().count(),
        result.active_samples().count()
    );
    println!("\nPareto front (latency ↑, error ↓):");
    for s in result.pareto_samples() {
        println!(
            "  latency {:>6.2} ms  error {:>5.2}   {}",
            s.objectives[0],
            s.objectives[1],
            space.describe(&s.config)
        );
    }
    let fastest = result.best_by_objective(0).ok_or("no samples")?;
    println!("\nfastest: {}", space.describe(&fastest.config));
    let most_accurate = result.best_by_objective(1).ok_or("no samples")?;
    println!("most accurate: {}", space.describe(&most_accurate.config));
    Ok(())
}
