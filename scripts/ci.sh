#!/usr/bin/env bash
# Full CI gate: release build, test suite, offline-stub build parity, and
# the unwrap/expect hygiene check for the core crate.
#
# Usage:
#   scripts/ci.sh              # everything
#   scripts/ci.sh lint         # only the unwrap/expect grep gate
set -euo pipefail

REPO="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
MODE="${1:-all}"

# ---------------------------------------------------------------------------
# Grep gate: non-test code in crates/core/src must not introduce new
# `.unwrap()` / `.expect(` calls. The optimizer survives evaluator crashes
# by design; a stray unwrap on a poisoned lock or unvalidated result
# reintroduces exactly the crash class this crate exists to contain.
#
# Allowed escapes:
#   * code under `#[cfg(test)]` (tests sit at the bottom of each file),
#   * lines carrying an `// audited:` marker explaining why the panic is
#     unreachable,
#   * doc/comment lines,
#   * lock recovery via `unwrap_or_else(|e| e.into_inner())` (not a panic).
# ---------------------------------------------------------------------------
lint_unwraps() {
    local bad=0
    for f in "$REPO"/crates/core/src/*.rs; do
        # Strip everything from the first #[cfg(test)] on: by repo
        # convention the test module is the tail of the file.
        local violations
        violations=$(awk '/^#\[cfg\(test\)\]/{exit} {print NR": "$0}' "$f" \
            | grep -E '\.unwrap\(\)|\.expect\(' \
            | grep -v 'unwrap_or_else' \
            | grep -v '// audited:' \
            | grep -vE '^[0-9]+: *(//|/\*|\*)' || true)
        if [ -n "$violations" ]; then
            echo "unaudited unwrap/expect in ${f#"$REPO"/}:" >&2
            echo "$violations" >&2
            bad=1
        fi
    done
    if [ "$bad" -ne 0 ]; then
        echo "error: new unwrap()/expect( in crates/core/src non-test code." >&2
        echo "Recover poisoned locks with unwrap_or_else(|e| e.into_inner())," >&2
        echo "return an error, or mark the line '// audited: <reason>'." >&2
        return 1
    fi
    echo "unwrap/expect gate: clean"
}

lint_unwraps
[ "$MODE" = "lint" ] && exit 0

cd "$REPO"
cargo build --release
cargo test -q
bash "$REPO/scripts/check_offline.sh"
