#!/usr/bin/env bash
# Full CI gate: release build, test suite, offline-stub build parity, the
# hm-lint determinism/failure-semantics linter, and the micro-benchmark
# regression gate against the committed BENCH_surrogate.json baseline.
#
# Usage:
#   scripts/ci.sh              # everything
#   scripts/ci.sh lint         # only the hm-lint workspace gate (+ ratchet)
#   scripts/ci.sh bench        # only the bench regression gate
#   scripts/ci.sh resume       # only the kill → resume bit-identity smoke test
#   scripts/ci.sh chaos        # only the multi-process kill-anywhere chaos gate
#   scripts/ci.sh sanitize     # service chaos tests under ThreadSanitizer
#                              # (needs a nightly toolchain; skips gracefully)
#
# Env:
#   BENCH_REGRESSION_PCT       # allowed median slowdown per series (default 20)
#   JOURNAL_OVERHEAD_LIMIT     # allowed journaled/plain run ratio (default 1.05)
set -euo pipefail

REPO="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
MODE="${1:-all}"

# ---------------------------------------------------------------------------
# Lint gate: hm-lint (crates/lint) runs its full determinism and
# failure-semantics rule set over the whole workspace — unaudited panics,
# NaN-unsafe comparators, wall-clock outside the timing modules,
# hash-order iteration in the deterministic crates, lossy floats in
# bit-exact zones. It replaced the old awk/grep unwrap gate: a real lexer,
# so string literals, raw strings, and nested block comments cannot fool
# it, and suppressions (`// lint: allow(<rule>): <reason>`) are counted
# per rule for the ROADMAP audit-debt burn-down.
#
# The committed lint-baseline.json is a suppression ratchet: the run fails
# if any rule's suppression count grows (fix the code, don't suppress) OR
# shrinks (tighten the baseline so the burn-down sticks). Regenerate it
# deliberately with `hm-lint --write-baseline lint-baseline.json`.
# ---------------------------------------------------------------------------
lint_workspace() {
    cd "$REPO"
    local out status=0
    out=$(cargo run -q -p hm-lint -- --workspace --deny warnings \
        --baseline "$REPO/lint-baseline.json" 2>&1) || status=$?
    # Exit 0 (clean) or 1 (violations) means the linter actually ran;
    # anything else is a build failure (e.g. no network for crates.io) —
    # fall back to the offline stub harness, same as the resume smoke test.
    if [ "$status" -eq 0 ] || [ "$status" -eq 1 ]; then
        printf '%s\n' "$out"
        return "$status"
    fi
    echo "lint: online build unavailable; using the offline stub harness"
    bash "$REPO/scripts/check_offline.sh" build -p hm-lint >/dev/null 2>&1
    "$REPO/target/offline-check/target/debug/hm-lint" --root "$REPO" --deny warnings \
        --baseline "$REPO/lint-baseline.json"
}

# ---------------------------------------------------------------------------
# Bench regression gate: re-run scripts/bench.sh and compare each series'
# median against the committed baseline. A series more than
# BENCH_REGRESSION_PCT % slower than its baseline median fails the gate.
# Series present only in the fresh run (newly added benches) pass; series
# missing from the fresh run (a bench was deleted without updating the
# baseline) fail.
#
# Machine noise only ever slows a series down, so on failure the gate
# re-measures (up to BENCH_GATE_RETRIES extra runs, default 2) and keeps the
# per-series minimum: a genuine regression survives every re-run, a load
# spike does not.
# ---------------------------------------------------------------------------

# "name median_ns" pairs from a bench.sh JSON report.
extract_bench_results() {
    awk '
        /"results": \{/ { inres = 1; next }
        inres && /\}/   { inres = 0; next }
        inres {
            name = $1; gsub(/[":,]/, "", name)
            val = $2; gsub(/,/, "", val)
            print name, val + 0
        }
    ' "$1"
}

# Per-series minimum of two "name value" files.
merge_bench_min() {
    awk '
        NR == FNR { best[$1] = $2; next }
        { if (!($1 in best) || $2 < best[$1]) best[$1] = $2 }
        END { for (n in best) print n, best[n] }
    ' "$1" "$2"
}

# Compare flat baseline vs. fresh; exit 1 on any series over the limit.
compare_bench() {
    awk -v pct="$3" '
        NR == FNR { base[$1] = $2; next }
        { fresh[$1] = $2 }
        END {
            bad = 0
            for (n in base) {
                if (!(n in fresh)) {
                    printf "bench gate: series %s missing from fresh run\n", n
                    bad = 1
                    continue
                }
                limit = base[n] * (1 + pct / 100)
                slow = fresh[n] > limit
                printf "bench gate: %-34s base %12.0f ns  fresh %12.0f ns  %s\n", \
                    n, base[n], fresh[n], (slow ? "REGRESSED" : "ok")
                if (slow) bad = 1
            }
            exit bad
        }
    ' "$1" "$2"
}

# Absolute gate on the write-ahead-journal durability tax: the journaled
# run's median must stay within JOURNAL_OVERHEAD_LIMIT (default 1.05 = 5%)
# of the plain run's, with per-batch fsync. Reads the derived ratio from the
# fresh bench report; both medians come from the same run, so the ratio is
# noise-paired. "null" (partial bench run) passes — the series gate already
# fails on missing series.
check_journal_overhead() {
    awk -v lim="${JOURNAL_OVERHEAD_LIMIT:-1.05}" '
        /"journal_write_overhead_ratio"/ {
            v = $2; gsub(/[",]/, "", v)
            if (v == "null") {
                print "bench gate: journal overhead ratio not measured (partial run)"
                exit 0
            }
            slow = (v + 0 > lim + 0)
            printf "bench gate: %-34s ratio %8.3f     limit %8.3f     %s\n", \
                "journal_write_overhead_ratio", v, lim, (slow ? "REGRESSED" : "ok")
            exit slow
        }
    ' "$1"
}

bench_regression() {
    local baseline="$REPO/BENCH_surrogate.json"
    local pct="${BENCH_REGRESSION_PCT:-20}"
    local retries="${BENCH_GATE_RETRIES:-2}"
    if [ ! -f "$baseline" ]; then
        echo "bench gate: no baseline at ${baseline#"$REPO"/}; skipping"
        return 0
    fi
    local base_flat best report merged
    base_flat=$(mktemp) best=$(mktemp) report=$(mktemp) merged=$(mktemp)
    # shellcheck disable=SC2064
    trap "rm -f '$base_flat' '$best' '$report' '$merged'" RETURN
    extract_bench_results "$baseline" >"$base_flat"

    bash "$REPO/scripts/bench.sh" "$report" >/dev/null
    extract_bench_results "$report" >"$best"
    local attempt=0
    while ! { compare_bench "$base_flat" "$best" "$pct" && check_journal_overhead "$report"; }; do
        if [ "$attempt" -ge "$retries" ]; then
            echo "bench gate: regression vs BENCH_surrogate.json (series over ${pct}% or journal overhead over limit)" >&2
            return 1
        fi
        attempt=$((attempt + 1))
        echo "bench gate: over limit; re-measuring to rule out machine noise ($attempt/$retries)"
        bash "$REPO/scripts/bench.sh" "$report" >/dev/null
        extract_bench_results "$report" | merge_bench_min "$best" /dev/stdin >"$merged"
        cp "$merged" "$best"
    done
    echo "bench gate: clean"
}

# ---------------------------------------------------------------------------
# Resume smoke test: run the journaled quick KFusion DSE, SIGKILL it
# mid-iteration, resume from the journal, and require the resumed result's
# full-precision fingerprint to be byte-identical to an uninterrupted
# reference run. This is the end-to-end proof of the durability layer:
# torn-tail truncation, replay, and RNG-position restoration all have to
# work for the fingerprints to match.
# ---------------------------------------------------------------------------
resume_smoke() {
    cd "$REPO"
    local bin="$REPO/target/release/fig3_kfusion_dse"
    if ! cargo build --release -p hm-bench --bin fig3_kfusion_dse >/dev/null 2>&1; then
        echo "resume smoke: online build failed (offline?); using the stub harness"
        bash "$REPO/scripts/check_offline.sh" build --release -p hm-bench \
            --bin fig3_kfusion_dse >/dev/null 2>&1
        bin="$REPO/target/offline-check/target/release/fig3_kfusion_dse"
    fi
    local work
    work=$(mktemp -d)
    # shellcheck disable=SC2064
    trap "rm -rf '$work'" RETURN
    cd "$work"

    echo "resume smoke: reference run"
    "$bin" odroid --quick --journal ref.journal --eval-delay-ms 2 >/dev/null
    cp results/fig3a_odroid.fingerprint ref.fingerprint

    echo "resume smoke: start run, SIGKILL mid-iteration"
    "$bin" odroid --quick --journal kill.journal --eval-delay-ms 2 >/dev/null 2>&1 &
    local pid=$! evals=0 i
    for i in $(seq 1 200); do
        evals=$(grep -c ' eval ' kill.journal 2>/dev/null || true)
        [ "${evals:-0}" -ge 50 ] && break
        sleep 0.05
    done
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    evals=$(grep -c ' eval ' kill.journal || true)
    if [ "${evals:-0}" -lt 1 ]; then
        echo "resume smoke: run died before journaling any evaluation" >&2
        return 1
    fi
    echo "resume smoke: killed with $evals evaluations journaled; resuming"

    "$bin" odroid --quick --journal kill.journal --resume --eval-delay-ms 2 >/dev/null
    if ! cmp -s ref.fingerprint results/fig3a_odroid.fingerprint; then
        echo "resume smoke: resumed result differs from the uninterrupted run" >&2
        diff ref.fingerprint results/fig3a_odroid.fingerprint | head >&2 || true
        return 1
    fi
    echo "resume smoke: kill -> resume is bit-identical"
    cd "$REPO"
}

# ---------------------------------------------------------------------------
# Chaos gate: the kill-anywhere proof for the multi-process service layer
# (crates/service). Three fig5_service runs of the same seeded quick DSE:
#
#   1. one worker process, no chaos        -> reference fingerprint
#   2. four workers under a chaos storm    -> must be byte-identical
#      (seeded worker kills, stalls, frozen heartbeats, garbled frames,
#      duplicate / late / stale-epoch replies)
#   3. four workers + storm, coordinator SIGKILLed mid-run, then resumed
#      from its journal                    -> must be byte-identical
#
# Between leases-over-checksummed-pipes, heartbeat reaping, deterministic
# re-grant backoff, and slot-ordered merge, the service's contract is that
# NOTHING about process count, scheduling, or failure timing is allowed to
# leak into the result. The fingerprints are full-precision (bit-level
# objective values), so any leak fails the gate.
#
# The socket stage re-proves the same contract over the TCP transport
# (loopback only — no external network, so it runs fine offline):
#
#   4. four socket workers under the process storm PLUS a seeded network
#      fault storm (drops, delays, reorders, duplicate retransmits,
#      truncated frames, partitions, reconnect storms) -> byte-identical,
#      and the stats line must show sessions actually resumed (reconnects
#      and severed links both nonzero, i.e. partition/reconnect happened)
#   5. same, with the coordinator SIGKILLed mid-run and resumed from its
#      journal over sockets                            -> byte-identical
#   6. every worker killed with no respawn budget      -> byte-identical
#      via the in-process fallback (local-fallback count must equal the
#      sample count, proving the run degraded instead of hanging)
# ---------------------------------------------------------------------------
chaos_gate() {
    cd "$REPO"
    local bin="$REPO/target/release/fig5_service"
    if ! cargo build --release -p hm-examples --bin fig5_service >/dev/null 2>&1; then
        echo "chaos gate: online build failed (offline?); using the stub harness"
        bash "$REPO/scripts/check_offline.sh" build --release -p hm-examples \
            --bin fig5_service >/dev/null 2>&1
        bin="$REPO/target/offline-check/target/release/fig5_service"
    fi
    local work
    work=$(mktemp -d)
    # shellcheck disable=SC2064
    trap "rm -rf '$work'" RETURN
    cd "$work"

    echo "chaos gate: single-process reference run"
    "$bin" --quick --workers 1 --out ref >/dev/null
    cp results/ref.fingerprint ref.fingerprint

    echo "chaos gate: 4 workers under a seeded fault storm"
    "$bin" --quick --workers 4 --chaos-seed 7 --out storm >/dev/null
    if ! cmp -s ref.fingerprint results/storm.fingerprint; then
        echo "chaos gate: storm run diverged from the single-process reference" >&2
        diff ref.fingerprint results/storm.fingerprint | head >&2 || true
        return 1
    fi

    echo "chaos gate: 4 workers + storm, SIGKILL the coordinator, resume"
    "$bin" --quick --workers 4 --chaos-seed 7 --journal kill.journal \
        --out killed >/dev/null 2>&1 &
    local pid=$! evals=0 i
    for i in $(seq 1 100); do
        evals=$(grep -c ' eval ' kill.journal 2>/dev/null || true)
        [ "${evals:-0}" -ge 30 ] && break
        sleep 0.02
    done
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    evals=$(grep -c ' eval ' kill.journal || true)
    if [ "${evals:-0}" -lt 1 ]; then
        echo "chaos gate: coordinator died before journaling any evaluation" >&2
        return 1
    fi
    echo "chaos gate: coordinator killed with $evals evaluations journaled; resuming"
    "$bin" --quick --workers 4 --chaos-seed 7 --journal kill.journal --resume \
        --out resumed >/dev/null
    if ! cmp -s ref.fingerprint results/resumed.fingerprint; then
        echo "chaos gate: resumed run diverged from the single-process reference" >&2
        diff ref.fingerprint results/resumed.fingerprint | head >&2 || true
        return 1
    fi
    echo "chaos gate: kill-anywhere is bit-identical"

    echo "chaos gate: 4 socket workers under process + network fault storms"
    "$bin" --quick --workers 4 --transport socket --chaos-seed 7 --net-seed 11 \
        --out socknet >socknet.log
    if ! cmp -s ref.fingerprint results/socknet.fingerprint; then
        echo "chaos gate: socket+net-storm run diverged from the reference" >&2
        diff ref.fingerprint results/socknet.fingerprint | head >&2 || true
        return 1
    fi
    if ! grep -Eq 'reconnects [1-9]' socknet.log; then
        echo "chaos gate: net storm never exercised session resume" >&2
        grep '^DSE:' socknet.log >&2 || true
        return 1
    fi
    if ! grep -Eq 'disconnects [1-9]' socknet.log; then
        echo "chaos gate: net storm never severed a link" >&2
        grep '^DSE:' socknet.log >&2 || true
        return 1
    fi

    echo "chaos gate: socket workers + storms, SIGKILL the coordinator, resume"
    "$bin" --quick --workers 4 --transport socket --chaos-seed 7 --net-seed 11 \
        --journal sockkill.journal --out sockkilled >/dev/null 2>&1 &
    pid=$!
    evals=0
    for i in $(seq 1 100); do
        evals=$(grep -c ' eval ' sockkill.journal 2>/dev/null || true)
        [ "${evals:-0}" -ge 30 ] && break
        sleep 0.02
    done
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    evals=$(grep -c ' eval ' sockkill.journal || true)
    if [ "${evals:-0}" -lt 1 ]; then
        echo "chaos gate: socket coordinator died before journaling anything" >&2
        return 1
    fi
    echo "chaos gate: coordinator killed with $evals evaluations journaled; resuming over sockets"
    "$bin" --quick --workers 4 --transport socket --chaos-seed 7 --net-seed 11 \
        --journal sockkill.journal --resume --out sockresumed >/dev/null
    if ! cmp -s ref.fingerprint results/sockresumed.fingerprint; then
        echo "chaos gate: socket resume diverged from the reference" >&2
        diff ref.fingerprint results/sockresumed.fingerprint | head >&2 || true
        return 1
    fi

    echo "chaos gate: lose every socket worker, degrade to the local fallback"
    "$bin" --quick --workers 2 --lose-workers --out lost >lost.log
    if ! cmp -s ref.fingerprint results/lost.fingerprint; then
        echo "chaos gate: lose-workers run diverged from the reference" >&2
        diff ref.fingerprint results/lost.fingerprint | head >&2 || true
        return 1
    fi
    if ! grep -Eq 'local-fallback [1-9]' lost.log; then
        echo "chaos gate: lose-workers run never hit the fallback path" >&2
        grep '^DSE:' lost.log >&2 || true
        return 1
    fi
    echo "chaos gate: socket transport, network chaos, and total worker loss are bit-identical"
    cd "$REPO"
}

# ---------------------------------------------------------------------------
# Sanitize stage: re-run the service crate's chaos tests under
# ThreadSanitizer. The static lock-order/deadline rules above reason about
# the code; TSan watches the actual interleavings — between them the
# coordinator's locking story is checked from both sides. TSan needs a
# nightly toolchain with rust-src (for -Zbuild-std), so the stage probes
# for one and skips gracefully on stable or offline machines rather than
# failing the gate.
# ---------------------------------------------------------------------------
sanitize_service() {
    cd "$REPO"
    if ! cargo +nightly -V >/dev/null 2>&1; then
        echo "sanitize: no nightly toolchain; skipping (install nightly + rust-src to enable)"
        return 0
    fi
    local host
    host=$(rustc -vV | awk '/^host:/ { print $2 }')
    if ! rustup component list --toolchain nightly 2>/dev/null \
        | grep -q '^rust-src (installed)'; then
        echo "sanitize: nightly lacks rust-src (needed for -Zbuild-std); skipping"
        return 0
    fi
    # Probe the build first: an offline machine cannot fetch the nightly
    # std deps, and that must skip, not fail.
    if ! RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -Zbuild-std \
        --target "$host" -p hm-service --no-run >/dev/null 2>&1; then
        echo "sanitize: TSan build unavailable (offline or toolchain mismatch); skipping"
        return 0
    fi
    echo "sanitize: running hm-service tests under ThreadSanitizer"
    RUSTFLAGS="-Zsanitizer=thread" RUST_TEST_THREADS=1 \
        cargo +nightly test -Zbuild-std --target "$host" -p hm-service
    echo "sanitize: clean"
}

lint_workspace
[ "$MODE" = "lint" ] && exit 0
if [ "$MODE" = "sanitize" ]; then
    sanitize_service
    exit 0
fi
if [ "$MODE" = "bench" ]; then
    bench_regression
    exit 0
fi
if [ "$MODE" = "resume" ]; then
    resume_smoke
    exit 0
fi
if [ "$MODE" = "chaos" ]; then
    chaos_gate
    exit 0
fi

cd "$REPO"
cargo build --release
# The test gate is a fully green suite — `set -e` fails the gate on any
# failing test. The two seed-era failures (forest mtry default, KFusion
# pyramid smoothing) are fixed (DESIGN §14); nothing is carved out.
cargo test -q
bash "$REPO/scripts/check_offline.sh"
bench_regression
resume_smoke
chaos_gate
sanitize_service
