#!/usr/bin/env bash
# Build/test the workspace with zero network access by patching crates.io
# dependencies to the functional stubs in offline-stubs/ (see its README).
#
# The real manifests are never modified: the workspace is copied into
# target/offline-check/ and the [patch.crates-io] section is appended to the
# scratch copy only. Online CI keeps using the real dependencies.
#
# Usage:
#   scripts/check_offline.sh                 # cargo check --workspace --all-targets
#   scripts/check_offline.sh test           # cargo test --workspace
#   scripts/check_offline.sh test -p randforest
#   scripts/check_offline.sh bench -p spec-bench --bench forest
set -euo pipefail

REPO="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SCRATCH="$REPO/target/offline-check"
CMD="${1:-check}"
shift || true

mkdir -p "$SCRATCH"
# Mirror the workspace sources into the scratch dir (tar preserves layout and
# drops anything gitignored-by-convention that we exclude here).
(cd "$REPO" && tar -cf - \
    --exclude='./target' \
    --exclude='./.git' \
    --exclude='./offline-stubs' \
    .) | tar -xf - -C "$SCRATCH"

# Point every external dependency at its offline stub.
cat >> "$SCRATCH/Cargo.toml" <<EOF

[patch.crates-io]
rand = { path = "$REPO/offline-stubs/rand" }
rand_chacha = { path = "$REPO/offline-stubs/rand_chacha" }
rayon = { path = "$REPO/offline-stubs/rayon" }
proptest = { path = "$REPO/offline-stubs/proptest" }
criterion = { path = "$REPO/offline-stubs/criterion" }
parking_lot = { path = "$REPO/offline-stubs/parking_lot" }
serde = { path = "$REPO/offline-stubs/serde" }
serde_json = { path = "$REPO/offline-stubs/serde_json" }
EOF

export CARGO_TARGET_DIR="$SCRATCH/target"
export CARGO_NET_OFFLINE=true

case "$CMD" in
    check)
        cargo check --manifest-path "$SCRATCH/Cargo.toml" --workspace --all-targets --offline "$@"
        # The linter is std-only, so it must build and run against the
        # stubs too — then hold the scratch copy of the workspace to the
        # same bar CI does.
        cargo build --manifest-path "$SCRATCH/Cargo.toml" -p hm-lint --offline
        "$SCRATCH/target/debug/hm-lint" --root "$SCRATCH" --deny warnings
        ;;
    *)
        exec cargo "$CMD" --manifest-path "$SCRATCH/Cargo.toml" --offline "$@"
        ;;
esac
