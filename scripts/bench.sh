#!/usr/bin/env bash
# Run the surrogate-engine micro-benchmarks headless and distill the medians
# into a machine-readable JSON file (default: BENCH_surrogate.json).
#
# Works in both environments:
#   * online  — real criterion harness (`cargo bench`), parsing its
#               "name  time: [lo mid hi]" report lines;
#   * offline — the stub harness under scripts/check_offline.sh, parsing its
#               "OFFLINE_BENCH name <ns> ns/iter" lines.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_surrogate.json}
LOG=$(mktemp)
trap 'rm -f "$LOG"' EXIT

HARNESS=criterion
if ! cargo bench -p hm-bench --bench surrogate >"$LOG" 2>&1; then
    echo "cargo bench failed (offline?); using the stub harness" >&2
    HARNESS=offline-stub
    scripts/check_offline.sh bench -p hm-bench --bench surrogate >"$LOG" 2>&1
fi
grep -E "OFFLINE_BENCH|time:" "$LOG" || true

awk -v harness="$HARNESS" '
function unit_ns(u) {
    if (u == "ns") return 1
    if (u == "us" || u == "µs") return 1e3
    if (u == "ms") return 1e6
    if (u == "s") return 1e9
    return 0
}
# offline stub: OFFLINE_BENCH <name> <median_ns> ns/iter (<i>x<s>)
$1 == "OFFLINE_BENCH" { ns[$2] = $3; order[n++] = $2; next }
# criterion: <name>  time: [<lo> <u> <mid> <u> <hi> <u>]
$2 == "time:" {
    gsub(/\[|\]/, "")
    m = unit_ns($6)
    if (m > 0) { ns[$1] = $5 * m; order[n++] = $1 }
}
END {
    printf "{\n"
    printf "  \"bench\": \"surrogate\",\n"
    printf "  \"harness\": \"%s\",\n", harness
    printf "  \"metric\": \"median_ns_per_iter\",\n"
    printf "  \"results\": {\n"
    for (i = 0; i < n; i++) {
        printf "    \"%s\": %.0f%s\n", order[i], ns[order[i]], (i < n - 1 ? "," : "")
    }
    printf "  },\n"
    printf "  \"derived\": {\n"
    printf "    \"compiled_speedup_50k_pool\": %.3f,\n", \
        ns["predict_pointer_50000x100"] / ns["predict_compiled_50000x100"]
    printf "    \"fused_2obj_speedup_50k_pool\": %.3f,\n", \
        ns["predict_pointer_2obj_50000x100"] / ns["predict_fused_2obj_50000x100"]
    printf "    \"histogram_fit_speedup\": %.3f,\n", \
        ns["fit_exact_3000x50"] / ns["fit_histogram_3000x50"]
    printf "    \"frame_cache_speedup_native_eval\": %.3f\n", \
        ns["native_kfusion_cold_cache_4f"] / ns["native_kfusion_warm_cache_4f"]
    printf "  }\n"
    printf "}\n"
}
' "$LOG" >"$OUT"

echo "wrote $OUT"
cat "$OUT"
