#!/usr/bin/env bash
# Run the surrogate-engine micro-benchmarks headless and distill the medians
# into a machine-readable JSON file (default: BENCH_surrogate.json).
#
# Works in both environments:
#   * online  — real criterion harness (`cargo bench`), parsing its
#               "name  time: [lo mid hi]" report lines;
#   * offline — the stub harness under scripts/check_offline.sh, parsing its
#               "OFFLINE_BENCH name <ns> ns/iter" lines.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_surrogate.json}
LOG=$(mktemp)
trap 'rm -f "$LOG"' EXIT

HARNESS=criterion
if ! cargo bench -p hm-bench --bench surrogate >"$LOG" 2>&1; then
    echo "cargo bench failed (offline?); using the stub harness" >&2
    HARNESS=offline-stub
    scripts/check_offline.sh bench -p hm-bench --bench surrogate >"$LOG" 2>&1
fi
grep -E "OFFLINE_BENCH|time:" "$LOG" || true

awk -v harness="$HARNESS" '
function unit_ns(u) {
    if (u == "ns") return 1
    if (u == "us" || u == "µs") return 1e3
    if (u == "ms") return 1e6
    if (u == "s") return 1e9
    return 0
}
# Ratio of two recorded medians, or "null" when either side is missing or
# zero (a partial bench run must not crash the report with a divide-by-zero).
function ratio(a, b) {
    if (!(a in ns) || !(b in ns) || ns[b] == 0) return "null"
    return sprintf("%.3f", ns[a] / ns[b])
}
# offline stub: OFFLINE_BENCH <name> <median_ns> ns/iter (<i>x<s>)
$1 == "OFFLINE_BENCH" { ns[$2] = $3; order[n++] = $2; next }
# criterion: <name>  time: [<lo> <u> <mid> <u> <hi> <u>]
$2 == "time:" {
    gsub(/\[|\]/, "")
    m = unit_ns($6)
    if (m > 0) { ns[$1] = $5 * m; order[n++] = $1 }
}
END {
    printf "{\n"
    printf "  \"bench\": \"surrogate\",\n"
    printf "  \"harness\": \"%s\",\n", harness
    printf "  \"metric\": \"median_ns_per_iter\",\n"
    printf "  \"results\": {\n"
    for (i = 0; i < n; i++) {
        printf "    \"%s\": %.0f%s\n", order[i], ns[order[i]], (i < n - 1 ? "," : "")
    }
    printf "  },\n"
    printf "  \"derived\": {\n"
    printf "    \"compiled_speedup_50k_pool\": %s,\n", \
        ratio("predict_pointer_50000x100", "predict_compiled_50000x100")
    printf "    \"quantized_speedup_50k_pool\": %s,\n", \
        ratio("predict_compiled_50000x100", "predict_quantized_50000x100")
    printf "    \"cached_speedup_50k_pool\": %s,\n", \
        ratio("predict_quantized_50000x100", "predict_quantized_cached_50000x100")
    printf "    \"quantized_pool_shrink\": %s,\n", \
        ratio("compiled_pool_bytes", "quantized_pool_bytes")
    printf "    \"fused_2obj_speedup_50k_pool\": %s,\n", \
        ratio("predict_pointer_2obj_50000x100", "predict_fused_2obj_50000x100")
    printf "    \"histogram_fit_speedup\": %s,\n", \
        ratio("fit_exact_3000x50", "fit_histogram_3000x50")
    printf "    \"frame_cache_speedup_native_eval\": %s,\n", \
        ratio("native_kfusion_cold_cache_4f", "native_kfusion_warm_cache_4f")
    printf "    \"parallel_batch_speedup_8cfg\": %s,\n", \
        ratio("batch_sequential_8cfg", "batch_parallel_8cfg")
    printf "    \"parallel_compute_speedup_8cfg\": %s,\n", \
        ratio("batch_compute_sequential_8cfg", "batch_compute_parallel_8cfg")
    printf "    \"auto_vs_sequential_compute_8cfg\": %s,\n", \
        ratio("batch_compute_auto_8cfg", "batch_compute_sequential_8cfg")
    printf "    \"timing_mode_overhead_ratio\": %s,\n", \
        ratio("timing_mode_eval_4f", "dedicated_sequential_4f")
    printf "    \"journal_write_overhead_ratio\": %s,\n", \
        ratio("journal_overhead_on", "journal_overhead_off")
    printf "    \"refit_warm_vs_cold\": %s,\n", \
        ratio("refit_warm_3000x50", "refit_cold_3000x50")
    printf "    \"incremental_front_cost_ratio\": %s\n", \
        ratio("incremental_front_200k", "batch_front_200k")
    printf "  }\n"
    printf "}\n"
}
' "$LOG" >"$OUT"

echo "wrote $OUT"
cat "$OUT"
