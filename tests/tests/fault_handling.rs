//! Cross-crate fault handling: a KFusion configuration that destroys
//! tracking must surface as a structured divergence — an early-aborted run
//! at the SLAM layer, a typed evaluation failure at the optimizer layer —
//! never as a NaN objective smuggled into the training set.

use hypermapper::{EvalError, Evaluator, ParamSpace};
use icl_nuim_synth::{NoiseModel, SequenceConfig, TrajectoryKind};
use slambench::eval::NativeKFusionEvaluator;
use slambench::{DivergenceReason, RunStatus};

fn sequence_config() -> SequenceConfig {
    SequenceConfig {
        width: 48,
        height: 36,
        n_frames: 60,
        trajectory: TrajectoryKind::LivingRoomLoop,
        noise: NoiseModel::none(),
        seed: 1,
    }
}

/// Same layout as `slambench::kfusion_space`, but the pyramid levels admit
/// zero ICP iterations — a configuration class the real space excludes
/// precisely because it cannot track. That makes it the perfect lever for
/// forcing a deterministic tracking collapse.
fn stress_space() -> ParamSpace {
    ParamSpace::builder()
        .ordinal("volume-resolution", [64.0, 128.0, 256.0])
        .ordinal_log("mu", (0..6).map(|i| 0.0125 * 2f64.powi(i)))
        .ordinal("compute-size-ratio", [1.0, 2.0, 4.0, 8.0])
        .ordinal("tracking-rate", (1..=5).map(f64::from))
        .ordinal_log("icp-threshold", (0..5).map(|i| 10f64.powi(-5 + i)))
        .ordinal("integration-rate", (1..=10).map(f64::from))
        .ordinal("pyramid-l0", (0..=5).map(f64::from))
        .ordinal("pyramid-l1", (0..=4).map(f64::from))
        .ordinal("pyramid-l2", (0..=3).map(f64::from))
        .build()
        .unwrap()
}

#[test]
fn collapsing_kfusion_config_reports_divergence_not_nan() {
    let space = stress_space();
    // Track every frame with zero ICP iterations per pyramid level: every
    // tracking attempt fails, so the run must trip the collapse detector.
    let collapsing =
        space.config_from_values(&[64.0, 0.2, 4.0, 1.0, 1e-5, 1.0, 0.0, 0.0, 0.0]);

    // SLAM layer: the runner aborts early with a finite-field report.
    let report = slambench::run_kfusion(
        &icl_nuim_synth::SyntheticSequence::new(sequence_config()),
        &slambench::spaces::kf_pipeline_config(&collapsing),
        40,
    );
    match report.status {
        RunStatus::Diverged { reason, at_frame } => {
            assert_eq!(reason, DivergenceReason::TrackingCollapse);
            assert!(at_frame < 40);
        }
        RunStatus::Completed => panic!("expected divergence: {report:?}"),
    }
    assert!(report.frames < 40, "early abort, got {} frames", report.frames);
    assert!(report.ate.mean.is_finite() && report.ate.max.is_finite());
    assert!(report.mean_frame_time.is_finite());
    assert!(report.total_time.is_finite());

    // Optimizer layer: the native evaluator maps the diverged run to a
    // typed failure instead of returning a NaN objective vector.
    let evaluator = NativeKFusionEvaluator::new(sequence_config(), 40);
    match evaluator.try_evaluate(&collapsing) {
        Err(EvalError::Diverged { reason }) => {
            assert!(reason.contains("tracking collapse"), "reason: {reason}");
        }
        other => panic!("expected Diverged, got {other:?}"),
    }

    // A healthy configuration on the same evaluator still succeeds: full
    // tracking resolution and deep ICP pyramids, the accurate end of the
    // space.
    let healthy = space.config_from_values(&[128.0, 0.1, 1.0, 1.0, 1e-5, 1.0, 5.0, 4.0, 3.0]);
    let out = evaluator.try_evaluate(&healthy).expect("healthy config evaluates");
    assert!(out.iter().all(|v| v.is_finite()));
}
