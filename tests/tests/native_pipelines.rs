//! Integration tests running the *real* SLAM pipelines end-to-end over
//! synthetic sequences and checking that the simulated models' qualitative
//! trade-offs hold for the native implementations too.

use icl_nuim_synth::{NoiseModel, SequenceConfig, SyntheticSequence, TrajectoryKind};
use kfusion::KFusionConfig;
use slambench::{run_elasticfusion, run_kfusion};

fn sequence(noise: bool) -> SyntheticSequence {
    SyntheticSequence::new(SequenceConfig {
        width: 64,
        height: 48,
        n_frames: 260,
        trajectory: TrajectoryKind::LivingRoomLoop,
        noise: if noise { NoiseModel::default() } else { NoiseModel::none() },
        seed: 1,
    })
}

#[test]
fn kfusion_tracks_a_real_sequence_segment() {
    let seq = sequence(false);
    let cfg = KFusionConfig { volume_resolution: 128, ..Default::default() };
    let report = run_kfusion(&seq, &cfg, 20);
    assert_eq!(report.frames, 20);
    assert!(report.tracked_fraction > 0.8, "tracked {}", report.tracked_fraction);
    assert!(report.ate.max < 0.12, "max ATE {}", report.ate.max);
    assert!(report.ate.mean <= report.ate.max);
}

#[test]
fn kfusion_survives_sensor_noise() {
    let seq = sequence(true);
    let cfg = KFusionConfig { volume_resolution: 128, ..Default::default() };
    let report = run_kfusion(&seq, &cfg, 12);
    assert!(report.tracked_fraction > 0.7);
    assert!(report.ate.max < 0.2, "max ATE {}", report.ate.max);
}

#[test]
fn kfusion_volume_resolution_trades_accuracy_for_speed() {
    // The paper's core trade-off, on the real pipeline: a smaller volume is
    // faster per frame; a bigger one at least as accurate.
    let seq = sequence(false);
    let small = run_kfusion(
        &seq,
        &KFusionConfig { volume_resolution: 48, ..Default::default() },
        10,
    );
    let large = run_kfusion(
        &seq,
        &KFusionConfig { volume_resolution: 160, ..Default::default() },
        10,
    );
    assert!(
        small.mean_frame_time < large.mean_frame_time,
        "small {} vs large {}",
        small.mean_frame_time,
        large.mean_frame_time
    );
    assert!(
        large.ate.max <= small.ate.max * 1.5,
        "large-volume accuracy should not collapse: {} vs {}",
        large.ate.max,
        small.ate.max
    );
}

#[test]
fn kfusion_compute_size_ratio_speeds_up_preprocessing() {
    let seq = sequence(false);
    let full = run_kfusion(
        &seq,
        &KFusionConfig { volume_resolution: 64, compute_size_ratio: 1, ..Default::default() },
        6,
    );
    let quarter = run_kfusion(
        &seq,
        &KFusionConfig { volume_resolution: 64, compute_size_ratio: 2, ..Default::default() },
        6,
    );
    // Tracking/preprocess work drops 4x; total time must drop measurably.
    assert!(
        quarter.mean_frame_time < full.mean_frame_time,
        "csr2 {} vs csr1 {}",
        quarter.mean_frame_time,
        full.mean_frame_time
    );
}

#[test]
fn elasticfusion_runs_and_stays_on_track() {
    let seq = sequence(false);
    let cfg = elasticfusion::EFusionConfig::default();
    let report = run_elasticfusion(&seq, &cfg, 12);
    assert!(report.tracked_fraction > 0.7, "tracked {}", report.tracked_fraction);
    assert!(report.ate.max < 0.15, "max ATE {}", report.ate.max);
}

#[test]
fn elasticfusion_depth_cutoff_effect_on_native_pipeline() {
    let seq = sequence(false);
    let near = run_elasticfusion(
        &seq,
        &elasticfusion::EFusionConfig { depth_cutoff: 1.5, ..Default::default() },
        8,
    );
    let far = run_elasticfusion(
        &seq,
        &elasticfusion::EFusionConfig { depth_cutoff: 8.0, ..Default::default() },
        8,
    );
    // A starved model (1.5 m cutoff in a 6 m room) must not track better
    // than the generous one.
    assert!(
        far.ate.max <= near.ate.max * 1.25,
        "far {} vs near {}",
        far.ate.max,
        near.ate.max
    );
}

#[test]
fn ate_metric_consistency_between_pipelines() {
    // Both pipelines report ATE through the same metric; ground truth
    // trajectories are identical, so a perfect tracker would give 0 for
    // both. Check both stay in a sane band on the same segment.
    let seq = sequence(false);
    let kf = run_kfusion(
        &seq,
        &KFusionConfig { volume_resolution: 128, ..Default::default() },
        10,
    );
    let ef = run_elasticfusion(&seq, &elasticfusion::EFusionConfig::default(), 10);
    for report in [&kf, &ef] {
        assert!(report.ate.mean >= 0.0);
        assert!(report.ate.rmse >= report.ate.mean * 0.99);
        assert!(report.ate.max >= report.ate.rmse * 0.99);
        assert_eq!(report.ate.frames, 10);
    }
}
