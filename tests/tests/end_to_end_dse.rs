//! End-to-end design-space-exploration tests across crates: HyperMapper +
//! spaces + device models, exercising the whole Fig. 3/4 machinery at
//! reduced scale.

use hypermapper::{hypervolume_2d, CachedEvaluator, Evaluator, HyperMapper, OptimizerConfig};
use randforest::ForestConfig;
use slambench::spaces::{elasticfusion_default_config, kfusion_default_config};
use slambench::{
    elasticfusion_space, kfusion_space, SimulatedEFusionEvaluator, SimulatedKFusionEvaluator,
    ACCURACY_LIMIT_M,
};

fn quick_config(seed: u64) -> OptimizerConfig {
    OptimizerConfig {
        random_samples: 250,
        max_iterations: 3,
        max_evals_per_iteration: 100,
        pool_size: 15_000,
        forest: ForestConfig { n_trees: 40, ..Default::default() },
        seed,
        ..Default::default()
    }
}

#[test]
fn kfusion_dse_beats_default_configuration() {
    let space = kfusion_space();
    let evaluator = SimulatedKFusionEvaluator::new(device_models::odroid_xu3());
    let default_obj = evaluator.evaluate(&kfusion_default_config(&space));

    let result = HyperMapper::new(space, quick_config(1)).run(&evaluator);
    // The exploration must find a valid configuration faster than default.
    let best_valid = result
        .samples
        .iter()
        .filter(|s| s.objectives[1] < ACCURACY_LIMIT_M)
        .map(|s| s.objectives[0])
        .fold(f64::INFINITY, f64::min);
    assert!(
        best_valid < default_obj[0] * 0.5,
        "best valid {best_valid} vs default {}",
        default_obj[0]
    );
}

#[test]
fn active_learning_improves_over_random_at_equal_budget() {
    let space = kfusion_space();
    let evaluator = SimulatedKFusionEvaluator::new(device_models::odroid_xu3());

    // Active learning: 250 random + up to 300 AL evaluations.
    let al = HyperMapper::new(space.clone(), quick_config(7)).run(&evaluator);
    let al_budget = al.samples.len();

    // Random-only at the same total budget.
    let random = HyperMapper::new(
        space,
        OptimizerConfig { random_samples: al_budget, ..quick_config(7) },
    )
    .run_random_only(&evaluator);

    let reference = (0.8, 0.4);
    let al_pts: Vec<(f64, f64)> = al.samples.iter().map(|s| (s.objectives[0], s.objectives[1])).collect();
    let rnd_pts: Vec<(f64, f64)> =
        random.samples.iter().map(|s| (s.objectives[0], s.objectives[1])).collect();
    let hv_al = hypervolume_2d(&al_pts, reference);
    let hv_rnd = hypervolume_2d(&rnd_pts, reference);
    assert!(
        hv_al >= hv_rnd * 0.98,
        "active learning hypervolume {hv_al} clearly worse than random {hv_rnd}"
    );
}

#[test]
fn ef_dse_finds_faster_and_more_accurate_than_default() {
    // The qualitative claim of Table I: points exist that beat the default
    // in *both* objectives.
    let space = elasticfusion_space();
    let evaluator = SimulatedEFusionEvaluator::new(device_models::gtx780ti());
    let default_obj = evaluator.evaluate(&elasticfusion_default_config(&space));

    let result = HyperMapper::new(space, quick_config(42)).run(&evaluator);
    let dominating = result.samples.iter().any(|s| {
        s.objectives[0] < default_obj[0] && s.objectives[1] < default_obj[1]
    });
    assert!(dominating, "no configuration dominates the default");

    // And a ~2x accuracy improvement exists somewhere in the explored set.
    let best_ate = result
        .samples
        .iter()
        .map(|s| s.objectives[1])
        .fold(f64::INFINITY, f64::min);
    assert!(
        best_ate < default_obj[1] * 0.65,
        "best ATE {best_ate} vs default {}",
        default_obj[1]
    );
}

#[test]
fn exploration_never_reevaluates_and_is_reproducible() {
    let space = kfusion_space();
    let inner = SimulatedKFusionEvaluator::new(device_models::asus_t200ta());
    let cached = CachedEvaluator::new(&inner);
    let r1 = HyperMapper::new(space.clone(), quick_config(9)).run(&cached);
    assert_eq!(cached.distinct_evaluations(), r1.samples.len());

    let r2 = HyperMapper::new(space, quick_config(9)).run(&inner);
    assert_eq!(r1.samples.len(), r2.samples.len());
    for (a, b) in r1.samples.iter().zip(&r2.samples) {
        assert_eq!(a.config, b.config);
        assert_eq!(a.objectives, b.objectives);
    }
}

#[test]
fn odroid_and_asus_prefer_similar_configs() {
    // The zero-shot transfer premise (§IV-D / [43]): runtimes on the two
    // embedded platforms correlate strongly across configurations.
    let space = kfusion_space();
    let odroid = SimulatedKFusionEvaluator::new(device_models::odroid_xu3());
    let asus = SimulatedKFusionEvaluator::new(device_models::asus_t200ta());
    let mut t_odroid = Vec::new();
    let mut t_asus = Vec::new();
    for i in (0..space.size()).step_by(13_337) {
        let c = space.config_at(i);
        t_odroid.push(odroid.evaluate(&c)[0]);
        t_asus.push(asus.evaluate(&c)[0]);
    }
    let r = hypermapper::pearson(&t_odroid, &t_asus);
    let rho = hypermapper::spearman(&t_odroid, &t_asus);
    assert!(r > 0.9, "Pearson {r}");
    assert!(rho > 0.9, "Spearman {rho}");
}
