//! Cross-crate integration of the parallel evaluation stack: worker threads
//! racing on a cold shared frame cache must never duplicate renders, a
//! throughput-mode batch fanned across workers must be deterministic, and
//! the predicted-front survivors re-measured serially in timing mode must
//! keep the exploration's accuracy numbers while swapping the runtime
//! metric for a dedicated wall-clock measurement.

use hypermapper::{
    sample_distinct, Configuration, Evaluator, HyperMapper, OptimizerConfig,
    ParallelBatchEvaluator,
};
use icl_nuim_synth::{NoiseModel, SequenceConfig, TrajectoryKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use slambench::{kfusion_space, remeasure_front, MeasurementMode, NativeKFusionEvaluator};
use std::collections::HashSet;

fn sequence_config(n_frames: usize) -> SequenceConfig {
    SequenceConfig {
        width: 48,
        height: 36,
        n_frames,
        trajectory: TrajectoryKind::LivingRoomLoop,
        noise: NoiseModel::none(),
        seed: 1,
    }
}

fn distinct_configs(n: usize, seed: u64) -> Vec<Configuration> {
    let space = kfusion_space();
    let mut rng = StdRng::seed_from_u64(seed);
    sample_distinct(&space, n, &HashSet::new(), &mut rng).unwrap()
}

/// Workers racing on a cold cache: the per-frame once-cells must keep the
/// render count at (most) one render per frame, and the fanned-out batch
/// must be bit-identical to a serial run of the same configurations.
#[test]
fn racing_workers_share_one_frame_cache() {
    let n_frames = 10;
    let configs = distinct_configs(6, 42);

    let parallel_eval =
        NativeKFusionEvaluator::with_mode(sequence_config(n_frames), n_frames, MeasurementMode::Throughput);
    assert_eq!(parallel_eval.sequence().render_count(), 0, "cache must start cold");
    let parallel = ParallelBatchEvaluator::with_workers(&parallel_eval, 4)
        .try_evaluate_batch(&configs);
    assert!(
        parallel_eval.sequence().render_count() <= n_frames,
        "racing workers duplicated renders: {} > {n_frames}",
        parallel_eval.sequence().render_count()
    );

    // Throughput-mode objectives are pure work proxies (never the clock),
    // so a fresh serial evaluator must reproduce the batch exactly.
    let serial_eval =
        NativeKFusionEvaluator::with_mode(sequence_config(n_frames), n_frames, MeasurementMode::Throughput);
    for (i, (par, config)) in parallel.iter().zip(&configs).enumerate() {
        let serial = serial_eval.try_evaluate(config);
        match (par, &serial) {
            (Ok(a), Ok(b)) => {
                let bits_a: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
                let bits_b: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
                assert_eq!(bits_a, bits_b, "config {i}: objectives diverged");
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "config {i}: errors diverged"),
            _ => panic!("config {i}: outcome kind diverged: {par:?} vs {serial:?}"),
        }
    }
}

/// End-to-end timing isolation: explore in throughput mode (work-proxy
/// runtime, parallel evaluation), then re-measure the front serially in
/// timing mode. Accuracy must carry over bit-for-bit; only the runtime
/// metric changes meaning.
#[test]
fn front_remeasured_serially_keeps_accuracy() {
    let n_frames = 8;
    let explore_eval =
        NativeKFusionEvaluator::with_mode(sequence_config(n_frames), n_frames, MeasurementMode::Throughput);
    assert!(
        explore_eval.objective_names()[0].contains("pseudo"),
        "throughput mode must advertise the proxy metric"
    );

    let cfg = OptimizerConfig {
        random_samples: 12,
        max_iterations: 1,
        pool_size: 150,
        seed: 3,
        eval_workers: 3,
        ..Default::default()
    };
    let result = HyperMapper::new(kfusion_space(), cfg)
        .try_run(&explore_eval)
        .expect("exploration succeeds");
    assert!(!result.pareto_indices.is_empty());

    let timing_eval = NativeKFusionEvaluator::new(sequence_config(n_frames), n_frames);
    assert_eq!(timing_eval.mode(), MeasurementMode::Timing);
    let entries = remeasure_front(&result, &timing_eval);
    assert_eq!(entries.len(), result.pareto_indices.len());

    for entry in &entries {
        let timed = entry
            .timing_objectives
            .as_ref()
            .expect("front survivor re-measures cleanly");
        // Accuracy (objective 1) is mode-independent and deterministic.
        assert_eq!(
            timed[1].to_bits(),
            entry.exploration_objectives[1].to_bits(),
            "ATE changed between exploration and timing re-measurement"
        );
        // Runtime is now a real wall-clock number, not the work proxy.
        assert!(timed[0].is_finite() && timed[0] > 0.0);
    }
}
