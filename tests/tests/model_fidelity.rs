//! Fidelity tests: the analytic device models (used for the paper-scale
//! experiments) must agree *qualitatively* with the real pipelines on
//! every parameter's effect direction. This is the contract that makes
//! the hardware substitution of DESIGN.md §3 legitimate.

use device_models::{ef_ate, ef_frame_time, kf_ate, kf_frame_time, EfParams, KfParams};
use icl_nuim_synth::{NoiseModel, SequenceConfig, SyntheticSequence, TrajectoryKind};
use kfusion::KFusionConfig;
use slambench::run_kfusion;

fn seq() -> SyntheticSequence {
    SyntheticSequence::new(SequenceConfig {
        width: 64,
        height: 48,
        n_frames: 260,
        trajectory: TrajectoryKind::LivingRoomLoop,
        noise: NoiseModel::none(),
        seed: 2,
    })
}

/// Both the model and the real pipeline must agree on the *sign* of a
/// parameter's runtime effect.
#[test]
fn volume_resolution_runtime_direction_matches() {
    let dev = device_models::odroid_xu3();
    let model_small = kf_frame_time(
        &KfParams { volume_resolution: 64.0, ..KfParams::default_config() },
        &dev,
    );
    let model_large = kf_frame_time(
        &KfParams { volume_resolution: 256.0, ..KfParams::default_config() },
        &dev,
    );
    assert!(model_small < model_large);

    let s = seq();
    let native_small =
        run_kfusion(&s, &KFusionConfig { volume_resolution: 48, ..Default::default() }, 5);
    let native_large =
        run_kfusion(&s, &KFusionConfig { volume_resolution: 160, ..Default::default() }, 5);
    assert!(native_small.mean_frame_time < native_large.mean_frame_time);
}

#[test]
fn tracking_rate_accuracy_direction_matches() {
    // Model: higher tracking rate (less frequent localization) hurts ATE.
    let base = kf_ate(&KfParams::default_config());
    let sparse = kf_ate(&KfParams { tracking_rate: 5.0, ..KfParams::default_config() });
    assert!(sparse > base);

    // Native: never tracking must be worse than tracking every frame.
    let s = seq();
    let every = run_kfusion(
        &s,
        &KFusionConfig { volume_resolution: 96, tracking_rate: 1, ..Default::default() },
        10,
    );
    let never = run_kfusion(
        &s,
        &KFusionConfig { volume_resolution: 96, tracking_rate: 100, ..Default::default() },
        10,
    );
    assert!(never.ate.max > every.ate.max);
}

#[test]
fn icp_threshold_trade_off_direction_matches() {
    // Model: looser threshold → faster, less accurate.
    let dev = device_models::odroid_xu3();
    let tight = KfParams { icp_threshold: 1e-5, ..KfParams::default_config() };
    let loose = KfParams { icp_threshold: 1e-1, ..KfParams::default_config() };
    assert!(kf_frame_time(&loose, &dev) < kf_frame_time(&tight, &dev));
    assert!(kf_ate(&loose) > kf_ate(&tight));
}

#[test]
fn mu_degeneracy_direction_matches() {
    // Model: µ far below the voxel size is degenerate at coarse volumes.
    let coarse_tiny_mu = kf_ate(&KfParams {
        volume_resolution: 64.0,
        mu: 0.0125,
        ..KfParams::default_config()
    });
    let coarse_ok_mu = kf_ate(&KfParams {
        volume_resolution: 64.0,
        mu: 0.25,
        ..KfParams::default_config()
    });
    assert!(coarse_tiny_mu > coarse_ok_mu);
}

#[test]
fn ef_flag_directions_are_consistent() {
    let dev = device_models::gtx780ti();
    let base = EfParams::default_config();
    // fast_odom: faster.
    let fast = EfParams { fast_odom: true, ..base };
    assert!(ef_frame_time(&fast, &dev) < ef_frame_time(&base, &dev));
    // open_loop: faster but less accurate.
    let open = EfParams { open_loop: true, ..base };
    assert!(ef_frame_time(&open, &dev) < ef_frame_time(&base, &dev));
    assert!(ef_ate(&open) > ef_ate(&base));
    // enabling SO3 (so3_disabled = false): more accurate.
    let so3 = EfParams { so3_disabled: false, ..base };
    assert!(ef_ate(&so3) < ef_ate(&base));
    // frame-to-frame RGB: drifts more.
    let ftf = EfParams { frame_to_frame_rgb: true, ..base };
    assert!(ef_ate(&ftf) > ef_ate(&base));
}

#[test]
fn paper_anchor_numbers() {
    // The calibration anchors from the paper, as loose bands.
    let odroid = device_models::odroid_xu3();
    let fps_default = 1.0 / kf_frame_time(&KfParams::default_config(), &odroid);
    assert!((4.0..9.0).contains(&fps_default), "ODROID default {fps_default} FPS (paper: 6)");

    let ate_default = kf_ate(&KfParams::default_config());
    assert!((0.03..0.06).contains(&ate_default), "KF default ATE {ate_default} (paper: 0.0447)");

    let gtx = device_models::gtx780ti();
    let ef_seq = ef_frame_time(&EfParams::default_config(), &gtx) * 400.0;
    assert!((17.0..28.0).contains(&ef_seq), "EF default {ef_seq} s (paper: 22.2)");

    let ef_err = ef_ate(&EfParams::default_config());
    assert!((0.045..0.07).contains(&ef_err), "EF default ATE {ef_err} (paper: 0.0558)");

    // Table I best-accuracy row.
    let best = EfParams {
        icp_weight: 1.0,
        depth_cutoff: 10.0,
        confidence: 4.0,
        so3_disabled: false,
        open_loop: false,
        relocalisation: true,
        fast_odom: true,
        frame_to_frame_rgb: false,
    };
    let best_err = ef_ate(&best);
    assert!((0.02..0.035).contains(&best_err), "EF best ATE {best_err} (paper: 0.0269)");
}

#[test]
fn crowd_speedups_match_paper_band() {
    // Transplanting a Pareto-ish tuned config: speedups roughly 2–13x.
    let tuned = KfParams {
        volume_resolution: 64.0,
        mu: 0.2,
        compute_size_ratio: 4.0,
        tracking_rate: 2.0,
        icp_threshold: 1e-4,
        integration_rate: 5.0,
        pyramid: [4.0, 3.0, 2.0],
    };
    let default = KfParams::default_config();
    let mut speedups: Vec<f64> = device_models::crowd_devices()
        .iter()
        .map(|d| kf_frame_time(&default, d) / kf_frame_time(&tuned, d))
        .collect();
    speedups.sort_by(|a, b| a.total_cmp(b));
    assert!(speedups[0] > 1.5, "min {}", speedups[0]);
    assert!(*speedups.last().unwrap() > 6.0, "max {}", speedups.last().unwrap());
    assert!(*speedups.last().unwrap() < 25.0);
}
