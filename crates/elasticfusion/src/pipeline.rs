//! The ElasticFusion per-frame pipeline.

use crate::config::EFusionConfig;
use crate::ferns::FernDatabase;
use crate::odometry::{estimate, OdometryInputs, OdometryParams};
use crate::surfel::SurfelMap;
use icl_nuim_synth::{DepthImage, Frame};
use slam_geometry::{CameraIntrinsics, SE3};
use hm_timing::Stopwatch;

/// Per-frame outcome and timing.
#[derive(Debug, Clone)]
pub struct EFrameStats {
    /// Estimated camera-to-world pose after this frame.
    pub pose: SE3,
    /// Whether odometry converged.
    pub tracked: bool,
    /// Final odometry RMS residual (0 when not tracked).
    pub rms: f32,
    /// Geometric inlier fraction of the odometry solve.
    pub inlier_fraction: f32,
    /// Surfels in the map after fusion.
    pub map_size: usize,
    /// Whether a local loop closure was applied this frame.
    pub local_loop: bool,
    /// Whether a fern relocalisation was applied this frame.
    pub relocalised: bool,
    /// Wall-clock seconds: odometry.
    pub t_tracking: f64,
    /// Wall-clock seconds: fusion + map maintenance.
    pub t_fusion: f64,
    /// Wall-clock seconds: loop closure machinery (prediction of the
    /// inactive model, fern encoding, corrections).
    pub t_loops: f64,
}

impl EFrameStats {
    /// Total frame time in seconds.
    pub fn total_time(&self) -> f64 {
        self.t_tracking + self.t_fusion + self.t_loops
    }
}

/// A running ElasticFusion reconstruction.
pub struct ElasticFusion {
    config: EFusionConfig,
    k: CameraIntrinsics,
    map: SurfelMap,
    ferns: FernDatabase,
    pose: SE3,
    frame_count: u32,
    trajectory: Vec<SE3>,
    /// Intensity of the previous frame (for frame-to-frame RGB mode).
    prev_intensity: Option<Vec<f32>>,
    /// Consecutive tracking failures (drives relocalisation).
    lost_frames: usize,
    /// Number of local loop closures applied.
    pub local_loops: usize,
    /// Number of relocalisations applied.
    pub relocalisations: usize,
}

/// Residual threshold for accepting a local loop-closure registration.
const LOOP_RMS_MAX: f32 = 0.01;
/// Minimum inactive-model coverage (pixels) to attempt a local loop.
const LOOP_MIN_COVERAGE: usize = 600;
/// Frames lost in a row before a relocalisation attempt.
const RELOC_AFTER: usize = 3;

impl ElasticFusion {
    /// Create a pipeline; the first frame initializes the map at
    /// `initial_pose`.
    ///
    /// # Panics
    /// If the configuration fails validation.
    pub fn new(config: EFusionConfig, k: CameraIntrinsics, initial_pose: SE3) -> Self {
        // lint: allow(no-unaudited-panic): documented constructor contract; callers pre-validate via EFusionConfig::validate
        config.validate().expect("invalid ElasticFusion configuration");
        ElasticFusion {
            config,
            k,
            map: SurfelMap::new(),
            ferns: FernDatabase::new(256, 0x5EED),
            pose: initial_pose,
            frame_count: 0,
            trajectory: Vec::new(),
            prev_intensity: None,
            lost_frames: 0,
            local_loops: 0,
            relocalisations: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &EFusionConfig {
        &self.config
    }

    /// Current pose estimate.
    pub fn pose(&self) -> SE3 {
        self.pose
    }

    /// Estimated pose after each processed frame.
    pub fn trajectory(&self) -> &[SE3] {
        &self.trajectory
    }

    /// The surfel map.
    pub fn map(&self) -> &SurfelMap {
        &self.map
    }

    /// Apply the depth cutoff to a raw depth image.
    fn cutoff(&self, depth: &DepthImage) -> DepthImage {
        let mut d = depth.clone();
        for v in &mut d.data {
            if *v > self.config.depth_cutoff {
                *v = 0.0;
            }
        }
        d
    }

    /// Process one RGB-D frame.
    pub fn process(&mut self, frame: &Frame) -> EFrameStats {
        let time = self.frame_count;
        self.frame_count += 1;
        let depth = self.cutoff(&frame.depth);
        let conf = self.config.confidence_threshold;
        let window = self.config.time_window;

        // ---- Tracking. ----
        // Stage timings feed objectives only under MeasurementMode::Timing
        // (DESIGN §9); the model path ignores them. The clock itself comes
        // from the audited `hm-timing` module.
        let t0 = Stopwatch::start();
        let mut tracked = false;
        let mut relocalised = false;
        let mut rms = 0.0f32;
        let mut inlier_fraction = 0.0f32;
        if time > 0 {
            // Predict the active model from the previous pose.
            let active_pred = self.map.predict(&self.k, &self.pose, |s| {
                s.confidence >= conf && time.saturating_sub(s.last_seen) <= window
            });
            // Fall back to the raw (unstable) model while the stable model
            // does not cover enough of the view (early frames, new areas).
            let pred = if active_pred.coverage() * 3 > self.k.pixels() {
                active_pred
            } else {
                self.map.predict(&self.k, &self.pose, |s| {
                    time.saturating_sub(s.last_seen) <= window
                })
            };
            let ref_intensity = if self.config.frame_to_frame_rgb {
                self.prev_intensity.clone().unwrap_or_else(|| pred.intensity())
            } else {
                pred.intensity()
            };
            let params = OdometryParams {
                icp_rgb_weight: self.config.icp_rgb_weight,
                depth_cutoff: self.config.depth_cutoff,
                fast_odom: self.config.fast_odom,
                so3_prealign: !self.config.so3_disabled,
                iterations: [10, 5, 4],
            };
            let inputs = OdometryInputs {
                depth: &depth,
                rgb: &frame.rgb,
                prediction: &pred,
                ref_pose: &self.pose,
                ref_intensity: &ref_intensity,
                k: &self.k,
            };
            let result = estimate(&inputs, &self.pose, &params);
            tracked = result.tracked;
            rms = result.rms;
            inlier_fraction = result.inlier_fraction;
            if result.tracked {
                self.pose = result.pose;
                self.lost_frames = 0;
            } else {
                self.lost_frames += 1;
            }
        }
        let t_tracking = t0.elapsed_secs();

        // ---- Loop closure & relocalisation. ----
        let t1 = Stopwatch::start();
        let mut local_loop = false;
        if time > 0 {
            if !self.config.open_loop && tracked {
                local_loop = self.try_local_loop(&depth, time);
            }
            if self.config.relocalisation && self.lost_frames >= RELOC_AFTER {
                relocalised = self.try_relocalise(frame, &depth);
            }
        }
        // Offer this frame to the fern database (when tracking is healthy).
        if tracked || time == 0 {
            self.ferns.try_add(&frame.rgb, &depth, self.pose, time as usize);
        }
        let t_loops = t1.elapsed_secs();

        // ---- Fusion + maintenance. ----
        let t2 = Stopwatch::start();
        if tracked || time == 0 {
            let assoc = self.map.predict(&self.k, &self.pose, |s| {
                time.saturating_sub(s.last_seen) <= window
            });
            self.map
                .fuse(&depth, &frame.rgb, &self.k, &self.pose, &assoc, self.config.depth_cutoff, time);
        }
        // Cull stale unstable surfels periodically.
        if time % 25 == 24 {
            self.map.cleanup(time, conf.min(2.0), window * 2);
        }
        let t_fusion = t2.elapsed_secs();

        self.prev_intensity = Some(frame.rgb.intensity());
        self.trajectory.push(self.pose);
        EFrameStats {
            pose: self.pose,
            tracked,
            rms,
            inlier_fraction,
            map_size: self.map.len(),
            local_loop,
            relocalised,
            t_tracking,
            t_fusion,
            t_loops,
        }
    }

    /// Attempt a local loop closure: register the current depth against the
    /// *inactive* model (surfels unseen for > time_window). On success,
    /// rigidly correct the pose and recent surfels toward the old model.
    fn try_local_loop(&mut self, depth: &DepthImage, time: u32) -> bool {
        let conf = self.config.confidence_threshold;
        let window = self.config.time_window;
        let inactive = self.map.predict(&self.k, &self.pose, |s| {
            s.confidence >= conf && time.saturating_sub(s.last_seen) > window
        });
        if inactive.coverage() < LOOP_MIN_COVERAGE {
            return false;
        }
        // Register the current frame against the inactive model.
        let params = OdometryParams {
            icp_rgb_weight: self.config.icp_rgb_weight.max(1.0),
            depth_cutoff: self.config.depth_cutoff,
            fast_odom: true, // single level is enough for a refinement
            so3_prealign: false,
            iterations: [6, 0, 0],
        };
        let ref_intensity = inactive.intensity();
        // A dummy RGB for the current frame is not available here; reuse
        // geometry-dominant registration by passing the inactive colors as
        // both sides' intensity would zero the photometric signal, so use
        // geometric rows only via a large ICP weight and the prediction
        // intensity (brightness constancy between model renders).
        let rgb_stub = icl_nuim_synth::RgbImage {
            width: inactive.width,
            height: inactive.height,
            data: inactive.colors.clone(),
        };
        let inputs = OdometryInputs {
            depth,
            rgb: &rgb_stub,
            prediction: &inactive,
            ref_pose: &self.pose,
            ref_intensity: &ref_intensity,
            k: &self.k,
        };
        let reg = estimate(&inputs, &self.pose, &params);
        if !reg.tracked || reg.rms > LOOP_RMS_MAX {
            return false;
        }
        let correction = reg.pose.compose(&self.pose.inverse());
        if correction.translation_dist(&SE3::IDENTITY) > 0.5 {
            return false; // implausibly large jump: reject
        }
        // Apply: move the camera and the *recent* (active) part of the map
        // onto the old (inactive, better-anchored) geometry.
        self.pose = reg.pose;
        let since = time.saturating_sub(self.config.time_window);
        self.map.apply_correction(&correction, since);
        self.local_loops += 1;
        true
    }

    /// Attempt fern relocalisation: find the most similar keyframe and
    /// restart tracking from its pose.
    fn try_relocalise(&mut self, frame: &Frame, depth: &DepthImage) -> bool {
        let code = self.ferns.encode(&frame.rgb, depth);
        let Some((idx, dissim)) = self.ferns.best_match(&code) else {
            return false;
        };
        if dissim > 0.3 {
            return false;
        }
        self.pose = self.ferns.keyframes()[idx].pose;
        self.lost_frames = 0;
        self.relocalisations += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icl_nuim_synth::{NoiseModel, SequenceConfig, SyntheticSequence, TrajectoryKind};

    fn sequence(n: usize) -> SyntheticSequence {
        SyntheticSequence::new(SequenceConfig {
            width: 64,
            height: 48,
            n_frames: n,
            trajectory: TrajectoryKind::LivingRoomLoop,
            noise: NoiseModel::none(),
            seed: 0,
        })
    }

    #[test]
    fn first_frame_builds_map() {
        let seq = sequence(1);
        let mut ef = ElasticFusion::new(EFusionConfig::default(), seq.intrinsics(), seq.gt_pose(0));
        let stats = ef.process(&seq.frame(0));
        assert!(stats.map_size > 500);
        assert!(!stats.tracked); // nothing to track against yet
        assert_eq!(ef.trajectory().len(), 1);
    }

    #[test]
    fn tracks_over_a_short_segment() {
        let seq = sequence(200);
        let mut ef = ElasticFusion::new(EFusionConfig::default(), seq.intrinsics(), seq.gt_pose(0));
        for i in 0..10 {
            ef.process(&seq.frame(i));
        }
        let err = ef.pose().translation_dist(&seq.gt_pose(9));
        assert!(err < 0.08, "drift {err}");
    }

    #[test]
    fn depth_cutoff_shrinks_map() {
        let seq = sequence(1);
        let mut big = ElasticFusion::new(
            EFusionConfig { depth_cutoff: 8.0, ..Default::default() },
            seq.intrinsics(),
            seq.gt_pose(0),
        );
        let mut small = ElasticFusion::new(
            EFusionConfig { depth_cutoff: 1.5, ..Default::default() },
            seq.intrinsics(),
            seq.gt_pose(0),
        );
        let f = seq.frame(0);
        let sb = big.process(&f);
        let ss = small.process(&f);
        assert!(ss.map_size < sb.map_size, "{} vs {}", ss.map_size, sb.map_size);
    }

    #[test]
    fn fast_odom_is_faster_or_equal() {
        let seq = sequence(200);
        let mut normal = ElasticFusion::new(EFusionConfig::default(), seq.intrinsics(), seq.gt_pose(0));
        let mut fast = ElasticFusion::new(
            EFusionConfig { fast_odom: true, ..Default::default() },
            seq.intrinsics(),
            seq.gt_pose(0),
        );
        let mut t_normal = 0.0;
        let mut t_fast = 0.0;
        for i in 0..6 {
            let f = seq.frame(i);
            t_normal += normal.process(&f).t_tracking;
            t_fast += fast.process(&f).t_tracking;
        }
        // Allow slack: timing noise on tiny images.
        assert!(t_fast < t_normal * 1.5, "fast {t_fast} vs normal {t_normal}");
    }

    #[test]
    fn open_loop_never_closes_loops() {
        let seq = sequence(200);
        let mut ef = ElasticFusion::new(
            EFusionConfig { open_loop: true, ..Default::default() },
            seq.intrinsics(),
            seq.gt_pose(0),
        );
        for i in 0..8 {
            let s = ef.process(&seq.frame(i));
            assert!(!s.local_loop);
        }
        assert_eq!(ef.local_loops, 0);
    }

    #[test]
    fn fern_keyframes_accumulate() {
        let seq = sequence(40);
        let mut ef = ElasticFusion::new(EFusionConfig::default(), seq.intrinsics(), seq.gt_pose(0));
        for i in (0..40).step_by(5) {
            ef.process(&seq.frame(i));
        }
        assert!(ef.ferns.len() >= 1);
    }

    #[test]
    fn trajectory_records_every_frame() {
        let seq = sequence(200);
        let mut ef = ElasticFusion::new(EFusionConfig::default(), seq.intrinsics(), seq.gt_pose(0));
        for i in 0..5 {
            ef.process(&seq.frame(i));
        }
        assert_eq!(ef.trajectory().len(), 5);
    }

    #[test]
    fn timings_populated() {
        let seq = sequence(200);
        let mut ef = ElasticFusion::new(EFusionConfig::default(), seq.intrinsics(), seq.gt_pose(0));
        ef.process(&seq.frame(0));
        let s = ef.process(&seq.frame(1));
        assert!(s.t_tracking > 0.0);
        assert!(s.t_fusion > 0.0);
        assert!(s.total_time() >= s.t_tracking + s.t_fusion);
    }
}
