//! Fern-based keyframe encoding for relocalisation and global loop closure.
//!
//! Following Glocker et al. (and its use in ElasticFusion), each keyframe
//! is encoded by a set of random binary tests ("ferns") on downsampled
//! RGB-D values; frames whose codes are close (small block-wise Hamming
//! distance) are likely the same place.

use icl_nuim_synth::{DepthImage, RgbImage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slam_geometry::SE3;

/// One binary test: compare channel `channel` at pixel `(u, v)` (in a
/// normalized 0..1 image coordinate) against `threshold`.
#[derive(Debug, Clone, Copy)]
struct Fern {
    u: f32,
    v: f32,
    /// 0..2 = R,G,B; 3 = depth.
    channel: u8,
    threshold: f32,
}

/// A stored keyframe: its fern code and camera pose.
#[derive(Debug, Clone)]
pub struct Keyframe {
    /// Packed fern responses, one bit per fern.
    pub code: Vec<u64>,
    /// Camera-to-world pose at capture time.
    pub pose: SE3,
    /// Frame index at capture time.
    pub frame: usize,
}

/// A database of fern-encoded keyframes.
pub struct FernDatabase {
    ferns: Vec<Fern>,
    keyframes: Vec<Keyframe>,
    /// Minimum (best) dissimilarity required before a new keyframe is
    /// admitted — keeps the database diverse.
    novelty_threshold: f32,
}

impl FernDatabase {
    /// Create a database of `n_ferns` random tests (deterministic in
    /// `seed`).
    pub fn new(n_ferns: usize, seed: u64) -> Self {
        assert!(n_ferns >= 8, "need at least 8 ferns");
        let mut rng = StdRng::seed_from_u64(seed);
        let ferns = (0..n_ferns)
            .map(|_| Fern {
                u: rng.gen_range(0.05..0.95),
                v: rng.gen_range(0.05..0.95),
                channel: rng.gen_range(0..4),
                threshold: rng.gen_range(0.15..0.85),
            })
            .collect();
        FernDatabase { ferns, keyframes: Vec::new(), novelty_threshold: 0.08 }
    }

    /// Number of stored keyframes.
    pub fn len(&self) -> usize {
        self.keyframes.len()
    }

    /// True when no keyframes are stored.
    pub fn is_empty(&self) -> bool {
        self.keyframes.is_empty()
    }

    /// Stored keyframes.
    pub fn keyframes(&self) -> &[Keyframe] {
        &self.keyframes
    }

    /// Encode an RGB-D frame into a fern code.
    pub fn encode(&self, rgb: &RgbImage, depth: &DepthImage) -> Vec<u64> {
        let mut code = vec![0u64; self.ferns.len().div_ceil(64)];
        for (i, f) in self.ferns.iter().enumerate() {
            let u = ((f.u * rgb.width as f32) as usize).min(rgb.width - 1);
            let v = ((f.v * rgb.height as f32) as usize).min(rgb.height - 1);
            let value = match f.channel {
                0 => rgb.at(u, v).x,
                1 => rgb.at(u, v).y,
                2 => rgb.at(u, v).z,
                _ => (depth.at(u, v) / 8.0).clamp(0.0, 1.0),
            };
            if value > f.threshold {
                code[i / 64] |= 1 << (i % 64);
            }
        }
        code
    }

    /// Normalized Hamming dissimilarity between two codes (0 = identical,
    /// 1 = all ferns disagree).
    pub fn dissimilarity(&self, a: &[u64], b: &[u64]) -> f32 {
        let bits: u32 = a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum();
        bits as f32 / self.ferns.len() as f32
    }

    /// Find the stored keyframe most similar to `code`; returns
    /// `(index, dissimilarity)`.
    pub fn best_match(&self, code: &[u64]) -> Option<(usize, f32)> {
        self.keyframes
            .iter()
            .enumerate()
            .map(|(i, kf)| (i, self.dissimilarity(code, &kf.code)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Offer a frame as a new keyframe: admitted when sufficiently novel
    /// (or the database is empty). Returns whether it was added.
    pub fn try_add(&mut self, rgb: &RgbImage, depth: &DepthImage, pose: SE3, frame: usize) -> bool {
        let code = self.encode(rgb, depth);
        let novel = match self.best_match(&code) {
            None => true,
            Some((_, d)) => d > self.novelty_threshold,
        };
        if novel {
            self.keyframes.push(Keyframe { code, pose, frame });
        }
        novel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icl_nuim_synth::{living_room, look_at, render_rgbd};
    use slam_geometry::{CameraIntrinsics, Vec3};

    fn cam() -> CameraIntrinsics {
        CameraIntrinsics::kinect_like(64, 48)
    }

    fn view(eye: Vec3, target: Vec3) -> (RgbImage, DepthImage, SE3) {
        let pose = look_at(eye, target);
        let (d, c) = render_rgbd(&living_room(), &cam(), &pose);
        (c, d, pose)
    }

    #[test]
    fn identical_frames_have_zero_dissimilarity() {
        let db = FernDatabase::new(128, 1);
        let (rgb, depth, _) = view(Vec3::ZERO, Vec3::new(0.0, 0.5, 2.9));
        let a = db.encode(&rgb, &depth);
        let b = db.encode(&rgb, &depth);
        assert_eq!(db.dissimilarity(&a, &b), 0.0);
    }

    #[test]
    fn nearby_views_more_similar_than_opposite_views() {
        let db = FernDatabase::new(256, 2);
        let (rgb_a, d_a, _) = view(Vec3::ZERO, Vec3::new(0.0, 0.5, 2.9));
        let (rgb_b, d_b, _) = view(Vec3::new(0.05, 0.0, 0.0), Vec3::new(0.05, 0.5, 2.9));
        let (rgb_c, d_c, _) = view(Vec3::ZERO, Vec3::new(0.3, 0.5, -2.9));
        let a = db.encode(&rgb_a, &d_a);
        let b = db.encode(&rgb_b, &d_b);
        let c = db.encode(&rgb_c, &d_c);
        assert!(db.dissimilarity(&a, &b) < db.dissimilarity(&a, &c));
    }

    #[test]
    fn novelty_gate_rejects_duplicates() {
        let mut db = FernDatabase::new(128, 3);
        let (rgb, depth, pose) = view(Vec3::ZERO, Vec3::new(0.0, 0.5, 2.9));
        assert!(db.try_add(&rgb, &depth, pose, 0));
        assert!(!db.try_add(&rgb, &depth, pose, 1)); // same view again
        assert_eq!(db.len(), 1);
        // A very different view is admitted.
        let (rgb2, d2, p2) = view(Vec3::new(0.2, 0.0, 0.3), Vec3::new(-0.3, 0.5, -2.9));
        assert!(db.try_add(&rgb2, &d2, p2, 2));
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn best_match_finds_the_right_keyframe() {
        let mut db = FernDatabase::new(256, 4);
        let (rgb_a, d_a, p_a) = view(Vec3::ZERO, Vec3::new(0.0, 0.5, 2.9));
        let (rgb_b, d_b, p_b) = view(Vec3::new(0.3, 0.0, 0.2), Vec3::new(0.3, 0.5, -2.9));
        db.try_add(&rgb_a, &d_a, p_a, 0);
        db.try_add(&rgb_b, &d_b, p_b, 1);
        // A query near view A matches keyframe 0.
        let (rgb_q, d_q, _) = view(Vec3::new(0.02, 0.0, 0.0), Vec3::new(0.0, 0.5, 2.9));
        let q = db.encode(&rgb_q, &d_q);
        let (idx, sim) = db.best_match(&q).unwrap();
        assert_eq!(idx, 0);
        assert!(sim < 0.2, "dissimilarity {sim}");
    }

    #[test]
    fn empty_database_has_no_match() {
        let db = FernDatabase::new(64, 5);
        assert!(db.best_match(&vec![0u64; 1]).is_none());
        assert!(db.is_empty());
    }

    #[test]
    fn deterministic_in_seed() {
        let db1 = FernDatabase::new(128, 9);
        let db2 = FernDatabase::new(128, 9);
        let (rgb, depth, _) = view(Vec3::ZERO, Vec3::new(0.5, 0.5, 2.9));
        assert_eq!(db1.encode(&rgb, &depth), db2.encode(&rgb, &depth));
    }
}
