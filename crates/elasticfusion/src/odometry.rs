//! Joint geometric (ICP) + photometric (RGB) odometry.

use crate::surfel::ModelPrediction;
use icl_nuim_synth::{DepthImage, RgbImage};
use rayon::prelude::*;
use slam_geometry::{solve::NormalEquations, CameraIntrinsics, Vec3, SE3};

/// Odometry controls derived from the ElasticFusion configuration.
#[derive(Debug, Clone)]
pub struct OdometryParams {
    /// Relative weight of geometric (ICP) rows vs. photometric (RGB) rows.
    pub icp_rgb_weight: f32,
    /// Depth beyond this is ignored.
    pub depth_cutoff: f32,
    /// Run only the finest pyramid level ("fast odometry").
    pub fast_odom: bool,
    /// Run the SO(3) rotation-only pre-alignment first.
    pub so3_prealign: bool,
    /// Iterations per level, finest first.
    pub iterations: [usize; 3],
}

impl Default for OdometryParams {
    fn default() -> Self {
        OdometryParams {
            icp_rgb_weight: 10.0,
            depth_cutoff: 3.0,
            fast_odom: false,
            so3_prealign: false,
            iterations: [10, 5, 4],
        }
    }
}

/// Result of one odometry solve.
#[derive(Debug, Clone)]
pub struct OdometryResult {
    /// Refined camera-to-world pose.
    pub pose: SE3,
    /// Whether the solve is trustworthy.
    pub tracked: bool,
    /// Final combined RMS residual.
    pub rms: f32,
    /// Fraction of pixels contributing geometric rows in the last
    /// iteration.
    pub inlier_fraction: f32,
    /// Total iterations executed (including SO(3) pre-alignment).
    pub iterations_run: usize,
}

/// An intensity image with finite-difference gradients, at one pyramid
/// level.
struct IntensityLevel {
    width: usize,
    height: usize,
    intensity: Vec<f32>,
    grad_x: Vec<f32>,
    grad_y: Vec<f32>,
    k: CameraIntrinsics,
}

impl IntensityLevel {
    fn new(intensity: Vec<f32>, width: usize, height: usize, k: CameraIntrinsics) -> Self {
        let mut grad_x = vec![0.0f32; width * height];
        let mut grad_y = vec![0.0f32; width * height];
        for v in 1..height - 1 {
            for u in 1..width - 1 {
                grad_x[v * width + u] =
                    0.5 * (intensity[v * width + u + 1] - intensity[v * width + u - 1]);
                grad_y[v * width + u] =
                    0.5 * (intensity[(v + 1) * width + u] - intensity[(v - 1) * width + u]);
            }
        }
        IntensityLevel { width, height, intensity, grad_x, grad_y, k }
    }

    /// Bilinear sample of the intensity; `None` out of bounds.
    fn sample(&self, x: f32, y: f32) -> Option<(f32, f32, f32)> {
        if x < 1.0 || y < 1.0 || x >= (self.width - 2) as f32 || y >= (self.height - 2) as f32 {
            return None;
        }
        let x0 = x.floor() as usize;
        let y0 = y.floor() as usize;
        let fx = x - x0 as f32;
        let fy = y - y0 as f32;
        let bilerp = |img: &[f32]| {
            let a = img[y0 * self.width + x0];
            let b = img[y0 * self.width + x0 + 1];
            let c = img[(y0 + 1) * self.width + x0];
            let d = img[(y0 + 1) * self.width + x0 + 1];
            a * (1.0 - fx) * (1.0 - fy) + b * fx * (1.0 - fy) + c * (1.0 - fx) * fy + d * fx * fy
        };
        Some((bilerp(&self.intensity), bilerp(&self.grad_x), bilerp(&self.grad_y)))
    }

    /// Halve resolution by 2×2 averaging.
    fn downsampled(&self) -> IntensityLevel {
        let w = (self.width / 2).max(1);
        let h = (self.height / 2).max(1);
        let mut intensity = vec![0.0f32; w * h];
        for y in 0..h {
            for x in 0..w {
                let mut s = 0.0;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let sx = (x * 2 + dx).min(self.width - 1);
                        let sy = (y * 2 + dy).min(self.height - 1);
                        s += self.intensity[sy * self.width + sx];
                    }
                }
                intensity[y * w + x] = s * 0.25;
            }
        }
        IntensityLevel::new(intensity, w, h, self.k.downscaled(2))
    }
}

/// Inputs captured once per tracked frame.
pub struct OdometryInputs<'a> {
    /// Current depth (already cutoff-filtered by the caller or not — the
    /// cutoff is applied here too).
    pub depth: &'a DepthImage,
    /// Current RGB.
    pub rgb: &'a RgbImage,
    /// Reference model prediction (world-frame points/normals/colors)
    /// rendered from `ref_pose`.
    pub prediction: &'a ModelPrediction,
    /// Pose the prediction was rendered from.
    pub ref_pose: &'a SE3,
    /// Reference intensity image for photometric rows (either the model
    /// prediction's intensity or the previous frame's RGB, per the
    /// frame-to-frame flag).
    pub ref_intensity: &'a [f32],
    /// Camera intrinsics (finest level).
    pub k: &'a CameraIntrinsics,
}

/// Estimate the camera pose of the current frame.
///
/// Geometric rows: projective point-to-plane against `prediction` (like
/// KinectFusion). Photometric rows: brightness constancy between the
/// current image warped by the pose and `ref_intensity`. The two blocks
/// are weighted `icp_rgb_weight : 1`.
pub fn estimate(inputs: &OdometryInputs<'_>, initial: &SE3, params: &OdometryParams) -> OdometryResult {
    let mut pose = *initial;
    let mut iterations_run = 0usize;

    // Build intensity pyramids for current and reference images.
    let cur0 = IntensityLevel::new(
        inputs.rgb.intensity(),
        inputs.rgb.width,
        inputs.rgb.height,
        *inputs.k,
    );
    let ref0 = IntensityLevel::new(
        inputs.ref_intensity.to_vec(),
        inputs.rgb.width,
        inputs.rgb.height,
        *inputs.k,
    );
    let mut cur_pyr = vec![cur0];
    let mut ref_pyr = vec![ref0];
    let n_levels = if params.fast_odom { 1 } else { 3 };
    for l in 1..n_levels {
        cur_pyr.push(cur_pyr[l - 1].downsampled());
        ref_pyr.push(ref_pyr[l - 1].downsampled());
    }

    // ---- SO(3) pre-alignment: rotation-only photometric warp at the
    // coarsest level (stabilizes fast rotations before the full solve). ----
    if params.so3_prealign && !params.fast_odom {
        let lvl = cur_pyr.len() - 1;
        for _ in 0..5 {
            let Some((twist, _, _)) = photometric_rotation_step(
                &cur_pyr[lvl],
                &ref_pyr[lvl],
                inputs.ref_pose,
                &pose,
            ) else {
                break;
            };
            pose = SE3::exp([0.0, 0.0, 0.0, twist[0], twist[1], twist[2]])
                .compose(&pose)
                .normalized();
            iterations_run += 1;
            if twist.iter().map(|t| t * t).sum::<f32>().sqrt() < 1e-5 {
                break;
            }
        }
    }

    // ---- Joint ICP + RGB, coarse to fine. ----
    let mut rms = f32::INFINITY;
    let mut inliers = 0.0f32;
    let depth_maps: Vec<DepthImage> = {
        // Depth pyramid by validity-aware halving.
        let mut v = vec![inputs.depth.clone()];
        for l in 1..n_levels {
            v.push(half_depth(&v[l - 1]));
        }
        v
    };

    for level in (0..n_levels).rev() {
        let iters = params.iterations.get(level).copied().unwrap_or(4);
        for _ in 0..iters {
            let Some((twist, level_rms, frac)) = joint_step(
                &depth_maps[level],
                &cur_pyr[level],
                &ref_pyr[level],
                inputs.prediction,
                inputs.ref_pose,
                inputs.k,
                &pose,
                params,
            ) else {
                break;
            };
            pose = SE3::exp(twist).compose(&pose).normalized();
            rms = level_rms;
            inliers = frac;
            iterations_run += 1;
            if twist.iter().map(|t| t * t).sum::<f32>().sqrt() < 1e-5 {
                break;
            }
        }
    }

    let tracked = rms.is_finite() && inliers > 0.05;
    OdometryResult {
        pose: if tracked { pose } else { *initial },
        tracked,
        rms: if rms.is_finite() { rms } else { 0.0 },
        inlier_fraction: inliers,
        iterations_run,
    }
}

/// Validity-aware 2× depth downsampling (reference pixel band 0.1 m).
fn half_depth(depth: &DepthImage) -> DepthImage {
    let w = (depth.width / 2).max(1);
    let h = (depth.height / 2).max(1);
    let mut data = vec![0.0f32; w * h];
    for y in 0..h {
        for x in 0..w {
            let r = depth.at((x * 2).min(depth.width - 1), (y * 2).min(depth.height - 1));
            if r <= 0.0 {
                continue;
            }
            let mut sum = 0.0;
            let mut n = 0;
            for dy in 0..2 {
                for dx in 0..2 {
                    let d = depth.at((x * 2 + dx).min(depth.width - 1), (y * 2 + dy).min(depth.height - 1));
                    if d > 0.0 && (d - r).abs() < 0.1 {
                        sum += d;
                        n += 1;
                    }
                }
            }
            data[y * w + x] = sum / n as f32;
        }
    }
    DepthImage { width: w, height: h, data }
}

/// One joint geometric+photometric Gauss–Newton step; returns
/// `(twist, rms, geometric inlier fraction)`.
#[allow(clippy::too_many_arguments)]
fn joint_step(
    depth: &DepthImage,
    cur: &IntensityLevel,
    reference: &IntensityLevel,
    prediction: &ModelPrediction,
    ref_pose: &SE3,
    fine_k: &CameraIntrinsics,
    pose: &SE3,
    params: &OdometryParams,
) -> Option<([f32; 6], f32, f32)> {
    let world_to_ref = ref_pose.inverse();
    let icp_w = params.icp_rgb_weight;
    // Photometric residuals are in intensity units (~0.05-0.3); geometric in
    // meters (~0.001-0.05). Scale RGB rows so "weight 1" is comparable.
    const RGB_SCALE: f32 = 0.1;

    let ne = (0..cur.height)
        .into_par_iter()
        .map(|v| {
            let mut acc = NormalEquations::<6>::default();
            let mut geo_rows = 0usize;
            let mut usable = 0usize;
            for u in 0..cur.width {
                let d = depth.at(u, v);
                if d <= 0.0 || d > params.depth_cutoff {
                    continue;
                }
                usable += 1;
                let p_cam = cur.k.backproject(u as f32, v as f32, d);
                let p_world = pose.transform_point(p_cam);

                // ---- Geometric row (point-to-plane vs. prediction). ----
                let p_ref = world_to_ref.transform_point(p_world);
                if let Some(uvf) = fine_k.project(p_ref) {
                    let (pu, pv) = (uvf.x.round(), uvf.y.round());
                    if pu >= 0.0
                        && pv >= 0.0
                        && (pu as usize) < prediction.width
                        && (pv as usize) < prediction.height
                    {
                        let (pu, pv) = (pu as usize, pv as usize);
                        if prediction.is_valid(pu, pv) {
                            let q = prediction.points[pv * prediction.width + pu];
                            let n = prediction.normals[pv * prediction.width + pu];
                            if (p_world - q).norm() < 0.1 && icp_w > 0.0 {
                                let r = n.dot(q - p_world);
                                // Gate implausible point-to-plane residuals
                                // (bad associations at edges).
                                if r.abs() < 0.05 {
                                    let c = p_world.cross(n);
                                    acc.add_row(
                                        &[n.x, n.y, n.z, c.x, c.y, c.z],
                                        r,
                                        icp_w,
                                    );
                                    geo_rows += 1;
                                }
                            }
                        }
                    }
                }

                // ---- Photometric row (brightness constancy). ----
                // Warp current pixel into the reference image.
                if let Some(uv_ref) = reference.k.project(world_to_ref.transform_point(p_world)) {
                    if let Some((i_ref, gx, gy)) = reference.sample(uv_ref.x, uv_ref.y) {
                        let i_cur = cur.intensity[v * cur.width + u];
                        let r = i_ref - i_cur;
                        // Chain rule: dI/dξ = ∇I · dπ/dp · dp/dξ, with p in
                        // the reference camera frame. Gate outliers
                        // (occlusions, splat-boundary artifacts).
                        let p_ref_cam = world_to_ref.transform_point(p_world);
                        if p_ref_cam.z > 0.1 && r.abs() < 0.2 {
                            let iz = 1.0 / p_ref_cam.z;
                            let fx = reference.k.fx;
                            let fy = reference.k.fy;
                            // Jacobian of projection wrt the world point,
                            // composed with world-frame twist.
                            let jx = Vec3::new(fx * iz, 0.0, -fx * p_ref_cam.x * iz * iz);
                            let jy = Vec3::new(0.0, fy * iz, -fy * p_ref_cam.y * iz * iz);
                            // dI/dp_ref via the projection Jacobian, then
                            // dp_ref/dp_world = R_w2r pulls it to the world
                            // frame; dp_world/dξ = [I, -p̂_world].
                            let grad_p_ref = jx * gx + jy * gy;
                            let grad_world = world_to_ref.r.transpose() * grad_p_ref;
                            let jv = grad_world;
                            let jw = p_world.cross(grad_world) * -1.0;
                            // r = I_ref(π(p(ξ))) − I_cur; dr/dξ = grad.
                            // Gauss–Newton on r − J·(−ξ)… keep signs:
                            // I_ref decreases as point moves along grad.
                            acc.add_row(
                                &[jv.x, jv.y, jv.z, -jw.x, -jw.y, -jw.z],
                                -r,
                                RGB_SCALE,
                            );
                        }
                    }
                }
            }
            (acc, geo_rows, usable)
        })
        .reduce(
            || (NormalEquations::<6>::default(), 0usize, 0usize),
            |(mut a, ga, ua), (b, gb, ub)| {
                a.merge(&b);
                (a, ga + gb, ua + ub)
            },
        );

    let (ne, geo_rows, usable) = ne;
    if ne.count < 40 {
        return None;
    }
    // Inlier fraction relative to pixels that *could* contribute (valid
    // depth within the cutoff), not the whole image.
    let total = usable.max(1);
    let twist = ne.solve(1e-6)?;
    Some((twist, ne.rms(), geo_rows as f32 / total as f32))
}

/// Rotation-only photometric step at one level; returns the 3-vector
/// rotation twist.
fn photometric_rotation_step(
    cur: &IntensityLevel,
    reference: &IntensityLevel,
    ref_pose: &SE3,
    pose: &SE3,
) -> Option<([f32; 3], f32, usize)> {
    let world_to_ref = ref_pose.inverse();
    let mut ne = NormalEquations::<3>::default();
    // Assume unit depth along each ray (pure-rotation approximation).
    for v in 1..cur.height - 1 {
        for u in 1..cur.width - 1 {
            let ray = cur.k.ray_dir(u as f32, v as f32).normalized() * 2.0;
            let p_world = pose.transform_point(ray);
            let p_ref = world_to_ref.transform_point(p_world);
            let Some(uv) = reference.k.project(p_ref) else { continue };
            let Some((i_ref, gx, gy)) = reference.sample(uv.x, uv.y) else { continue };
            let i_cur = cur.intensity[v * cur.width + u];
            let r = i_ref - i_cur;
            if p_ref.z <= 0.1 {
                continue;
            }
            let iz = 1.0 / p_ref.z;
            let jx = Vec3::new(reference.k.fx * iz, 0.0, -reference.k.fx * p_ref.x * iz * iz);
            let jy = Vec3::new(0.0, reference.k.fy * iz, -reference.k.fy * p_ref.y * iz * iz);
            let grad_world = world_to_ref.r.transpose() * (jx * gx + jy * gy);
            let jw = p_world.cross(grad_world) * -1.0;
            ne.add_row(&[-jw.x, -jw.y, -jw.z], -r, 1.0);
        }
    }
    if ne.count < 30 {
        return None;
    }
    let x = ne.solve(1e-5)?;
    Some((x, ne.rms(), ne.count))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surfel::SurfelMap;
    use icl_nuim_synth::{living_room, look_at, render_rgbd};
    use slam_geometry::Quat;

    fn cam() -> CameraIntrinsics {
        CameraIntrinsics::kinect_like(80, 60)
    }

    /// Build a surfel map from one RGB-D view and return everything needed
    /// to track a second view against it.
    fn setup(ref_pose: &SE3) -> (SurfelMap, ModelPrediction, Vec<f32>) {
        let scene = living_room();
        let (d, c) = render_rgbd(&scene, &cam(), ref_pose);
        let mut map = SurfelMap::new();
        let empty = map.predict(&cam(), ref_pose, |_| true);
        map.fuse(&d, &c, &cam(), ref_pose, &empty, 8.0, 0);
        let pred = map.predict(&cam(), ref_pose, |_| true);
        let intensity = pred.intensity();
        (map, pred, intensity)
    }

    fn result_for(offset: SE3, params: &OdometryParams) -> (OdometryResult, SE3, SE3) {
        let ref_pose = look_at(Vec3::new(0.0, -0.1, -0.3), Vec3::new(0.3, 0.4, 2.9));
        let true_pose = offset.compose(&ref_pose);
        let (_map, pred, ref_int) = setup(&ref_pose);
        let scene = living_room();
        let (d, c) = render_rgbd(&scene, &cam(), &true_pose);
        let inputs = OdometryInputs {
            depth: &d,
            rgb: &c,
            prediction: &pred,
            ref_pose: &ref_pose,
            ref_intensity: &ref_int,
            k: &cam(),
        };
        (estimate(&inputs, &ref_pose, params), true_pose, ref_pose)
    }

    #[test]
    fn recovers_small_translation() {
        let (res, true_pose, _) = result_for(
            SE3::from_translation(Vec3::new(0.02, -0.01, 0.015)),
            &OdometryParams::default(),
        );
        assert!(res.tracked);
        let err = res.pose.translation_dist(&true_pose);
        assert!(err < 0.015, "err {err}");
    }

    #[test]
    fn recovers_small_rotation() {
        let dq = Quat::from_axis_angle(Vec3::new(0.1, 1.0, 0.0), 0.02);
        let (res, true_pose, _) = result_for(
            SE3::from_quat_translation(dq, Vec3::ZERO),
            &OdometryParams::default(),
        );
        assert!(res.tracked);
        assert!(res.pose.rotation_dist(&true_pose) < 0.015);
    }

    #[test]
    fn perfect_init_stays_put() {
        // Splat-center geometry carries a few millimeters of bias, so the
        // converged pose is near-but-not-exactly the truth.
        let (res, true_pose, _) = result_for(SE3::IDENTITY, &OdometryParams::default());
        assert!(res.tracked);
        let err = res.pose.translation_dist(&true_pose);
        assert!(err < 0.015, "err {err}");
    }

    #[test]
    fn fast_odom_runs_fewer_iterations() {
        let offset = SE3::from_translation(Vec3::new(0.02, 0.0, 0.01));
        let (full, _, _) = result_for(offset, &OdometryParams::default());
        let (fast, _, _) = result_for(
            offset,
            &OdometryParams { fast_odom: true, ..Default::default() },
        );
        assert!(fast.iterations_run <= full.iterations_run);
    }

    #[test]
    fn icp_weight_zero_reports_failure_safely() {
        // icp_rgb_weight = 0 disables geometric rows entirely. Splat-render
        // photometry alone is not trustworthy, so the odometry must report
        // a tracking failure and leave the pose at the initial estimate
        // rather than return a wild solve.
        let offset = SE3::from_translation(Vec3::new(0.01, 0.0, 0.0));
        let (res, true_pose, ref_pose) = result_for(
            offset,
            &OdometryParams { icp_rgb_weight: 0.0, ..Default::default() },
        );
        assert!(!res.tracked);
        let after = res.pose.translation_dist(&true_pose);
        assert!((after - ref_pose.translation_dist(&true_pose)).abs() < 1e-6);
    }

    #[test]
    fn so3_prealign_helps_pure_rotation() {
        let dq = Quat::from_axis_angle(Vec3::Y, 0.05); // larger rotation
        let offset = SE3::from_quat_translation(dq, Vec3::ZERO);
        let (with, true_pose, _) = result_for(
            offset,
            &OdometryParams { so3_prealign: true, ..Default::default() },
        );
        assert!(with.tracked);
        assert!(with.pose.rotation_dist(&true_pose) < 0.03, "rot err {}", with.pose.rotation_dist(&true_pose));
    }

    #[test]
    fn reports_failure_without_data() {
        let ref_pose = look_at(Vec3::ZERO, Vec3::new(0.0, 0.5, 2.9));
        let (_, pred, ref_int) = setup(&ref_pose);
        // Empty depth image: no geometric or photometric depth rows.
        let d = DepthImage { width: 80, height: 60, data: vec![0.0; 80 * 60] };
        let scene = living_room();
        let (_, c) = render_rgbd(&scene, &cam(), &ref_pose);
        let inputs = OdometryInputs {
            depth: &d,
            rgb: &c,
            prediction: &pred,
            ref_pose: &ref_pose,
            ref_intensity: &ref_int,
            k: &cam(),
        };
        let res = estimate(&inputs, &ref_pose, &OdometryParams::default());
        assert!(!res.tracked);
    }
}
