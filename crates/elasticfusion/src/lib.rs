//! An ElasticFusion-style surfel SLAM pipeline.
//!
//! Reimplements the algorithmic structure of ElasticFusion (Whelan et al.,
//! RSS 2015) as benchmarked by SLAMBench and tuned in the paper:
//!
//! * a **surfel map** ([`surfel`]) with per-surfel confidence, timestamps
//!   and an active/inactive split,
//! * **joint ICP + RGB odometry** ([`odometry`]) — geometric point-to-plane
//!   rows and photometric intensity rows combined under the *ICP/RGB
//!   weight*, with optional *SO(3) pre-alignment* and *fast odometry*
//!   (single pyramid level) and *frame-to-frame RGB* modes,
//! * **fern keyframe encoding** ([`ferns`]) for relocalisation and global
//!   loop closure,
//! * **local loop closure** ([`pipeline`]) by registering the active model
//!   against the inactive model.
//!
//! The three numeric parameters and five flags explored in the paper
//! (§III-C) are exposed in [`EFusionConfig`].
//!
//! **Substitution note (see DESIGN.md):** the original system applies loop
//! closure corrections through a non-rigid deformation graph; here the
//! correction is applied rigidly to the current pose and recent surfels,
//! which preserves the parameters' accuracy/runtime trade-off without
//! ~10 kLoC of deformation machinery.

pub mod config;
pub mod ferns;
pub mod odometry;
pub mod pipeline;
pub mod surfel;

pub use config::EFusionConfig;
pub use ferns::FernDatabase;
pub use odometry::{OdometryParams, OdometryResult};
pub use pipeline::{EFrameStats, ElasticFusion};
pub use surfel::{Surfel, SurfelMap};
