//! The surfel map: ElasticFusion's world model.

use icl_nuim_synth::{DepthImage, RgbImage};
use rayon::prelude::*;
use slam_geometry::{CameraIntrinsics, Vec3, SE3};

/// One disc-shaped map element.
#[derive(Debug, Clone, Copy)]
pub struct Surfel {
    /// World position of the disc center.
    pub pos: Vec3,
    /// World unit normal.
    pub normal: Vec3,
    /// Linear RGB color.
    pub color: Vec3,
    /// Disc radius in meters (grows with viewing distance).
    pub radius: f32,
    /// Fusion confidence: number of (weighted) observations.
    pub confidence: f32,
    /// Frame index of the last observation.
    pub last_seen: u32,
}

/// Model prediction rendered from the surfel map: per-pixel world-frame
/// point/normal/color plus the index of the source surfel.
#[derive(Debug, Clone)]
pub struct ModelPrediction {
    pub width: usize,
    pub height: usize,
    pub points: Vec<Vec3>,
    pub normals: Vec<Vec3>,
    pub colors: Vec<Vec3>,
    /// `u32::MAX` marks an empty pixel.
    pub surfel_index: Vec<u32>,
}

impl ModelPrediction {
    /// Whether pixel `(u, v)` has a predicted surfel.
    #[inline]
    pub fn is_valid(&self, u: usize, v: usize) -> bool {
        self.surfel_index[v * self.width + u] != u32::MAX
    }

    /// Number of covered pixels.
    pub fn coverage(&self) -> usize {
        self.surfel_index.iter().filter(|&&i| i != u32::MAX).count()
    }

    /// Scalar intensity of the predicted color image.
    pub fn intensity(&self) -> Vec<f32> {
        self.colors
            .iter()
            .map(|c| 0.299 * c.x + 0.587 * c.y + 0.114 * c.z)
            .collect()
    }
}

/// The global surfel map.
#[derive(Debug, Clone, Default)]
pub struct SurfelMap {
    surfels: Vec<Surfel>,
}

/// Association gates for fusion (fixed, following ElasticFusion).
const FUSE_DIST: f32 = 0.05;
const FUSE_DOT: f32 = 0.7;

impl SurfelMap {
    /// An empty map.
    pub fn new() -> Self {
        SurfelMap::default()
    }

    /// All surfels.
    pub fn surfels(&self) -> &[Surfel] {
        &self.surfels
    }

    /// Number of surfels.
    pub fn len(&self) -> usize {
        self.surfels.len()
    }

    /// True when the map holds no surfels.
    pub fn is_empty(&self) -> bool {
        self.surfels.is_empty()
    }

    /// Number of surfels at or above the confidence threshold.
    pub fn stable_count(&self, confidence_threshold: f32) -> usize {
        self.surfels.iter().filter(|s| s.confidence >= confidence_threshold).count()
    }

    /// Render a model prediction from pose `pose` using surfels that pass
    /// `filter` (e.g. stable + active). Nearest surfel wins each pixel.
    pub fn predict(
        &self,
        k: &CameraIntrinsics,
        pose: &SE3,
        filter: impl Fn(&Surfel) -> bool + Sync,
    ) -> ModelPrediction {
        let w = k.width;
        let h = k.height;
        let world_to_cam = pose.inverse();
        // Depth buffer per pixel, sequential splat (surfel count is modest
        // at the resolutions used here; contention-free and deterministic).
        let mut depth = vec![f32::INFINITY; w * h];
        let mut index = vec![u32::MAX; w * h];
        // Colors are alpha-blended across overlapping splats (Gaussian
        // falloff from the splat center) so the predicted color image has
        // smooth gradients usable by photometric tracking.
        let mut color_acc = vec![Vec3::ZERO; w * h];
        let mut color_wgt = vec![0.0f32; w * h];
        for (i, s) in self.surfels.iter().enumerate() {
            if !filter(s) {
                continue;
            }
            let p_cam = world_to_cam.transform_point(s.pos);
            if p_cam.z <= 0.05 {
                continue;
            }
            // Splat radius in pixels.
            let r_px = (s.radius * k.fx / p_cam.z).max(0.5);
            let Some(uv) = k.project(p_cam) else { continue };
            let u0 = (uv.x - r_px).floor().max(0.0) as usize;
            let u1 = (uv.x + r_px).ceil().min(w as f32 - 1.0) as usize;
            let v0 = (uv.y - r_px).floor().max(0.0) as usize;
            let v1 = (uv.y + r_px).ceil().min(h as f32 - 1.0) as usize;
            if u0 > u1 || v0 > v1 {
                continue;
            }
            let inv_2s2 = 1.0 / (2.0 * (r_px * 0.6).max(0.3).powi(2));
            for v in v0..=v1 {
                for u in u0..=u1 {
                    let du = u as f32 - uv.x;
                    let dv = v as f32 - uv.y;
                    let d2 = du * du + dv * dv;
                    if d2 > r_px * r_px {
                        continue;
                    }
                    let cell = v * w + u;
                    if p_cam.z < depth[cell] {
                        depth[cell] = p_cam.z;
                        index[cell] = i as u32;
                    }
                    // Blend colors within a depth band of the front splat.
                    if p_cam.z < depth[cell] + 0.05 {
                        let wgt = (-d2 * inv_2s2).exp();
                        color_acc[cell] += s.color * wgt;
                        color_wgt[cell] += wgt;
                    }
                }
            }
        }
        let mut points = vec![Vec3::ZERO; w * h];
        let mut normals = vec![Vec3::ZERO; w * h];
        let mut colors = vec![Vec3::ZERO; w * h];
        points
            .par_iter_mut()
            .zip(normals.par_iter_mut())
            .zip(colors.par_iter_mut())
            .enumerate()
            .for_each(|(cell, ((p, n), c))| {
                let i = index[cell];
                if i != u32::MAX {
                    let s = &self.surfels[i as usize];
                    *p = s.pos;
                    *n = s.normal;
                    *c = if color_wgt[cell] > 0.0 {
                        color_acc[cell] / color_wgt[cell]
                    } else {
                        s.color
                    };
                }
            });
        ModelPrediction { width: w, height: h, points, normals, colors, surfel_index: index }
    }

    /// Fuse one registered RGB-D frame into the map (ElasticFusion's data
    /// fusion): pixels that project onto a compatible existing surfel merge
    /// into it (weighted average, confidence +1); others spawn new surfels.
    ///
    /// `prediction` must be a [`SurfelMap::predict`] of this map from the
    /// same pose (it provides the pixel→surfel association).
    pub fn fuse(
        &mut self,
        depth: &DepthImage,
        rgb: &RgbImage,
        k: &CameraIntrinsics,
        pose: &SE3,
        prediction: &ModelPrediction,
        depth_cutoff: f32,
        time: u32,
    ) {
        let w = depth.width;
        let h = depth.height;
        for v in 0..h {
            for u in 0..w {
                let d = depth.at(u, v);
                if d <= 0.0 || d > depth_cutoff {
                    continue;
                }
                let p_cam = k.backproject(u as f32, v as f32, d);
                let p_world = pose.transform_point(p_cam);
                let n_cam = normal_from_depth(depth, k, u, v);
                if n_cam == Vec3::ZERO {
                    continue;
                }
                let n_world = pose.transform_dir(n_cam);
                let color = rgb.at(u, v);
                // Surfel radius grows with depth and obliqueness.
                let radius = (d / k.fx) * 1.5 / n_cam.z.abs().max(0.3);

                let idx = prediction.surfel_index[v * w + u];
                if idx != u32::MAX {
                    let s = &mut self.surfels[idx as usize];
                    // Merge gate: close along the surfel normal (same
                    // surface) and within the disc laterally (the splat
                    // center can be a sizable lateral offset away).
                    let delta = p_world - s.pos;
                    let along = s.normal.dot(delta).abs();
                    let lateral = (delta - s.normal * s.normal.dot(delta)).norm();
                    if along < FUSE_DIST
                        && lateral < (s.radius * 2.0).max(0.02)
                        && s.normal.dot(n_world) > FUSE_DOT
                    {
                        // A splat covers several pixels; update each surfel
                        // at most once per frame so confidence counts
                        // frames, not pixels.
                        if s.last_seen != time {
                            let wgt = s.confidence;
                            let total = wgt + 1.0;
                            s.pos = (s.pos * wgt + p_world) / total;
                            s.normal = ((s.normal * wgt + n_world) / total).normalized();
                            s.color = (s.color * wgt + color) / total;
                            s.radius = (s.radius * wgt + radius) / total;
                            s.confidence = (s.confidence + 1.0).min(100.0);
                            s.last_seen = time;
                        }
                        continue;
                    }
                }
                self.surfels.push(Surfel {
                    pos: p_world,
                    normal: n_world,
                    color,
                    radius,
                    confidence: 1.0,
                    last_seen: time,
                });
            }
        }
    }

    /// Remove stale low-confidence surfels: never-confirmed surfels that
    /// have not been observed for `max_age` frames.
    pub fn cleanup(&mut self, time: u32, confidence_threshold: f32, max_age: u32) {
        self.surfels.retain(|s| {
            s.confidence >= confidence_threshold || time.saturating_sub(s.last_seen) <= max_age
        });
    }

    /// Apply a rigid correction to surfels last seen after `since`
    /// (the simplified loop-closure map update; see crate docs).
    pub fn apply_correction(&mut self, correction: &SE3, since: u32) {
        self.surfels.par_iter_mut().for_each(|s| {
            if s.last_seen >= since {
                s.pos = correction.transform_point(s.pos);
                s.normal = correction.transform_dir(s.normal);
            }
        });
    }
}

/// Central-difference camera-frame normal at `(u, v)`; zero when invalid.
fn normal_from_depth(depth: &DepthImage, k: &CameraIntrinsics, u: usize, v: usize) -> Vec3 {
    if u + 1 >= depth.width || v + 1 >= depth.height || u == 0 || v == 0 {
        return Vec3::ZERO;
    }
    let d = depth.at(u, v);
    let dx1 = depth.at(u + 1, v);
    let dx0 = depth.at(u - 1, v);
    let dy1 = depth.at(u, v + 1);
    let dy0 = depth.at(u, v - 1);
    if d <= 0.0 || dx1 <= 0.0 || dx0 <= 0.0 || dy1 <= 0.0 || dy0 <= 0.0 {
        return Vec3::ZERO;
    }
    // Reject depth discontinuities: a central difference across a
    // silhouette edge produces a confidently wrong normal.
    const MAX_NEIGHBOR_GAP: f32 = 0.07;
    if (dx1 - d).abs() > MAX_NEIGHBOR_GAP
        || (dx0 - d).abs() > MAX_NEIGHBOR_GAP
        || (dy1 - d).abs() > MAX_NEIGHBOR_GAP
        || (dy0 - d).abs() > MAX_NEIGHBOR_GAP
    {
        return Vec3::ZERO;
    }
    let px1 = k.backproject(u as f32 + 1.0, v as f32, dx1);
    let px0 = k.backproject(u as f32 - 1.0, v as f32, dx0);
    let py1 = k.backproject(u as f32, v as f32 + 1.0, dy1);
    let py0 = k.backproject(u as f32, v as f32 - 1.0, dy0);
    let n = (px1 - px0).cross(py1 - py0).normalized();
    let p = k.backproject(u as f32, v as f32, d);
    if n.dot(p) > 0.0 {
        -n
    } else {
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icl_nuim_synth::{living_room, look_at, render_rgbd};

    fn cam() -> CameraIntrinsics {
        CameraIntrinsics::kinect_like(64, 48)
    }

    fn first_view() -> (DepthImage, RgbImage, SE3) {
        let scene = living_room();
        let pose = look_at(Vec3::new(0.0, -0.1, -0.3), Vec3::new(0.3, 0.5, 2.9));
        let (d, c) = render_rgbd(&scene, &cam(), &pose);
        (d, c, pose)
    }

    fn fused_once() -> (SurfelMap, SE3) {
        let (d, c, pose) = first_view();
        let mut map = SurfelMap::new();
        let pred = map.predict(&cam(), &pose, |_| true);
        map.fuse(&d, &c, &cam(), &pose, &pred, 5.0, 0);
        (map, pose)
    }

    #[test]
    fn first_fusion_creates_surfels() {
        let (map, _) = fused_once();
        assert!(map.len() > 1000, "only {} surfels", map.len());
        for s in map.surfels().iter().take(50) {
            assert!((s.normal.norm() - 1.0).abs() < 1e-3);
            assert!(s.confidence == 1.0);
            assert!(s.radius > 0.0);
        }
    }

    #[test]
    fn refusing_same_view_merges_not_duplicates() {
        let (mut map, pose) = fused_once();
        let n1 = map.len();
        let (d, c, _) = first_view();
        let pred = map.predict(&cam(), &pose, |_| true);
        map.fuse(&d, &c, &cam(), &pose, &pred, 5.0, 1);
        let n2 = map.len();
        // Most pixels should merge; allow some growth at splat boundaries.
        assert!(n2 < n1 + n1 / 2, "map doubled: {n1} -> {n2}");
        // Confidence rose somewhere.
        assert!(map.surfels().iter().any(|s| s.confidence >= 2.0));
    }

    #[test]
    fn depth_cutoff_limits_fusion() {
        let (d, c, pose) = first_view();
        let mut map = SurfelMap::new();
        let pred = map.predict(&cam(), &pose, |_| true);
        map.fuse(&d, &c, &cam(), &pose, &pred, 1.0, 0); // 1 m cutoff
        let far = map.surfels().iter().filter(|s| {
            pose.inverse().transform_point(s.pos).z > 1.05
        }).count();
        assert_eq!(far, 0);
    }

    #[test]
    fn prediction_covers_view_after_fusion() {
        let (map, pose) = fused_once();
        let pred = map.predict(&cam(), &pose, |_| true);
        let cov = pred.coverage() as f32 / (64.0 * 48.0);
        assert!(cov > 0.7, "coverage {cov}");
        // Points lie near the scene surface.
        let scene = living_room();
        let mut ok = 0;
        let mut total = 0;
        for v in (2..46).step_by(4) {
            for u in (2..62).step_by(4) {
                if pred.is_valid(u, v) {
                    total += 1;
                    if scene.distance(pred.points[v * 64 + u]).abs() < 0.05 {
                        ok += 1;
                    }
                }
            }
        }
        assert!(ok as f32 / total as f32 > 0.9, "{ok}/{total} on-surface");
    }

    #[test]
    fn predict_filter_excludes_surfels() {
        let (map, pose) = fused_once();
        let none = map.predict(&cam(), &pose, |_| false);
        assert_eq!(none.coverage(), 0);
        let all = map.predict(&cam(), &pose, |_| true);
        assert!(all.coverage() > 0);
    }

    #[test]
    fn cleanup_drops_stale_unstable_surfels() {
        let (mut map, _) = fused_once();
        let before = map.len();
        // All have confidence 1 < threshold 10 and last_seen 0.
        map.cleanup(500, 10.0, 100);
        assert_eq!(map.len(), 0, "expected all {before} culled");
        let (mut map2, _) = fused_once();
        map2.cleanup(50, 10.0, 100); // young enough to survive
        assert_eq!(map2.len(), before);
    }

    #[test]
    fn apply_correction_moves_recent_surfels_only() {
        let (mut map, _) = fused_once();
        // Mark half the surfels as newer.
        let n = map.len();
        for (i, s) in map.surfels.iter_mut().enumerate() {
            s.last_seen = if i % 2 == 0 { 10 } else { 0 };
        }
        let before: Vec<Vec3> = map.surfels().iter().map(|s| s.pos).collect();
        let shift = SE3::from_translation(Vec3::new(0.5, 0.0, 0.0));
        map.apply_correction(&shift, 5);
        for (i, s) in map.surfels().iter().enumerate() {
            let expected = if i % 2 == 0 { before[i] + Vec3::new(0.5, 0.0, 0.0) } else { before[i] };
            assert!((s.pos - expected).norm() < 1e-6);
        }
        let _ = n;
    }

    #[test]
    fn stable_count_respects_threshold() {
        let (mut map, pose) = fused_once();
        assert_eq!(map.stable_count(2.0), 0);
        let (d, c, _) = first_view();
        for t in 1..4 {
            let pred = map.predict(&cam(), &pose, |_| true);
            map.fuse(&d, &c, &cam(), &pose, &pred, 5.0, t);
        }
        assert!(map.stable_count(3.0) > 0);
    }
}
