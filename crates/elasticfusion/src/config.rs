//! The ElasticFusion algorithmic parameter set (paper §III-C).

/// The parameters and flags of ElasticFusion explored by the paper.
///
/// Numeric parameters:
/// * `icp_rgb_weight` — relative ICP/RGB tracking weight (10 = geometric
///   residuals count 10× photometric ones),
/// * `depth_cutoff` — raw depth beyond this many meters is ignored,
/// * `confidence_threshold` — surfels below this confidence are not used
///   for tracking (and are eventually culled).
///
/// Flags (named as in Table I of the paper):
/// * `so3_disabled` — disable the SO(3) rotation pre-alignment,
/// * `open_loop` — disable local loop closures,
/// * `relocalisation` — attempt fern-based relocalisation when lost,
/// * `fast_odom` — single-pyramid-level ("fast") odometry,
/// * `frame_to_frame_rgb` — photometric tracking against the previous
///   frame instead of the predicted model image.
#[derive(Debug, Clone, PartialEq)]
pub struct EFusionConfig {
    /// Relative ICP/RGB tracking weight (≥ 0; 0 disables geometric rows).
    pub icp_rgb_weight: f32,
    /// Depth cutoff distance in meters.
    pub depth_cutoff: f32,
    /// Surfel confidence threshold.
    pub confidence_threshold: f32,
    /// Disable SO(3) pre-alignment.
    pub so3_disabled: bool,
    /// Disable local loop closure.
    pub open_loop: bool,
    /// Enable fern relocalisation.
    pub relocalisation: bool,
    /// Use a single pyramid level for odometry.
    pub fast_odom: bool,
    /// Frame-to-frame RGB tracking.
    pub frame_to_frame_rgb: bool,
    /// Frames after which an unobserved surfel becomes *inactive*
    /// (fixed, not part of the explored space).
    pub time_window: u32,
}

impl Default for EFusionConfig {
    /// The developers' default configuration, as reported in Table I:
    /// ICP weight 10, depth cutoff 3 m, confidence 10, SO3 disabled = 1,
    /// open loop = 0, relocalisation = 1, fast odometry = 0, FTF RGB = 0.
    fn default() -> Self {
        EFusionConfig {
            icp_rgb_weight: 10.0,
            depth_cutoff: 3.0,
            confidence_threshold: 10.0,
            so3_disabled: true,
            open_loop: false,
            relocalisation: true,
            fast_odom: false,
            frame_to_frame_rgb: false,
            time_window: 100,
        }
    }
}

impl EFusionConfig {
    /// Validate parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.icp_rgb_weight >= 0.0) {
            return Err("icp_rgb_weight must be non-negative".into());
        }
        if !(self.depth_cutoff > 0.0) {
            return Err("depth_cutoff must be positive".into());
        }
        if !(self.confidence_threshold >= 0.0) {
            return Err("confidence_threshold must be non-negative".into());
        }
        if self.time_window == 0 {
            return Err("time_window must be >= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_1() {
        let c = EFusionConfig::default();
        c.validate().unwrap();
        assert_eq!(c.icp_rgb_weight, 10.0);
        assert_eq!(c.depth_cutoff, 3.0);
        assert_eq!(c.confidence_threshold, 10.0);
        assert!(c.so3_disabled);
        assert!(!c.open_loop);
        assert!(c.relocalisation);
        assert!(!c.fast_odom);
        assert!(!c.frame_to_frame_rgb);
    }

    #[test]
    fn validation() {
        let mut c = EFusionConfig::default();
        c.depth_cutoff = 0.0;
        assert!(c.validate().is_err());
        let mut c = EFusionConfig::default();
        c.icp_rgb_weight = f32::NAN;
        assert!(c.validate().is_err());
        let mut c = EFusionConfig::default();
        c.time_window = 0;
        assert!(c.validate().is_err());
    }
}
