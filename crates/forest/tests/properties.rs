//! Property-based tests for the random forest.

use proptest::prelude::*;
use randforest::{
    CompiledForest, Dataset, ForestConfig, RandomForest, RegressionTree, SplitMethod, TreeConfig,
};

/// Build a dataset from proptest-generated rows.
fn dataset_from(rows: &[(Vec<f64>, f64)], width: usize) -> Dataset {
    let mut d = Dataset::new(width);
    for (x, y) in rows {
        d.push_row(x, *y);
    }
    d
}

fn rows(width: usize, min_len: usize) -> impl Strategy<Value = Vec<(Vec<f64>, f64)>> {
    prop::collection::vec(
        (
            prop::collection::vec(-100.0f64..100.0, width..=width),
            -1000.0f64..1000.0,
        ),
        min_len..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Forest predictions never leave the convex hull of training targets
    /// (each leaf predicts a mean of targets).
    #[test]
    fn predictions_bounded_by_targets(data in rows(3, 5), probe in prop::collection::vec(-200.0f64..200.0, 3)) {
        let d = dataset_from(&data, 3);
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 10, seed: 1, ..Default::default() });
        let (lo, hi) = d.target_range().unwrap();
        let p = f.predict(&probe);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
    }

    /// Fitting is deterministic in the seed regardless of data.
    #[test]
    fn deterministic(data in rows(2, 5), seed in 0u64..1000) {
        let d = dataset_from(&data, 2);
        let cfg = ForestConfig { n_trees: 8, seed, ..Default::default() };
        let f1 = RandomForest::fit(&d, &cfg);
        let f2 = RandomForest::fit(&d, &cfg);
        let probe = [d.feature(0, 0) + 0.5, d.feature(0, 1) - 0.5];
        prop_assert_eq!(f1.predict(&probe), f2.predict(&probe));
    }

    /// A single tree trained on all rows with leaf size 1 interpolates
    /// training points whose feature vectors are unique.
    #[test]
    fn tree_interpolates_unique_rows(xs in prop::collection::hash_set(-100i32..100, 3..30)) {
        let xs: Vec<i32> = xs.into_iter().collect();
        let mut d = Dataset::new(1);
        for &x in &xs {
            d.push_row(&[x as f64], (x as f64) * 1.5 - 3.0);
        }
        let idx: Vec<usize> = (0..d.len()).collect();
        let cfg = TreeConfig { min_samples_leaf: 1, min_samples_split: 2, ..Default::default() };
        let mut rng = rand::thread_rng();
        let t = RegressionTree::fit(&d, &idx, &cfg, &mut rng);
        for &x in &xs {
            let p = t.predict(&[x as f64]);
            prop_assert!((p - ((x as f64) * 1.5 - 3.0)).abs() < 1e-9);
        }
    }

    /// Importance is a probability vector (or all-zero when unsplittable).
    #[test]
    fn importance_normalized(data in rows(4, 8)) {
        let d = dataset_from(&data, 4);
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 6, seed: 3, ..Default::default() });
        let imp = f.feature_importance();
        prop_assert_eq!(imp.len(), 4);
        let s: f64 = imp.iter().sum();
        prop_assert!(imp.iter().all(|v| *v >= 0.0));
        prop_assert!(s.abs() < 1e-9 || (s - 1.0).abs() < 1e-9, "sum {s}");
    }

    /// predict_with_spread mean equals predict.
    #[test]
    fn spread_mean_consistent(data in rows(2, 5)) {
        let d = dataset_from(&data, 2);
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 7, seed: 5, ..Default::default() });
        let probe = [0.0, 0.0];
        let (mean, spread) = f.predict_with_spread(&probe);
        prop_assert!((mean - f.predict(&probe)).abs() < 1e-9);
        prop_assert!(spread >= 0.0);
    }

    /// Compiled forests reproduce the pointer-chasing forest bit for bit:
    /// single-row, batch, and fused multi-output prediction.
    #[test]
    fn compiled_forest_matches_exactly(
        data in rows(3, 6),
        probes in prop::collection::vec(-150.0f64..150.0, 9..30),
        seed in 0u64..500,
    ) {
        let d = dataset_from(&data, 3);
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 9, seed, ..Default::default() });
        let g = RandomForest::fit(&d, &ForestConfig { n_trees: 6, seed: seed ^ 0xABCD, ..Default::default() });
        let flat = &probes[..probes.len() - probes.len() % 3];

        let c = CompiledForest::compile(&f);
        for row in flat.chunks(3) {
            prop_assert_eq!(c.predict(row), f.predict(row));
        }
        prop_assert_eq!(c.predict_batch(flat), f.predict_batch(flat));

        let multi = CompiledForest::compile_multi(&[&f, &g]);
        let preds = multi.predict_batch_multi(flat);
        prop_assert_eq!(&preds[0], &f.predict_batch(flat));
        prop_assert_eq!(&preds[1], &g.predict_batch(flat));
    }

    /// Histogram (counting-sort) split finding grows *identical* trees to the
    /// exact sort-based path — same structure, same thresholds, same leaves —
    /// because the stable counting sort reproduces the same row order and
    /// therefore the same floating-point accumulation.
    #[test]
    fn histogram_split_reproduces_exact_trees(data in rows(3, 6), seed in 0u64..500) {
        let d = dataset_from(&data, 3);
        let exact = RandomForest::fit(&d, &ForestConfig {
            n_trees: 8,
            seed,
            tree: TreeConfig { split: SplitMethod::Exact, ..Default::default() },
            ..Default::default()
        });
        let hist = RandomForest::fit(&d, &ForestConfig {
            n_trees: 8,
            seed,
            tree: TreeConfig { split: SplitMethod::Histogram, ..Default::default() },
            ..Default::default()
        });
        // Full structural equality via the Debug representation (nodes,
        // thresholds, leaf values, OOB bookkeeping).
        prop_assert_eq!(format!("{exact:?}"), format!("{hist:?}"));
    }

    /// Parallel batch prediction is order-preserving and deterministic: the
    /// result equals the sequential per-row loop, and refitting with the same
    /// seed reproduces it bitwise.
    #[test]
    fn batch_prediction_order_preserving_and_deterministic(
        data in rows(2, 5),
        probes in prop::collection::vec(-150.0f64..150.0, 8..40),
        seed in 0u64..500,
    ) {
        let d = dataset_from(&data, 2);
        let cfg = ForestConfig { n_trees: 7, seed, ..Default::default() };
        let f = RandomForest::fit(&d, &cfg);
        let flat = &probes[..probes.len() - probes.len() % 2];

        let batch = f.predict_batch(flat);
        let sequential: Vec<f64> = flat.chunks(2).map(|r| f.predict(r)).collect();
        prop_assert_eq!(&batch, &sequential);

        let refit = RandomForest::fit(&d, &cfg);
        prop_assert_eq!(&refit.predict_batch(flat), &batch);
        let c = CompiledForest::compile(&f);
        prop_assert_eq!(&c.predict_batch(flat), &batch);
    }
}
