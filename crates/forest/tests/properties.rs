//! Property-based tests for the random forest.

use proptest::prelude::*;
use randforest::{
    BinnedDataset, CompiledForest, CompiledSurrogate, Dataset, ForestConfig, PredictionCache,
    QuantizeError, QuantizedForest, RandomForest, RegressionTree, SplitMethod, TreeConfig,
};

/// Build a dataset from proptest-generated rows.
fn dataset_from(rows: &[(Vec<f64>, f64)], width: usize) -> Dataset {
    let mut d = Dataset::new(width);
    for (x, y) in rows {
        d.push_row(x, *y);
    }
    d
}

fn rows(width: usize, min_len: usize) -> impl Strategy<Value = Vec<(Vec<f64>, f64)>> {
    prop::collection::vec(
        (
            prop::collection::vec(-100.0f64..100.0, width..=width),
            -1000.0f64..1000.0,
        ),
        min_len..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Forest predictions never leave the convex hull of training targets
    /// (each leaf predicts a mean of targets).
    #[test]
    fn predictions_bounded_by_targets(data in rows(3, 5), probe in prop::collection::vec(-200.0f64..200.0, 3)) {
        let d = dataset_from(&data, 3);
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 10, seed: 1, ..Default::default() });
        let (lo, hi) = d.target_range().unwrap();
        let p = f.predict(&probe);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
    }

    /// Fitting is deterministic in the seed regardless of data.
    #[test]
    fn deterministic(data in rows(2, 5), seed in 0u64..1000) {
        let d = dataset_from(&data, 2);
        let cfg = ForestConfig { n_trees: 8, seed, ..Default::default() };
        let f1 = RandomForest::fit(&d, &cfg);
        let f2 = RandomForest::fit(&d, &cfg);
        let probe = [d.feature(0, 0) + 0.5, d.feature(0, 1) - 0.5];
        prop_assert_eq!(f1.predict(&probe), f2.predict(&probe));
    }

    /// A single tree trained on all rows with leaf size 1 interpolates
    /// training points whose feature vectors are unique.
    #[test]
    fn tree_interpolates_unique_rows(xs in prop::collection::hash_set(-100i32..100, 3..30)) {
        let xs: Vec<i32> = xs.into_iter().collect();
        let mut d = Dataset::new(1);
        for &x in &xs {
            d.push_row(&[x as f64], (x as f64) * 1.5 - 3.0);
        }
        let idx: Vec<usize> = (0..d.len()).collect();
        let cfg = TreeConfig { min_samples_leaf: 1, min_samples_split: 2, ..Default::default() };
        let mut rng = rand::thread_rng();
        let t = RegressionTree::fit(&d, &idx, &cfg, &mut rng);
        for &x in &xs {
            let p = t.predict(&[x as f64]);
            prop_assert!((p - ((x as f64) * 1.5 - 3.0)).abs() < 1e-9);
        }
    }

    /// Importance is a probability vector (or all-zero when unsplittable).
    #[test]
    fn importance_normalized(data in rows(4, 8)) {
        let d = dataset_from(&data, 4);
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 6, seed: 3, ..Default::default() });
        let imp = f.feature_importance();
        prop_assert_eq!(imp.len(), 4);
        let s: f64 = imp.iter().sum();
        prop_assert!(imp.iter().all(|v| *v >= 0.0));
        prop_assert!(s.abs() < 1e-9 || (s - 1.0).abs() < 1e-9, "sum {s}");
    }

    /// predict_with_spread mean equals predict.
    #[test]
    fn spread_mean_consistent(data in rows(2, 5)) {
        let d = dataset_from(&data, 2);
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 7, seed: 5, ..Default::default() });
        let probe = [0.0, 0.0];
        let (mean, spread) = f.predict_with_spread(&probe);
        prop_assert!((mean - f.predict(&probe)).abs() < 1e-9);
        prop_assert!(spread >= 0.0);
    }

    /// Compiled forests reproduce the pointer-chasing forest bit for bit:
    /// single-row, batch, and fused multi-output prediction.
    #[test]
    fn compiled_forest_matches_exactly(
        data in rows(3, 6),
        probes in prop::collection::vec(-150.0f64..150.0, 9..30),
        seed in 0u64..500,
    ) {
        let d = dataset_from(&data, 3);
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 9, seed, ..Default::default() });
        let g = RandomForest::fit(&d, &ForestConfig { n_trees: 6, seed: seed ^ 0xABCD, ..Default::default() });
        let flat = &probes[..probes.len() - probes.len() % 3];

        let c = CompiledForest::compile(&f);
        for row in flat.chunks(3) {
            prop_assert_eq!(c.predict(row), f.predict(row));
        }
        prop_assert_eq!(c.predict_batch(flat), f.predict_batch(flat));

        let multi = CompiledForest::compile_multi(&[&f, &g]);
        let preds = multi.predict_batch_multi(flat);
        prop_assert_eq!(&preds[0], &f.predict_batch(flat));
        prop_assert_eq!(&preds[1], &g.predict_batch(flat));
    }

    /// Histogram (counting-sort) split finding grows *identical* trees to the
    /// exact sort-based path — same structure, same thresholds, same leaves —
    /// because the stable counting sort reproduces the same row order and
    /// therefore the same floating-point accumulation.
    #[test]
    fn histogram_split_reproduces_exact_trees(data in rows(3, 6), seed in 0u64..500) {
        let d = dataset_from(&data, 3);
        let exact = RandomForest::fit(&d, &ForestConfig {
            n_trees: 8,
            seed,
            tree: TreeConfig { split: SplitMethod::Exact, ..Default::default() },
            ..Default::default()
        });
        let hist = RandomForest::fit(&d, &ForestConfig {
            n_trees: 8,
            seed,
            tree: TreeConfig { split: SplitMethod::Histogram, ..Default::default() },
            ..Default::default()
        });
        // Full structural equality via the Debug representation (nodes,
        // thresholds, leaf values, OOB bookkeeping).
        prop_assert_eq!(format!("{exact:?}"), format!("{hist:?}"));
    }

    /// Quantized pools reproduce the f64 compiled pool bit for bit — on the
    /// binned training rows themselves (the grid the cut tables derive
    /// from) *and* on arbitrary off-grid probes, single-row and batch,
    /// across fused multi-output pools. Also pins the size claims: same
    /// node count, half the traversal bytes, cut tables within the u16
    /// range implied by the binning levels.
    #[test]
    fn quantized_forest_matches_compiled_exactly(
        data in rows(3, 6),
        probes in prop::collection::vec(-150.0f64..150.0, 9..30),
        seed in 0u64..500,
    ) {
        let d = dataset_from(&data, 3);
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 9, seed, ..Default::default() });
        let g = RandomForest::fit(&d, &ForestConfig { n_trees: 6, seed: seed ^ 0xABCD, ..Default::default() });
        let c = CompiledForest::compile_multi(&[&f, &g]);
        let q = QuantizedForest::from_compiled(&c).expect("small pools always quantize");
        prop_assert_eq!(q.n_nodes(), c.n_nodes());
        // Half the f64 pool, plus the 8-byte walk sentinel.
        prop_assert_eq!(q.pool_bytes(), c.pool_bytes() / 2 + 8);

        // Binned training data: predictions on the rows the cut tables
        // were lifted from.
        let train: Vec<f64> = data.iter().flat_map(|(x, _)| x.iter().copied()).collect();
        prop_assert_eq!(q.predict_batch_multi(&train), c.predict_batch_multi(&train));

        // Arbitrary probes (off the training grid).
        let flat = &probes[..probes.len() - probes.len() % 3];
        prop_assert_eq!(q.predict_batch_multi(flat), c.predict_batch_multi(flat));
        for row in flat.chunks(3) {
            prop_assert_eq!(q.predict(row), c.predict(row));
        }

        // The surrogate wrapper picks the quantized path and agrees too.
        let s = CompiledSurrogate::compile_multi(&[&f, &g]);
        prop_assert!(s.is_quantized());
        prop_assert_eq!(s.predict_batch_multi(flat), c.predict_batch_multi(flat));

        // Cut tables are bounded by the binning structure: a feature's
        // distinct thresholds never exceed the midpoints of all level pairs
        // and, in particular, fit u16 whenever the training column has at
        // most 65 536 levels.
        let bins = BinnedDataset::new(&d);
        for feat in 0..3 {
            prop_assert!(q.n_cuts(feat) <= u16::MAX as usize);
            let lv = bins.n_levels(feat);
            prop_assert!(q.n_cuts(feat) <= lv.saturating_sub(1) * lv / 2 + 1);
        }
    }

    /// The capacity fallback: when any feature's cut table exceeds the
    /// (artificially lowered) capacity, quantization reports that feature
    /// and the f64 pool remains the source of truth — and a capacity equal
    /// to the true table size still succeeds.
    #[test]
    fn quantization_fallback_respects_cut_capacity(data in rows(2, 12), seed in 0u64..200) {
        let d = dataset_from(&data, 2);
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 10, seed, ..Default::default() });
        let c = CompiledForest::compile(&f);
        let q = QuantizedForest::from_compiled(&c).unwrap();
        let widest = (0..2).max_by_key(|&f| q.n_cuts(f)).unwrap();
        let cuts = q.n_cuts(widest);
        prop_assume!(cuts >= 1);

        prop_assert!(QuantizedForest::with_cut_capacity(&c, cuts).is_ok());
        match QuantizedForest::with_cut_capacity(&c, cuts - 1) {
            Err(QuantizeError::TooManyCuts { feature, cuts: reported, capacity }) => {
                prop_assert_eq!(reported, q.n_cuts(feature));
                prop_assert!(reported > capacity);
                prop_assert_eq!(capacity, cuts - 1);
            }
            other => prop_assert!(false, "expected TooManyCuts, got {:?}", other.map(|_| "Ok")),
        }
    }

    /// Cache transparency: scoring a probe set through a
    /// [`PredictionCache`] — cold, warm, under collisions (tiny table), and
    /// across epoch invalidation — always yields exactly the uncached
    /// predictions, and the hit/miss counts are a pure function of the
    /// query sequence.
    #[test]
    fn prediction_cache_is_transparent_and_deterministic(
        data in rows(2, 6),
        probes in prop::collection::vec(-150.0f64..150.0, 8..40),
        seed in 0u64..200,
        slots_pow in 0u32..8,
    ) {
        let d = dataset_from(&data, 2);
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 5, seed, ..Default::default() });
        let g = RandomForest::fit(&d, &ForestConfig { n_trees: 4, seed: seed ^ 0x55, ..Default::default() });
        let s = CompiledSurrogate::compile_multi(&[&f, &g]);
        let flat = &probes[..probes.len() - probes.len() % 2];
        let n = flat.len() / 2;
        let keys: Vec<u64> = (0..n as u64).map(|i| i % 7).collect(); // duplicates on purpose
        let uncached = s.predict_batch_multi(flat);
        // Keys must identify their rows for caching to be sound: give every
        // duplicated key the *same* row data.
        let mut canon = flat.to_vec();
        for (i, &k) in keys.iter().enumerate() {
            let src = (k as usize) * 2;
            let (a, b) = (canon[src], canon[src + 1]);
            canon[i * 2] = a;
            canon[i * 2 + 1] = b;
        }
        let want = s.predict_batch_multi(&canon);

        let compute = |miss: &[usize]| -> Vec<Vec<f64>> {
            let rows: Vec<f64> =
                miss.iter().flat_map(|&i| canon[i * 2..i * 2 + 2].to_vec()).collect();
            s.predict_batch_multi(&rows)
        };
        let run = |slots: usize| {
            let mut cache = PredictionCache::new(2, slots);
            let first = cache.lookup_or_compute(&keys, compute);
            let warm = cache.lookup_or_compute(&keys, compute);
            cache.invalidate();
            let misses_before_epoch = cache.misses();
            let fresh_epoch = cache.lookup_or_compute(&keys, compute);
            let epoch_misses = cache.misses() - misses_before_epoch;
            (first, warm, fresh_epoch, epoch_misses, cache.hits(), cache.misses())
        };
        for slots in [1usize, 1 << slots_pow] {
            let (first, warm, fresh_epoch, epoch_misses, hits, misses) = run(slots);
            prop_assert_eq!(&first, &want, "cold pass, slots={}", slots);
            prop_assert_eq!(&warm, &want, "warm pass, slots={}", slots);
            prop_assert_eq!(&fresh_epoch, &want, "post-invalidate pass, slots={}", slots);
            prop_assert_eq!(epoch_misses as usize, keys.len(), "invalidation must miss everything");
            // Determinism: the same query sequence reproduces the same counters.
            let (_, _, _, _, hits2, misses2) = run(slots);
            prop_assert_eq!((hits, misses), (hits2, misses2));
        }
        prop_assert_eq!(uncached.len(), 2);
    }

    /// Parallel batch prediction is order-preserving and deterministic: the
    /// result equals the sequential per-row loop, and refitting with the same
    /// seed reproduces it bitwise.
    #[test]
    fn batch_prediction_order_preserving_and_deterministic(
        data in rows(2, 5),
        probes in prop::collection::vec(-150.0f64..150.0, 8..40),
        seed in 0u64..500,
    ) {
        let d = dataset_from(&data, 2);
        let cfg = ForestConfig { n_trees: 7, seed, ..Default::default() };
        let f = RandomForest::fit(&d, &cfg);
        let flat = &probes[..probes.len() - probes.len() % 2];

        let batch = f.predict_batch(flat);
        let sequential: Vec<f64> = flat.chunks(2).map(|r| f.predict(r)).collect();
        prop_assert_eq!(&batch, &sequential);

        let refit = RandomForest::fit(&d, &cfg);
        prop_assert_eq!(&refit.predict_batch(flat), &batch);
        let c = CompiledForest::compile(&f);
        prop_assert_eq!(&c.predict_batch(flat), &batch);
    }
}
