//! Compiled forests: flat structure-of-arrays tree pools for fast batch
//! prediction.
//!
//! A fitted [`RandomForest`](crate::RandomForest) stores each tree as a
//! `Vec` of enum nodes; prediction pattern-matches and pointer-chases per
//! node. [`CompiledForest`] flattens every tree of one *or several* forests
//! into three contiguous arrays — feature index, threshold, right-child —
//! sharing one allocation, so traversal is a branch on a sentinel plus an
//! index update. Because the fit arena is laid out parent-first with the
//! left subtree immediately following its parent, the flattening is a plain
//! copy and the left child is always `node + 1`.
//!
//! Prediction is **bit-for-bit identical** to the source forest(s): leaves
//! hold the same values, traversal takes the same branches, and per-output
//! tree sums accumulate in the same ensemble order (asserted by
//! `tests/properties.rs`).
//!
//! The multi-output form fuses the per-objective surrogates of a
//! HyperMapper run into one pool so a candidate row is loaded once and
//! scored against every objective while it is hot in cache.

use crate::forest::RandomForest;
use crate::tree::Node;
use rayon::prelude::*;

/// Sentinel in the `feature` array marking a leaf node.
const LEAF: u32 = u32::MAX;

/// One or more random forests flattened into a shared SoA node pool.
#[derive(Debug, Clone)]
pub struct CompiledForest {
    n_features: usize,
    /// Split feature per node; [`LEAF`] marks a leaf.
    feature: Vec<u32>,
    /// Split threshold per node; holds the prediction value at leaves.
    threshold: Vec<f64>,
    /// Absolute pool index of the right child (left child is `node + 1`);
    /// unused at leaves.
    right: Vec<u32>,
    /// Root pool index of every tree, all outputs concatenated.
    roots: Vec<u32>,
    /// Per output: `[start, end)` range into `roots`.
    output_trees: Vec<(u32, u32)>,
}

impl CompiledForest {
    /// Compile a single forest. `predict`/`predict_batch` then match the
    /// source forest exactly.
    pub fn compile(forest: &RandomForest) -> Self {
        Self::compile_multi(&[forest])
    }

    /// Compile several forests (one per objective) into a fused pool.
    /// Output `k` reproduces `forests[k]` exactly.
    ///
    /// # Panics
    /// If `forests` is empty or the forests disagree on feature width.
    pub fn compile_multi(forests: &[&RandomForest]) -> Self {
        assert!(!forests.is_empty(), "nothing to compile");
        let n_features = forests[0].n_features();
        let total_nodes: usize = forests
            .iter()
            .flat_map(|f| f.trees())
            .map(|t| t.n_nodes())
            .sum();
        let total_trees: usize = forests.iter().map(|f| f.n_trees()).sum();
        assert!(total_nodes < LEAF as usize, "forest too large to compile");

        let mut compiled = CompiledForest {
            n_features,
            feature: Vec::with_capacity(total_nodes),
            threshold: Vec::with_capacity(total_nodes),
            right: Vec::with_capacity(total_nodes),
            roots: Vec::with_capacity(total_trees),
            output_trees: Vec::with_capacity(forests.len()),
        };

        for forest in forests {
            assert_eq!(forest.n_features(), n_features, "feature width mismatch");
            let first_tree = compiled.roots.len() as u32;
            for tree in forest.trees() {
                let base = compiled.feature.len() as u32;
                compiled.roots.push(base);
                for (i, node) in tree.nodes().iter().enumerate() {
                    match node {
                        Node::Leaf { value, .. } => {
                            compiled.feature.push(LEAF);
                            compiled.threshold.push(*value);
                            compiled.right.push(0);
                        }
                        Node::Split { feature, threshold, left, right } => {
                            debug_assert_eq!(
                                *left as usize,
                                i + 1,
                                "fit arena must keep left children adjacent"
                            );
                            compiled.feature.push(*feature);
                            compiled.threshold.push(*threshold);
                            compiled.right.push(base + *right);
                        }
                    }
                }
            }
            compiled.output_trees.push((first_tree, compiled.roots.len() as u32));
        }
        compiled
    }

    /// Walk one tree for one row.
    #[inline]
    fn predict_tree(&self, root: u32, row: &[f64]) -> f64 {
        let mut i = root as usize;
        loop {
            let f = self.feature[i];
            if f == LEAF {
                return self.threshold[i];
            }
            i = if row[f as usize] < self.threshold[i] {
                i + 1
            } else {
                self.right[i] as usize
            };
        }
    }

    /// Mean prediction of output `k` for one row; tree sums accumulate in
    /// ensemble order, matching `RandomForest::predict` bit for bit.
    #[inline]
    fn predict_output(&self, k: usize, row: &[f64]) -> f64 {
        let (start, end) = self.output_trees[k];
        let roots = &self.roots[start as usize..end as usize];
        let sum: f64 = roots.iter().map(|&r| self.predict_tree(r, row)).sum();
        sum / roots.len() as f64
    }

    /// Prediction of the first (or only) output for one row.
    ///
    /// # Panics
    /// If `row.len() != n_features`.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.n_features, "feature width mismatch");
        self.predict_output(0, row)
    }

    /// All outputs for one row, written into `out`.
    ///
    /// # Panics
    /// If `row.len() != n_features` or `out.len() != n_outputs`.
    pub fn predict_into(&self, row: &[f64], out: &mut [f64]) {
        assert_eq!(row.len(), self.n_features, "feature width mismatch");
        assert_eq!(out.len(), self.output_trees.len(), "output width mismatch");
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.predict_output(k, row);
        }
    }

    /// Score every tree of output `k` against a block of rows, accumulating
    /// into `acc` (stride 1). Trees iterate in the outer loop so each tree's
    /// nodes stay cache-hot across the whole block; each row still sums its
    /// trees in ensemble order, so the result is bit-identical to the
    /// row-at-a-time loop.
    fn accumulate_block(&self, k: usize, rows: &[f64], acc: &mut [f64], stride: usize) {
        let (start, end) = self.output_trees[k];
        let roots = &self.roots[start as usize..end as usize];
        for &root in roots {
            for (row, slot) in rows.chunks_exact(self.n_features).zip(acc.iter_mut().step_by(stride))
            {
                *slot += self.predict_tree(root, row);
            }
        }
        // Divide rather than multiply by a precomputed reciprocal: `x * (1/n)`
        // can differ from `x / n` in the last ulp, and parity with
        // `predict_output` must be exact.
        for slot in acc.iter_mut().step_by(stride) {
            *slot /= roots.len() as f64;
        }
    }

    /// Rows per parallel work unit: large enough to amortize the per-block
    /// tree sweep, small enough to load-balance and keep accumulators in L1.
    const BLOCK_ROWS: usize = 256;

    /// First-output predictions for a flat row-major `n × n_features` batch,
    /// in parallel, order-preserving.
    pub fn predict_batch(&self, rows: &[f64]) -> Vec<f64> {
        assert_eq!(rows.len() % self.n_features, 0, "ragged batch");
        let n_rows = rows.len() / self.n_features;
        let mut out = vec![0.0f64; n_rows];
        rows.par_chunks(self.n_features * Self::BLOCK_ROWS)
            .zip(out.par_chunks_mut(Self::BLOCK_ROWS))
            .for_each(|(rblock, oblock)| self.accumulate_block(0, rblock, oblock, 1));
        out
    }

    /// All outputs for a flat row-major batch: one parallel pass over the
    /// fused pool, blocked so each tree streams a whole block of rows.
    /// Returns one `Vec` per output (`result[k][i]` = output `k`, row `i`).
    pub fn predict_batch_multi(&self, rows: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(rows.len() % self.n_features, 0, "ragged batch");
        let n_rows = rows.len() / self.n_features;
        let n_out = self.output_trees.len();

        // Row-major scratch filled blockwise in parallel, then transposed.
        let mut flat = vec![0.0f64; n_rows * n_out];
        rows.par_chunks(self.n_features * Self::BLOCK_ROWS)
            .zip(flat.par_chunks_mut(n_out * Self::BLOCK_ROWS))
            .for_each(|(rblock, oblock)| {
                for k in 0..n_out {
                    self.accumulate_block(k, rblock, &mut oblock[k..], n_out);
                }
            });

        (0..n_out)
            .map(|k| (0..n_rows).map(|i| flat[i * n_out + k]).collect())
            .collect()
    }

    /// Feature width expected by `predict`.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of compiled outputs (source forests).
    pub fn n_outputs(&self) -> usize {
        self.output_trees.len()
    }

    /// Trees compiled for output `k`.
    pub fn n_trees(&self, k: usize) -> usize {
        let (start, end) = self.output_trees[k];
        (end - start) as usize
    }

    /// Total nodes in the pool across all outputs.
    pub fn n_nodes(&self) -> usize {
        self.feature.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::forest::ForestConfig;

    fn data(seed: u64) -> Dataset {
        let mut d = Dataset::new(3);
        for i in 0..240u64 {
            let x = ((i * 7 + seed) % 19) as f64 * 0.4;
            let y = ((i * 13) % 11) as f64;
            let z = (i % 5) as f64;
            d.push_row(&[x, y, z], x * 2.0 - y + (z * 0.9).sin());
        }
        d
    }

    fn probe_rows(n: usize) -> Vec<f64> {
        (0..n)
            .flat_map(|i| {
                [
                    (i % 23) as f64 * 0.3,
                    (i % 7) as f64 * 1.1,
                    (i % 4) as f64,
                ]
            })
            .collect()
    }

    #[test]
    fn single_forest_matches_exactly() {
        let d = data(0);
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 25, seed: 3, ..Default::default() });
        let c = CompiledForest::compile(&f);
        assert_eq!(c.n_outputs(), 1);
        assert_eq!(c.n_trees(0), 25);
        let rows = probe_rows(64);
        for row in rows.chunks(3) {
            assert_eq!(c.predict(row), f.predict(row));
        }
        assert_eq!(c.predict_batch(&rows), f.predict_batch(&rows));
    }

    #[test]
    fn multi_output_matches_each_source() {
        let d1 = data(1);
        let d2 = data(2);
        let f1 = RandomForest::fit(&d1, &ForestConfig { n_trees: 12, seed: 5, ..Default::default() });
        let f2 = RandomForest::fit(&d2, &ForestConfig { n_trees: 18, seed: 9, ..Default::default() });
        let c = CompiledForest::compile_multi(&[&f1, &f2]);
        assert_eq!(c.n_outputs(), 2);
        assert_eq!((c.n_trees(0), c.n_trees(1)), (12, 18));

        let rows = probe_rows(50);
        let preds = c.predict_batch_multi(&rows);
        assert_eq!(preds[0], f1.predict_batch(&rows));
        assert_eq!(preds[1], f2.predict_batch(&rows));

        let mut out = [0.0; 2];
        c.predict_into(&rows[0..3], &mut out);
        assert_eq!(out[0], f1.predict(&rows[0..3]));
        assert_eq!(out[1], f2.predict(&rows[0..3]));
    }

    #[test]
    fn single_leaf_trees_compile() {
        // Constant target → every tree is a single leaf.
        let mut d = Dataset::new(1);
        for i in 0..30 {
            d.push_row(&[i as f64], 4.0);
        }
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 5, seed: 1, ..Default::default() });
        let c = CompiledForest::compile(&f);
        assert_eq!(c.predict(&[2.0]), 4.0);
        assert_eq!(c.n_nodes(), 5);
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn mismatched_widths_panic() {
        let f1 = RandomForest::fit(&data(0), &ForestConfig { n_trees: 2, ..Default::default() });
        let mut d = Dataset::new(1);
        for i in 0..20 {
            d.push_row(&[i as f64], i as f64);
        }
        let f2 = RandomForest::fit(&d, &ForestConfig { n_trees: 2, ..Default::default() });
        CompiledForest::compile_multi(&[&f1, &f2]);
    }
}
