//! Compiled forests: flat structure-of-arrays tree pools for fast batch
//! prediction.
//!
//! A fitted [`RandomForest`](crate::RandomForest) stores each tree as a
//! `Vec` of enum nodes; prediction pattern-matches and pointer-chases per
//! node. [`CompiledForest`] flattens every tree of one *or several* forests
//! into three contiguous arrays — feature index, threshold, right-child —
//! sharing one allocation, so traversal is a branch on a sentinel plus an
//! index update. Because the fit arena is laid out parent-first with the
//! left subtree immediately following its parent, the flattening is a plain
//! copy and the left child is always `node + 1`.
//!
//! Prediction is **bit-for-bit identical** to the source forest(s): leaves
//! hold the same values, traversal takes the same branches, and per-output
//! tree sums accumulate in the same ensemble order (asserted by
//! `tests/properties.rs`).
//!
//! The multi-output form fuses the per-objective surrogates of a
//! HyperMapper run into one pool so a candidate row is loaded once and
//! scored against every objective while it is hot in cache.

use crate::forest::RandomForest;
use crate::tree::Node;
use crate::{feature_cmp, feature_eq};
use rayon::prelude::*;
use std::cmp::Ordering;

/// Sentinel in the `feature` array marking a leaf node.
const LEAF: u32 = u32::MAX;

/// One or more random forests flattened into a shared SoA node pool.
#[derive(Debug, Clone)]
pub struct CompiledForest {
    n_features: usize,
    /// Split feature per node; [`LEAF`] marks a leaf.
    feature: Vec<u32>,
    /// Split threshold per node; holds the prediction value at leaves.
    threshold: Vec<f64>,
    /// Absolute pool index of the right child (left child is `node + 1`);
    /// unused at leaves.
    right: Vec<u32>,
    /// Root pool index of every tree, all outputs concatenated.
    roots: Vec<u32>,
    /// Per output: `[start, end)` range into `roots`.
    output_trees: Vec<(u32, u32)>,
}

impl CompiledForest {
    /// Compile a single forest. `predict`/`predict_batch` then match the
    /// source forest exactly.
    pub fn compile(forest: &RandomForest) -> Self {
        Self::compile_multi(&[forest])
    }

    /// Compile several forests (one per objective) into a fused pool.
    /// Output `k` reproduces `forests[k]` exactly.
    ///
    /// # Panics
    /// If `forests` is empty or the forests disagree on feature width.
    pub fn compile_multi(forests: &[&RandomForest]) -> Self {
        assert!(!forests.is_empty(), "nothing to compile");
        let n_features = forests[0].n_features();
        let total_nodes: usize = forests
            .iter()
            .flat_map(|f| f.trees())
            .map(|t| t.n_nodes())
            .sum();
        let total_trees: usize = forests.iter().map(|f| f.n_trees()).sum();
        assert!(total_nodes < LEAF as usize, "forest too large to compile");

        let mut compiled = CompiledForest {
            n_features,
            feature: Vec::with_capacity(total_nodes),
            threshold: Vec::with_capacity(total_nodes),
            right: Vec::with_capacity(total_nodes),
            roots: Vec::with_capacity(total_trees),
            output_trees: Vec::with_capacity(forests.len()),
        };

        for forest in forests {
            assert_eq!(forest.n_features(), n_features, "feature width mismatch");
            let first_tree = compiled.roots.len() as u32;
            for tree in forest.trees() {
                let base = compiled.feature.len() as u32;
                compiled.roots.push(base);
                for (i, node) in tree.nodes().iter().enumerate() {
                    match node {
                        Node::Leaf { value, .. } => {
                            compiled.feature.push(LEAF);
                            compiled.threshold.push(*value);
                            compiled.right.push(0);
                        }
                        Node::Split { feature, threshold, left, right } => {
                            debug_assert_eq!(
                                *left as usize,
                                i + 1,
                                "fit arena must keep left children adjacent"
                            );
                            compiled.feature.push(*feature);
                            compiled.threshold.push(*threshold);
                            compiled.right.push(base + *right);
                        }
                    }
                }
            }
            compiled.output_trees.push((first_tree, compiled.roots.len() as u32));
        }
        compiled
    }

    /// Walk one tree for one row.
    #[inline]
    fn predict_tree(&self, root: u32, row: &[f64]) -> f64 {
        let mut i = root as usize;
        loop {
            let f = self.feature[i];
            if f == LEAF {
                return self.threshold[i];
            }
            i = if row[f as usize] < self.threshold[i] {
                i + 1
            } else {
                self.right[i] as usize
            };
        }
    }

    /// Mean prediction of output `k` for one row; tree sums accumulate in
    /// ensemble order, matching `RandomForest::predict` bit for bit.
    #[inline]
    fn predict_output(&self, k: usize, row: &[f64]) -> f64 {
        let (start, end) = self.output_trees[k];
        let roots = &self.roots[start as usize..end as usize];
        let sum: f64 = roots.iter().map(|&r| self.predict_tree(r, row)).sum();
        sum / roots.len() as f64
    }

    /// Prediction of the first (or only) output for one row.
    ///
    /// # Panics
    /// If `row.len() != n_features`.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.n_features, "feature width mismatch");
        self.predict_output(0, row)
    }

    /// All outputs for one row, written into `out`.
    ///
    /// # Panics
    /// If `row.len() != n_features` or `out.len() != n_outputs`.
    pub fn predict_into(&self, row: &[f64], out: &mut [f64]) {
        assert_eq!(row.len(), self.n_features, "feature width mismatch");
        assert_eq!(out.len(), self.output_trees.len(), "output width mismatch");
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.predict_output(k, row);
        }
    }

    /// Score every tree of output `k` against a block of rows, accumulating
    /// into `acc` (stride 1). Trees iterate in the outer loop so each tree's
    /// nodes stay cache-hot across the whole block; each row still sums its
    /// trees in ensemble order, so the result is bit-identical to the
    /// row-at-a-time loop.
    fn accumulate_block(&self, k: usize, rows: &[f64], acc: &mut [f64], stride: usize) {
        let (start, end) = self.output_trees[k];
        let roots = &self.roots[start as usize..end as usize];
        for &root in roots {
            for (row, slot) in rows.chunks_exact(self.n_features).zip(acc.iter_mut().step_by(stride))
            {
                *slot += self.predict_tree(root, row);
            }
        }
        // Divide rather than multiply by a precomputed reciprocal: `x * (1/n)`
        // can differ from `x / n` in the last ulp, and parity with
        // `predict_output` must be exact.
        for slot in acc.iter_mut().step_by(stride) {
            *slot /= roots.len() as f64;
        }
    }

    /// Rows per parallel work unit: large enough to amortize the per-block
    /// tree sweep, small enough to load-balance and keep accumulators in L1.
    const BLOCK_ROWS: usize = 256;

    /// First-output predictions for a flat row-major `n × n_features` batch,
    /// in parallel, order-preserving.
    pub fn predict_batch(&self, rows: &[f64]) -> Vec<f64> {
        assert_eq!(rows.len() % self.n_features, 0, "ragged batch");
        let n_rows = rows.len() / self.n_features;
        let mut out = vec![0.0f64; n_rows];
        rows.par_chunks(self.n_features * Self::BLOCK_ROWS)
            .zip(out.par_chunks_mut(Self::BLOCK_ROWS))
            .for_each(|(rblock, oblock)| self.accumulate_block(0, rblock, oblock, 1));
        out
    }

    /// All outputs for a flat row-major batch: one parallel pass over the
    /// fused pool, blocked so each tree streams a whole block of rows.
    /// Returns one `Vec` per output (`result[k][i]` = output `k`, row `i`).
    pub fn predict_batch_multi(&self, rows: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(rows.len() % self.n_features, 0, "ragged batch");
        let n_rows = rows.len() / self.n_features;
        let n_out = self.output_trees.len();

        // Row-major scratch filled blockwise in parallel, then transposed.
        let mut flat = vec![0.0f64; n_rows * n_out];
        rows.par_chunks(self.n_features * Self::BLOCK_ROWS)
            .zip(flat.par_chunks_mut(n_out * Self::BLOCK_ROWS))
            .for_each(|(rblock, oblock)| {
                for k in 0..n_out {
                    self.accumulate_block(k, rblock, &mut oblock[k..], n_out);
                }
            });

        (0..n_out)
            .map(|k| (0..n_rows).map(|i| flat[i * n_out + k]).collect())
            .collect()
    }

    /// Feature width expected by `predict`.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of compiled outputs (source forests).
    pub fn n_outputs(&self) -> usize {
        self.output_trees.len()
    }

    /// Trees compiled for output `k`.
    pub fn n_trees(&self, k: usize) -> usize {
        let (start, end) = self.output_trees[k];
        (end - start) as usize
    }

    /// Total nodes in the pool across all outputs.
    pub fn n_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Bytes of the per-node traversal arrays (`feature` + `threshold` +
    /// `right`): the working set a batch sweep streams per tree. 16 bytes
    /// per node; compare [`QuantizedForest::pool_bytes`].
    pub fn pool_bytes(&self) -> usize {
        self.feature.len()
            * (size_of::<u32>() + size_of::<f64>() + size_of::<u32>())
    }
}

/// Why a pool could not be quantized. Callers fall back to the f64
/// [`CompiledForest`] — [`CompiledSurrogate`] does so automatically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantizeError {
    /// One feature has more distinct split thresholds than the u16 cut
    /// codes can index.
    TooManyCuts {
        /// The offending feature.
        feature: usize,
        /// Distinct thresholds the pool splits that feature on.
        cuts: usize,
        /// The capacity that was exceeded (≤ 65 535).
        capacity: usize,
    },
    /// Feature width outside the u16-indexable range (0 or > 65 535).
    FeatureWidth {
        /// The unsupported width.
        n_features: usize,
    },
}

impl std::fmt::Display for QuantizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantizeError::TooManyCuts { feature, cuts, capacity } => write!(
                f,
                "feature {feature} splits on {cuts} distinct thresholds, over the u16 cut capacity {capacity}"
            ),
            QuantizeError::FeatureWidth { n_features } => {
                write!(f, "feature width {n_features} not quantizable (need 1..=65535)")
            }
        }
    }
}

impl std::error::Error for QuantizeError {}

/// A [`CompiledForest`] with thresholds re-expressed as **u16 threshold
/// ranks**, halving the hot traversal pool (8 bytes/node vs 16) and turning
/// every split decision into an integer compare that a row-vectorized walk
/// can evaluate branchlessly.
///
/// # Quantization scheme
///
/// Per feature, the distinct split thresholds of the whole pool form a
/// sorted *cut table*. CART thresholds are midpoints between pairs of
/// [`BinnedDataset`](crate::BinnedDataset) levels (adjacent levels at the
/// root — see
/// [`BinnedDataset::split_candidates`](crate::BinnedDataset::split_candidates)
/// — arbitrary pairs deeper down), so the level structure of ordinal DSE
/// data is what keeps these tables tiny. A query value is quantized to its
/// rank against the table,
///
/// ```text
/// q(x) = #{ t in cuts[f] : t <= x }        (NaN quantizes to u16::MAX)
/// ```
///
/// and a split on threshold `t` with table rank `r` stores the u16 cut code
/// `ct = r + 1`. Traversal goes left iff `q(x) < ct`, which equals the IEEE
/// `x < t` of the f64 walk **for every query row, not just binned training
/// rows**: `q(x) ≤ r` holds exactly when `x` is below the `r`-th distinct
/// threshold. Predictions are therefore bit-identical to the source
/// [`CompiledForest`] (property-tested in `tests/properties.rs`).
///
/// # Pool layout
///
/// Leaves are encoded for a branchless walk: cut code 0 (`q < 0` is never
/// true, so every row goes "right") with the right child pointing at the
/// leaf itself, so converged rows self-loop harmlessly while other rows in
/// the same SIMD lane group keep walking. Leaf values live in a separate
/// cold array touched once per (tree, row) after traversal. A NaN split
/// threshold (defence in depth; fits never produce one) also encodes cut 0
/// — `x < NaN` is false for every `x` — but keeps its real right child.
///
/// Quantization fails ([`QuantizeError`]) when a feature exceeds 65 535
/// distinct thresholds; use [`CompiledSurrogate`] to fall back to the f64
/// pool automatically.
#[derive(Debug, Clone)]
pub struct QuantizedForest {
    n_features: usize,
    /// The hot traversal pool: one node per `u64`, packed as
    /// `feature | cut << 16 | right << 32` so a walk step is a **single
    /// 8-byte load** (the f64 pool spreads a node over three arrays) and
    /// the branchless lane walk can blend two candidate nodes with plain
    /// integer masking. `feature` is 0 at leaves (the walk still reads a
    /// code through it, so it must stay in bounds); `cut` is threshold
    /// rank + 1, with 0 meaning "every row goes right" (leaf or NaN
    /// threshold); `right` is the absolute pool index of the right child
    /// (the left child is `node + 1`), and leaves self-loop.
    nodes: Vec<u64>,
    /// Leaf prediction value per node (0.0 at splits), outside the hot
    /// traversal arrays.
    value: Vec<f64>,
    /// Per feature: sorted distinct split thresholds of the whole pool.
    cuts: Vec<Vec<f64>>,
    /// Root pool index of every tree, all outputs concatenated.
    roots: Vec<u32>,
    /// Per output: `[start, end)` range into `roots`.
    output_trees: Vec<(u32, u32)>,
}

/// Pack one traversal node; see `QuantizedForest::nodes` for the layout.
#[inline]
fn pack_node(feature: u16, cut: u16, right: u32) -> u64 {
    feature as u64 | (cut as u64) << 16 | (right as u64) << 32
}

/// Split feature of a packed node.
#[inline]
fn node_feature(n: u64) -> usize {
    (n & 0xFFFF) as usize
}

/// Cut code (threshold rank + 1) of a packed node.
#[inline]
fn node_cut(n: u64) -> u16 {
    (n >> 16) as u16
}

/// Right-child pool index of a packed node.
#[inline]
fn node_right(n: u64) -> usize {
    (n >> 32) as usize
}

impl QuantizedForest {
    /// Rows walked per vector lane group; wide enough to fill a 128/256-bit
    /// integer lane set and give the out-of-order core independent chains.
    const LANES: usize = 8;

    /// Quantize a compiled pool. Fails when a feature's distinct-threshold
    /// table exceeds 65 535 entries (see [`QuantizeError`]).
    pub fn from_compiled(c: &CompiledForest) -> Result<Self, QuantizeError> {
        Self::with_cut_capacity(c, u16::MAX as usize)
    }

    /// [`from_compiled`](Self::from_compiled) with an explicit per-feature
    /// cut-table capacity (clamped to ≤ 65 535). The production limit is
    /// the u16 range; a smaller capacity exercises the fallback path in
    /// tests without fitting a 65 536-threshold forest.
    pub fn with_cut_capacity(
        c: &CompiledForest,
        capacity: usize,
    ) -> Result<Self, QuantizeError> {
        let nf = c.n_features;
        if nf == 0 || nf > u16::MAX as usize {
            return Err(QuantizeError::FeatureWidth { n_features: nf });
        }
        let capacity = capacity.min(u16::MAX as usize);

        // Per-feature sorted distinct thresholds across the whole pool.
        let mut cuts: Vec<Vec<f64>> = vec![Vec::new(); nf];
        for (i, &f) in c.feature.iter().enumerate() {
            if f != LEAF && !c.threshold[i].is_nan() {
                cuts[f as usize].push(c.threshold[i]);
            }
        }
        for (f, table) in cuts.iter_mut().enumerate() {
            table.sort_by(|a, b| feature_cmp(*a, *b));
            table.dedup_by(|a, b| feature_eq(*a, *b));
            if table.len() > capacity {
                return Err(QuantizeError::TooManyCuts { feature: f, cuts: table.len(), capacity });
            }
        }

        let n = c.feature.len();
        let mut q = QuantizedForest {
            n_features: nf,
            nodes: Vec::with_capacity(n),
            value: Vec::with_capacity(n),
            cuts,
            roots: c.roots.clone(),
            output_trees: c.output_trees.clone(),
        };
        for (i, &f) in c.feature.iter().enumerate() {
            if f == LEAF {
                q.nodes.push(pack_node(0, 0, i as u32));
                q.value.push(c.threshold[i]);
            } else {
                let t = c.threshold[i];
                let table = &q.cuts[f as usize];
                let ct = if t.is_nan() {
                    0
                } else {
                    let rank = table.partition_point(|v| feature_cmp(*v, t) == Ordering::Less);
                    debug_assert!(feature_eq(table[rank], t), "threshold missing from its cut table");
                    (rank + 1) as u16
                };
                q.nodes.push(pack_node(f as u16, ct, c.right[i]));
                q.value.push(0.0);
            }
        }
        // One self-looping sentinel past the pool keeps the lane walk's
        // speculative left-child fetch (`nodes[i + 1]`) in bounds when a
        // lane idles on the pool's final leaf, without a per-step clamp.
        // No lane can ever *select* it: leaves blend toward `right == i`.
        q.nodes.push(pack_node(0, 0, n as u32));
        Ok(q)
    }

    /// Rank of `x` against one cut table: the count of thresholds ≤ `x`.
    #[inline]
    fn quantize_value(cuts: &[f64], x: f64) -> u16 {
        if x.is_nan() {
            // NaN is above every threshold (`x < t` false everywhere), and
            // so is the max rank: q = 65535 can never be below a cut code.
            u16::MAX
        } else {
            cuts.partition_point(|t| *t <= x) as u16
        }
    }

    /// Quantize a flat row-major `n × n_features` batch into per-value
    /// threshold ranks (same layout).
    ///
    /// # Panics
    /// If `rows.len()` is not a multiple of the feature width.
    pub fn quantize_rows(&self, rows: &[f64]) -> Vec<u16> {
        assert_eq!(rows.len() % self.n_features, 0, "ragged batch");
        let mut codes = Vec::with_capacity(rows.len());
        for row in rows.chunks_exact(self.n_features) {
            for (f, &x) in row.iter().enumerate() {
                codes.push(Self::quantize_value(&self.cuts[f], x));
            }
        }
        codes
    }

    /// Walk one tree for one quantized row.
    #[inline]
    fn walk(&self, root: u32, codes: &[u16]) -> f64 {
        let mut i = root as usize;
        loop {
            let n = self.nodes[i];
            let r = node_right(n);
            if r == i {
                return self.value[i];
            }
            i = if codes[node_feature(n)] < node_cut(n) { i + 1 } else { r };
        }
    }

    /// Mean prediction of output `k` for one quantized row, accumulating in
    /// ensemble order (bit-identical to [`CompiledForest`]).
    fn predict_output(&self, k: usize, codes: &[u16]) -> f64 {
        let (start, end) = self.output_trees[k];
        let roots = &self.roots[start as usize..end as usize];
        let sum: f64 = roots.iter().map(|&r| self.walk(r, codes)).sum();
        sum / roots.len() as f64
    }

    fn quantize_row(&self, row: &[f64]) -> Vec<u16> {
        assert_eq!(row.len(), self.n_features, "feature width mismatch");
        row.iter()
            .enumerate()
            .map(|(f, &x)| Self::quantize_value(&self.cuts[f], x))
            .collect()
    }

    /// Prediction of the first (or only) output for one row.
    ///
    /// # Panics
    /// If `row.len() != n_features`.
    pub fn predict(&self, row: &[f64]) -> f64 {
        self.predict_output(0, &self.quantize_row(row))
    }

    /// All outputs for one row, written into `out`.
    ///
    /// # Panics
    /// If `row.len() != n_features` or `out.len() != n_outputs`.
    pub fn predict_into(&self, row: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), self.output_trees.len(), "output width mismatch");
        let codes = self.quantize_row(row);
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.predict_output(k, &codes);
        }
    }

    /// Score every tree of output `k` against a block of quantized rows.
    /// Same shape as [`CompiledForest::accumulate_block`] — trees outer so
    /// each tree's nodes stay cache-hot, one add per (tree, row) in
    /// ensemble order, final division not reciprocal-multiplication — but
    /// rows advance [`Self::LANES`] at a time: every tree level updates all
    /// lanes with a branchless select, and the group stops once all lanes
    /// have converged onto self-looping leaves.
    fn accumulate_block(&self, k: usize, codes: &[u16], acc: &mut [f64], stride: usize) {
        let nf = self.n_features;
        let n_rows = codes.len() / nf;
        let (start, end) = self.output_trees[k];
        let roots = &self.roots[start as usize..end as usize];
        for &root in roots {
            let root_node = self.nodes[root as usize];
            let mut r = 0;
            while r + Self::LANES <= n_rows {
                let base = r * nf;
                let mut idx = [root; Self::LANES];
                let mut node = [root_node; Self::LANES];
                loop {
                    let prev = idx;
                    // Four levels per convergence check: the pool is laid
                    // out preorder (both children of a split come after
                    // it), so a lane's index strictly increases until it
                    // self-loops on a leaf — `idx == prev` over a 4-level
                    // stride is still an exact "all lanes converged" test,
                    // and the checkless unrolled body keeps the lane
                    // state in registers.
                    for _ in 0..4 {
                        for l in 0..Self::LANES {
                            let i = idx[l] as usize;
                            let n = node[l];
                            // Speculative dual child fetch: both children's
                            // addresses are known from (i, n) alone, so
                            // their loads run concurrently with the code
                            // load instead of after the compare — the
                            // level-to-level chain is one masked blend, not
                            // a dependent load. The blend is integer
                            // masking rather than `if`/`select` so the
                            // optimizer cannot refold the two loads into
                            // one load of a selected address (which would
                            // put the node fetch back behind the compare).
                            //
                            // SAFETY: every pool index the walk can produce
                            // is in bounds by construction — roots and
                            // right children are indices of the same pool,
                            // `i + 1` is the left child a split node always
                            // has (the trailing sentinel keeps it loadable
                            // when a lane idles on the final leaf, which
                            // never selects it), and leaves self-loop. The
                            // code index is in bounds because
                            // `feature < n_features` for every node and
                            // `base + l·nf` addresses a row below `n_rows`
                            // (`r + LANES <= n_rows` guards the group).
                            let left = unsafe { *self.nodes.get_unchecked(i + 1) };
                            let right = unsafe { *self.nodes.get_unchecked(node_right(n)) };
                            let q = unsafe {
                                *codes.get_unchecked(base + l * nf + node_feature(n))
                            };
                            let m = ((q < node_cut(n)) as u32).wrapping_neg();
                            idx[l] = (i as u32 + 1) & m | (n >> 32) as u32 & !m;
                            let m = m as i32 as i64 as u64; // sign-extend to a 64-bit mask
                            node[l] = left & m | right & !m;
                        }
                    }
                    if idx == prev {
                        break;
                    }
                }
                for (l, &i) in idx.iter().enumerate() {
                    acc[(r + l) * stride] += self.value[i as usize];
                }
                r += Self::LANES;
            }
            for row in r..n_rows {
                acc[row * stride] += self.walk(root, &codes[row * nf..(row + 1) * nf]);
            }
        }
        for row in 0..n_rows {
            acc[row * stride] /= roots.len() as f64;
        }
    }

    /// First-output predictions for a flat row-major batch, in parallel,
    /// order-preserving; bit-identical to [`CompiledForest::predict_batch`].
    pub fn predict_batch(&self, rows: &[f64]) -> Vec<f64> {
        let codes = self.quantize_rows(rows);
        let n_rows = codes.len() / self.n_features;
        let mut out = vec![0.0f64; n_rows];
        codes
            .par_chunks(self.n_features * CompiledForest::BLOCK_ROWS)
            .zip(out.par_chunks_mut(CompiledForest::BLOCK_ROWS))
            .for_each(|(cblock, oblock)| self.accumulate_block(0, cblock, oblock, 1));
        out
    }

    /// All outputs for a flat row-major batch; bit-identical to
    /// [`CompiledForest::predict_batch_multi`].
    pub fn predict_batch_multi(&self, rows: &[f64]) -> Vec<Vec<f64>> {
        let codes = self.quantize_rows(rows);
        let n_rows = codes.len() / self.n_features;
        let n_out = self.output_trees.len();

        let mut flat = vec![0.0f64; n_rows * n_out];
        codes
            .par_chunks(self.n_features * CompiledForest::BLOCK_ROWS)
            .zip(flat.par_chunks_mut(n_out * CompiledForest::BLOCK_ROWS))
            .for_each(|(cblock, oblock)| {
                for k in 0..n_out {
                    self.accumulate_block(k, cblock, &mut oblock[k..], n_out);
                }
            });

        (0..n_out)
            .map(|k| (0..n_rows).map(|i| flat[i * n_out + k]).collect())
            .collect()
    }

    /// Feature width expected by `predict`.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of compiled outputs (source forests).
    pub fn n_outputs(&self) -> usize {
        self.output_trees.len()
    }

    /// Trees compiled for output `k`.
    pub fn n_trees(&self, k: usize) -> usize {
        let (start, end) = self.output_trees[k];
        (end - start) as usize
    }

    /// Total nodes in the pool across all outputs.
    pub fn n_nodes(&self) -> usize {
        // `nodes` carries one extra sentinel (see `with_cut_capacity`);
        // `value` is exactly the tree nodes.
        self.value.len()
    }

    /// Distinct split thresholds for feature `f` (the cut-table size).
    pub fn n_cuts(&self, f: usize) -> usize {
        self.cuts[f].len()
    }

    /// Bytes of the packed per-node traversal pool: the working set the
    /// blocked walk streams per tree. 8 bytes per node (plus one trailing
    /// sentinel node) — half of [`CompiledForest::pool_bytes`]; leaf
    /// values and cut tables live outside the hot pool.
    pub fn pool_bytes(&self) -> usize {
        self.nodes.len() * size_of::<u64>()
    }
}

/// The quantized-if-possible surrogate engine: a [`QuantizedForest`] when
/// every feature fits the u16 cut tables, otherwise the f64
/// [`CompiledForest`]. Both variants predict bit-identically, so callers
/// never observe which one they got except through speed and
/// [`is_quantized`](Self::is_quantized).
#[derive(Debug, Clone)]
pub enum CompiledSurrogate {
    /// The u16 threshold-rank pool (the fast path).
    Quantized(QuantizedForest),
    /// The f64 fallback for pools a feature of which exceeds 65 535
    /// distinct thresholds.
    Compiled(CompiledForest),
}

impl CompiledSurrogate {
    /// Compile several forests (one per objective) into a fused pool,
    /// quantizing when possible.
    pub fn compile_multi(forests: &[&RandomForest]) -> Self {
        let c = CompiledForest::compile_multi(forests);
        match QuantizedForest::from_compiled(&c) {
            Ok(q) => CompiledSurrogate::Quantized(q),
            Err(_) => CompiledSurrogate::Compiled(c),
        }
    }

    /// Compile a single forest, quantizing when possible.
    pub fn compile(forest: &RandomForest) -> Self {
        Self::compile_multi(&[forest])
    }

    /// `true` when the u16 pool is in use.
    pub fn is_quantized(&self) -> bool {
        matches!(self, CompiledSurrogate::Quantized(_))
    }

    /// Number of compiled outputs (source forests).
    pub fn n_outputs(&self) -> usize {
        match self {
            CompiledSurrogate::Quantized(q) => q.n_outputs(),
            CompiledSurrogate::Compiled(c) => c.n_outputs(),
        }
    }

    /// All outputs for a flat row-major batch (`result[k][i]` = output `k`,
    /// row `i`), bit-identical between the two variants.
    pub fn predict_batch_multi(&self, rows: &[f64]) -> Vec<Vec<f64>> {
        match self {
            CompiledSurrogate::Quantized(q) => q.predict_batch_multi(rows),
            CompiledSurrogate::Compiled(c) => c.predict_batch_multi(rows),
        }
    }

    /// First-output predictions for a flat row-major batch.
    pub fn predict_batch(&self, rows: &[f64]) -> Vec<f64> {
        match self {
            CompiledSurrogate::Quantized(q) => q.predict_batch(rows),
            CompiledSurrogate::Compiled(c) => c.predict_batch(rows),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::forest::ForestConfig;

    fn data(seed: u64) -> Dataset {
        let mut d = Dataset::new(3);
        for i in 0..240u64 {
            let x = ((i * 7 + seed) % 19) as f64 * 0.4;
            let y = ((i * 13) % 11) as f64;
            let z = (i % 5) as f64;
            d.push_row(&[x, y, z], x * 2.0 - y + (z * 0.9).sin());
        }
        d
    }

    fn probe_rows(n: usize) -> Vec<f64> {
        (0..n)
            .flat_map(|i| {
                [
                    (i % 23) as f64 * 0.3,
                    (i % 7) as f64 * 1.1,
                    (i % 4) as f64,
                ]
            })
            .collect()
    }

    #[test]
    fn single_forest_matches_exactly() {
        let d = data(0);
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 25, seed: 3, ..Default::default() });
        let c = CompiledForest::compile(&f);
        assert_eq!(c.n_outputs(), 1);
        assert_eq!(c.n_trees(0), 25);
        let rows = probe_rows(64);
        for row in rows.chunks(3) {
            assert_eq!(c.predict(row), f.predict(row));
        }
        assert_eq!(c.predict_batch(&rows), f.predict_batch(&rows));
    }

    #[test]
    fn multi_output_matches_each_source() {
        let d1 = data(1);
        let d2 = data(2);
        let f1 = RandomForest::fit(&d1, &ForestConfig { n_trees: 12, seed: 5, ..Default::default() });
        let f2 = RandomForest::fit(&d2, &ForestConfig { n_trees: 18, seed: 9, ..Default::default() });
        let c = CompiledForest::compile_multi(&[&f1, &f2]);
        assert_eq!(c.n_outputs(), 2);
        assert_eq!((c.n_trees(0), c.n_trees(1)), (12, 18));

        let rows = probe_rows(50);
        let preds = c.predict_batch_multi(&rows);
        assert_eq!(preds[0], f1.predict_batch(&rows));
        assert_eq!(preds[1], f2.predict_batch(&rows));

        let mut out = [0.0; 2];
        c.predict_into(&rows[0..3], &mut out);
        assert_eq!(out[0], f1.predict(&rows[0..3]));
        assert_eq!(out[1], f2.predict(&rows[0..3]));
    }

    #[test]
    fn single_leaf_trees_compile() {
        // Constant target → every tree is a single leaf.
        let mut d = Dataset::new(1);
        for i in 0..30 {
            d.push_row(&[i as f64], 4.0);
        }
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 5, seed: 1, ..Default::default() });
        let c = CompiledForest::compile(&f);
        assert_eq!(c.predict(&[2.0]), 4.0);
        assert_eq!(c.n_nodes(), 5);
    }

    #[test]
    fn quantized_matches_compiled_on_arbitrary_rows() {
        let d1 = data(3);
        let d2 = data(7);
        let f1 = RandomForest::fit(&d1, &ForestConfig { n_trees: 14, seed: 2, ..Default::default() });
        let f2 = RandomForest::fit(&d2, &ForestConfig { n_trees: 9, seed: 11, ..Default::default() });
        let c = CompiledForest::compile_multi(&[&f1, &f2]);
        let q = QuantizedForest::from_compiled(&c).expect("small pool quantizes");
        assert_eq!(q.n_outputs(), 2);
        assert_eq!((q.n_trees(0), q.n_trees(1)), (14, 9));
        assert_eq!(q.n_nodes(), c.n_nodes());
        // Half the f64 pool, plus the 8-byte walk sentinel.
        assert_eq!(q.pool_bytes(), c.pool_bytes() / 2 + 8);

        // Probe rows are off the training grid on purpose: exactness must
        // hold for arbitrary queries, not just binned training data.
        let mut rows = probe_rows(700);
        for (i, v) in rows.iter_mut().enumerate() {
            *v += (i % 13) as f64 * 0.017 - 0.1;
        }
        assert_eq!(q.predict_batch(&rows), c.predict_batch(&rows));
        assert_eq!(q.predict_batch_multi(&rows), c.predict_batch_multi(&rows));
        for row in rows.chunks(3).take(40) {
            assert_eq!(q.predict(row), c.predict(row));
            let (mut qo, mut co) = ([0.0; 2], [0.0; 2]);
            q.predict_into(row, &mut qo);
            c.predict_into(row, &mut co);
            assert_eq!(qo, co);
        }
    }

    #[test]
    fn quantized_handles_non_finite_queries_like_compiled() {
        let d = data(5);
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 8, seed: 4, ..Default::default() });
        let c = CompiledForest::compile(&f);
        let q = QuantizedForest::from_compiled(&c).unwrap();
        let specials = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, 0.0, 1e300];
        let mut rows = Vec::new();
        for (i, &a) in specials.iter().enumerate() {
            for &b in &specials {
                rows.extend_from_slice(&[a, b, (i % 3) as f64]);
            }
        }
        let qp = q.predict_batch(&rows);
        let cp = c.predict_batch(&rows);
        assert_eq!(qp, cp);
    }

    #[test]
    fn cut_capacity_overflow_reports_the_feature() {
        let d = data(0);
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 10, seed: 6, ..Default::default() });
        let c = CompiledForest::compile(&f);
        let q = QuantizedForest::from_compiled(&c).unwrap();
        // Force the fallback with a capacity below the real table size.
        let cap = q.n_cuts(0).saturating_sub(1);
        match QuantizedForest::with_cut_capacity(&c, cap) {
            Err(QuantizeError::TooManyCuts { feature: 0, cuts, capacity }) => {
                assert_eq!(cuts, q.n_cuts(0));
                assert_eq!(capacity, cap);
            }
            other => panic!("expected TooManyCuts for feature 0, got {other:?}"),
        }
    }

    #[test]
    fn surrogate_falls_back_when_not_quantizable() {
        let d = data(9);
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 6, seed: 8, ..Default::default() });
        let s = CompiledSurrogate::compile(&f);
        assert!(s.is_quantized(), "small pools must take the quantized path");
        let rows = probe_rows(40);
        assert_eq!(s.predict_batch(&rows), f.predict_batch(&rows));
        assert_eq!(s.n_outputs(), 1);

        // Zero-width pools are never quantizable; the surrogate still works.
        let mut d0 = Dataset::new(0);
        for i in 0..8 {
            d0.push_row(&[], i as f64);
        }
        let f0 = RandomForest::fit(&d0, &ForestConfig { n_trees: 3, seed: 1, ..Default::default() });
        let c0 = CompiledForest::compile(&f0);
        assert_eq!(
            QuantizedForest::from_compiled(&c0).err(),
            Some(QuantizeError::FeatureWidth { n_features: 0 })
        );
        let s0 = CompiledSurrogate::compile(&f0);
        assert!(!s0.is_quantized());
    }

    #[test]
    fn quantized_single_leaf_trees() {
        let mut d = Dataset::new(1);
        for i in 0..30 {
            d.push_row(&[i as f64], 4.0);
        }
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 5, seed: 1, ..Default::default() });
        let c = CompiledForest::compile(&f);
        let q = QuantizedForest::from_compiled(&c).unwrap();
        assert_eq!(q.n_cuts(0), 0, "no splits, no cuts");
        assert_eq!(q.predict(&[2.0]), 4.0);
        assert_eq!(q.predict_batch(&[1.0, 5.0, 99.0]), vec![4.0; 3]);
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn mismatched_widths_panic() {
        let f1 = RandomForest::fit(&data(0), &ForestConfig { n_trees: 2, ..Default::default() });
        let mut d = Dataset::new(1);
        for i in 0..20 {
            d.push_row(&[i as f64], i as f64);
        }
        let f2 = RandomForest::fit(&d, &ForestConfig { n_trees: 2, ..Default::default() });
        CompiledForest::compile_multi(&[&f1, &f2]);
    }
}
