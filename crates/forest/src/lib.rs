//! Randomized decision forest regression.
//!
//! This crate implements, from scratch, the surrogate model used by
//! HyperMapper (Nardi et al., iWAPT 2017): an ensemble of CART regression
//! trees ("randomized decision forests", Breiman 1984/2001) with
//!
//! * bootstrap aggregation (bagging),
//! * per-split random feature subsetting (`mtry`),
//! * out-of-bag (OOB) error estimation,
//! * impurity-based and permutation-based feature importance,
//! * ensemble mean **and** spread prediction (the spread drives
//!   exploration in active learning).
//!
//! Training is deterministic given a seed, and trees train in parallel with
//! Rayon.
//!
//! # Example
//!
//! ```
//! use randforest::{Dataset, ForestConfig, RandomForest};
//!
//! // y = 2·x0 with a little structure in x1.
//! let mut data = Dataset::new(2);
//! for i in 0..200 {
//!     let x0 = (i % 50) as f64 / 10.0;
//!     let x1 = (i % 7) as f64;
//!     data.push_row(&[x0, x1], 2.0 * x0 + 0.1 * x1);
//! }
//! let config = ForestConfig { n_trees: 30, seed: 42, ..Default::default() };
//! let forest = RandomForest::fit(&data, &config);
//! let pred = forest.predict(&[2.5, 3.0]);
//! assert!((pred - 5.3).abs() < 1.0);
//! ```

pub mod binning;
pub mod compiled;
pub mod dataset;
pub mod forest;
pub mod pred_cache;
pub mod tree;

pub use binning::BinnedDataset;
pub use compiled::{CompiledForest, CompiledSurrogate, QuantizeError, QuantizedForest};
pub use dataset::{DataError, Dataset};
pub use forest::{ForestConfig, RandomForest};
pub use pred_cache::PredictionCache;
pub use tree::{RegressionTree, SplitMethod, TreeConfig};

use std::cmp::Ordering;

/// Total order over feature values, used by every sort in split finding.
///
/// * Non-NaN values compare by IEEE order, with `-0.0 == +0.0` — exactly
///   the ordering `partial_cmp` gives on NaN-free data, so fitted trees are
///   bit-for-bit unchanged for all valid datasets.
/// * Every NaN compares equal to every other NaN and **greater** than every
///   number, so a NaN can never panic a sort or land between two numbers.
///
/// This is deliberately *not* [`f64::total_cmp`]: `total_cmp` orders
/// `-0.0 < +0.0` and distinguishes NaN payloads, which would let split
/// finding place a threshold *between* the two zeros — a split that
/// prediction's IEEE `<=` comparison cannot honour (both zeros take the
/// same branch). NaN never reaches a fit through the public API
/// ([`Dataset::push_row`] rejects non-finite rows); the defined ordering is
/// defence in depth, not a supported data path.
pub fn feature_cmp(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => {
            if a < b {
                Ordering::Less
            } else if a > b {
                Ordering::Greater
            } else {
                Ordering::Equal
            }
        }
    }
}

/// Equality under [`feature_cmp`]: IEEE `==` plus "all NaNs are the same
/// level".
pub fn feature_eq(a: f64, b: f64) -> bool {
    feature_cmp(a, b) == Ordering::Equal
}

#[cfg(test)]
mod cmp_tests {
    use super::*;

    #[test]
    fn matches_ieee_on_numbers() {
        assert_eq!(feature_cmp(1.0, 2.0), Ordering::Less);
        assert_eq!(feature_cmp(2.0, 1.0), Ordering::Greater);
        assert_eq!(feature_cmp(1.5, 1.5), Ordering::Equal);
        assert_eq!(feature_cmp(f64::NEG_INFINITY, f64::INFINITY), Ordering::Less);
    }

    #[test]
    fn zeros_are_equal_unlike_total_cmp() {
        assert_eq!(feature_cmp(-0.0, 0.0), Ordering::Equal);
        assert_eq!((-0.0f64).total_cmp(&0.0), Ordering::Less); // the hazard we avoid
    }

    #[test]
    fn nan_is_one_level_above_everything() {
        assert_eq!(feature_cmp(f64::NAN, f64::NAN), Ordering::Equal);
        assert_eq!(feature_cmp(f64::NAN, f64::INFINITY), Ordering::Greater);
        assert_eq!(feature_cmp(1.0, f64::NAN), Ordering::Less);
        // Payload-distinct NaNs still collapse to one level.
        let other_nan = f64::from_bits(f64::NAN.to_bits() ^ 1);
        assert!(other_nan.is_nan());
        assert_eq!(feature_cmp(f64::NAN, other_nan), Ordering::Equal);
    }

    #[test]
    fn sorting_with_nans_never_panics_and_is_stable() {
        let mut v = vec![2.0, f64::NAN, -1.0, f64::NAN, 0.0];
        v.sort_by(|a, b| feature_cmp(*a, *b));
        assert_eq!(&v[..3], &[-1.0, 0.0, 2.0]);
        assert!(v[3].is_nan() && v[4].is_nan());
    }
}
