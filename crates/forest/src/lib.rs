//! Randomized decision forest regression.
//!
//! This crate implements, from scratch, the surrogate model used by
//! HyperMapper (Nardi et al., iWAPT 2017): an ensemble of CART regression
//! trees ("randomized decision forests", Breiman 1984/2001) with
//!
//! * bootstrap aggregation (bagging),
//! * per-split random feature subsetting (`mtry`),
//! * out-of-bag (OOB) error estimation,
//! * impurity-based and permutation-based feature importance,
//! * ensemble mean **and** spread prediction (the spread drives
//!   exploration in active learning).
//!
//! Training is deterministic given a seed, and trees train in parallel with
//! Rayon.
//!
//! # Example
//!
//! ```
//! use randforest::{Dataset, ForestConfig, RandomForest};
//!
//! // y = 2·x0 with a little structure in x1.
//! let mut data = Dataset::new(2);
//! for i in 0..200 {
//!     let x0 = (i % 50) as f64 / 10.0;
//!     let x1 = (i % 7) as f64;
//!     data.push_row(&[x0, x1], 2.0 * x0 + 0.1 * x1);
//! }
//! let config = ForestConfig { n_trees: 30, seed: 42, ..Default::default() };
//! let forest = RandomForest::fit(&data, &config);
//! let pred = forest.predict(&[2.5, 3.0]);
//! assert!((pred - 5.3).abs() < 1.0);
//! ```

pub mod binning;
pub mod compiled;
pub mod dataset;
pub mod forest;
pub mod tree;

pub use binning::BinnedDataset;
pub use compiled::CompiledForest;
pub use dataset::Dataset;
pub use forest::{ForestConfig, RandomForest};
pub use tree::{RegressionTree, SplitMethod, TreeConfig};
