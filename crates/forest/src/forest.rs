//! Bagged ensembles of regression trees.

use crate::binning::BinnedDataset;
use crate::dataset::Dataset;
use crate::tree::{RegressionTree, SplitMethod, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Hyper-parameters for a random forest.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestConfig {
    /// Number of trees in the ensemble.
    pub n_trees: usize,
    /// Per-tree CART parameters. A `tree.mtry` of 0 is replaced by
    /// `n_features` — every split considers every feature, scikit-learn's
    /// regression default (see the note in [`RandomForest::fit`]).
    pub tree: TreeConfig,
    /// Bootstrap sample size as a fraction of the training set (1.0 = classic
    /// bagging with replacement).
    pub bootstrap_fraction: f64,
    /// Master RNG seed; the whole fit is deterministic given this.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 100,
            tree: TreeConfig::default(),
            bootstrap_fraction: 1.0,
            seed: 0,
        }
    }
}

/// A fitted random forest regressor.
///
/// The ensemble prediction is the mean of the tree predictions; the spread
/// across trees ([`RandomForest::predict_with_spread`]) is a cheap
/// uncertainty proxy used by active learning.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
    /// Per-tree out-of-bag row indices (rows *not* drawn by that tree's
    /// bootstrap), kept for OOB error estimation.
    oob_rows: Vec<Vec<u32>>,
    n_features: usize,
}

impl RandomForest {
    /// Fit `config.n_trees` trees on bootstrap resamples of `data`.
    ///
    /// Trees train in parallel; each tree derives its own RNG from
    /// `config.seed` and its index, so results do not depend on scheduling.
    ///
    /// # Panics
    /// If `data` is empty or `config.n_trees == 0`.
    pub fn fit(data: &Dataset, config: &ForestConfig) -> RandomForest {
        // Level codes are a property of the dataset rows, not of any one
        // bootstrap resample, so one binning pass serves every tree. Trees
        // fitted with bins are bit-for-bit identical to unbinned fits.
        let bins = match config.tree.split {
            SplitMethod::Exact => None,
            SplitMethod::Histogram | SplitMethod::Auto => Some(BinnedDataset::new(data)),
        };
        Self::fit_inner(data, bins.as_ref(), config)
    }

    /// [`RandomForest::fit`] with a caller-maintained level index, for
    /// warm-start refits: active learning appends a few rows per iteration,
    /// so the caller keeps one [`BinnedDataset`] alive across iterations
    /// (and across objectives — the feature matrix is shared, only targets
    /// differ) and extends it with [`BinnedDataset::append_rows`] instead
    /// of re-indexing the whole history every refit.
    ///
    /// The fitted forest is **bit-for-bit identical** to a cold
    /// [`RandomForest::fit`] on the same data: trees never look at how the
    /// index was built, only at the level tables and codes, and
    /// `append_rows` reproduces the fresh build exactly.
    ///
    /// Under [`SplitMethod::Exact`] the bins are ignored (that path sorts
    /// raw values per node), but the call is still valid so callers need
    /// not branch on the split method.
    ///
    /// # Panics
    /// If `bins` does not cover exactly `data`'s rows and feature width,
    /// or `data` is empty, or `config.n_trees == 0`.
    pub fn fit_with_bins(
        data: &Dataset,
        bins: &BinnedDataset,
        config: &ForestConfig,
    ) -> RandomForest {
        assert_eq!(bins.n_rows(), data.len(), "bins cover a different row count than the dataset");
        assert_eq!(bins.n_features(), data.n_features(), "bins/dataset feature width mismatch");
        let bins = match config.tree.split {
            SplitMethod::Exact => None,
            SplitMethod::Histogram | SplitMethod::Auto => Some(bins),
        };
        Self::fit_inner(data, bins, config)
    }

    fn fit_inner(
        data: &Dataset,
        bins: Option<&BinnedDataset>,
        config: &ForestConfig,
    ) -> RandomForest {
        assert!(!data.is_empty(), "cannot fit a forest on an empty dataset");
        assert!(config.n_trees > 0, "n_trees must be positive");
        let n = data.len();
        let mut tree_cfg = config.tree.clone();
        if tree_cfg.mtry == 0 {
            // All features, scikit-learn's regression default (and what the
            // reference HyperMapper inherits from RandomForestRegressor).
            // The R-randomForest p/3 heuristic we shipped with is actively
            // harmful at the feature counts surrogates see here: with p = 2
            // it gives mtry = 1, so half of all splits never even get to
            // look at the informative feature (DESIGN.md §14).
            tree_cfg.mtry = data.n_features();
        }
        let sample_size = ((n as f64 * config.bootstrap_fraction).round() as usize).clamp(1, n * 4);

        let fitted: Vec<(RegressionTree, Vec<u32>)> = (0..config.n_trees)
            .into_par_iter()
            .map(|t| {
                // splitmix-style decorrelation of per-tree seeds
                let tree_seed = config
                    .seed
                    .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1));
                let mut rng = StdRng::seed_from_u64(tree_seed);
                let mut in_bag = vec![false; n];
                let mut indices = Vec::with_capacity(sample_size);
                for _ in 0..sample_size {
                    let i = rng.gen_range(0..n);
                    in_bag[i] = true;
                    indices.push(i);
                }
                let tree = match bins {
                    Some(b) => RegressionTree::fit_binned(data, b, &indices, &tree_cfg, &mut rng),
                    None => RegressionTree::fit(data, &indices, &tree_cfg, &mut rng),
                };
                let oob: Vec<u32> = (0..n as u32).filter(|&i| !in_bag[i as usize]).collect();
                (tree, oob)
            })
            .collect();

        let (trees, oob_rows) = fitted.into_iter().unzip();
        RandomForest { trees, oob_rows, n_features: data.n_features() }
    }

    /// Ensemble mean prediction for one row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.predict(row)).sum();
        sum / self.trees.len() as f64
    }

    /// Ensemble mean and standard deviation across trees.
    pub fn predict_with_spread(&self, row: &[f64]) -> (f64, f64) {
        let n = self.trees.len() as f64;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for t in &self.trees {
            let p = t.predict(row);
            sum += p;
            sq += p * p;
        }
        let mean = sum / n;
        let var = (sq / n - mean * mean).max(0.0);
        (mean, var.sqrt())
    }

    /// Predict a batch of rows in parallel. `rows` is a flat
    /// `n × n_features` row-major buffer.
    pub fn predict_batch(&self, rows: &[f64]) -> Vec<f64> {
        assert_eq!(rows.len() % self.n_features, 0, "ragged batch");
        rows.par_chunks(self.n_features).map(|r| self.predict(r)).collect()
    }

    /// Out-of-bag root-mean-squared error: each training row is predicted by
    /// the trees that did *not* see it. `None` if no row is OOB anywhere
    /// (tiny data / huge bootstrap).
    pub fn oob_rmse(&self, data: &Dataset) -> Option<f64> {
        let n = data.len();
        let mut sums = vec![0.0f64; n];
        let mut counts = vec![0u32; n];
        for (tree, oob) in self.trees.iter().zip(&self.oob_rows) {
            for &i in oob {
                let i = i as usize;
                if i < n {
                    sums[i] += tree.predict(data.row(i));
                    counts[i] += 1;
                }
            }
        }
        let mut se = 0.0;
        let mut covered = 0usize;
        for i in 0..n {
            if counts[i] > 0 {
                let pred = sums[i] / counts[i] as f64;
                let d = pred - data.target(i);
                se += d * d;
                covered += 1;
            }
        }
        if covered == 0 {
            None
        } else {
            Some((se / covered as f64).sqrt())
        }
    }

    /// Normalized impurity-based feature importance (sums to 1, or all zeros
    /// when no split was ever made).
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut total = vec![0.0; self.n_features];
        for t in &self.trees {
            for (a, b) in total.iter_mut().zip(t.feature_importance()) {
                *a += b;
            }
        }
        let s: f64 = total.iter().sum();
        if s > 0.0 {
            for v in &mut total {
                *v /= s;
            }
        }
        total
    }

    /// Permutation importance: the increase in RMSE on `data` when feature
    /// `f`'s column is shuffled, averaged over `repeats` shuffles.
    /// More expensive but less biased than impurity importance.
    ///
    /// Features are scored in parallel; each draws its own RNG stream from
    /// `seed`, so the result is deterministic regardless of scheduling.
    pub fn permutation_importance(&self, data: &Dataset, repeats: usize, seed: u64) -> Vec<f64> {
        let n = data.len();
        let base = self.rmse_on(data);
        let repeats = repeats.max(1);
        (0..self.n_features)
            .into_par_iter()
            .map(|f| {
                // splitmix-style decorrelation, matching the per-tree seeds
                let feat_seed =
                    seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(f as u64 + 1));
                let mut rng = StdRng::seed_from_u64(feat_seed);
                let mut row_buf = vec![0.0f64; self.n_features];
                let mut perm: Vec<usize> = Vec::with_capacity(n);
                let mut delta = 0.0;
                for _ in 0..repeats {
                    // Fisher–Yates permutation of row order for column f.
                    perm.clear();
                    perm.extend(0..n);
                    for i in (1..n).rev() {
                        let j = rng.gen_range(0..=i);
                        perm.swap(i, j);
                    }
                    let mut se = 0.0;
                    for i in 0..n {
                        row_buf.copy_from_slice(data.row(i));
                        row_buf[f] = data.feature(perm[i], f);
                        let d = self.predict(&row_buf) - data.target(i);
                        se += d * d;
                    }
                    delta += (se / n as f64).sqrt() - base;
                }
                (delta / repeats as f64).max(0.0)
            })
            .collect()
    }

    /// Training-set RMSE (optimistic; prefer [`RandomForest::oob_rmse`]).
    pub fn rmse_on(&self, data: &Dataset) -> f64 {
        let n = data.len();
        if n == 0 {
            return 0.0;
        }
        let se: f64 = (0..n)
            .map(|i| {
                let d = self.predict(data.row(i)) - data.target(i);
                d * d
            })
            .sum();
        (se / n as f64).sqrt()
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Fitted trees in ensemble order (for compilation).
    pub(crate) fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }

    /// Feature width expected by `predict`.
    pub fn n_features(&self) -> usize {
        self.n_features
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize) -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..n {
            let x = (i % 37) as f64 * 0.3;
            let y = ((i * 7) % 23) as f64 * 0.1;
            d.push_row(&[x, y], 3.0 * x - 2.0 * y + 1.0);
        }
        d
    }

    #[test]
    fn fits_linear_function_well() {
        let d = linear_data(500);
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 50, seed: 1, ..Default::default() });
        let mut err = 0.0;
        for i in 0..100 {
            let x = (i % 37) as f64 * 0.3;
            let y = ((i * 7) % 23) as f64 * 0.1;
            err += (f.predict(&[x, y]) - (3.0 * x - 2.0 * y + 1.0)).abs();
        }
        err /= 100.0;
        assert!(err < 0.5, "mean abs error {err}");
    }

    #[test]
    fn deterministic_given_seed() {
        let d = linear_data(200);
        let cfg = ForestConfig { n_trees: 20, seed: 77, ..Default::default() };
        let f1 = RandomForest::fit(&d, &cfg);
        let f2 = RandomForest::fit(&d, &cfg);
        for i in 0..50 {
            let row = [i as f64 * 0.1, (50 - i) as f64 * 0.05];
            assert_eq!(f1.predict(&row), f2.predict(&row));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let d = linear_data(200);
        let f1 = RandomForest::fit(&d, &ForestConfig { n_trees: 10, seed: 1, ..Default::default() });
        let f2 = RandomForest::fit(&d, &ForestConfig { n_trees: 10, seed: 2, ..Default::default() });
        let any_diff = (0..50).any(|i| {
            let row = [i as f64 * 0.17, i as f64 * 0.05];
            f1.predict(&row) != f2.predict(&row)
        });
        assert!(any_diff);
    }

    #[test]
    fn prediction_within_target_range() {
        let d = linear_data(300);
        let (lo, hi) = d.target_range().unwrap();
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 30, seed: 5, ..Default::default() });
        for i in 0..100 {
            let p = f.predict(&[i as f64, -(i as f64)]);
            assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }

    #[test]
    fn spread_is_zero_for_constant_target() {
        let mut d = Dataset::new(1);
        for i in 0..50 {
            d.push_row(&[i as f64], 3.0);
        }
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 25, seed: 3, ..Default::default() });
        let (mean, spread) = f.predict_with_spread(&[10.0]);
        assert_eq!(mean, 3.0);
        assert_eq!(spread, 0.0);
    }

    #[test]
    fn spread_positive_in_noisy_regions() {
        let mut d = Dataset::new(1);
        // Deterministic pseudo-noise.
        for i in 0..200 {
            let x = i as f64 * 0.1;
            let noise = (((i as u64 * 2654435761) % 1000) as f64 / 1000.0 - 0.5) * 4.0;
            d.push_row(&[x], x + noise);
        }
        let f = RandomForest::fit(
            &d,
            &ForestConfig {
                n_trees: 40,
                seed: 9,
                tree: TreeConfig { min_samples_leaf: 1, min_samples_split: 2, ..Default::default() },
                ..Default::default()
            },
        );
        let (_, spread) = f.predict_with_spread(&[5.05]);
        assert!(spread > 0.0);
    }

    #[test]
    fn oob_rmse_reasonable() {
        let d = linear_data(400);
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 60, seed: 11, ..Default::default() });
        let oob = f.oob_rmse(&d).expect("rows should be OOB somewhere");
        // Target range ~[-3.5, 12]; a sane model is well under 2.0 RMSE.
        assert!(oob < 2.0, "OOB RMSE {oob}");
        // OOB is (weakly) pessimistic vs. training RMSE.
        assert!(oob >= f.rmse_on(&d) * 0.5);
    }

    #[test]
    fn importance_finds_informative_feature() {
        let mut d = Dataset::new(3);
        for i in 0..300 {
            let noise1 = ((i * 31) % 17) as f64;
            let signal = (i % 10) as f64;
            let noise2 = ((i * 13) % 7) as f64;
            d.push_row(&[noise1, signal, noise2], signal * 5.0);
        }
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 40, seed: 2, ..Default::default() });
        let imp = f.feature_importance();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[1] > 0.8, "importance {imp:?}");

        let pimp = f.permutation_importance(&d, 2, 4);
        assert!(pimp[1] > pimp[0] && pimp[1] > pimp[2], "perm importance {pimp:?}");
    }

    #[test]
    fn permutation_importance_deterministic_per_seed() {
        let d = linear_data(120);
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 10, seed: 6, ..Default::default() });
        // Same seed → bitwise-identical scores (per-feature RNG streams make
        // this independent of parallel scheduling); different seed → new draw.
        assert_eq!(f.permutation_importance(&d, 3, 42), f.permutation_importance(&d, 3, 42));
        assert_ne!(f.permutation_importance(&d, 3, 42), f.permutation_importance(&d, 3, 43));
    }

    #[test]
    fn predict_batch_matches_single() {
        let d = linear_data(150);
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 15, seed: 21, ..Default::default() });
        let rows: Vec<f64> = (0..20).flat_map(|i| [i as f64 * 0.2, i as f64 * 0.4]).collect();
        let batch = f.predict_batch(&rows);
        for (i, chunk) in rows.chunks(2).enumerate() {
            assert_eq!(batch[i], f.predict(chunk));
        }
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        RandomForest::fit(&Dataset::new(2), &ForestConfig::default());
    }

    #[test]
    fn warm_bins_fit_is_bit_identical_to_cold_fit() {
        // The warm-start contract: growing a BinnedDataset across appends
        // and fitting through `fit_with_bins` gives the same forest, bit
        // for bit, as a cold `fit` that re-indexes from scratch — same
        // predictions *and* same OOB error.
        let mut d = Dataset::new(2);
        for i in 0..60usize {
            let x = (i % 9) as f64 * 0.5;
            let y = ((i * 5) % 7) as f64;
            d.push_row(&[x, y], x * x - y);
        }
        let mut bins = BinnedDataset::new(&d);
        // Grow in uneven chunks, including levels unseen before the append.
        for (chunk, offset) in [(25usize, 0.25f64), (40, 0.125)] {
            for i in 0..chunk {
                let x = (i % 9) as f64 * 0.5 + offset;
                let y = ((i * 5) % 7) as f64;
                d.push_row(&[x, y], x * x - y);
            }
            bins.append_rows(&d);
            let cfg = ForestConfig { n_trees: 20, seed: 13, ..Default::default() };
            let warm = RandomForest::fit_with_bins(&d, &bins, &cfg);
            let cold = RandomForest::fit(&d, &cfg);
            for i in 0..50 {
                let row = [i as f64 * 0.37, (i % 7) as f64];
                assert_eq!(warm.predict(&row).to_bits(), cold.predict(&row).to_bits());
            }
            let (w, c) = (warm.oob_rmse(&d), cold.oob_rmse(&d));
            assert_eq!(w.map(f64::to_bits), c.map(f64::to_bits));
        }
    }

    #[test]
    #[should_panic(expected = "row count")]
    fn stale_bins_are_rejected() {
        let mut d = Dataset::new(1);
        d.push_row(&[1.0], 0.0);
        let bins = BinnedDataset::new(&d);
        d.push_row(&[2.0], 1.0);
        RandomForest::fit_with_bins(&d, &bins, &ForestConfig::default());
    }

    #[test]
    fn mtry_default_uses_all_features() {
        // Smoke test: fitting with default mtry on a 6-feature set works and
        // uses the ensemble (tree predictions differ).
        let mut d = Dataset::new(6);
        for i in 0..120 {
            let row: Vec<f64> = (0..6).map(|f| ((i * (f + 3)) % 11) as f64).collect();
            d.push_row(&row, row[0] + row[3] * 2.0);
        }
        let f = RandomForest::fit(&d, &ForestConfig { n_trees: 12, seed: 8, ..Default::default() });
        assert_eq!(f.n_trees(), 12);
        assert_eq!(f.n_features(), 6);
    }
}
