//! A fixed-size, lossy, deterministic cache for surrogate predictions.
//!
//! The HyperMapper loop scores the same kind of object over and over: a
//! configuration identified by a small integer code (its flat index in the
//! parameter space). [`PredictionCache`] memoizes the per-configuration
//! objective vector in a direct-mapped table — one slot per hash bucket,
//! overwrite on collision — in the style of the lossy, locality-preferential
//! task caches used by high-throughput BDD engines (ROADMAP item 2): no
//! probing, no eviction bookkeeping, no growth, so the cost of a miss is one
//! slot write and the cost of a hit is one slot read.
//!
//! # Determinism
//!
//! Everything about the cache is a pure function of the insertion sequence:
//! the slot of a key is a fixed [splitmix64](https://prng.di.unimi.it/splitmix64.c)
//! mix of the key, invalidation is a monotonically increasing epoch stamp
//! (no clearing loop, no wall clock), and lookups never iterate the table —
//! so the same key/query order reproduces the same hit/miss sequence on
//! every run and every machine, and `hm-lint`'s determinism rules hold with
//! nothing suppressed.
//!
//! # Lossiness contract
//!
//! The cache may *forget* (two keys hashing to one slot evict each other)
//! but never *lies*: a hit returns exactly the vector inserted for that key
//! in the current epoch. Callers that only insert values that are a pure
//! function of the key (true for forest predictions against a fixed,
//! refit-invalidated surrogate — see
//! `HyperMapper::predict_front`) therefore observe bit-identical results
//! with the cache on, off, or any size in between; only the amount of
//! recomputation changes.

/// Fixed-size, direct-mapped (overwrite-on-collision), epoch-invalidated
/// cache from `u64` keys to `n_outputs`-wide `f64` vectors. See the module
/// docs for the determinism and lossiness contracts.
#[derive(Debug, Clone)]
pub struct PredictionCache {
    n_outputs: usize,
    /// Slot mask; slot count is a power of two.
    mask: u64,
    /// Current validity stamp. Slots with an older stamp are stale, so
    /// invalidation is O(1): bump the epoch.
    epoch: u64,
    /// Key stored in each slot (meaningful only when the stamp matches).
    keys: Vec<u64>,
    /// Epoch at which each slot was written; starts below every valid epoch.
    stamps: Vec<u64>,
    /// Slot values, `n_outputs` per slot.
    values: Vec<f64>,
    hits: u64,
    misses: u64,
}

/// The splitmix64 finalizer: a cheap, fixed, well-mixing u64 permutation.
/// Flat configuration indices are highly structured (mixed-radix digit
/// packs); this spreads them across slots so neighbouring configurations
/// don't all fight over one bucket.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl PredictionCache {
    /// A cache with at least `min_slots` slots (rounded up to a power of
    /// two, minimum 1) holding `n_outputs` objectives per entry.
    ///
    /// # Panics
    /// If `n_outputs == 0`.
    pub fn new(n_outputs: usize, min_slots: usize) -> Self {
        assert!(n_outputs >= 1, "need at least one output per entry");
        let slots = min_slots.max(1).next_power_of_two();
        PredictionCache {
            n_outputs,
            mask: (slots - 1) as u64,
            epoch: 1,
            keys: vec![0; slots],
            stamps: vec![0; slots],
            values: vec![0.0; slots * n_outputs],
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn slot(&self, key: u64) -> usize {
        (splitmix64(key) & self.mask) as usize
    }

    /// Copy the cached vector for `key` into `out` and return `true`, or
    /// return `false` (counting a miss) when the slot holds another key or
    /// a stale epoch.
    ///
    /// # Panics
    /// If `out.len() != n_outputs`.
    pub fn get(&mut self, key: u64, out: &mut [f64]) -> bool {
        assert_eq!(out.len(), self.n_outputs, "output width mismatch");
        let s = self.slot(key);
        if self.stamps[s] == self.epoch && self.keys[s] == key {
            self.hits += 1;
            out.copy_from_slice(&self.values[s * self.n_outputs..][..self.n_outputs]);
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Store `vals` for `key`, overwriting whatever occupied the slot.
    ///
    /// # Panics
    /// If `vals.len() != n_outputs`.
    pub fn insert(&mut self, key: u64, vals: &[f64]) {
        assert_eq!(vals.len(), self.n_outputs, "output width mismatch");
        let s = self.slot(key);
        self.keys[s] = key;
        self.stamps[s] = self.epoch;
        self.values[s * self.n_outputs..][..self.n_outputs].copy_from_slice(vals);
    }

    /// Invalidate every entry in O(1) by bumping the epoch stamp. Called
    /// whenever the surrogate the cached values came from is refit.
    pub fn invalidate(&mut self) {
        self.epoch += 1;
    }

    /// Batch lookup: returns one column per output (`result[k][i]` = output
    /// `k` of `keys[i]`), probing every key in order and calling
    /// `compute(miss_indices)` once for the keys that missed. `compute`
    /// receives the indices into `keys` that need fresh values and must
    /// return columns of exactly that width; the fresh values are inserted
    /// (first-missed key last-written on intra-batch slot collisions).
    ///
    /// A key duplicated within one batch misses for every occurrence (the
    /// insert happens after the single `compute` call); since `compute`
    /// must be a pure function of the key for caching to be sound, the
    /// duplicate occurrences still receive identical values.
    ///
    /// # Panics
    /// If `compute` returns the wrong number of columns or ragged columns.
    pub fn lookup_or_compute<F>(&mut self, keys: &[u64], compute: F) -> Vec<Vec<f64>>
    where
        F: FnOnce(&[usize]) -> Vec<Vec<f64>>,
    {
        let n = keys.len();
        let mut out = vec![vec![0.0f64; n]; self.n_outputs];
        let mut buf = vec![0.0f64; self.n_outputs];
        let mut miss: Vec<usize> = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            if self.get(key, &mut buf) {
                for (col, v) in out.iter_mut().zip(&buf) {
                    col[i] = *v;
                }
            } else {
                miss.push(i);
            }
        }
        if !miss.is_empty() {
            let fresh = compute(&miss);
            assert_eq!(fresh.len(), self.n_outputs, "compute() column count mismatch");
            for col in &fresh {
                assert_eq!(col.len(), miss.len(), "compute() column width mismatch");
            }
            for (j, &i) in miss.iter().enumerate() {
                for (k, col) in fresh.iter().enumerate() {
                    buf[k] = col[j];
                    out[k][i] = col[j];
                }
                self.insert(keys[i], &buf);
            }
        }
        out
    }

    /// Objectives stored per entry.
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// Slot count (a power of two).
    pub fn slots(&self) -> usize {
        self.keys.len()
    }

    /// Lookups that returned a cached vector since construction (or
    /// [`reset_stats`](Self::reset_stats)).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that fell through to recomputation.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Zero the hit/miss counters (the entries stay).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_exactly_what_was_inserted() {
        let mut c = PredictionCache::new(2, 8);
        let mut out = [0.0; 2];
        assert!(!c.get(42, &mut out));
        c.insert(42, &[1.5, -2.5]);
        assert!(c.get(42, &mut out));
        assert_eq!(out, [1.5, -2.5]);
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn collision_overwrites_never_mixes_keys() {
        // Slot count 1: every key collides with every other.
        let mut c = PredictionCache::new(1, 1);
        assert_eq!(c.slots(), 1);
        c.insert(1, &[10.0]);
        c.insert(2, &[20.0]);
        let mut out = [0.0];
        assert!(!c.get(1, &mut out), "evicted by the colliding insert");
        assert!(c.get(2, &mut out));
        assert_eq!(out, [20.0]);
    }

    #[test]
    fn invalidate_is_total_and_cheap() {
        let mut c = PredictionCache::new(1, 16);
        for k in 0..10u64 {
            c.insert(k, &[k as f64]);
        }
        c.invalidate();
        let mut out = [0.0];
        for k in 0..10u64 {
            assert!(!c.get(k, &mut out), "key {k} survived invalidation");
        }
        // Stale slots are rewritable in the new epoch.
        c.insert(3, &[33.0]);
        assert!(c.get(3, &mut out));
        assert_eq!(out, [33.0]);
    }

    #[test]
    fn lookup_or_compute_fills_hits_and_misses() {
        let mut c = PredictionCache::new(2, 64);
        let keys: Vec<u64> = (0..10).collect();
        let all = c.lookup_or_compute(&keys, |miss| {
            assert_eq!(miss.len(), 10, "cold cache: everything misses");
            (0..2)
                .map(|k| miss.iter().map(|&i| (i * 10 + k) as f64).collect())
                .collect()
        });
        assert_eq!(all[0], (0..10).map(|i| (i * 10) as f64).collect::<Vec<_>>());
        // Warm pass: nothing recomputed, identical columns.
        let again = c.lookup_or_compute(&keys, |miss| {
            panic!("warm cache must not recompute, missed {miss:?}");
        });
        assert_eq!(again, all);
        assert_eq!(c.misses(), 10);
        assert_eq!(c.hits(), 10);
    }

    #[test]
    fn hit_miss_sequence_is_deterministic() {
        let run = || {
            let mut c = PredictionCache::new(1, 4);
            let keys: Vec<u64> = (0..40).map(|i| (i * 7) % 13).collect();
            let mut pattern = Vec::new();
            let mut out = [0.0];
            for &k in &keys {
                let hit = c.get(k, &mut out);
                pattern.push(hit);
                if !hit {
                    c.insert(k, &[k as f64 * 0.5]);
                }
            }
            (pattern, c.hits(), c.misses())
        };
        assert_eq!(run(), run(), "same key order must reproduce the same hit/miss sequence");
    }
}
