//! Per-column level binning for histogram split finding.
//!
//! DSE training data is ordinal: each feature column holds one of a handful
//! of distinct parameter values. [`BinnedDataset`] indexes every column once
//! — sorted unique values ("levels") plus a per-row code into that level
//! table — so split finding can replace its per-node `O(n log n)` sort with
//! a stable counting sort by code, `O(n + levels)`.
//!
//! Binning is exact, not approximate: levels are the distinct `f64` values
//! themselves, and a stable counting sort by code yields the *same row
//! permutation* as the stable comparison sort it replaces. Split scores and
//! thresholds are therefore bit-for-bit identical between the two paths
//! (asserted by `tests/properties.rs`).

use crate::dataset::Dataset;
use crate::{feature_cmp, feature_eq};
use std::cmp::Ordering;

/// Sorted unique levels and per-row codes for every feature column.
///
/// Built once per forest fit and shared read-only by all trees; codes are a
/// property of the dataset rows, so bootstrap resampling does not invalidate
/// them.
#[derive(Debug, Clone)]
pub struct BinnedDataset {
    n_rows: usize,
    /// Per feature: distinct column values, ascending.
    levels: Vec<Vec<f64>>,
    /// Per feature: `codes[f][row]` indexes into `levels[f]`.
    codes: Vec<Vec<u32>>,
    /// Largest level count across features (scratch sizing).
    max_levels: usize,
}

impl BinnedDataset {
    /// Index every column of `data`. `O(n_features · n log n)`, done once.
    pub fn new(data: &Dataset) -> Self {
        let n = data.len();
        let n_features = data.n_features();
        let mut levels = Vec::with_capacity(n_features);
        let mut codes = Vec::with_capacity(n_features);
        let mut max_levels = 0;
        let mut column: Vec<f64> = Vec::with_capacity(n);

        for f in 0..n_features {
            column.clear();
            column.extend((0..n).map(|i| data.feature(i, f)));
            // `feature_cmp` is total (NaN sorts last as a single level), so
            // a NaN that slipped past ingestion validation degrades to a
            // well-defined extra level instead of a sort panic.
            let mut lv = column.clone();
            lv.sort_by(|a, b| feature_cmp(*a, *b));
            lv.dedup_by(|a, b| feature_eq(*a, *b));
            assert!(lv.len() <= u32::MAX as usize, "feature column too wide to code");
            let code: Vec<u32> = column
                .iter()
                .map(|v| lv.partition_point(|l| feature_cmp(*l, *v) == Ordering::Less) as u32)
                .collect();
            max_levels = max_levels.max(lv.len());
            levels.push(lv);
            codes.push(code);
        }

        BinnedDataset { n_rows: n, levels, codes, max_levels }
    }

    /// Extend the index to cover rows appended to `data` since this table
    /// was built (rows `self.n_rows()..data.len()`).
    ///
    /// Active learning grows its training set by a handful of rows per
    /// iteration; re-indexing every column from scratch each refit is
    /// `O(n log n)` on the *whole* history. This merges the new rows'
    /// distinct values into the existing level tables instead — `O(Δn log
    /// Δn + levels)` per column — remapping existing codes only when a
    /// genuinely new level appears.
    ///
    /// The result is **bit-for-bit identical** to `BinnedDataset::new` on
    /// the full dataset, including the representative chosen for levels
    /// with multiple equal encodings (`-0.0` vs `+0.0`, NaN payloads): the
    /// first occurrence in row order wins, exactly as the fresh build's
    /// stable sort + dedup would pick. Asserted by the parity tests below
    /// and relied on by the optimizer's warm-start refits.
    ///
    /// # Panics
    /// If `data` has a different feature width, or has *fewer* rows than
    /// this table already covers (the rows already coded must be a stable
    /// prefix of `data`; this cannot be checked cheaply and is the
    /// caller's contract).
    pub fn append_rows(&mut self, data: &Dataset) {
        assert_eq!(
            data.n_features(),
            self.n_features(),
            "append_rows: dataset width changed under the bins"
        );
        let old_n = self.n_rows;
        let n = data.len();
        assert!(n >= old_n, "append_rows: dataset shrank under the bins");
        if n == old_n {
            return;
        }
        let mut column: Vec<f64> = Vec::with_capacity(n - old_n);
        for f in 0..self.levels.len() {
            column.clear();
            column.extend((old_n..n).map(|i| data.feature(i, f)));
            // Distinct new values; stable sort + dedup keeps the first
            // occurrence per equal run, matching the fresh build.
            let mut new_lv = column.clone();
            new_lv.sort_by(|a, b| feature_cmp(*a, *b));
            new_lv.dedup_by(|a, b| feature_eq(*a, *b));
            let lv = &mut self.levels[f];
            // Values genuinely absent from the existing table. Values that
            // match an existing level keep the existing representative —
            // it occurred earlier in row order, so the fresh build would
            // keep it too.
            let fresh: Vec<f64> = new_lv
                .iter()
                .copied()
                .filter(|v| {
                    let p = lv.partition_point(|l| feature_cmp(*l, *v) == Ordering::Less);
                    !(p < lv.len() && feature_eq(lv[p], *v))
                })
                .collect();
            if !fresh.is_empty() {
                // Merge, recording how far right each old level moves so
                // existing codes can be remapped in one pass.
                let mut merged = Vec::with_capacity(lv.len() + fresh.len());
                let mut shift = vec![0u32; lv.len()];
                let (mut i, mut j) = (0usize, 0usize);
                while i < fresh.len() || j < lv.len() {
                    if j == lv.len()
                        || (i < fresh.len() && feature_cmp(fresh[i], lv[j]) == Ordering::Less)
                    {
                        merged.push(fresh[i]);
                        i += 1;
                    } else {
                        shift[j] = i as u32;
                        merged.push(lv[j]);
                        j += 1;
                    }
                }
                assert!(merged.len() <= u32::MAX as usize, "feature column too wide to code");
                for c in self.codes[f].iter_mut() {
                    *c += shift[*c as usize];
                }
                *lv = merged;
            }
            let lv = &self.levels[f];
            self.codes[f].extend(
                column
                    .iter()
                    .map(|v| lv.partition_point(|l| feature_cmp(*l, *v) == Ordering::Less) as u32),
            );
            self.max_levels = self.max_levels.max(lv.len());
        }
        self.n_rows = n;
    }

    /// Number of rows the codes were built for.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of feature columns.
    #[inline]
    pub fn n_features(&self) -> usize {
        self.levels.len()
    }

    /// Distinct values of feature `f`, ascending.
    #[inline]
    pub fn levels(&self, f: usize) -> &[f64] {
        &self.levels[f]
    }

    /// Number of distinct values in feature `f`.
    #[inline]
    pub fn n_levels(&self, f: usize) -> usize {
        self.levels[f].len()
    }

    /// Level code of feature `f` at dataset row `row`.
    #[inline]
    pub fn code(&self, f: usize, row: usize) -> u32 {
        self.codes[f][row]
    }

    /// Largest level count over all features (sizes counting-sort scratch).
    #[inline]
    pub fn max_levels(&self) -> usize {
        self.max_levels
    }

    /// The root-node split-threshold candidates for feature `f`: the
    /// midpoints between adjacent levels, ascending (`n_levels − 1` values;
    /// empty for constant columns).
    ///
    /// Deeper nodes see a subset of the rows, so a fitted pool's thresholds
    /// are midpoints of arbitrary level *pairs*, not only adjacent ones —
    /// but every threshold separates two levels of this table's grid, which
    /// is what makes the level structure the natural quantization domain
    /// for [`QuantizedForest`](crate::QuantizedForest): traversal only ever
    /// needs a query value's rank among the pool's distinct thresholds, and
    /// ordinal DSE columns keep that rank space tiny.
    pub fn split_candidates(&self, f: usize) -> Vec<f64> {
        self.levels[f].windows(2).map(|w| 0.5 * (w[0] + w[1])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        let mut d = Dataset::new(2);
        d.push_row(&[3.0, 1.0], 0.0);
        d.push_row(&[1.0, 1.0], 1.0);
        d.push_row(&[3.0, 2.0], 2.0);
        d.push_row(&[2.0, 1.0], 3.0);
        d
    }

    #[test]
    fn levels_are_sorted_unique() {
        let b = BinnedDataset::new(&data());
        assert_eq!(b.levels(0), &[1.0, 2.0, 3.0]);
        assert_eq!(b.levels(1), &[1.0, 2.0]);
        assert_eq!(b.n_levels(0), 3);
        assert_eq!(b.max_levels(), 3);
    }

    #[test]
    fn codes_round_trip_to_values() {
        let d = data();
        let b = BinnedDataset::new(&d);
        for f in 0..d.n_features() {
            for i in 0..d.len() {
                let code = b.code(f, i) as usize;
                assert_eq!(b.levels(f)[code], d.feature(i, f));
            }
        }
    }

    /// Full structural equality with a fresh build: row count, level
    /// tables (bitwise), every code, and the scratch bound.
    fn assert_bins_identical(a: &BinnedDataset, b: &BinnedDataset) {
        assert_eq!(a.n_rows(), b.n_rows());
        assert_eq!(a.n_features(), b.n_features());
        assert_eq!(a.max_levels(), b.max_levels());
        for f in 0..a.n_features() {
            let la: Vec<u64> = a.levels(f).iter().map(|v| v.to_bits()).collect();
            let lb: Vec<u64> = b.levels(f).iter().map(|v| v.to_bits()).collect();
            assert_eq!(la, lb, "levels of feature {f}");
            for row in 0..a.n_rows() {
                assert_eq!(a.code(f, row), b.code(f, row), "code({f}, {row})");
            }
        }
    }

    #[test]
    fn append_rows_matches_fresh_build() {
        // Ordinal-ish synthetic data: small value grids so levels repeat,
        // plus a second phase whose grid is offset so appends introduce
        // genuinely new levels that must remap existing codes.
        let mut d = Dataset::new(3);
        for i in 0..40usize {
            d.push_row(
                &[(i % 5) as f64, ((i * 3) % 7) as f64 * 0.5, (i % 2) as f64],
                i as f64,
            );
        }
        let mut bins = BinnedDataset::new(&d);
        for i in 40..90usize {
            d.push_row(
                &[(i % 5) as f64 + 0.25, ((i * 3) % 11) as f64 * 0.5, (i % 2) as f64],
                i as f64,
            );
        }
        bins.append_rows(&d);
        assert_bins_identical(&bins, &BinnedDataset::new(&d));
    }

    #[test]
    fn chunked_appends_match_one_fresh_build() {
        // Resume can skip several iterations at once, so parity must hold
        // for arbitrary chunk sizes — including empty appends.
        let mut d = Dataset::new(2);
        let mut bins = BinnedDataset::new(&d);
        let chunks = [3usize, 0, 1, 12, 7, 0, 25];
        let mut i = 0usize;
        for chunk in chunks {
            for _ in 0..chunk {
                d.push_row(&[((i * 13) % 9) as f64 * 0.125, (i % 4) as f64 - 1.5], 0.0);
                i += 1;
            }
            bins.append_rows(&d);
            assert_bins_identical(&bins, &BinnedDataset::new(&d));
        }
    }

    #[test]
    fn append_keeps_first_seen_signed_zero_representative() {
        // -0.0 and +0.0 are one level under `feature_eq`; both the fresh
        // build and the incremental merge must keep the representative
        // that occurred first in row order.
        let mut d = Dataset::new(1);
        d.push_row(&[-0.0], 0.0);
        let mut bins = BinnedDataset::new(&d);
        d.push_row(&[0.0], 1.0);
        d.push_row(&[1.0], 2.0);
        bins.append_rows(&d);
        let fresh = BinnedDataset::new(&d);
        assert_bins_identical(&bins, &fresh);
        assert_eq!(bins.levels(0)[0].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    #[should_panic(expected = "shrank")]
    fn append_rejects_shrunk_dataset() {
        let mut d = Dataset::new(1);
        d.push_row(&[1.0], 0.0);
        let mut bins = BinnedDataset::new(&d);
        bins.append_rows(&Dataset::new(1));
    }

    #[test]
    #[should_panic(expected = "width")]
    fn append_rejects_width_change() {
        let mut d = Dataset::new(1);
        d.push_row(&[1.0], 0.0);
        let mut bins = BinnedDataset::new(&d);
        let mut wide = Dataset::new(2);
        wide.push_row(&[1.0, 2.0], 0.0);
        bins.append_rows(&wide);
    }

    #[test]
    fn constant_column_single_level() {
        let mut d = Dataset::new(1);
        for _ in 0..5 {
            d.push_row(&[7.5], 0.0);
        }
        let b = BinnedDataset::new(&d);
        assert_eq!(b.levels(0), &[7.5]);
        assert!((0..5).all(|i| b.code(0, i) == 0));
    }
}
