//! Per-column level binning for histogram split finding.
//!
//! DSE training data is ordinal: each feature column holds one of a handful
//! of distinct parameter values. [`BinnedDataset`] indexes every column once
//! — sorted unique values ("levels") plus a per-row code into that level
//! table — so split finding can replace its per-node `O(n log n)` sort with
//! a stable counting sort by code, `O(n + levels)`.
//!
//! Binning is exact, not approximate: levels are the distinct `f64` values
//! themselves, and a stable counting sort by code yields the *same row
//! permutation* as the stable comparison sort it replaces. Split scores and
//! thresholds are therefore bit-for-bit identical between the two paths
//! (asserted by `tests/properties.rs`).

use crate::dataset::Dataset;
use crate::{feature_cmp, feature_eq};
use std::cmp::Ordering;

/// Sorted unique levels and per-row codes for every feature column.
///
/// Built once per forest fit and shared read-only by all trees; codes are a
/// property of the dataset rows, so bootstrap resampling does not invalidate
/// them.
#[derive(Debug, Clone)]
pub struct BinnedDataset {
    n_rows: usize,
    /// Per feature: distinct column values, ascending.
    levels: Vec<Vec<f64>>,
    /// Per feature: `codes[f][row]` indexes into `levels[f]`.
    codes: Vec<Vec<u32>>,
    /// Largest level count across features (scratch sizing).
    max_levels: usize,
}

impl BinnedDataset {
    /// Index every column of `data`. `O(n_features · n log n)`, done once.
    pub fn new(data: &Dataset) -> Self {
        let n = data.len();
        let n_features = data.n_features();
        let mut levels = Vec::with_capacity(n_features);
        let mut codes = Vec::with_capacity(n_features);
        let mut max_levels = 0;
        let mut column: Vec<f64> = Vec::with_capacity(n);

        for f in 0..n_features {
            column.clear();
            column.extend((0..n).map(|i| data.feature(i, f)));
            // `feature_cmp` is total (NaN sorts last as a single level), so
            // a NaN that slipped past ingestion validation degrades to a
            // well-defined extra level instead of a sort panic.
            let mut lv = column.clone();
            lv.sort_by(|a, b| feature_cmp(*a, *b));
            lv.dedup_by(|a, b| feature_eq(*a, *b));
            assert!(lv.len() <= u32::MAX as usize, "feature column too wide to code");
            let code: Vec<u32> = column
                .iter()
                .map(|v| lv.partition_point(|l| feature_cmp(*l, *v) == Ordering::Less) as u32)
                .collect();
            max_levels = max_levels.max(lv.len());
            levels.push(lv);
            codes.push(code);
        }

        BinnedDataset { n_rows: n, levels, codes, max_levels }
    }

    /// Number of rows the codes were built for.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of feature columns.
    #[inline]
    pub fn n_features(&self) -> usize {
        self.levels.len()
    }

    /// Distinct values of feature `f`, ascending.
    #[inline]
    pub fn levels(&self, f: usize) -> &[f64] {
        &self.levels[f]
    }

    /// Number of distinct values in feature `f`.
    #[inline]
    pub fn n_levels(&self, f: usize) -> usize {
        self.levels[f].len()
    }

    /// Level code of feature `f` at dataset row `row`.
    #[inline]
    pub fn code(&self, f: usize, row: usize) -> u32 {
        self.codes[f][row]
    }

    /// Largest level count over all features (sizes counting-sort scratch).
    #[inline]
    pub fn max_levels(&self) -> usize {
        self.max_levels
    }

    /// The root-node split-threshold candidates for feature `f`: the
    /// midpoints between adjacent levels, ascending (`n_levels − 1` values;
    /// empty for constant columns).
    ///
    /// Deeper nodes see a subset of the rows, so a fitted pool's thresholds
    /// are midpoints of arbitrary level *pairs*, not only adjacent ones —
    /// but every threshold separates two levels of this table's grid, which
    /// is what makes the level structure the natural quantization domain
    /// for [`QuantizedForest`](crate::QuantizedForest): traversal only ever
    /// needs a query value's rank among the pool's distinct thresholds, and
    /// ordinal DSE columns keep that rank space tiny.
    pub fn split_candidates(&self, f: usize) -> Vec<f64> {
        self.levels[f].windows(2).map(|w| 0.5 * (w[0] + w[1])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        let mut d = Dataset::new(2);
        d.push_row(&[3.0, 1.0], 0.0);
        d.push_row(&[1.0, 1.0], 1.0);
        d.push_row(&[3.0, 2.0], 2.0);
        d.push_row(&[2.0, 1.0], 3.0);
        d
    }

    #[test]
    fn levels_are_sorted_unique() {
        let b = BinnedDataset::new(&data());
        assert_eq!(b.levels(0), &[1.0, 2.0, 3.0]);
        assert_eq!(b.levels(1), &[1.0, 2.0]);
        assert_eq!(b.n_levels(0), 3);
        assert_eq!(b.max_levels(), 3);
    }

    #[test]
    fn codes_round_trip_to_values() {
        let d = data();
        let b = BinnedDataset::new(&d);
        for f in 0..d.n_features() {
            for i in 0..d.len() {
                let code = b.code(f, i) as usize;
                assert_eq!(b.levels(f)[code], d.feature(i, f));
            }
        }
    }

    #[test]
    fn constant_column_single_level() {
        let mut d = Dataset::new(1);
        for _ in 0..5 {
            d.push_row(&[7.5], 0.0);
        }
        let b = BinnedDataset::new(&d);
        assert_eq!(b.levels(0), &[7.5]);
        assert!((0..5).all(|i| b.code(0, i) == 0));
    }
}
