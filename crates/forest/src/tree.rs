//! CART regression trees.

use crate::binning::BinnedDataset;
use crate::dataset::Dataset;
use rand::seq::SliceRandom;
use rand::Rng;

/// How `find_best_split` orders the rows of a candidate feature.
///
/// Both methods produce **bit-for-bit identical trees**: the histogram path
/// replays the stable comparison sort as a stable counting sort by level
/// code, so the prefix scan sees the same rows in the same order and every
/// floating-point operation is unchanged. The choice is purely about cost:
/// sorting is `O(n log n)` per node per feature, the counting sort is
/// `O(n + levels)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitMethod {
    /// Always sort `(value, target)` pairs per node (the classic path).
    Exact,
    /// Always counting-sort by precomputed level codes. Requires a
    /// [`BinnedDataset`]; falls back to `Exact` when fitting without one.
    Histogram,
    /// Per node per feature, pick whichever is cheaper: histogram while the
    /// column's level count is small relative to the node, else sort.
    #[default]
    Auto,
}

/// Hyper-parameters for a single regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth (root has depth 0). `usize::MAX` disables the cap.
    pub max_depth: usize,
    /// A node with fewer rows than this will not be split further.
    pub min_samples_split: usize,
    /// Each child of a split must keep at least this many rows.
    pub min_samples_leaf: usize,
    /// Number of candidate features examined per split (`mtry`). Clamped to
    /// the dataset width at fit time; 0 means "use all features".
    pub mtry: usize,
    /// Split-finding strategy; affects speed only, never the fitted tree.
    pub split: SplitMethod,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: usize::MAX,
            min_samples_split: 4,
            min_samples_leaf: 2,
            mtry: 0,
            split: SplitMethod::default(),
        }
    }
}

/// Arena node of a fitted tree.
#[derive(Debug, Clone)]
pub(crate) enum Node {
    /// Internal split: rows with `feature < threshold` go left.
    Split {
        feature: u32,
        threshold: f64,
        left: u32,
        right: u32,
    },
    /// Terminal node predicting the mean target of its training rows.
    Leaf { value: f64, n: u32 },
}

/// A fitted CART regression tree.
///
/// Splits minimize the weighted child variance (equivalently, maximize
/// variance reduction). Nodes are stored in a flat arena for cache-friendly
/// prediction.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    n_features: usize,
    /// Total variance reduction attributed to each feature (impurity
    /// importance, unnormalized).
    importance: Vec<f64>,
}

/// Scratch buffers reused across nodes during fitting.
struct FitCtx<'a, R: Rng> {
    data: &'a Dataset,
    /// Level codes for the histogram path; `None` forces the sort path.
    bins: Option<&'a BinnedDataset>,
    config: &'a TreeConfig,
    rng: &'a mut R,
    /// Candidate feature indices, reshuffled per split.
    feature_pool: Vec<usize>,
    /// (feature value, target) pairs sorted per candidate feature.
    sort_buf: Vec<(f64, f64)>,
    /// (level code, target) pairs in counting-sorted order.
    code_buf: Vec<(u32, f64)>,
    /// Counting-sort occupancy per level; all-zero between uses.
    counts: Vec<u32>,
    /// Counting-sort write cursors per level; fully rewritten per use.
    starts: Vec<u32>,
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    score: f64, // variance reduction, > 0
}

impl RegressionTree {
    /// Fit a tree on the rows `indices` of `data` (duplicates allowed — this
    /// is how bagging passes bootstrap samples).
    ///
    /// # Panics
    /// If `indices` is empty or `data` is empty.
    pub fn fit<R: Rng>(
        data: &Dataset,
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut R,
    ) -> RegressionTree {
        Self::fit_impl(data, None, indices, config, rng)
    }

    /// Like [`RegressionTree::fit`], but with precomputed level codes so the
    /// histogram split path is available. The fitted tree is bit-for-bit
    /// identical to the unbinned fit; `bins` only changes the cost of
    /// finding each split. `bins` must have been built from this `data`.
    pub fn fit_binned<R: Rng>(
        data: &Dataset,
        bins: &BinnedDataset,
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut R,
    ) -> RegressionTree {
        assert_eq!(bins.n_rows(), data.len(), "bins built from a different dataset");
        assert_eq!(bins.n_features(), data.n_features(), "bins width mismatch");
        Self::fit_impl(data, Some(bins), indices, config, rng)
    }

    fn fit_impl<R: Rng>(
        data: &Dataset,
        bins: Option<&BinnedDataset>,
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut R,
    ) -> RegressionTree {
        assert!(!indices.is_empty(), "cannot fit a tree on zero rows");
        let n_features = data.n_features();
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            n_features,
            importance: vec![0.0; n_features],
        };
        let scratch_levels = bins.map_or(0, BinnedDataset::max_levels);
        let mut ctx = FitCtx {
            data,
            bins,
            config,
            rng,
            feature_pool: (0..n_features).collect(),
            sort_buf: Vec::new(),
            code_buf: Vec::new(),
            counts: vec![0; scratch_levels],
            starts: vec![0; scratch_levels],
        };
        let mut idx = indices.to_vec();
        tree.build(&mut ctx, &mut idx, 0);
        tree
    }

    /// Recursively build the subtree over `indices`, returning its arena id.
    fn build<R: Rng>(&mut self, ctx: &mut FitCtx<'_, R>, indices: &mut [usize], depth: usize) -> u32 {
        let n = indices.len();
        let (mean, var) = mean_var(ctx.data, indices);

        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf { value: mean, n: n as u32 });
            (nodes.len() - 1) as u32
        };

        if depth >= ctx.config.max_depth
            || n < ctx.config.min_samples_split
            || n < 2 * ctx.config.min_samples_leaf
            || var <= 1e-18
        {
            return make_leaf(&mut self.nodes);
        }

        let Some(best) = self.find_best_split(ctx, indices, var) else {
            return make_leaf(&mut self.nodes);
        };

        // Partition in place: `< threshold` to the front.
        let mut split_at = 0;
        for i in 0..n {
            if ctx.data.feature(indices[i], best.feature) < best.threshold {
                indices.swap(i, split_at);
                split_at += 1;
            }
        }
        debug_assert!(split_at >= ctx.config.min_samples_leaf);
        debug_assert!(n - split_at >= ctx.config.min_samples_leaf);

        self.importance[best.feature] += best.score * n as f64;

        // Reserve this node's slot before recursing so parents precede
        // children in the arena.
        self.nodes.push(Node::Leaf { value: mean, n: n as u32 });
        let me = (self.nodes.len() - 1) as u32;
        let (left_idx, right_idx) = indices.split_at_mut(split_at);
        let left = self.build(ctx, left_idx, depth + 1);
        let right = self.build(ctx, right_idx, depth + 1);
        self.nodes[me as usize] = Node::Split {
            feature: best.feature as u32,
            threshold: best.threshold,
            left,
            right,
        };
        me
    }

    /// Scan a random subset of features for the variance-minimizing split.
    ///
    /// Each candidate column is ordered ascending by feature value either by
    /// a stable comparison sort ([`SplitMethod::Exact`]) or a stable counting
    /// sort over precomputed level codes ([`SplitMethod::Histogram`]); both
    /// yield the same permutation, so the downstream scan is identical.
    fn find_best_split<R: Rng>(
        &self,
        ctx: &mut FitCtx<'_, R>,
        indices: &[usize],
        parent_var: f64,
    ) -> Option<BestSplit> {
        let n = indices.len();
        let n_f = ctx.data.n_features();
        let mtry = match ctx.config.mtry {
            0 => n_f,
            m => m.min(n_f),
        };
        ctx.feature_pool.shuffle(ctx.rng);
        // Borrow the pool by value to avoid aliasing ctx mutably twice.
        let candidates: Vec<usize> = ctx.feature_pool[..mtry].to_vec();

        let min_leaf = ctx.config.min_samples_leaf;
        let mut best: Option<BestSplit> = None;

        for feature in candidates {
            // `Option<&_>` is Copy: take the reference out of `ctx` so the
            // histogram path can receive it alongside `&mut ctx`.
            let bins = ctx.bins;
            let use_hist = match (ctx.config.split, bins) {
                (SplitMethod::Exact, _) | (_, None) => false,
                (SplitMethod::Histogram, Some(_)) => true,
                // The counting sort pays O(levels) per node; only worth it
                // while the level table is not much larger than the node.
                (SplitMethod::Auto, Some(b)) => b.n_levels(feature) <= 2 * n + 64,
            };
            let found = match (use_hist, bins) {
                (true, Some(bins)) => {
                    Self::best_split_histogram(ctx, bins, indices, feature, parent_var, min_leaf)
                }
                _ => Self::best_split_sorted(ctx, indices, feature, parent_var, min_leaf),
            };
            if let Some((threshold, score)) = found {
                if best.as_ref().is_none_or(|b| score > b.score) {
                    best = Some(BestSplit { feature, threshold, score });
                }
            }
        }
        best
    }

    /// Sort-based column scan: `O(n log n)` per node.
    fn best_split_sorted<R: Rng>(
        ctx: &mut FitCtx<'_, R>,
        indices: &[usize],
        feature: usize,
        parent_var: f64,
        min_leaf: usize,
    ) -> Option<(f64, f64)> {
        let buf = &mut ctx.sort_buf;
        buf.clear();
        buf.extend(
            indices
                .iter()
                .map(|&i| (ctx.data.feature(i, feature), ctx.data.target(i))),
        );
        buf.sort_by(|a, b| crate::feature_cmp(a.0, b.0));
        scan_sorted_column(
            parent_var,
            min_leaf,
            buf.len(),
            |k| buf[k].1,
            |k| crate::feature_eq(buf[k].0, buf[k + 1].0),
            // Midpoint threshold is the CART convention.
            |k| 0.5 * (buf[k].0 + buf[k + 1].0),
        )
    }

    /// Histogram column scan: stable counting sort by level code, then the
    /// same prefix scan — `O(n + levels)` per node. `bins` is the caller's
    /// copy of `ctx.bins` (passed separately so `ctx` stays mutably
    /// borrowable without an unwrap on the histogram path).
    fn best_split_histogram<R: Rng>(
        ctx: &mut FitCtx<'_, R>,
        bins: &BinnedDataset,
        indices: &[usize],
        feature: usize,
        parent_var: f64,
        min_leaf: usize,
    ) -> Option<(f64, f64)> {
        let n_levels = bins.n_levels(feature);
        let levels = bins.levels(feature);

        // Occupancy per level among this node's rows.
        for &i in indices {
            ctx.counts[bins.code(feature, i) as usize] += 1;
        }
        // Exclusive prefix sum into write cursors; zeroes `counts` back in
        // the same pass, restoring the all-zero invariant.
        let mut running = 0u32;
        for l in 0..n_levels {
            ctx.starts[l] = running;
            running += ctx.counts[l];
            ctx.counts[l] = 0;
        }
        // Stable placement: rows stay in node order within a level, which is
        // exactly the permutation the stable comparison sort produces.
        let buf = &mut ctx.code_buf;
        buf.clear();
        buf.resize(indices.len(), (0, 0.0));
        for &i in indices {
            let code = bins.code(feature, i);
            let slot = ctx.starts[code as usize];
            buf[slot as usize] = (code, ctx.data.target(i));
            ctx.starts[code as usize] = slot + 1;
        }

        scan_sorted_column(
            parent_var,
            min_leaf,
            buf.len(),
            |k| buf[k].1,
            |k| buf[k].0 == buf[k + 1].0,
            |k| 0.5 * (levels[buf[k].0 as usize] + levels[buf[k + 1].0 as usize]),
        )
    }

    /// Predict the target for one feature row.
    ///
    /// # Panics
    /// If `row.len() != n_features`.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.n_features, "feature width mismatch");
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value, .. } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    node = if row[*feature as usize] < *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Number of arena nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Arena nodes in build order: each split's left child sits at the next
    /// slot, right children are explicit (relied on by `CompiledForest`).
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Leaf { .. })).count()
    }

    /// Smallest number of training rows in any leaf — useful for verifying
    /// `min_samples_leaf` is honored.
    pub fn min_leaf_size(&self) -> u32 {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Leaf { n, .. } => Some(*n),
                _ => None,
            })
            .min()
            .unwrap_or(0)
    }

    /// Maximum depth of the fitted tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left as usize).max(depth_of(nodes, *right as usize))
                }
            }
        }
        depth_of(&self.nodes, 0)
    }

    /// Unnormalized impurity importance per feature (total variance
    /// reduction, weighted by node size).
    pub fn feature_importance(&self) -> &[f64] {
        &self.importance
    }
}

/// Prefix scan over one candidate column already ordered ascending by
/// feature value: for a split after position `k` (left = rows `0..=k`), the
/// weighted child variance is computable from running sums of `y` and `y²`.
/// Returns the best `(threshold, score)` under strictly-greater/first-wins
/// tie-breaking, or `None` when no split clears the score floor.
///
/// The accessors keep the two split paths on the same floating-point
/// sequence: `target_at(k)` is the k-th target in sorted order,
/// `next_equal(k)` tells whether positions `k` and `k + 1` hold the same
/// feature value, and `midpoint(k)` is the CART threshold between them.
fn scan_sorted_column(
    parent_var: f64,
    min_leaf: usize,
    n: usize,
    target_at: impl Fn(usize) -> f64,
    next_equal: impl Fn(usize) -> bool,
    midpoint: impl Fn(usize) -> f64,
) -> Option<(f64, f64)> {
    let total_sum: f64 = (0..n).map(&target_at).sum();
    let total_sq: f64 = (0..n)
        .map(|k| {
            let t = target_at(k);
            t * t
        })
        .sum();
    let mut left_sum = 0.0;
    let mut left_sq = 0.0;
    let mut best: Option<(f64, f64)> = None;
    for k in 0..n - 1 {
        let t = target_at(k);
        left_sum += t;
        left_sq += t * t;
        let n_left = k + 1;
        let n_right = n - n_left;
        if n_left < min_leaf {
            continue;
        }
        if n_right < min_leaf {
            break;
        }
        // Can't split between equal feature values.
        if next_equal(k) {
            continue;
        }
        let right_sum = total_sum - left_sum;
        let right_sq = total_sq - left_sq;
        let var_left = left_sq / n_left as f64 - (left_sum / n_left as f64).powi(2);
        let var_right = right_sq / n_right as f64 - (right_sum / n_right as f64).powi(2);
        let weighted = (n_left as f64 * var_left + n_right as f64 * var_right) / n as f64;
        let score = parent_var - weighted;
        if score > 1e-15 && best.is_none_or(|(_, s)| score > s) {
            best = Some((midpoint(k), score));
        }
    }
    best
}

/// Mean and population variance of the targets at `indices`.
fn mean_var(data: &Dataset, indices: &[usize]) -> (f64, f64) {
    let n = indices.len() as f64;
    let mut sum = 0.0;
    let mut sq = 0.0;
    for &i in indices {
        let t = data.target(i);
        sum += t;
        sq += t * t;
    }
    let mean = sum / n;
    let var = (sq / n - mean * mean).max(0.0);
    (mean, var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn fit_all(data: &Dataset, config: &TreeConfig) -> RegressionTree {
        let idx: Vec<usize> = (0..data.len()).collect();
        RegressionTree::fit(data, &idx, config, &mut rng())
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let mut d = Dataset::new(2);
        for i in 0..20 {
            d.push_row(&[i as f64, (i * 3 % 7) as f64], 5.0);
        }
        let t = fit_all(&d, &TreeConfig::default());
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.predict(&[100.0, -3.0]), 5.0);
    }

    #[test]
    fn step_function_recovered_exactly() {
        let mut d = Dataset::new(1);
        for i in 0..50 {
            let x = i as f64;
            d.push_row(&[x], if x < 25.0 { 1.0 } else { 9.0 });
        }
        let t = fit_all(&d, &TreeConfig { min_samples_leaf: 1, min_samples_split: 2, ..Default::default() });
        assert_eq!(t.predict(&[0.0]), 1.0);
        assert_eq!(t.predict(&[24.0]), 1.0);
        assert_eq!(t.predict(&[25.0]), 9.0);
        assert_eq!(t.predict(&[49.0]), 9.0);
    }

    #[test]
    fn splits_on_the_informative_feature() {
        // Feature 0 is pure noise index, feature 1 carries the signal.
        let mut d = Dataset::new(2);
        for i in 0..60 {
            let noise = ((i * 17) % 13) as f64;
            let signal = (i % 2) as f64;
            d.push_row(&[noise, signal], signal * 10.0);
        }
        let t = fit_all(&d, &TreeConfig::default());
        let imp = t.feature_importance();
        assert!(
            imp[1] > imp[0] * 10.0,
            "importance should concentrate on feature 1: {imp:?}"
        );
    }

    #[test]
    fn max_depth_limits_tree() {
        let mut d = Dataset::new(1);
        for i in 0..128 {
            d.push_row(&[i as f64], i as f64);
        }
        let t = fit_all(
            &d,
            &TreeConfig { max_depth: 3, min_samples_leaf: 1, min_samples_split: 2, ..Default::default() },
        );
        assert!(t.depth() <= 3, "depth {} > 3", t.depth());
        assert!(t.n_leaves() <= 8);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let mut d = Dataset::new(1);
        for i in 0..40 {
            d.push_row(&[i as f64], (i % 5) as f64);
        }
        let t = fit_all(
            &d,
            &TreeConfig { min_samples_leaf: 10, min_samples_split: 20, ..Default::default() },
        );
        // With 40 rows and min leaf 10 the tree can have at most 4 leaves.
        assert!(t.n_leaves() <= 4);
    }

    #[test]
    fn prediction_within_target_range() {
        let mut d = Dataset::new(2);
        for i in 0..100 {
            let x = (i as f64) / 10.0;
            d.push_row(&[x, -x], (x * 1.3).sin() * 4.0);
        }
        let (lo, hi) = d.target_range().unwrap();
        let t = fit_all(&d, &TreeConfig::default());
        for probe in [-5.0, 0.0, 3.3, 12.0, 100.0] {
            let p = t.predict(&[probe, -probe]);
            assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut d = Dataset::new(3);
        for i in 0..80 {
            let x = [(i % 9) as f64, (i % 4) as f64, (i % 11) as f64];
            d.push_row(&x, x[0] * 2.0 - x[2]);
        }
        let idx: Vec<usize> = (0..d.len()).collect();
        let cfg = TreeConfig { mtry: 2, ..Default::default() };
        let t1 = RegressionTree::fit(&d, &idx, &cfg, &mut StdRng::seed_from_u64(99));
        let t2 = RegressionTree::fit(&d, &idx, &cfg, &mut StdRng::seed_from_u64(99));
        for i in 0..40 {
            let row = [(i % 9) as f64 + 0.3, (i % 4) as f64, (i % 11) as f64];
            assert_eq!(t1.predict(&row), t2.predict(&row));
        }
    }

    #[test]
    fn single_row_is_a_leaf() {
        let mut d = Dataset::new(1);
        d.push_row(&[1.0], 42.0);
        let t = fit_all(&d, &TreeConfig::default());
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.predict(&[-7.0]), 42.0);
    }

    #[test]
    fn duplicate_indices_weight_the_fit() {
        // Bootstrap-style: row 1 duplicated many times dominates the mean.
        let mut d = Dataset::new(1);
        d.push_row(&[0.0], 0.0);
        d.push_row(&[0.0], 10.0);
        let idx = vec![0, 1, 1, 1, 1, 1, 1, 1, 1, 1];
        let t = RegressionTree::fit(&d, &idx, &TreeConfig::default(), &mut rng());
        // Identical features → single leaf at the weighted mean 9.0.
        assert!((t.predict(&[0.0]) - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn empty_indices_panic() {
        let mut d = Dataset::new(1);
        d.push_row(&[0.0], 0.0);
        RegressionTree::fit(&d, &[], &TreeConfig::default(), &mut rng());
    }

    #[test]
    fn nonlinear_function_fit_quality() {
        // Tree should approximate a smooth 2D function decently on train data.
        let mut d = Dataset::new(2);
        let f = |x: f64, y: f64| (x * 0.8).sin() + (y * 0.5).cos() * 2.0;
        for i in 0..400 {
            let x = (i % 20) as f64 * 0.5;
            let y = (i / 20) as f64 * 0.5;
            d.push_row(&[x, y], f(x, y));
        }
        let t = fit_all(&d, &TreeConfig { min_samples_leaf: 1, min_samples_split: 2, ..Default::default() });
        let mut err = 0.0;
        for i in 0..400 {
            let x = (i % 20) as f64 * 0.5;
            let y = (i / 20) as f64 * 0.5;
            err += (t.predict(&[x, y]) - f(x, y)).abs();
        }
        err /= 400.0;
        assert!(err < 0.05, "mean abs train error {err}");
    }
}
