//! Row-major training data for regression forests.

use std::fmt;

/// A rejected training row: the ingestion-time half of the forest's
/// NaN-feature story (the other half is the total [`crate::feature_cmp`]
/// ordering used by every split-finding sort).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// `row.len()` did not match the dataset's feature count.
    WrongWidth { expected: usize, got: usize },
    /// A feature (`target: false`) or the target (`target: true`) was NaN
    /// or infinite.
    NonFinite { column: usize, target: bool },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::WrongWidth { expected, got } => {
                write!(f, "row has {got} features, dataset expects {expected}")
            }
            DataError::NonFinite { column, target: false } => {
                write!(f, "non-finite value in feature column {column}")
            }
            DataError::NonFinite { .. } => write!(f, "non-finite target value"),
        }
    }
}

impl std::error::Error for DataError {}

/// A regression training set: `n_rows` rows of `n_features` numeric features
/// plus one numeric target per row, stored contiguously.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    n_features: usize,
    /// Flattened `n_rows × n_features`, row-major.
    features: Vec<f64>,
    targets: Vec<f64>,
}

impl Dataset {
    /// Empty dataset for rows of `n_features` features.
    pub fn new(n_features: usize) -> Self {
        Dataset { n_features, features: Vec::new(), targets: Vec::new() }
    }

    /// Empty dataset with capacity reserved for `n_rows` rows.
    pub fn with_capacity(n_features: usize, n_rows: usize) -> Self {
        Dataset {
            n_features,
            features: Vec::with_capacity(n_features * n_rows),
            targets: Vec::with_capacity(n_rows),
        }
    }

    /// Append one `(features, target)` row.
    ///
    /// # Panics
    /// If `row.len() != n_features` or any value is non-finite — surrogate
    /// training data must be clean, so corrupt rows fail fast. Callers
    /// ingesting untrusted measurements should use [`Self::try_push_row`].
    pub fn push_row(&mut self, row: &[f64], target: f64) {
        assert_eq!(
            row.len(),
            self.n_features,
            "row has {} features, dataset expects {}",
            row.len(),
            self.n_features
        );
        assert!(
            row.iter().all(|v| v.is_finite()) && target.is_finite(),
            "non-finite value in training row"
        );
        self.features.extend_from_slice(row);
        self.targets.push(target);
    }

    /// Fallible [`Self::push_row`]: rejects malformed rows with a
    /// [`DataError`] instead of panicking, leaving the dataset unchanged.
    pub fn try_push_row(&mut self, row: &[f64], target: f64) -> Result<(), DataError> {
        if row.len() != self.n_features {
            return Err(DataError::WrongWidth { expected: self.n_features, got: row.len() });
        }
        if let Some(column) = row.iter().position(|v| !v.is_finite()) {
            return Err(DataError::NonFinite { column, target: false });
        }
        if !target.is_finite() {
            return Err(DataError::NonFinite { column: 0, target: true });
        }
        self.features.extend_from_slice(row);
        self.targets.push(target);
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True when no rows have been added.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Number of features per row.
    #[inline]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Feature slice of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.features[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Feature `f` of row `i`.
    #[inline]
    pub fn feature(&self, i: usize, f: usize) -> f64 {
        self.features[i * self.n_features + f]
    }

    /// Target of row `i`.
    #[inline]
    pub fn target(&self, i: usize) -> f64 {
        self.targets[i]
    }

    /// All targets.
    #[inline]
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// Mean of the targets (0 for an empty set).
    pub fn target_mean(&self) -> f64 {
        if self.targets.is_empty() {
            0.0
        } else {
            self.targets.iter().sum::<f64>() / self.targets.len() as f64
        }
    }

    /// Population variance of the targets.
    pub fn target_variance(&self) -> f64 {
        if self.targets.is_empty() {
            return 0.0;
        }
        let mean = self.target_mean();
        self.targets.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / self.targets.len() as f64
    }

    /// (min, max) of the targets; `None` when empty.
    pub fn target_range(&self) -> Option<(f64, f64)> {
        let mut it = self.targets.iter();
        let first = *it.next()?;
        let mut min = first;
        let mut max = first;
        for &t in it {
            min = min.min(t);
            max = max.max(t);
        }
        Some((min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut d = Dataset::new(3);
        d.push_row(&[1.0, 2.0, 3.0], 10.0);
        d.push_row(&[4.0, 5.0, 6.0], 20.0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.n_features(), 3);
        assert_eq!(d.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(d.feature(0, 2), 3.0);
        assert_eq!(d.target(1), 20.0);
    }

    #[test]
    #[should_panic(expected = "features")]
    fn wrong_width_panics() {
        let mut d = Dataset::new(2);
        d.push_row(&[1.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_feature_panics() {
        let mut d = Dataset::new(1);
        d.push_row(&[f64::NAN], 0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn infinite_target_panics() {
        let mut d = Dataset::new(1);
        d.push_row(&[0.0], f64::INFINITY);
    }

    #[test]
    fn try_push_row_rejects_without_mutating() {
        let mut d = Dataset::new(2);
        assert_eq!(
            d.try_push_row(&[1.0], 0.0),
            Err(DataError::WrongWidth { expected: 2, got: 1 })
        );
        assert_eq!(
            d.try_push_row(&[1.0, f64::NAN], 0.0),
            Err(DataError::NonFinite { column: 1, target: false })
        );
        assert_eq!(
            d.try_push_row(&[1.0, 2.0], f64::INFINITY),
            Err(DataError::NonFinite { column: 0, target: true })
        );
        assert!(d.is_empty());
        assert_eq!(d.try_push_row(&[1.0, 2.0], 3.0), Ok(()));
        assert_eq!(d.len(), 1);
        assert_eq!(d.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn data_error_messages() {
        let e = DataError::WrongWidth { expected: 2, got: 1 };
        assert_eq!(e.to_string(), "row has 1 features, dataset expects 2");
        let e = DataError::NonFinite { column: 3, target: false };
        assert_eq!(e.to_string(), "non-finite value in feature column 3");
        let e = DataError::NonFinite { column: 0, target: true };
        assert_eq!(e.to_string(), "non-finite target value");
    }

    #[test]
    fn statistics() {
        let mut d = Dataset::new(1);
        for t in [1.0, 2.0, 3.0, 4.0] {
            d.push_row(&[t], t);
        }
        assert!((d.target_mean() - 2.5).abs() < 1e-12);
        assert!((d.target_variance() - 1.25).abs() < 1e-12);
        assert_eq!(d.target_range(), Some((1.0, 4.0)));
    }

    #[test]
    fn empty_statistics() {
        let d = Dataset::new(2);
        assert!(d.is_empty());
        assert_eq!(d.target_mean(), 0.0);
        assert_eq!(d.target_variance(), 0.0);
        assert_eq!(d.target_range(), None);
    }
}
