//! Criterion benches for the fast surrogate engine: histogram vs. exact
//! split finding, compiled vs. pointer-chasing forest prediction on the
//! paper-scale 50 000-row candidate pool, frame-cached vs. cold native
//! pipeline evaluation, and sequential vs. parallel cross-configuration
//! batch evaluation. `scripts/bench.sh` runs these headless and distills
//! the medians into `BENCH_surrogate.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use hypermapper::{
    pareto_front, Evaluator, FnEvaluator, HyperMapper, IncrementalFront, Journal, OptimizerConfig,
    ParallelBatchEvaluator, ParamSpace,
};
use icl_nuim_synth::{NoiseModel, SequenceConfig, SyntheticSequence, TrajectoryKind};
use kfusion::KFusionConfig;
use randforest::{
    BinnedDataset, CompiledForest, Dataset, ForestConfig, PredictionCache, QuantizedForest,
    RandomForest, SplitMethod, TreeConfig,
};
use slambench::run_kfusion;
use std::time::Duration;

fn training_data(n: usize) -> Dataset {
    let mut d = Dataset::new(9);
    for i in 0..n {
        let row: Vec<f64> =
            (0..9).map(|f| ((i * (f + 3) * 2654435761) % 1000) as f64 / 100.0).collect();
        let y = row[0] * 2.0 + (row[3] * 0.5).sin() * 10.0 + row[7];
        d.push_row(&row, y);
    }
    d
}

/// The paper's candidate pool: up to 50 000 configurations scored per
/// active-learning iteration.
fn pool_rows(n: usize) -> Vec<f64> {
    (0..n)
        .flat_map(|i| (0..9).map(move |f| ((i * (f + 5)) % 997) as f64 / 99.0))
        .collect()
}

fn bench_split_finding(c: &mut Criterion) {
    let data = training_data(3000);
    for (name, split) in [
        ("fit_exact_3000x50", SplitMethod::Exact),
        ("fit_histogram_3000x50", SplitMethod::Histogram),
    ] {
        let cfg = ForestConfig {
            n_trees: 50,
            seed: 1,
            tree: TreeConfig { split, ..Default::default() },
            ..Default::default()
        };
        c.bench_function(name, |b| b.iter(|| RandomForest::fit(&data, &cfg)));
    }
}

fn bench_pool_predict(c: &mut Criterion) {
    let data = training_data(3000);
    let cfg = ForestConfig { n_trees: 100, seed: 1, ..Default::default() };
    let forest = RandomForest::fit(&data, &cfg);
    let second = RandomForest::fit(&data, &ForestConfig { seed: 2, ..cfg });
    let compiled = CompiledForest::compile(&forest);
    let fused = CompiledForest::compile_multi(&[&forest, &second]);
    let rows = pool_rows(50_000);

    let quantized = QuantizedForest::from_compiled(&compiled)
        .expect("bench training data has far fewer than 65 535 cuts per feature");
    // Node-pool footprints are deterministic properties of the fitted
    // forest, not timings; emit them in the OFFLINE_BENCH key/value format
    // that scripts/bench.sh already parses alongside the criterion medians.
    println!("OFFLINE_BENCH compiled_pool_bytes {} bytes", compiled.pool_bytes());
    println!("OFFLINE_BENCH quantized_pool_bytes {} bytes", quantized.pool_bytes());

    c.bench_function("predict_pointer_50000x100", |b| b.iter(|| forest.predict_batch(&rows)));
    c.bench_function("predict_compiled_50000x100", |b| b.iter(|| compiled.predict_batch(&rows)));
    c.bench_function("predict_quantized_50000x100", |b| {
        b.iter(|| quantized.predict_batch(&rows))
    });
    // The lossy cache in front of the quantized sweep, warm steady state:
    // one key per pool row, far more slots than keys, so each pass recomputes
    // only the direct-mapped collision losers (~4–5% of rows here).
    c.bench_function("predict_quantized_cached_50000x100", |b| {
        let keys: Vec<u64> = (0..50_000u64).collect();
        let mut cache = PredictionCache::new(1, 1 << 20);
        b.iter(|| {
            cache.lookup_or_compute(&keys, |miss| {
                let mut miss_rows = Vec::with_capacity(miss.len() * 9);
                for &i in miss {
                    miss_rows.extend_from_slice(&rows[i * 9..][..9]);
                }
                vec![quantized.predict_batch(&miss_rows)]
            })
        })
    });
    // Both objectives of a HyperMapper iteration in one fused pass…
    c.bench_function("predict_fused_2obj_50000x100", |b| {
        b.iter(|| fused.predict_batch_multi(&rows))
    });
    // …vs. the two separate pointer-chasing passes it replaces.
    c.bench_function("predict_pointer_2obj_50000x100", |b| {
        b.iter(|| (forest.predict_batch(&rows), second.predict_batch(&rows)))
    });
}

fn bench_native_eval(c: &mut Criterion) {
    let seq_cfg = SequenceConfig {
        width: 48,
        height: 36,
        n_frames: 4,
        trajectory: TrajectoryKind::LivingRoomLoop,
        noise: NoiseModel::none(),
        seed: 0,
    };
    let kf_cfg = KFusionConfig { volume_resolution: 64, ..Default::default() };

    // Cold: a fresh sequence per evaluation, i.e. every frame re-rendered —
    // the pre-cache cost of each additional configuration.
    c.bench_function("native_kfusion_cold_cache_4f", |b| {
        b.iter(|| {
            let seq = SyntheticSequence::new(seq_cfg.clone());
            run_kfusion(&seq, &kf_cfg, 4)
        })
    });

    // Warm: the shared sequence all configurations after the first see.
    let seq = SyntheticSequence::new(seq_cfg);
    seq.prerender();
    c.bench_function("native_kfusion_warm_cache_4f", |b| {
        b.iter(|| run_kfusion(&seq, &kf_cfg, 4))
    });
}

fn bench_parallel_batch(c: &mut Criterion) {
    let space = ParamSpace::builder()
        .ordinal("x", (0..64).map(f64::from))
        .build()
        .unwrap();
    let configs: Vec<_> = (0..8).map(|i| space.config_at(i * 7)).collect();

    // Latency-bound evaluator: ~4 ms of blocking wait per configuration —
    // the regime of real measurement backends, where the headline win of
    // cross-configuration parallelism is overlapping the waits. The speedup
    // shows even on a single-core host.
    let latency = FnEvaluator::new(2, |cfg| {
        std::thread::sleep(Duration::from_millis(4));
        let x = cfg.value_f64(0);
        vec![x, 64.0 - x]
    });
    c.bench_function("batch_sequential_8cfg", |b| b.iter(|| latency.evaluate_batch(&configs)));
    c.bench_function("batch_parallel_8cfg", |b| {
        b.iter(|| ParallelBatchEvaluator::with_workers(&latency, 8).evaluate_batch(&configs))
    });

    // Compute-bound pair: deterministic busywork instead of a wait. This
    // speedup tracks physical cores (it stays ~1 on one core), so it is
    // recorded as its own series rather than folded into the latency pair.
    let compute = FnEvaluator::new(2, |cfg| {
        let mut h = cfg.choices()[0] as u64 + 1;
        for _ in 0..200_000 {
            h = h.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        }
        vec![(h % 1000) as f64, cfg.value_f64(0)]
    });
    c.bench_function("batch_compute_sequential_8cfg", |b| {
        b.iter(|| compute.evaluate_batch(&configs))
    });
    c.bench_function("batch_compute_parallel_8cfg", |b| {
        b.iter(|| ParallelBatchEvaluator::with_workers(&compute, 8).evaluate_batch(&configs))
    });
    // The auto-sequential heuristic: with an honest per-evaluation cost hint
    // (~33 µs of busywork) the scheduler computes that fanning out cannot
    // repay its dispatch bill and runs the batch on the calling thread —
    // same values, same order, sequential wall-clock.
    c.bench_function("batch_compute_auto_8cfg", |b| {
        b.iter(|| {
            ParallelBatchEvaluator::with_workers(&compute, 8)
                .with_cost_hint_ns(33_000)
                .evaluate_batch(&configs)
        })
    });
}

fn bench_timing_honesty(c: &mut Criterion) {
    // The timing-isolation contract: a timing-mode evaluation must cost the
    // same as running the pipeline directly on a dedicated machine — the
    // evaluator may add bookkeeping but no concurrency. Both sides run on a
    // pre-warmed frame cache so the ratio isolates evaluator overhead.
    let seq_cfg = SequenceConfig {
        width: 48,
        height: 36,
        n_frames: 4,
        trajectory: TrajectoryKind::LivingRoomLoop,
        noise: NoiseModel::none(),
        seed: 0,
    };
    let config = slambench::kfusion_space().config_at(0);
    let kf_cfg = slambench::spaces::kf_pipeline_config(&config);

    let evaluator = slambench::NativeKFusionEvaluator::new(seq_cfg.clone(), 4);
    evaluator.sequence().prerender();
    c.bench_function("timing_mode_eval_4f", |b| b.iter(|| evaluator.evaluate(&config)));

    let seq = SyntheticSequence::new(seq_cfg);
    seq.prerender();
    c.bench_function("dedicated_sequential_4f", |b| b.iter(|| run_kfusion(&seq, &kf_cfg, 4)));
}

fn bench_incremental_front(c: &mut Criterion) {
    // The optimizer's dominance bookkeeping at huge-pool scale: 200 000
    // two-objective points, deterministic and heavily quantized so the front
    // stays small while almost every push probes the staircase. The batch
    // series re-runs the full O(n log n) `pareto_front` sweep the optimizer
    // used to pay per iteration; the incremental series maintains the same
    // front one push at a time, which is what `predict_front` and
    // `ExplorationState` now do.
    let points: Vec<[f64; 2]> = (0..200_000u64)
        .map(|i| {
            let h = i.wrapping_mul(2654435761).wrapping_add(12345);
            [(h % 1000) as f64 / 10.0, ((h >> 10) % 1000) as f64 / 10.0]
        })
        .collect();
    let rows: Vec<Vec<f64>> = points.iter().map(|p| p.to_vec()).collect();

    c.bench_function("incremental_front_200k", |b| {
        b.iter(|| {
            let mut front = IncrementalFront::new(2);
            for p in &points {
                front.push(p);
            }
            front.front_indices().len()
        })
    });
    c.bench_function("batch_front_200k", |b| b.iter(|| pareto_front(&rows).len()));
}

fn bench_warm_refit(c: &mut Criterion) {
    // Warm-start surrogate refit: the optimizer re-fits its forests every
    // iteration on the same sample set plus a handful of new rows. The cold
    // series rebuilds the histogram index from scratch (the old per-iteration
    // cost); the warm series extends the previous iteration's bins with the
    // 100 new rows via `append_rows` and fits from those — the two paths are
    // bit-identical by construction (see crates/forest binning tests). Tree
    // growing dominates at this scale, so the ratio sits near 1.0; the pair
    // is gated to pin that warm-start's bookkeeping never becomes a
    // regression, and the derived `refit_warm_vs_cold` ratio tracks the
    // binning share as row counts grow. The stub harness only supports
    // `iter`, so the warm closure clones the prior bins each pass; the clone
    // is ~100 KB against a 50-tree fit and does not move the median.
    let prev = training_data(2900);
    let full = training_data(3000);
    let prev_bins = BinnedDataset::new(&prev);
    let cfg = ForestConfig { n_trees: 50, seed: 1, ..Default::default() };

    c.bench_function("refit_cold_3000x50", |b| b.iter(|| RandomForest::fit(&full, &cfg)));
    c.bench_function("refit_warm_3000x50", |b| {
        b.iter(|| {
            let mut bins = prev_bins.clone();
            bins.append_rows(&full);
            RandomForest::fit_with_bins(&full, &bins, &cfg)
        })
    });
}

fn bench_journal_overhead(c: &mut Criterion) {
    // Durability tax: the same exploration with and without the write-ahead
    // journal (per-batch fsync, the default policy). The evaluator carries
    // ~1 ms of black-boxed busywork per configuration — the cost scale of a
    // simulated KFusion evaluation — and the run is large enough (~170
    // evaluations, one fsync per 64-record batch) that the fixed fsync cost
    // is amortized the way a real exploration amortizes it; the target is
    // <5% median overhead.
    let space = ParamSpace::builder()
        .ordinal("x", (0..64).map(f64::from))
        .ordinal("y", (0..64).map(f64::from))
        .build()
        .unwrap();
    let eval = FnEvaluator::new(2, |cfg| {
        let mut h = cfg.choices()[0] as u64 * 67 + cfg.choices()[1] as u64 + 1;
        for _ in 0..3_000_000 {
            h = h.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        }
        let h = std::hint::black_box(h);
        let x = cfg.value_f64(0);
        let y = cfg.value_f64(1);
        vec![x + y * 0.1 + (h % 7) as f64 * 1e-12, 64.0 - x + (y - 13.0).abs() * 0.2]
    });
    let cfg = OptimizerConfig {
        random_samples: 128,
        max_iterations: 2,
        max_evals_per_iteration: 64,
        pool_size: 1500,
        forest: ForestConfig { n_trees: 8, ..Default::default() },
        seed: 7,
        ..Default::default()
    };
    let hm = HyperMapper::new(space, cfg);

    c.bench_function("journal_overhead_off", |b| b.iter(|| hm.try_run(&eval).unwrap()));

    let path = std::env::temp_dir()
        .join(format!("hm-bench-journal-overhead-{}.journal", std::process::id()));
    c.bench_function("journal_overhead_on", |b| {
        b.iter(|| {
            let mut journal = Journal::create(&path).expect("journal");
            hm.try_run_journaled(&eval, &mut journal).unwrap()
        })
    });
    let _ = std::fs::remove_file(&path);
}

criterion_group!(
    benches,
    bench_split_finding,
    bench_pool_predict,
    bench_native_eval,
    bench_parallel_batch,
    bench_timing_honesty,
    bench_incremental_front,
    bench_warm_refit,
    bench_journal_overhead
);
criterion_main!(benches);
