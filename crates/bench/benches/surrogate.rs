//! Criterion benches for the fast surrogate engine: histogram vs. exact
//! split finding, compiled vs. pointer-chasing forest prediction on the
//! paper-scale 50 000-row candidate pool, and frame-cached vs. cold native
//! pipeline evaluation. `scripts/bench.sh` runs these headless and distills
//! the medians into `BENCH_surrogate.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use icl_nuim_synth::{NoiseModel, SequenceConfig, SyntheticSequence, TrajectoryKind};
use kfusion::KFusionConfig;
use randforest::{CompiledForest, Dataset, ForestConfig, RandomForest, SplitMethod, TreeConfig};
use slambench::run_kfusion;

fn training_data(n: usize) -> Dataset {
    let mut d = Dataset::new(9);
    for i in 0..n {
        let row: Vec<f64> =
            (0..9).map(|f| ((i * (f + 3) * 2654435761) % 1000) as f64 / 100.0).collect();
        let y = row[0] * 2.0 + (row[3] * 0.5).sin() * 10.0 + row[7];
        d.push_row(&row, y);
    }
    d
}

/// The paper's candidate pool: up to 50 000 configurations scored per
/// active-learning iteration.
fn pool_rows(n: usize) -> Vec<f64> {
    (0..n)
        .flat_map(|i| (0..9).map(move |f| ((i * (f + 5)) % 997) as f64 / 99.0))
        .collect()
}

fn bench_split_finding(c: &mut Criterion) {
    let data = training_data(3000);
    for (name, split) in [
        ("fit_exact_3000x50", SplitMethod::Exact),
        ("fit_histogram_3000x50", SplitMethod::Histogram),
    ] {
        let cfg = ForestConfig {
            n_trees: 50,
            seed: 1,
            tree: TreeConfig { split, ..Default::default() },
            ..Default::default()
        };
        c.bench_function(name, |b| b.iter(|| RandomForest::fit(&data, &cfg)));
    }
}

fn bench_pool_predict(c: &mut Criterion) {
    let data = training_data(3000);
    let cfg = ForestConfig { n_trees: 100, seed: 1, ..Default::default() };
    let forest = RandomForest::fit(&data, &cfg);
    let second = RandomForest::fit(&data, &ForestConfig { seed: 2, ..cfg });
    let compiled = CompiledForest::compile(&forest);
    let fused = CompiledForest::compile_multi(&[&forest, &second]);
    let rows = pool_rows(50_000);

    c.bench_function("predict_pointer_50000x100", |b| b.iter(|| forest.predict_batch(&rows)));
    c.bench_function("predict_compiled_50000x100", |b| b.iter(|| compiled.predict_batch(&rows)));
    // Both objectives of a HyperMapper iteration in one fused pass…
    c.bench_function("predict_fused_2obj_50000x100", |b| {
        b.iter(|| fused.predict_batch_multi(&rows))
    });
    // …vs. the two separate pointer-chasing passes it replaces.
    c.bench_function("predict_pointer_2obj_50000x100", |b| {
        b.iter(|| (forest.predict_batch(&rows), second.predict_batch(&rows)))
    });
}

fn bench_native_eval(c: &mut Criterion) {
    let seq_cfg = SequenceConfig {
        width: 48,
        height: 36,
        n_frames: 4,
        trajectory: TrajectoryKind::LivingRoomLoop,
        noise: NoiseModel::none(),
        seed: 0,
    };
    let kf_cfg = KFusionConfig { volume_resolution: 64, ..Default::default() };

    // Cold: a fresh sequence per evaluation, i.e. every frame re-rendered —
    // the pre-cache cost of each additional configuration.
    c.bench_function("native_kfusion_cold_cache_4f", |b| {
        b.iter(|| {
            let seq = SyntheticSequence::new(seq_cfg.clone());
            run_kfusion(&seq, &kf_cfg, 4)
        })
    });

    // Warm: the shared sequence all configurations after the first see.
    let seq = SyntheticSequence::new(seq_cfg);
    seq.prerender();
    c.bench_function("native_kfusion_warm_cache_4f", |b| {
        b.iter(|| run_kfusion(&seq, &kf_cfg, 4))
    });
}

criterion_group!(benches, bench_split_finding, bench_pool_predict, bench_native_eval);
criterion_main!(benches);
