//! Criterion benches: real per-frame cost of the two SLAM pipelines at a
//! small test resolution (the native-evaluation path).

use criterion::{criterion_group, criterion_main, Criterion};
use elasticfusion::{EFusionConfig, ElasticFusion};
use icl_nuim_synth::{NoiseModel, SequenceConfig, SyntheticSequence, TrajectoryKind};
use kfusion::{KFusion, KFusionConfig};

fn sequence() -> SyntheticSequence {
    SyntheticSequence::new(SequenceConfig {
        width: 64,
        height: 48,
        n_frames: 200,
        trajectory: TrajectoryKind::LivingRoomLoop,
        noise: NoiseModel::none(),
        seed: 0,
    })
}

fn bench_kfusion(c: &mut Criterion) {
    let seq = sequence();
    let frames: Vec<_> = (0..4).map(|i| seq.frame(i)).collect();
    let mut group = c.benchmark_group("kfusion_frame");
    group.sample_size(10);
    for vol in [64usize, 128] {
        group.bench_function(format!("vol{vol}"), |b| {
            b.iter(|| {
                let cfg = KFusionConfig { volume_resolution: vol, ..Default::default() };
                let mut kf = KFusion::new(cfg, seq.intrinsics(), seq.gt_pose(0));
                for f in &frames {
                    kf.process(f);
                }
                kf.pose()
            })
        });
    }
    group.finish();
}

fn bench_elasticfusion(c: &mut Criterion) {
    let seq = sequence();
    let frames: Vec<_> = (0..4).map(|i| seq.frame(i)).collect();
    let mut group = c.benchmark_group("elasticfusion_frame");
    group.sample_size(10);
    for fast in [false, true] {
        group.bench_function(format!("fast_odom_{fast}"), |b| {
            b.iter(|| {
                let cfg = EFusionConfig { fast_odom: fast, ..Default::default() };
                let mut ef = ElasticFusion::new(cfg, seq.intrinsics(), seq.gt_pose(0));
                for f in &frames {
                    ef.process(f);
                }
                ef.pose()
            })
        });
    }
    group.finish();
}

fn bench_render(c: &mut Criterion) {
    let seq = sequence();
    c.bench_function("render_frame_64x48", |b| b.iter(|| seq.frame(1)));
}

criterion_group!(benches, bench_kfusion, bench_elasticfusion, bench_render);
criterion_main!(benches);
