//! Criterion benches: random forest training and prediction (the surrogate
//! model cost per active-learning iteration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use randforest::{Dataset, ForestConfig, RandomForest};

fn training_data(n: usize) -> Dataset {
    let mut d = Dataset::new(9);
    for i in 0..n {
        let row: Vec<f64> = (0..9).map(|f| ((i * (f + 3) * 2654435761) % 1000) as f64 / 100.0).collect();
        let y = row[0] * 2.0 + (row[3] * 0.5).sin() * 10.0 + row[7];
        d.push_row(&row, y);
    }
    d
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest_fit");
    group.sample_size(10);
    for n in [500usize, 3000] {
        let data = training_data(n);
        for trees in [20usize, 100] {
            group.bench_with_input(
                BenchmarkId::new(format!("{n}samples"), trees),
                &trees,
                |b, &trees| {
                    b.iter(|| {
                        RandomForest::fit(
                            &data,
                            &ForestConfig { n_trees: trees, seed: 1, ..Default::default() },
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let data = training_data(3000);
    let forest = RandomForest::fit(&data, &ForestConfig { n_trees: 100, seed: 1, ..Default::default() });
    let rows: Vec<f64> = (0..10_000usize)
        .flat_map(|i| (0..9).map(move |f| ((i * (f + 5)) % 997) as f64 / 99.0))
        .collect();
    c.bench_function("forest_predict_batch_10k", |b| {
        b.iter(|| forest.predict_batch(&rows))
    });
}

criterion_group!(benches, bench_fit, bench_predict);
criterion_main!(benches);
