//! Criterion benches: Pareto-front extraction and hypervolume (per
//! active-learning iteration over the prediction pool).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypermapper::{hypervolume_2d, pareto_front_2d};

fn points(n: usize) -> Vec<(f64, f64)> {
    (0..n as u64)
        .map(|i| {
            let x = ((i.wrapping_mul(2654435761)) % 100_000) as f64;
            let y = ((i.wrapping_mul(40503).wrapping_add(77)) % 100_000) as f64;
            (x, y)
        })
        .collect()
}

fn bench_front(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto_front_2d");
    for n in [1_000usize, 50_000, 200_000] {
        let pts = points(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| pareto_front_2d(pts))
        });
    }
    group.finish();
}

fn bench_hypervolume(c: &mut Criterion) {
    let pts = points(50_000);
    c.bench_function("hypervolume_2d_50k", |b| {
        b.iter(|| hypervolume_2d(&pts, (100_000.0, 100_000.0)))
    });
}

criterion_group!(benches, bench_front, bench_hypervolume);
criterion_main!(benches);
