//! Criterion benches: analytic device-model evaluation throughput (the
//! inner loop of the paper-scale DSE).

use criterion::{criterion_group, criterion_main, Criterion};
use device_models::{ef_ate, ef_frame_time, kf_ate, kf_frame_time, EfParams, KfParams};

fn bench_models(c: &mut Criterion) {
    let dev = device_models::odroid_xu3();
    let gtx = device_models::gtx780ti();
    let kf = KfParams::default_config();
    let ef = EfParams::default_config();
    c.bench_function("kf_frame_time", |b| b.iter(|| kf_frame_time(&kf, &dev)));
    c.bench_function("kf_ate", |b| b.iter(|| kf_ate(&kf)));
    c.bench_function("ef_frame_time", |b| b.iter(|| ef_frame_time(&ef, &gtx)));
    c.bench_function("ef_ate", |b| b.iter(|| ef_ate(&ef)));
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
