//! Criterion benches: a full (reduced-scale) HyperMapper exploration on
//! the simulated KFusion problem.

use criterion::{criterion_group, criterion_main, Criterion};
use hypermapper::{HyperMapper, OptimizerConfig};
use randforest::ForestConfig;
use slambench::{kfusion_space, SimulatedKFusionEvaluator};

fn bench_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer");
    group.sample_size(10);
    group.bench_function("kfusion_dse_small", |b| {
        b.iter(|| {
            let hm = HyperMapper::new(
                kfusion_space(),
                OptimizerConfig {
                    random_samples: 100,
                    max_iterations: 2,
                    max_evals_per_iteration: 50,
                    pool_size: 5_000,
                    forest: ForestConfig { n_trees: 20, ..Default::default() },
                    seed: 1,
                    ..Default::default()
                },
            );
            hm.run(&SimulatedKFusionEvaluator::new(device_models::odroid_xu3()))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_exploration);
criterion_main!(benches);
