//! Plain-text / CSV / JSON reporting helpers for the experiment binaries.

use crate::experiments::{CrowdResult, DseOutcome, SurfaceCell, Table1Row};
use std::fs;
use std::path::Path;

/// Directory where experiment binaries drop their machine-readable output.
pub const RESULTS_DIR: &str = "results";

/// Ensure the results directory exists and write `content` to
/// `results/<name>`.
pub fn write_results_file(name: &str, content: &str) -> std::io::Result<()> {
    let dir = Path::new(RESULTS_DIR);
    fs::create_dir_all(dir)?;
    fs::write(dir.join(name), content)
}

/// Serialize any serde value into `results/<name>` as JSON. In the offline
/// build, where the serde_json stub cannot serialize derive types, the JSON
/// sidecar is skipped with a note instead of crashing the whole experiment
/// run (the CSV and fingerprint outputs do not depend on serde).
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) -> std::io::Result<()> {
    match serde_json::to_string_pretty(value) {
        Ok(s) => write_results_file(name, &s),
        Err(e) => {
            eprintln!("skipping results/{name}: {e}");
            Ok(())
        }
    }
}

/// Fig. 1 surface as CSV (`mu,icp_threshold,frame_runtime_ms`).
pub fn surface_csv(cells: &[SurfaceCell]) -> String {
    let mut out = String::from("mu,icp_threshold,frame_runtime_ms\n");
    for c in cells {
        out.push_str(&format!("{},{:e},{:.4}\n", c.mu, c.icp_threshold, c.frame_runtime_ms));
    }
    out
}

/// DSE scatter points as CSV (`phase,runtime,ate`), the data behind
/// Figs. 3 and 4.
pub fn dse_csv(outcome: &DseOutcome) -> String {
    let mut out = String::from("phase,runtime,ate\n");
    for s in &outcome.result.samples {
        let phase = match s.phase {
            hypermapper::Phase::Random => "random".to_string(),
            hypermapper::Phase::Active(i) => format!("active{i}"),
        };
        out.push_str(&format!("{phase},{:.6},{:.6}\n", s.objectives[0], s.objectives[1]));
    }
    out
}

/// Human-readable DSE summary block (the counts reported in §IV-C).
pub fn dse_summary(outcome: &DseOutcome) -> String {
    let mut s = String::new();
    s.push_str(&format!("platform:          {}\n", outcome.platform));
    s.push_str(&format!("random samples:    {}\n", outcome.random_samples));
    s.push_str(&format!("active samples:    {}\n", outcome.active_samples));
    s.push_str(&format!("valid (<5cm) rnd:  {}\n", outcome.valid_random));
    s.push_str(&format!("valid (<5cm) AL:   {}\n", outcome.valid_active));
    s.push_str(&format!("pareto points:     {}\n", outcome.pareto_points));
    for it in &outcome.result.iterations {
        s.push_str(&format!(
            "  iteration {}: +{} evals (predicted front {}), hv {:.5}\n",
            it.iteration, it.new_evaluations, it.predicted_front_size, it.hypervolume
        ));
    }
    s
}

/// Table I in aligned plain text.
pub fn table1_text(rows: &[Table1Row]) -> String {
    let mut s = String::from(
        "Label          Error(m) Runtime(s)  ICP Depth Conf SO3 CL Reloc Fast FTF\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<14} {:>8.4} {:>10.1} {:>4.1} {:>5.1} {:>4.1} {:>3} {:>2} {:>5} {:>4} {:>3}\n",
            if r.label.is_empty() { "-" } else { &r.label },
            r.error_m,
            r.runtime_s,
            r.icp_weight,
            r.depth_cutoff,
            r.confidence,
            r.so3,
            r.close_loops,
            r.reloc,
            r.fast_odom,
            r.ftf_rgb,
        ));
    }
    s
}

/// Fig. 5 as a CSV plus an ASCII histogram of the speedups.
pub fn crowd_report(results: &[CrowdResult]) -> (String, String) {
    let mut csv = String::from("device,default_s,best_s,speedup\n");
    for r in results {
        csv.push_str(&format!(
            "\"{}\",{:.5},{:.5},{:.2}\n",
            r.device, r.default_time, r.best_time, r.speedup
        ));
    }
    // Histogram over speedup buckets 0-2, 2-4, ... 12+.
    let mut buckets = [0usize; 8];
    for r in results {
        let b = ((r.speedup / 2.0).floor() as usize).min(7);
        buckets[b] += 1;
    }
    let mut hist = String::from("speedup histogram (83 devices):\n");
    for (i, &count) in buckets.iter().enumerate() {
        let label = if i == 7 { "14+ ".to_string() } else { format!("{:>2}-{:<2}", i * 2, i * 2 + 2) };
        hist.push_str(&format!("{label} | {}\n", "#".repeat(count)));
    }
    (csv, hist)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_csv_has_header_and_rows() {
        let cells = vec![SurfaceCell { mu: 0.1, icp_threshold: 1e-5, frame_runtime_ms: 100.0 }];
        let csv = surface_csv(&cells);
        assert!(csv.starts_with("mu,icp_threshold,frame_runtime_ms\n"));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn table1_text_formats_rows() {
        let rows = vec![Table1Row {
            label: "Default".into(),
            error_m: 0.0558,
            runtime_s: 22.2,
            icp_weight: 10.0,
            depth_cutoff: 3.0,
            confidence: 10.0,
            so3: 1,
            close_loops: 0,
            reloc: 1,
            fast_odom: 0,
            ftf_rgb: 0,
        }];
        let text = table1_text(&rows);
        assert!(text.contains("Default"));
        assert!(text.contains("0.0558"));
        assert!(text.contains("22.2"));
    }

    #[test]
    fn crowd_report_buckets_sum_to_devices() {
        let results: Vec<CrowdResult> = (0..10)
            .map(|i| CrowdResult {
                device: format!("dev{i}"),
                default_time: 0.2,
                best_time: 0.2 / (2.0 + i as f64),
                speedup: 2.0 + i as f64,
            })
            .collect();
        let (csv, hist) = crowd_report(&results);
        assert_eq!(csv.lines().count(), 11);
        let hashes: usize = hist.matches('#').count();
        assert_eq!(hashes, 10);
    }
}
