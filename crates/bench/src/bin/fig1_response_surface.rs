//! Regenerates Fig. 1: the KFusion runtime response surface over
//! (µ, icp-threshold) on the ODROID-XU3 model.
//!
//! Usage: `cargo run -p hm-bench --release --bin fig1_response_surface`

use hm_bench::experiments::fig1_response_surface;
use hm_bench::report::{surface_csv, write_results_file};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cells = fig1_response_surface(&device_models::odroid_xu3());
    let csv = surface_csv(&cells);
    write_results_file("fig1_response_surface.csv", &csv)?;

    let min = cells.iter().map(|c| c.frame_runtime_ms).fold(f64::INFINITY, f64::min);
    let max = cells.iter().map(|c| c.frame_runtime_ms).fold(0.0, f64::max);
    println!("Fig. 1 — KFusion runtime response surface (ODROID-XU3 model)");
    println!("grid: 24 × 24 over mu ∈ [0.0125, 0.5], icp-threshold ∈ [1e-7, 1e4]");
    println!("frame runtime range: {min:.1} .. {max:.1} ms (paper plot: ~800 .. 2400 ms at QVGA)");
    println!("wrote results/fig1_response_surface.csv");

    // Coarse ASCII rendering (rows = mu, cols = threshold decades).
    println!("\nruntime heatmap ('.' fast → '@' slow):");
    let ramp = [b'.', b':', b'-', b'=', b'+', b'*', b'#', b'@'];
    for row in 0..24 {
        let mut line = String::new();
        for col in 0..24 {
            let c = &cells[row * 24 + col];
            let t = ((c.frame_runtime_ms - min) / (max - min + 1e-12) * (ramp.len() - 1) as f64)
                .round() as usize;
            line.push(ramp[t.min(ramp.len() - 1)] as char);
        }
        println!("mu={:>6.4} {line}", cells[row * 24].mu);
    }
    Ok(())
}
