//! Regenerates Fig. 3: the KFusion algorithmic design-space exploration,
//! random sampling vs. active learning, on the ODROID-XU3 (3a) or ASUS
//! T200TA (3b) model.
//!
//! Usage: `cargo run -p hm-bench --release --bin fig3_kfusion_dse -- [odroid|asus|both] [--quick]`

use hm_bench::experiments::{phase_points, run_kfusion_dse, DseScale};
use hm_bench::report::{dse_csv, dse_summary, write_json, write_results_file};

fn main() {
    let scale = DseScale::from_args();
    let which = std::env::args().nth(1).unwrap_or_else(|| "both".into());
    let mut targets = Vec::new();
    if which == "odroid" || which == "both" || which.starts_with("--") {
        targets.push(("fig3a_odroid", device_models::odroid_xu3()));
    }
    if which == "asus" || which == "both" || which.starts_with("--") {
        targets.push(("fig3b_asus", device_models::asus_t200ta()));
    }

    for (tag, device) in targets {
        println!("=== Fig. 3 ({tag}) — scale {scale:?} ===");
        let outcome = run_kfusion_dse(device, scale, 2017);
        print!("{}", dse_summary(&outcome));
        let (random, active) = phase_points(&outcome.result);
        println!(
            "random front hv vs full front hv: {:.5} vs {:.5}",
            hypermapper::hypervolume_2d(&random, (0.6, 0.25)),
            hypermapper::hypervolume_2d(
                &random.iter().chain(&active).copied().collect::<Vec<_>>(),
                (0.6, 0.25)
            ),
        );
        write_results_file(&format!("{tag}.csv"), &dse_csv(&outcome)).expect("write");
        write_json(&format!("{tag}_summary.json"), &serde_json::json!({
            "platform": outcome.platform,
            "random_samples": outcome.random_samples,
            "active_samples": outcome.active_samples,
            "valid_random": outcome.valid_random,
            "valid_active": outcome.valid_active,
            "pareto_points": outcome.pareto_points,
        })).expect("write json");
        println!("wrote results/{tag}.csv\n");
    }
}
