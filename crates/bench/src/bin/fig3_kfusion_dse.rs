//! Regenerates Fig. 3: the KFusion algorithmic design-space exploration,
//! random sampling vs. active learning, on the ODROID-XU3 (3a) or ASUS
//! T200TA (3b) model.
//!
//! Usage:
//!   cargo run -p hm-bench --release --bin fig3_kfusion_dse -- \
//!       [odroid|asus|both] [--quick] \
//!       [--journal <path>] [--resume] [--eval-delay-ms <n>]
//!
//! With `--journal`, every completed evaluation is persisted to an
//! append-only write-ahead log before the run advances, SIGINT/SIGTERM
//! trigger a graceful shutdown (finish the in-flight batch, flush, exit
//! with the partial result), and `--resume` replays the journal — after a
//! crash, a kill, or a graceful stop — to a result bit-identical to an
//! uninterrupted run. A full-precision `<tag>.fingerprint` file is written
//! alongside the CSV so bit-identity can be checked byte-for-byte
//! (the CSV itself rounds to 6 digits).

use hm_bench::experiments::{
    install_graceful_shutdown, kf_space, phase_points, result_fingerprint, run_kfusion_dse,
    run_kfusion_dse_durable, DseScale,
};
use hm_bench::report::{dse_csv, dse_summary, write_json, write_results_file};
use hypermapper::Journal;

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = DseScale::from_args();
    let which = std::env::args().nth(1).unwrap_or_else(|| "both".into());
    let journal_path = flag_value("--journal");
    let resume = std::env::args().any(|a| a == "--resume");
    let eval_delay_ms: u64 = match flag_value("--eval-delay-ms") {
        Some(v) => v.parse().map_err(|_| "--eval-delay-ms takes milliseconds")?,
        None => 0,
    };

    let mut targets = Vec::new();
    if which == "odroid" || which == "both" || which.starts_with("--") {
        targets.push(("fig3a_odroid", device_models::odroid_xu3()));
    }
    if which == "asus" || which == "both" || which.starts_with("--") {
        targets.push(("fig3b_asus", device_models::asus_t200ta()));
    }
    if journal_path.is_some() && targets.len() > 1 {
        // A journal records exactly one run; restrict to the first target.
        println!("--journal given: running only {}", targets[0].0);
        targets.truncate(1);
    }

    for (tag, device) in targets {
        println!("=== Fig. 3 ({tag}) — scale {scale:?} ===");
        let outcome = if let Some(path) = &journal_path {
            let stop = install_graceful_shutdown();
            let mut journal = if resume {
                Journal::open_or_create(path)?
            } else {
                Journal::create(path)?
            };
            if journal.truncated_bytes() > 0 {
                println!(
                    "journal: discarded {} torn/corrupt tail bytes, resuming from last valid record",
                    journal.truncated_bytes()
                );
            }
            let outcome = run_kfusion_dse_durable(
                device,
                scale,
                2017,
                eval_delay_ms,
                &mut journal,
                Some(stop),
            )?;
            if outcome.result.interrupted {
                println!(
                    "interrupted — {} of the run is journaled in {path}; \
                     rerun with --journal {path} --resume to continue",
                    format!("{} samples", outcome.result.samples.len()),
                );
                std::process::exit(130);
            }
            outcome
        } else {
            run_kfusion_dse(device, scale, 2017)
        };
        print!("{}", dse_summary(&outcome));
        let (random, active) = phase_points(&outcome.result);
        println!(
            "random front hv vs full front hv: {:.5} vs {:.5}",
            hypermapper::hypervolume_2d(&random, (0.6, 0.25)),
            hypermapper::hypervolume_2d(
                &random.iter().chain(&active).copied().collect::<Vec<_>>(),
                (0.6, 0.25)
            ),
        );
        write_results_file(&format!("{tag}.csv"), &dse_csv(&outcome))?;
        write_results_file(
            &format!("{tag}.fingerprint"),
            &result_fingerprint(&kf_space(), &outcome.result),
        )?;
        write_json(&format!("{tag}_summary.json"), &serde_json::json!({
            "platform": outcome.platform,
            "random_samples": outcome.random_samples,
            "active_samples": outcome.active_samples,
            "valid_random": outcome.valid_random,
            "valid_active": outcome.valid_active,
            "pareto_points": outcome.pareto_points,
        }))?;
        println!("wrote results/{tag}.csv\n");
    }
    Ok(())
}
