//! Regenerates Fig. 4: the ElasticFusion DSE on the GTX 780 Ti desktop
//! model, random sampling vs. active learning.
//!
//! Usage: `cargo run -p hm-bench --release --bin fig4_elasticfusion_dse -- [--quick]`

use hm_bench::experiments::{run_elasticfusion_dse, DseScale};
use hm_bench::report::{dse_csv, dse_summary, write_results_file};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = DseScale::from_args();
    println!("=== Fig. 4 — ElasticFusion DSE (GTX 780 Ti model), scale {scale:?} ===");
    let outcome = run_elasticfusion_dse(device_models::gtx780ti(), scale, 42);
    print!("{}", dse_summary(&outcome));
    write_results_file("fig4_elasticfusion.csv", &dse_csv(&outcome))?;
    println!("wrote results/fig4_elasticfusion.csv");
    Ok(())
}
