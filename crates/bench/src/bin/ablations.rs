//! Ablation benches for the design choices called out in DESIGN.md §6:
//! active learning vs. equal-budget random sampling, forest size, and
//! prediction-pool size.
//!
//! Usage: `cargo run -p hm-bench --release --bin ablations`

use hm_bench::experiments::ablations;
use hm_bench::report::write_json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Ablations (KFusion / ODROID model) ===");
    let results = ablations(11);
    println!("{:<28} {:>12} {:>8} {:>8}", "variant", "hypervolume", "evals", "valid");
    for r in &results {
        println!("{:<28} {:>12.5} {:>8} {:>8}", r.name, r.hypervolume, r.evaluations, r.valid);
    }
    write_json("ablations.json", &results)?;
    println!("wrote results/ablations.json");
    Ok(())
}
