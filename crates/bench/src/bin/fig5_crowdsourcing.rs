//! Regenerates Fig. 5: speedups of the best ODROID-XU3 configuration over
//! the default configuration across 83 crowd-sourced device models.
//!
//! Usage: `cargo run -p hm-bench --release --bin fig5_crowdsourcing -- [--quick]`

use hm_bench::experiments::{
    best_valid_speed_config, crowdsourcing_speedups, run_kfusion_dse, DseScale,
};
use hm_bench::report::{crowd_report, write_results_file};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = DseScale::from_args();
    println!("=== Fig. 5 — crowd-sourcing (83 devices), scale {scale:?} ===");
    // First find the best valid configuration on the ODROID model.
    let outcome = run_kfusion_dse(device_models::odroid_xu3(), scale, 2017);
    let best = best_valid_speed_config(&outcome)
        .ok_or("exploration found no configuration under the 5 cm validity limit")?;
    println!(
        "deployed config: vol {} mu {} csr {} tr {} icp {:e} ir {} pyr {:?}",
        best.volume_resolution, best.mu, best.compute_size_ratio, best.tracking_rate,
        best.icp_threshold, best.integration_rate, best.pyramid
    );
    let results = crowdsourcing_speedups(&best);
    let (csv, hist) = crowd_report(&results);
    let speedups: Vec<f64> = results.iter().map(|r| r.speedup).collect();
    let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let max = speedups.iter().copied().fold(0.0, f64::max);
    let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!("speedups across 83 devices: min {min:.2}x  mean {mean:.2}x  max {max:.2}x");
    println!("(paper: range 2x .. >12x)");
    println!("{hist}");
    write_results_file("fig5_crowdsourcing.csv", &csv)?;
    println!("wrote results/fig5_crowdsourcing.csv");
    Ok(())
}
