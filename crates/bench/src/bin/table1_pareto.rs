//! Regenerates Table I: the ElasticFusion Pareto-efficiency points with
//! their full parameter values.
//!
//! Usage: `cargo run -p hm-bench --release --bin table1_pareto -- [--quick]`

use hm_bench::experiments::{run_elasticfusion_dse, table1_rows, DseScale};
use hm_bench::report::{table1_text, write_json};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = DseScale::from_args();
    let outcome = run_elasticfusion_dse(device_models::gtx780ti(), scale, 42);
    let rows = table1_rows(&outcome, 4);
    println!("=== Table I — ElasticFusion Pareto points (scale {scale:?}) ===");
    print!("{}", table1_text(&rows));
    let default = &rows[0];
    if let (Some(best_speed), Some(best_acc)) = (rows.get(1), rows.last()) {
        println!(
            "\nbest-speed speedup over default: {:.2}x (paper: 1.52x), accuracy {:.4} m vs default {:.4} m",
            default.runtime_s / best_speed.runtime_s, best_speed.error_m, default.error_m
        );
        println!(
            "best-accuracy improvement: {:.2}x (paper: ~2x, 0.0269 vs 0.0558), at {:.2}x speedup (paper: 1.25x)",
            default.error_m / best_acc.error_m,
            default.runtime_s / best_acc.runtime_s
        );
    }
    write_json("table1.json", &rows)?;
    println!("wrote results/table1.json");
    Ok(())
}
