//! The §IV-B "Outcome in a glance" scalars: default vs. tuned frame rates
//! and accuracies on each platform, paper-vs-measured.
//!
//! Usage: `cargo run -p hm-bench --release --bin summary -- [--quick]`

use hm_bench::experiments::{
    best_valid_speed_config, run_elasticfusion_dse, run_kfusion_dse, DseScale,
};
use device_models::{kf_ate, kf_frame_time, KfParams};

fn main() {
    let scale = DseScale::from_args();
    println!("=== §IV-B summary, scale {scale:?} ===\n");

    // KFusion on ODROID.
    let odroid = device_models::odroid_xu3();
    let default = KfParams::default_config();
    let t_def = kf_frame_time(&default, &odroid);
    println!("KFusion / ODROID-XU3:");
    println!("  default: {:.1} FPS, max ATE {:.4} m   (paper: 6 FPS, 0.0447 m)", 1.0 / t_def, kf_ate(&default));
    let outcome = run_kfusion_dse(odroid.clone(), scale, 2017);
    if let Some(best) = best_valid_speed_config(&outcome) {
        let t_best = kf_frame_time(&best, &odroid);
        println!(
            "  best valid (<5cm): {:.1} FPS, max ATE {:.4} m, speedup {:.2}x  (paper: 29.09 FPS, 6.35x)",
            1.0 / t_best, kf_ate(&best), t_def / t_best
        );
    }
    println!(
        "  valid configs: random {} / AL {}  (paper: 333 random, 642 AL)",
        outcome.valid_random, outcome.valid_active
    );
    println!("  pareto points: {}  (paper: 36)\n", outcome.pareto_points);

    // ASUS.
    let asus = device_models::asus_t200ta();
    let outcome_asus = run_kfusion_dse(asus, scale, 2018);
    println!("KFusion / ASUS T200TA:");
    println!(
        "  valid configs: random {} / AL {}  (paper: 291 random, 665 AL)",
        outcome_asus.valid_random, outcome_asus.valid_active
    );
    println!("  pareto points: {}  (paper: 167)\n", outcome_asus.pareto_points);

    // ElasticFusion on the desktop.
    let ef = run_elasticfusion_dse(device_models::gtx780ti(), scale, 42);
    let default_obj = {
        use hypermapper::Evaluator;
        let space = slambench::elasticfusion_space();
        let c = slambench::spaces::elasticfusion_default_config(&space);
        slambench::SimulatedEFusionEvaluator::new(device_models::gtx780ti()).evaluate(&c)
    };
    println!("ElasticFusion / GTX 780 Ti:");
    println!(
        "  default: {:.1} s/sequence, ATE {:.4} m   (paper: 22.2 s, 0.0558 m)",
        default_obj[0], default_obj[1]
    );
    if let Some(fastest) = ef.result.best_by_objective(0) {
        println!(
            "  best speed: {:.1} s ({:.2}x), ATE {:.4} m   (paper: 14.6 s, 1.52x, 0.0420 m)",
            fastest.objectives[0],
            default_obj[0] / fastest.objectives[0],
            fastest.objectives[1]
        );
    }
    if let Some(most_acc) = ef.result.best_by_objective(1) {
        println!(
            "  best accuracy: ATE {:.4} m ({:.2}x better), {:.2}x speedup   (paper: 0.0269 m, ~2x, 1.25x)",
            most_acc.objectives[1],
            default_obj[1] / most_acc.objectives[1],
            default_obj[0] / most_acc.objectives[0]
        );
    }
}
