//! Shared experiment drivers.

use device_models::{crowd_devices, kf_frame_time, DeviceModel, KfParams};
use hypermapper::{
    Configuration, Evaluator, ExplorationResult, HmError, HyperMapper, Journal, OptimizerConfig,
    ParamSpace, Phase,
};
use randforest::ForestConfig;
use serde::Serialize;
use slambench::{
    ef_params_from_config, elasticfusion_space, kf_params_from_config, kfusion_space,
    SimulatedEFusionEvaluator, SimulatedKFusionEvaluator, ACCURACY_LIMIT_M,
};
use std::sync::atomic::{AtomicBool, Ordering};

/// The paper evaluates on the first 400 frames of ICL-NUIM Living Room 2.
pub const KFUSION_SEQUENCE_FRAMES: usize = 400;

/// Experiment scale: `Paper` matches the sample counts in §IV-C; `Quick`
/// is a proportionally reduced run for CI and smoke testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DseScale {
    /// 3 000 random samples (2 400 for EF), 6 AL iterations, 200 K pool.
    Paper,
    /// 300 random samples, 3 AL iterations, 20 K pool.
    Quick,
}

impl DseScale {
    /// Parse from a CLI argument (`--quick` ⇒ Quick).
    pub fn from_args() -> DseScale {
        if std::env::args().any(|a| a == "--quick") {
            DseScale::Quick
        } else {
            DseScale::Paper
        }
    }

    /// The KFusion DSE optimizer configuration at this scale. Public so
    /// out-of-crate runners (e.g. the `fig5_service` example driving the
    /// DSE through `hm-service`) reproduce the exact fig-3/fig-5 settings
    /// and stay fingerprint-compatible with the in-process binaries.
    pub fn kfusion_optimizer(self, seed: u64) -> OptimizerConfig {
        match self {
            DseScale::Paper => OptimizerConfig {
                random_samples: 3000,
                max_iterations: 6,
                max_evals_per_iteration: 300,
                pool_size: 200_000,
                forest: ForestConfig { n_trees: 100, ..Default::default() },
                seed,
                ..Default::default()
            },
            DseScale::Quick => OptimizerConfig {
                random_samples: 300,
                max_iterations: 3,
                max_evals_per_iteration: 100,
                pool_size: 20_000,
                forest: ForestConfig { n_trees: 40, ..Default::default() },
                seed,
                ..Default::default()
            },
        }
    }

    fn ef_optimizer(self, seed: u64) -> OptimizerConfig {
        match self {
            DseScale::Paper => OptimizerConfig {
                random_samples: 2400,
                max_iterations: 6,
                max_evals_per_iteration: 200,
                pool_size: 200_000,
                forest: ForestConfig { n_trees: 100, ..Default::default() },
                seed,
                ..Default::default()
            },
            DseScale::Quick => OptimizerConfig {
                random_samples: 240,
                max_iterations: 3,
                max_evals_per_iteration: 80,
                pool_size: 20_000,
                forest: ForestConfig { n_trees: 40, ..Default::default() },
                seed,
                ..Default::default()
            },
        }
    }
}

/// One cell of the Fig. 1 response surface.
#[derive(Debug, Clone, Serialize)]
pub struct SurfaceCell {
    pub mu: f64,
    pub icp_threshold: f64,
    pub frame_runtime_ms: f64,
}

/// Fig. 1: the KFusion frame-runtime response surface over (µ,
/// icp-threshold) with every other parameter at its default, on the
/// ODROID-XU3 model.
pub fn fig1_response_surface(device: &DeviceModel) -> Vec<SurfaceCell> {
    let mus: Vec<f64> = (0..24).map(|i| 0.0125 + i as f64 * (0.5 - 0.0125) / 23.0).collect();
    let thresholds: Vec<f64> = (0..24).map(|i| 10f64.powf(-7.0 + i as f64 * 11.0 / 23.0)).collect();
    let mut cells = Vec::with_capacity(mus.len() * thresholds.len());
    for &mu in &mus {
        for &thr in &thresholds {
            let p = KfParams { mu, icp_threshold: thr, ..KfParams::default_config() };
            cells.push(SurfaceCell {
                mu,
                icp_threshold: thr,
                frame_runtime_ms: kf_frame_time(&p, device) * 1e3,
            });
        }
    }
    cells
}

/// Outcome of one DSE experiment, with the counts reported by the paper.
#[derive(Debug, Serialize)]
pub struct DseOutcome {
    /// Platform name.
    pub platform: String,
    /// Full exploration result.
    pub result: ExplorationResult,
    /// Valid (<5 cm) configurations found by random sampling.
    pub valid_random: usize,
    /// Valid configurations newly found by active learning.
    pub valid_active: usize,
    /// Number of points on the final measured Pareto front.
    pub pareto_points: usize,
    /// Total samples drawn in the random phase.
    pub random_samples: usize,
    /// Total new samples produced by active learning.
    pub active_samples: usize,
}

fn summarize(platform: &str, result: ExplorationResult, accuracy_objective: usize) -> DseOutcome {
    let (valid_random, valid_active) = result.valid_counts(accuracy_objective, ACCURACY_LIMIT_M);
    let pareto_points = result.pareto_indices.len();
    let random_samples = result.random_samples().count();
    let active_samples = result.active_samples().count();
    DseOutcome {
        platform: platform.to_string(),
        result,
        valid_random,
        valid_active,
        pareto_points,
        random_samples,
        active_samples,
    }
}

static STOP: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn request_stop(_signum: i32) {
    // Async-signal-safe: a relaxed atomic store and nothing else.
    STOP.store(true, Ordering::Relaxed);
}

/// Install SIGINT/SIGTERM handlers that trip a stop flag instead of killing
/// the process, and return that flag. Passed to
/// `HyperMapper::try_run_controlled`, it turns Ctrl-C into a graceful
/// shutdown: the in-flight evaluation batch finishes, the journal is
/// flushed, and a partial `ExplorationResult` (with `interrupted` set) is
/// returned. Std-only — `signal(2)` via the platform libc, no crate
/// dependency.
pub fn install_graceful_shutdown() -> &'static AtomicBool {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = request_stop as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
    &STOP
}

/// Wraps an evaluator with a fixed per-evaluation sleep. Used by the resume
/// smoke test to stretch a quick DSE long enough that a mid-run SIGKILL
/// reliably lands between journal records; objective values are untouched.
pub struct DelayedEvaluator<E> {
    inner: E,
    delay: std::time::Duration,
}

impl<E> DelayedEvaluator<E> {
    pub fn new(inner: E, delay_ms: u64) -> Self {
        DelayedEvaluator { inner, delay: std::time::Duration::from_millis(delay_ms) }
    }
}

impl<E: Evaluator> Evaluator for DelayedEvaluator<E> {
    fn n_objectives(&self) -> usize {
        self.inner.n_objectives()
    }

    fn objective_names(&self) -> Vec<String> {
        self.inner.objective_names()
    }

    fn evaluate(&self, config: &Configuration) -> Vec<f64> {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        self.inner.evaluate(config)
    }
}

// lint: zone(float-exact): fingerprints are compared byte-for-byte across runs; floats must be emitted as to_bits hex, never decimal
/// Full-precision fingerprint of an exploration result: every sample's flat
/// configuration index, phase, and raw objective bits, the Pareto front,
/// per-iteration stats, and failure records (minus wall-clock metadata).
/// Two runs are bit-identical iff their fingerprints are byte-equal — the
/// CSV outputs round to 6 digits and cannot make that distinction.
pub fn result_fingerprint(space: &ParamSpace, result: &ExplorationResult) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for smp in &result.samples {
        let _ = write!(s, "s {} {:?}", space.flat_index(&smp.config), smp.phase);
        for v in &smp.objectives {
            let _ = write!(s, " {:016x}", v.to_bits());
        }
        s.push('\n');
    }
    let _ = writeln!(s, "p {:?}", result.pareto_indices);
    for it in &result.iterations {
        let _ = write!(
            s,
            "i {} {} {} {} {:016x}",
            it.iteration,
            it.predicted_front_size,
            it.new_evaluations,
            it.failed_evaluations,
            it.hypervolume.to_bits()
        );
        for o in &it.oob_rmse {
            match o {
                Some(v) => {
                    let _ = write!(s, " {:016x}", v.to_bits());
                }
                None => s.push_str(" -"),
            }
        }
        s.push('\n');
    }
    for f in &result.failures {
        // elapsed_ms is deliberately excluded: it is wall-clock measurement
        // metadata, not resumable state.
        let _ = writeln!(
            s,
            "f {} {:?} {} {:?}",
            space.flat_index(&f.config),
            f.phase,
            f.attempts,
            f.error
        );
    }
    s
}

/// [`run_kfusion_dse`] with the durability controls wired through: every
/// completed evaluation lands in `journal` before the run advances, an
/// optional stop flag turns signals into a graceful partial result, and
/// rerunning with the same (reopened) journal resumes bit-identically.
pub fn run_kfusion_dse_durable(
    device: DeviceModel,
    scale: DseScale,
    seed: u64,
    eval_delay_ms: u64,
    journal: &mut Journal,
    stop: Option<&AtomicBool>,
) -> Result<DseOutcome, HmError> {
    let space = kfusion_space();
    let name = device.name.clone();
    let evaluator =
        DelayedEvaluator::new(SimulatedKFusionEvaluator::new(device), eval_delay_ms);
    let hm = HyperMapper::new(space, scale.kfusion_optimizer(seed));
    let result = hm.try_run_controlled(&evaluator, Some(journal), stop)?;
    Ok(summarize(&name, result, 1))
}

/// Figs. 3a/3b: the KFusion algorithmic DSE on one device model.
pub fn run_kfusion_dse(device: DeviceModel, scale: DseScale, seed: u64) -> DseOutcome {
    let space = kfusion_space();
    let name = device.name.clone();
    let evaluator = SimulatedKFusionEvaluator::new(device);
    let hm = HyperMapper::new(space, scale.kfusion_optimizer(seed));
    let result = hm.run(&evaluator);
    summarize(&name, result, 1)
}

/// Fig. 4: the ElasticFusion DSE on the desktop model.
pub fn run_elasticfusion_dse(device: DeviceModel, scale: DseScale, seed: u64) -> DseOutcome {
    let space = elasticfusion_space();
    let name = device.name.clone();
    let evaluator = SimulatedEFusionEvaluator::new(device);
    let hm = HyperMapper::new(space, scale.ef_optimizer(seed));
    let result = hm.run(&evaluator);
    summarize(&name, result, 1)
}

/// One row of Table I.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    pub label: String,
    pub error_m: f64,
    pub runtime_s: f64,
    pub icp_weight: f64,
    pub depth_cutoff: f64,
    pub confidence: f64,
    pub so3: u8,
    pub close_loops: u8,
    pub reloc: u8,
    pub fast_odom: u8,
    pub ftf_rgb: u8,
}

/// Table I: the default row plus selected Pareto rows (fastest first,
/// most accurate last) from an ElasticFusion DSE outcome.
pub fn table1_rows(outcome: &DseOutcome, max_rows: usize) -> Vec<Table1Row> {
    let space = elasticfusion_space();
    let default_config = slambench::spaces::elasticfusion_default_config(&space);
    let eval = SimulatedEFusionEvaluator::new(device_models::gtx780ti());
    let default_obj = hypermapper::Evaluator::evaluate(&eval, &default_config);

    let row = |label: &str, config: &hypermapper::Configuration, obj: &[f64]| {
        let p = ef_params_from_config(config);
        Table1Row {
            label: label.to_string(),
            error_m: obj[1],
            runtime_s: obj[0],
            icp_weight: p.icp_weight,
            depth_cutoff: p.depth_cutoff,
            confidence: p.confidence,
            so3: p.so3_disabled as u8,
            close_loops: p.open_loop as u8,
            reloc: p.relocalisation as u8,
            fast_odom: p.fast_odom as u8,
            ftf_rgb: p.frame_to_frame_rgb as u8,
        }
    };

    let mut rows = vec![row("Default", &default_config, &default_obj)];
    // Pareto samples sorted by runtime (first objective).
    let pareto = outcome.result.pareto_samples();
    if pareto.is_empty() {
        return rows;
    }
    let take = max_rows.min(pareto.len());
    // Spread picks across the front: fastest, evenly spaced, most accurate.
    for j in 0..take {
        let idx = if take == 1 { 0 } else { j * (pareto.len() - 1) / (take - 1) };
        let s = pareto[idx];
        let label = if j == 0 {
            "Best speed"
        } else if j == take - 1 {
            "Best accuracy"
        } else {
            ""
        };
        rows.push(row(label, &s.config, &s.objectives));
    }
    rows
}

/// One device's crowd-sourcing datum.
#[derive(Debug, Clone, Serialize)]
pub struct CrowdResult {
    pub device: String,
    /// Frame time of the default configuration (s).
    pub default_time: f64,
    /// Frame time of the transplanted best configuration (s).
    pub best_time: f64,
    /// Speedup of best over default.
    pub speedup: f64,
}

/// Fig. 5: run the best-runtime configuration found on the ODROID-XU3
/// against the default configuration on all 83 crowd-sourced device
/// models (the paper's app runs 100 frames of each; frame-time ratios are
/// length-invariant here).
pub fn crowdsourcing_speedups(best: &KfParams) -> Vec<CrowdResult> {
    let default = KfParams::default_config();
    crowd_devices()
        .into_iter()
        .map(|dev| {
            let t_default = kf_frame_time(&default, &dev);
            let t_best = kf_frame_time(best, &dev);
            CrowdResult {
                device: dev.name.clone(),
                default_time: t_default,
                best_time: t_best,
                speedup: t_default / t_best,
            }
        })
        .collect()
}

/// Extract the best-runtime configuration from a KFusion DSE outcome, or
/// `None` when the exploration holds no successful samples (every healthy
/// DSE evaluates at least the DoE phase, but an all-failed or interrupted
/// run is representable and callers decide how loudly to report it).
pub fn best_speed_config(outcome: &DseOutcome) -> Option<KfParams> {
    outcome.result.best_by_objective(0).map(|best| kf_params_from_config(&best.config))
}

/// Extract the best-runtime configuration *subject to the 5 cm validity
/// limit*, which is what the paper deploys.
pub fn best_valid_speed_config(outcome: &DseOutcome) -> Option<KfParams> {
    outcome
        .result
        .samples
        .iter()
        .filter(|s| s.objectives[1] < ACCURACY_LIMIT_M)
        .min_by(|a, b| a.objectives[0].total_cmp(&b.objectives[0]))
        .map(|s| kf_params_from_config(&s.config))
}

/// Result of one ablation variant.
#[derive(Debug, Clone, Serialize)]
pub struct AblationResult {
    pub name: String,
    /// Hypervolume of the final front (higher is better), under a fixed
    /// reference point.
    pub hypervolume: f64,
    /// Total configurations evaluated.
    pub evaluations: usize,
    /// Valid (<5 cm) configurations found.
    pub valid: usize,
}

/// Ablations over the design choices called out in DESIGN.md §6, all on
/// the KFusion/ODROID problem at reduced scale:
/// forest size, pool size, and random-only vs. active learning.
pub fn ablations(seed: u64) -> Vec<AblationResult> {
    let space = kfusion_space();
    let evaluator = SimulatedKFusionEvaluator::new(device_models::odroid_xu3());
    let reference = (0.6, 0.25);

    let run = |name: &str, cfg: OptimizerConfig, random_only: bool| {
        let hm = HyperMapper::new(space.clone(), cfg);
        let result = if random_only { hm.run_random_only(&evaluator) } else { hm.run(&evaluator) };
        let pts: Vec<(f64, f64)> = result
            .samples
            .iter()
            .map(|s| (s.objectives[0], s.objectives[1]))
            .collect();
        let valid = pts.iter().filter(|p| p.1 < ACCURACY_LIMIT_M).count();
        AblationResult {
            name: name.to_string(),
            hypervolume: hypermapper::hypervolume_2d(&pts, reference),
            evaluations: result.samples.len(),
            valid,
        }
    };

    let base = OptimizerConfig {
        random_samples: 400,
        max_iterations: 4,
        max_evals_per_iteration: 150,
        pool_size: 30_000,
        forest: ForestConfig { n_trees: 100, ..Default::default() },
        seed,
        ..Default::default()
    };

    let mut out = Vec::new();
    // Random-only baseline with the same total budget as the AL run.
    out.push(run(
        "random-only (equal budget)",
        OptimizerConfig { random_samples: 1000, ..base.clone() },
        true,
    ));
    out.push(run("active learning (base)", base.clone(), false));
    for trees in [10, 50, 200] {
        out.push(run(
            &format!("forest with {trees} trees"),
            OptimizerConfig {
                forest: ForestConfig { n_trees: trees, ..Default::default() },
                ..base.clone()
            },
            false,
        ));
    }
    for pool in [3_000, 100_000] {
        out.push(run(
            &format!("pool size {pool}"),
            OptimizerConfig { pool_size: pool, ..base.clone() },
            false,
        ));
    }
    out
}

/// Split samples of a result into (random, active) 2D points for plotting.
pub fn phase_points(result: &ExplorationResult) -> (Vec<(f64, f64)>, Vec<(f64, f64)>) {
    let mut random = Vec::new();
    let mut active = Vec::new();
    for s in &result.samples {
        let p = (s.objectives[0], s.objectives[1]);
        match s.phase {
            Phase::Random => random.push(p),
            Phase::Active(_) => active.push(p),
        }
    }
    (random, active)
}

/// Re-export for binaries.
pub fn kf_space() -> ParamSpace {
    kfusion_space()
}

#[cfg(test)]
mod tests {
    use super::*;
    use device_models::{gtx780ti, odroid_xu3};

    #[test]
    fn fig1_surface_is_nontrivial() {
        let cells = fig1_response_surface(&odroid_xu3());
        assert_eq!(cells.len(), 24 * 24);
        let min = cells.iter().map(|c| c.frame_runtime_ms).fold(f64::INFINITY, f64::min);
        let max = cells.iter().map(|c| c.frame_runtime_ms).fold(0.0, f64::max);
        assert!(max > min * 1.3, "surface too flat: {min}..{max}");
        // Non-convexity proxy: some interior cell is a local max in µ.
        let at = |i: usize, j: usize| cells[i * 24 + j].frame_runtime_ms;
        let mut local_extremum = false;
        for i in 1..23 {
            for j in 1..23 {
                let c = at(i, j);
                if (c > at(i - 1, j) && c > at(i + 1, j)) || (c < at(i - 1, j) && c < at(i + 1, j)) {
                    local_extremum = true;
                }
            }
        }
        assert!(local_extremum, "surface is monotone in µ everywhere");
    }

    #[test]
    fn quick_kfusion_dse_end_to_end() {
        let outcome = run_kfusion_dse(odroid_xu3(), DseScale::Quick, 3);
        assert_eq!(outcome.random_samples, 300);
        assert!(outcome.active_samples > 0, "AL produced nothing");
        assert!(outcome.pareto_points > 3);
        assert!(outcome.valid_random + outcome.valid_active > 0);
    }

    #[test]
    fn quick_ef_dse_and_table1() {
        let outcome = run_elasticfusion_dse(gtx780ti(), DseScale::Quick, 5);
        assert!(outcome.pareto_points >= 2);
        let rows = table1_rows(&outcome, 4);
        assert_eq!(rows[0].label, "Default");
        assert!(rows.len() >= 3);
        // The front must contain a faster-than-default configuration.
        let best_speed = rows[1].runtime_s;
        assert!(
            best_speed < rows[0].runtime_s,
            "best {best_speed} vs default {}",
            rows[0].runtime_s
        );
    }

    #[test]
    fn durable_quick_dse_matches_the_plain_run_bit_for_bit() {
        let mut path = std::env::temp_dir();
        path.push(format!("hm-bench-durable-{}.journal", std::process::id()));
        let plain = run_kfusion_dse(odroid_xu3(), DseScale::Quick, 7);
        let mut journal = Journal::create(&path).unwrap();
        let durable =
            run_kfusion_dse_durable(odroid_xu3(), DseScale::Quick, 7, 0, &mut journal, None)
                .unwrap();
        assert!(journal.is_done());
        drop(journal);
        let space = kf_space();
        assert_eq!(
            result_fingerprint(&space, &plain.result),
            result_fingerprint(&space, &durable.result),
            "journaling must not perturb the exploration"
        );

        // Chop the journal's tail and resume: same fingerprint again.
        let bytes = std::fs::read(&path).unwrap();
        let cut = bytes.len() * 2 / 3;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let mut journal = Journal::open(&path).unwrap();
        assert!(!journal.is_done());
        let resumed =
            run_kfusion_dse_durable(odroid_xu3(), DseScale::Quick, 7, 0, &mut journal, None)
                .unwrap();
        assert!(journal.is_done());
        assert_eq!(
            result_fingerprint(&space, &plain.result),
            result_fingerprint(&space, &resumed.result),
            "kill → resume must be bit-identical"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crowdsourcing_speedups_in_paper_band() {
        // Use a representative tuned configuration.
        let best = KfParams {
            volume_resolution: 64.0,
            mu: 0.2,
            compute_size_ratio: 4.0,
            tracking_rate: 2.0,
            icp_threshold: 1e-4,
            integration_rate: 5.0,
            pyramid: [4.0, 3.0, 2.0],
        };
        let results = crowdsourcing_speedups(&best);
        assert_eq!(results.len(), 83);
        for r in &results {
            assert!(r.speedup > 1.0, "{} slowed down: {}", r.device, r.speedup);
        }
        let min = results.iter().map(|r| r.speedup).fold(f64::INFINITY, f64::min);
        let max = results.iter().map(|r| r.speedup).fold(0.0, f64::max);
        assert!(min >= 1.5, "min speedup {min}");
        assert!(max > 6.0, "max speedup {max}");
        assert!(max < 25.0, "max speedup implausible {max}");
    }

    #[test]
    fn ablations_run_and_al_beats_random() {
        let results = ablations(11);
        assert!(results.len() >= 5);
        let random = results.iter().find(|r| r.name.starts_with("random-only")).unwrap();
        let al = results.iter().find(|r| r.name.starts_with("active learning")).unwrap();
        // Equal budget: AL hypervolume should not be (much) worse.
        assert!(
            al.hypervolume > random.hypervolume * 0.9,
            "AL {} vs random {}",
            al.hypervolume,
            random.hypervolume
        );
    }
}
