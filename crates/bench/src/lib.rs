//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `fig*`/`table*` binary in `src/bin/` reproduces one artifact of the
//! evaluation section; this library holds the shared experiment drivers so
//! binaries, integration tests and ablations run the same code:
//!
//! | artifact | driver | binary |
//! |---|---|---|
//! | Fig. 1 response surface | [`experiments::fig1_response_surface`] | `fig1_response_surface` |
//! | Fig. 3a/3b KFusion DSE | [`experiments::run_kfusion_dse`] | `fig3_kfusion_dse` |
//! | Fig. 4 ElasticFusion DSE | [`experiments::run_elasticfusion_dse`] | `fig4_elasticfusion_dse` |
//! | Table I Pareto points | [`experiments::table1_rows`] | `table1_pareto` |
//! | Fig. 5 crowd-sourcing | [`experiments::crowdsourcing_speedups`] | `fig5_crowdsourcing` |
//! | §IV-B summary scalars | aggregated | `summary` |
//! | design-choice ablations | [`experiments::ablations`] | `ablations` |

pub mod experiments;
pub mod report;

pub use experiments::{DseScale, KFUSION_SEQUENCE_FRAMES};
