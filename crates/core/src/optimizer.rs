//! The HyperMapper active-learning optimizer (Algorithm 1 of the paper).

use crate::doe::{prediction_pool, sample_distinct};
use crate::error::{EvalError, HmError};
use crate::evaluate::Evaluator;
use crate::journal::{crc32, Journal, JournalSink, RawOutcome, Replay, RunHeader, SnapshotState};
use crate::pareto::{pareto_front, IncrementalFront};
#[cfg(test)]
use crate::pareto::hypervolume_2d;
use crate::scheduler::ParallelBatchEvaluator;
use crate::space::{Configuration, ParamSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use randforest::{
    BinnedDataset, CompiledSurrogate, Dataset, ForestConfig, PredictionCache, RandomForest,
};
use serde::Serialize;
use std::collections::HashSet;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};

/// Which phase of the exploration produced a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Phase {
    /// Uniform random bootstrap sampling.
    Random,
    /// Active-learning iteration `i` (1-based).
    Active(usize),
}

/// One evaluated configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Sample {
    /// The configuration that was run.
    pub config: Configuration,
    /// Measured objectives (minimized).
    pub objectives: Vec<f64>,
    /// Where in the exploration it was produced.
    pub phase: Phase,
}

/// One configuration whose evaluation failed, and why.
///
/// Tracking-failure configurations are a first-class outcome in SLAMBench
/// (Nardi et al. 2015): the exploration records them rather than dying.
#[derive(Debug, Clone, Serialize)]
pub struct FailureRecord {
    /// The configuration that failed.
    pub config: Configuration,
    /// The failure classification.
    pub error: EvalError,
    /// Where in the exploration it failed.
    pub phase: Phase,
    /// Attempts made before giving up (retries included; 1 when the
    /// evaluator does not retry).
    pub attempts: u32,
    /// Wall-clock across all attempts, in milliseconds. Measurement
    /// metadata, not resumable state: a journal replay preserves the
    /// recorded value, an independent rerun records its own.
    pub elapsed_ms: u64,
}

/// How failed configurations feed (or don't feed) the surrogate forests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum FailurePolicy {
    /// Failed configurations are excluded from forest training entirely
    /// (the default). The surrogate only ever sees measured objectives.
    Exclude,
    /// Failed configurations are imputed with a penalty objective vector so
    /// the surrogate learns to steer away from infeasible regions: each
    /// objective gets `worst + factor × (worst − best)` over the successful
    /// samples so far (`worst + factor` when the span is zero). Imputed
    /// rows only enter training — never `samples`, the Pareto front, or
    /// hypervolume.
    ImputePenalty {
        /// Penalty distance beyond the worst observed value, in units of
        /// the observed objective span.
        factor: f64,
    },
}

impl Default for FailurePolicy {
    fn default() -> Self {
        FailurePolicy::Exclude
    }
}

/// Statistics recorded after each active-learning iteration.
#[derive(Debug, Clone, Serialize)]
pub struct IterationStats {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Size of the predicted Pareto front over the pool.
    pub predicted_front_size: usize,
    /// Number of configurations newly evaluated this iteration
    /// (`P − X_out` in the paper, possibly capped).
    pub new_evaluations: usize,
    /// Number of configurations whose evaluation failed this iteration
    /// (subset of `new_evaluations`).
    pub failed_evaluations: usize,
    /// Out-of-bag RMSE of the per-objective forests, if estimable.
    pub oob_rmse: Vec<Option<f64>>,
    /// Hypervolume of the evaluated Pareto front after this iteration
    /// (bi-objective runs only; 0 otherwise).
    pub hypervolume: f64,
}

/// Tuning knobs for an exploration; the defaults follow the paper.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// `rs`: number of bootstrap random samples (the paper uses 3 000 for
    /// KFusion, 2 400 for ElasticFusion).
    pub random_samples: usize,
    /// Maximum number of active-learning iterations (the paper observed
    /// convergence after ~6).
    pub max_iterations: usize,
    /// Cap on new evaluations per iteration; the paper reports 100–300 new
    /// samples per iteration. `0` disables the cap.
    pub max_evals_per_iteration: usize,
    /// Size of the prediction pool drawn from the space each iteration.
    /// When the space is smaller, the whole space is used (as in the paper).
    pub pool_size: usize,
    /// Random forest hyper-parameters for the per-objective surrogates.
    pub forest: ForestConfig,
    /// Master seed — the full exploration is deterministic given this and
    /// a deterministic evaluator.
    pub seed: u64,
    /// How failed configurations feed the surrogate forests.
    pub failure_policy: FailurePolicy,
    /// Workers for cross-configuration batch evaluation. `0` (the default)
    /// calls the evaluator's own `try_evaluate_batch`; `> 0` fans each
    /// phase's batch across a [`crate::scheduler::ParallelBatchEvaluator`]
    /// with that many OS threads. Because the scheduler preserves values
    /// and ordering exactly, the exploration is bit-identical for any
    /// setting (given a deterministic evaluator) — only wall-clock changes.
    pub eval_workers: usize,
    /// Slots in the lossy prediction cache in front of the surrogate's
    /// pool sweep (rounded up to a power of two; `0` disables caching).
    /// Entries are keyed by the configuration's flat index — the packed
    /// vector of its quantized per-parameter choice codes — and the whole
    /// cache is invalidated whenever the forests are refit, so cached
    /// values can never go stale. Like `eval_workers`, this knob cannot
    /// change any result: explorations are bit-identical for every
    /// setting (see `crates/core/tests/surrogate_cache.rs`), only the
    /// amount of re-prediction for repeatedly scored configurations moves.
    pub pred_cache_slots: usize,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            random_samples: 100,
            max_iterations: 6,
            max_evals_per_iteration: 300,
            pool_size: 50_000,
            forest: ForestConfig { n_trees: 100, ..Default::default() },
            seed: 0,
            failure_policy: FailurePolicy::Exclude,
            eval_workers: 0,
            pred_cache_slots: 1 << 15,
        }
    }
}

/// Result of an exploration.
#[derive(Debug, Clone, Serialize)]
pub struct ExplorationResult {
    /// Every successfully evaluated sample, in evaluation order (random
    /// phase first). Failed configurations never appear here.
    pub samples: Vec<Sample>,
    /// Indices into `samples` of the measured Pareto-optimal points.
    pub pareto_indices: Vec<usize>,
    /// Per-iteration statistics of the active-learning loop.
    pub iterations: Vec<IterationStats>,
    /// Objective names from the evaluator.
    pub objective_names: Vec<String>,
    /// Every configuration whose evaluation failed, in evaluation order.
    pub failures: Vec<FailureRecord>,
    /// `true` when the exploration was stopped early by a graceful-shutdown
    /// flag (see `HyperMapper::try_run_controlled`): the result covers every
    /// evaluation completed before the stop, and a journaled run can be
    /// resumed to finish it.
    pub interrupted: bool,
}

impl ExplorationResult {
    /// The Pareto-optimal samples themselves, sorted by the first objective.
    /// Uses a total order so degenerate (non-finite) data sorts instead of
    /// panicking.
    pub fn pareto_samples(&self) -> Vec<&Sample> {
        let mut out: Vec<&Sample> = self.pareto_indices.iter().map(|&i| &self.samples[i]).collect();
        out.sort_by(|a, b| a.objectives[0].total_cmp(&b.objectives[0]));
        out
    }

    /// Failures recorded during the random bootstrap phase.
    pub fn bootstrap_failures(&self) -> usize {
        self.failures.iter().filter(|f| f.phase == Phase::Random).count()
    }

    /// Failure counts grouped by [`EvalError::kind`], sorted by kind.
    pub fn failure_kinds(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for f in &self.failures {
            let kind = f.error.kind();
            match counts.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, n)) => *n += 1,
                None => counts.push((kind, 1)),
            }
        }
        counts.sort_by_key(|(k, _)| *k);
        counts
    }

    /// Samples produced by the random bootstrap phase.
    pub fn random_samples(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter().filter(|s| s.phase == Phase::Random)
    }

    /// Samples produced by active learning.
    pub fn active_samples(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter().filter(|s| matches!(s.phase, Phase::Active(_)))
    }

    /// Pareto front restricted to the random-phase samples — the paper's
    /// "random sampling" baseline curve in Figs. 3 and 4.
    pub fn random_phase_front(&self) -> Vec<&Sample> {
        let randoms: Vec<&Sample> = self.random_samples().collect();
        let pts: Vec<Vec<f64>> = randoms.iter().map(|s| s.objectives.clone()).collect();
        let mut out: Vec<&Sample> = pareto_front(&pts).into_iter().map(|i| randoms[i]).collect();
        out.sort_by(|a, b| a.objectives[0].total_cmp(&b.objectives[0]));
        out
    }

    /// The sample minimizing objective `k` (total order: NaN sorts last, so
    /// degenerate data never panics result inspection).
    pub fn best_by_objective(&self, k: usize) -> Option<&Sample> {
        self.samples
            .iter()
            .min_by(|a, b| a.objectives[k].total_cmp(&b.objectives[k]))
    }

    /// Count samples whose objective `k` is below `limit` — the paper's
    /// "valid configurations" metric (ATE < 5 cm), split by phase.
    pub fn valid_counts(&self, k: usize, limit: f64) -> (usize, usize) {
        let rand = self
            .random_samples()
            .filter(|s| s.objectives[k] < limit)
            .count();
        let active = self
            .active_samples()
            .filter(|s| s.objectives[k] < limit)
            .count();
        (rand, active)
    }
}

/// The multi-objective random-forest active-learning optimizer.
///
/// See the crate docs for the algorithm outline and an end-to-end example.
pub struct HyperMapper {
    space: ParamSpace,
    config: OptimizerConfig,
}

impl HyperMapper {
    /// Create an optimizer over `space` with the given knobs.
    pub fn new(space: ParamSpace, config: OptimizerConfig) -> Self {
        HyperMapper { space, config }
    }

    /// The parameter space being explored.
    pub fn space(&self) -> &ParamSpace {
        &self.space
    }

    /// Run the full exploration (random bootstrap + active learning) against
    /// `evaluator`.
    ///
    /// Individual evaluation failures (panics, NaNs, divergences, timeouts)
    /// degrade gracefully: they are recorded in
    /// [`ExplorationResult::failures`], counted per iteration, and kept out
    /// of forest training (see [`FailurePolicy`]).
    ///
    /// # Panics
    /// Only if the whole exploration is unusable: the space holds fewer
    /// configurations than `random_samples`, or *every* evaluation of a
    /// phase fails. Use [`HyperMapper::try_run`] to handle those as errors.
    pub fn run<E: Evaluator>(&self, evaluator: &E) -> ExplorationResult {
        match self.try_run(evaluator) {
            Ok(result) => result,
            // lint: allow(no-unaudited-panic): documented panicking bridge; fallible callers use try_run
            Err(e) => panic!("exploration failed: {e}"),
        }
    }

    /// Fallible version of [`HyperMapper::run`]: errors instead of
    /// panicking when the exploration cannot produce any result (too-small
    /// space, or a phase where zero evaluations succeed).
    pub fn try_run<E: Evaluator>(&self, evaluator: &E) -> Result<ExplorationResult, HmError> {
        self.try_run_controlled(evaluator, None, None)
    }

    /// Run the exploration with a write-ahead journal: every phase
    /// transition, completed evaluation, and iteration summary is appended
    /// (checksummed) to `journal` as it happens, so a killed process can be
    /// resumed with [`HyperMapper::resume`]. On a journal that already holds
    /// a partial run of the *same* seed/config/space, this IS a resume —
    /// recorded evaluations are replayed instead of re-executed.
    pub fn try_run_journaled<E: Evaluator>(
        &self,
        evaluator: &E,
        journal: &mut Journal,
    ) -> Result<ExplorationResult, HmError> {
        self.try_run_controlled(evaluator, Some(journal), None)
    }

    /// Resume a journaled exploration: replay the journal's valid records
    /// (the torn tail, if any, was truncated at [`Journal::open`]), skip
    /// every already-evaluated configuration, re-derive the RNG position by
    /// replaying the recorded draw counts, and continue the run to a result
    /// **bit-identical** to an uninterrupted run with the same seed.
    ///
    /// Errors with [`HmError::JournalMismatch`] if the journal was recorded
    /// under a different seed, optimizer configuration, or parameter space.
    pub fn resume<E: Evaluator>(
        &self,
        journal: &mut Journal,
        evaluator: &E,
    ) -> Result<ExplorationResult, HmError> {
        self.try_run_controlled(evaluator, Some(journal), None)
    }

    /// The fully-controlled exploration entry point: optional write-ahead
    /// `journal` (durability + resume) and optional `stop` flag (graceful
    /// shutdown: set it from a signal handler and the run finishes the
    /// in-flight evaluation chunk, flushes the journal, and returns a
    /// partial [`ExplorationResult`] with `interrupted = true`).
    ///
    /// With both `None` this is exactly [`HyperMapper::try_run`]: the batch
    /// path is not chunked and no durability work happens. With a journal
    /// or stop flag, phases are evaluated in bounded chunks so stop checks
    /// and fsyncs happen at least every [`EVAL_CHUNK`] evaluations —
    /// chunking never changes any evaluated value, only when the loop looks
    /// up from the work.
    pub fn try_run_controlled<E: Evaluator>(
        &self,
        evaluator: &E,
        journal: Option<&mut Journal>,
        stop: Option<&AtomicBool>,
    ) -> Result<ExplorationResult, HmError> {
        let n_obj = evaluator.n_objectives();
        assert!(n_obj >= 1, "need at least one objective");
        let mut ctx = RunCtx { journal, stop };
        // Lossy per-configuration prediction cache, shared by every
        // iteration's pool sweep and invalidated on each refit (see
        // `OptimizerConfig::pred_cache_slots`). Not part of the journal
        // header: it cannot change any evaluated value. `eval_workers` *is*
        // recorded — worker topology cannot change values either, but a
        // resume under a different topology means the operator changed the
        // deployment mid-run, and the service layer needs that surfaced
        // loudly rather than silently replayed.
        let mut pred_cache = (self.config.pred_cache_slots > 0)
            .then(|| PredictionCache::new(n_obj, self.config.pred_cache_slots));

        // ---- Journal handshake: verify or write the run header. ----
        let mut replay = Replay::default();
        if let Some(j) = ctx.journal.as_deref_mut() {
            let header = self.run_header(n_obj);
            match j.header() {
                Some(existing) if *existing != header => {
                    return Err(header_mismatch_error(existing, &header));
                }
                Some(_) => replay = j.take_replay(),
                None => j.append_header(&header).map_err(jerr)?,
            }
        }

        let mut st = ExplorationState::new(self.config.seed, n_obj);
        // Warm-start surrogate state: datasets and the shared level index
        // persist across iterations so each refit only ingests the rows
        // that are new since the previous one.
        let mut trainer = SurrogateTrainer::new(self.space.n_params(), n_obj);

        // ---- Restore the latest snapshot, if the journal holds one. ----
        // RNG state is replayed, never deserialized: re-run the bootstrap
        // draw and the recorded number of pool draws against the seeded RNG
        // (both draw counts are independent of evaluation outcomes), then
        // install the snapshotted samples/failures/iterations. Order
        // matters: the bootstrap draw must see the same empty exclude set
        // the original run saw.
        let boot_from_base = replay.base.boot_done;
        if boot_from_base {
            let _ = self.bootstrap_draw(&mut st)?;
            for _ in 0..replay.base.pools_drawn {
                let _ = prediction_pool(&self.space, self.config.pool_size, &mut st.rng);
                st.pools_drawn += 1;
            }
            let base = std::mem::take(&mut replay.base);
            for (flat, phase, objectives) in base.samples {
                st.evaluated.insert(flat);
                st.record_sample(Sample { config: self.space.config_at(flat), objectives, phase });
            }
            for (flat, phase, error, attempts, elapsed_ms) in base.failures {
                st.evaluated.insert(flat);
                st.failures.push(FailureRecord {
                    config: self.space.config_at(flat),
                    error,
                    phase,
                    attempts,
                    elapsed_ms,
                });
            }
            st.iterations = base.iterations;
        }

        // ---- Phase 1: random bootstrap (X_out ← rs distinct samples). ----
        if !boot_from_base {
            let boot = self.bootstrap_draw(&mut st)?;
            let attempted = boot.len();
            let flats: Vec<u64> = boot.iter().map(|c| self.space.flat_index(c)).collect();
            let replayed = match replay.next_phase(Phase::Random).map_err(HmError::JournalMismatch)? {
                Some(pr) => {
                    if pr.flat != flats {
                        return Err(HmError::JournalMismatch(
                            "journaled bootstrap configurations differ from this seed's".into(),
                        ));
                    }
                    pr.outcomes
                }
                None => {
                    ctx.phase_start(Phase::Random, 0, flats)?;
                    Vec::new()
                }
            };
            let out =
                self.eval_phase(evaluator, boot, n_obj, Phase::Random, &replayed, &mut st, &mut ctx)?;
            if out.interrupted {
                ctx.sync_now()?;
                return Ok(st.into_result(evaluator.objective_names(), true));
            }
            if out.successes == 0 && attempted > 0 {
                return Err(HmError::NoSuccessfulEvaluations { iteration: None, attempted });
            }
            let snap = self.snapshot_state(&st);
            ctx.maybe_snapshot(&snap)?;
        }

        // ---- Phase 2: active learning. ----
        let mut interrupted = false;
        for iter in (st.iterations.len() + 1)..=self.config.max_iterations {
            if ctx.stopped() {
                interrupted = true;
                break;
            }
            let next = replay.next_phase(Phase::Active(iter)).map_err(HmError::JournalMismatch)?;
            // Forests are fit on the *pre-phase* state (that is what the
            // live loop trains on, and what the iteration's OOB estimate
            // refers to); only needed when the iteration's stats are not
            // already journaled.
            let mut forests: Option<FittedSurrogates> = None;
            let (configs, predicted_front_size, replayed, replayed_stats) = match next {
                Some(pr) => {
                    // Replayed phase: the candidate list is on record, so
                    // the forest fit and front prediction can be skipped —
                    // but the pool draw still consumed RNG in the original
                    // run and must be replayed to keep the stream aligned.
                    if pr.stats.is_none() {
                        forests =
                            Some(self.fit_forests(&mut trainer, &st.samples, &st.failures, n_obj));
                    }
                    let _ = prediction_pool(&self.space, self.config.pool_size, &mut st.rng);
                    st.pools_drawn += 1;
                    let configs: Vec<Configuration> =
                        pr.flat.iter().map(|&f| self.space.config_at(f)).collect();
                    (configs, pr.predicted_front_size, pr.outcomes, pr.stats)
                }
                None => {
                    if replay.done {
                        // The journaled run completed at this point (its
                        // predicted front was fully evaluated).
                        break;
                    }
                    // Live path: fit one forest per objective on everything
                    // evaluated so far, predict over the pool, and find the
                    // predicted Pareto front.
                    let fit = self.fit_forests(&mut trainer, &st.samples, &st.failures, n_obj);
                    let pool = prediction_pool(&self.space, self.config.pool_size, &mut st.rng);
                    st.pools_drawn += 1;
                    let predicted =
                        self.predict_front(&fit.forests, &pool, n_obj, pred_cache.as_mut());
                    let predicted_front_size = predicted.len();

                    // P − X_out: keep only configurations not evaluated yet
                    // (failed configurations count as spent — re-proposing a
                    // deterministically crashing configuration every
                    // iteration would starve the loop).
                    let mut fresh: Vec<Configuration> = predicted
                        .into_iter()
                        .filter(|c| !st.evaluated.contains(&self.space.flat_index(c)))
                        .collect();
                    if self.config.max_evals_per_iteration > 0
                        && fresh.len() > self.config.max_evals_per_iteration
                    {
                        fresh.truncate(self.config.max_evals_per_iteration);
                    }
                    if fresh.is_empty() {
                        // Predicted front fully evaluated: Algorithm 1's
                        // fixed point.
                        break;
                    }
                    let flats = fresh.iter().map(|c| self.space.flat_index(c)).collect();
                    ctx.phase_start(Phase::Active(iter), predicted_front_size, flats)?;
                    forests = Some(fit);
                    (fresh, predicted_front_size, Vec::new(), None)
                }
            };

            let new_evaluations = configs.len();
            let out = self.eval_phase(
                evaluator,
                configs,
                n_obj,
                Phase::Active(iter),
                &replayed,
                &mut st,
                &mut ctx,
            )?;
            if out.interrupted {
                interrupted = true;
                break;
            }
            if out.successes == 0 {
                return Err(HmError::NoSuccessfulEvaluations {
                    iteration: Some(iter),
                    attempted: new_evaluations,
                });
            }

            let stats = match replayed_stats {
                Some(stats) => stats,
                None => {
                    let oob_rmse = match &forests {
                        Some(fs) => fs.oob_rmse.clone(),
                        // Unreachable by construction: forests are fit
                        // whenever stats are not replayed.
                        None => vec![None; n_obj],
                    };
                    let stats = IterationStats {
                        iteration: iter,
                        predicted_front_size,
                        new_evaluations,
                        failed_evaluations: new_evaluations - out.successes,
                        oob_rmse,
                        hypervolume: st.measured_hypervolume(),
                    };
                    ctx.append_iter(&stats)?;
                    stats
                }
            };
            st.iterations.push(stats);
            let snap = self.snapshot_state(&st);
            ctx.maybe_snapshot(&snap)?;
        }

        if let Some(j) = ctx.journal.as_deref_mut() {
            if interrupted {
                j.sync().map_err(jerr)?;
            } else if !replay.done {
                j.append_done().map_err(jerr)?;
            }
        }
        Ok(st.into_result(evaluator.objective_names(), interrupted))
    }

    /// The bootstrap `sample_distinct` draw — shared between the live path
    /// and RNG-position replay so both consume the RNG identically.
    fn bootstrap_draw(&self, st: &mut ExplorationState) -> Result<Vec<Configuration>, HmError> {
        sample_distinct(
            &self.space,
            self.config.random_samples.min(self.space.size() as usize),
            &st.evaluated,
            &mut st.rng,
        )
    }

    /// Fingerprint of everything a journal replay must agree on.
    fn run_header(&self, n_obj: usize) -> RunHeader {
        let mut sig_src = String::new();
        // The space size is covered by the per-parameter fingerprints below,
        // but is cheap insurance against a future parameter kind whose
        // `Debug` form underdetermines its cardinality — a resume against a
        // differently-sized space must never replay flat indices.
        let _ = write!(
            sig_src,
            "{:?}|{:?}|{}|",
            self.config.forest,
            self.config.failure_policy,
            self.space.size()
        );
        for p in self.space.params() {
            let _ = write!(sig_src, "{p:?};");
        }
        RunHeader {
            seed: self.config.seed,
            random_samples: self.config.random_samples,
            max_iterations: self.config.max_iterations,
            max_evals_per_iteration: self.config.max_evals_per_iteration,
            pool_size: self.config.pool_size,
            n_objectives: n_obj,
            eval_workers: Some(self.config.eval_workers),
            sig: crc32(sig_src.as_bytes()),
        }
    }

    /// Full resumable state at the current phase boundary, in journal form.
    fn snapshot_state(&self, st: &ExplorationState) -> SnapshotState {
        SnapshotState {
            boot_done: true,
            pools_drawn: st.pools_drawn,
            samples: st
                .samples
                .iter()
                .map(|s| (self.space.flat_index(&s.config), s.phase, s.objectives.clone()))
                .collect(),
            failures: st
                .failures
                .iter()
                .map(|f| {
                    (
                        self.space.flat_index(&f.config),
                        f.phase,
                        f.error.clone(),
                        f.attempts,
                        f.elapsed_ms,
                    )
                })
                .collect(),
            iterations: st.iterations.clone(),
        }
    }

    /// Run only the random bootstrap phase — the paper's baseline.
    pub fn run_random_only<E: Evaluator>(&self, evaluator: &E) -> ExplorationResult {
        let reduced = HyperMapper {
            space: self.space.clone(),
            config: OptimizerConfig { max_iterations: 0, ..self.config.clone() },
        };
        reduced.run(evaluator)
    }

    /// Evaluate one phase's batch: apply the journal-replayed prefix (no
    /// evaluator calls), then evaluate the live remainder — in bounded
    /// chunks when a journal or stop flag is active, as one batch otherwise
    /// — validating every outcome and appending successes to `st.samples` /
    /// failures to `st.failures`. Every attempted configuration is marked
    /// evaluated. Journal `eval` records are appended in slot order
    /// regardless of parallel completion order (see
    /// [`crate::journal::JournalSink`]).
    #[allow(clippy::too_many_arguments)]
    fn eval_phase<E: Evaluator>(
        &self,
        evaluator: &E,
        configs: Vec<Configuration>,
        n_obj: usize,
        phase: Phase,
        replayed: &[RawOutcome],
        st: &mut ExplorationState,
        ctx: &mut RunCtx<'_>,
    ) -> Result<PhaseOutcome, HmError> {
        let mut successes = 0usize;
        for (config, outcome) in configs.iter().zip(replayed) {
            if self.apply_raw(st, config.clone(), outcome, phase, n_obj) {
                successes += 1;
            }
        }
        let n = configs.len();
        let mut pos = replayed.len().min(n);
        // Plain runs evaluate the whole phase as one batch — the exact
        // pre-durability codepath. Controlled runs chunk it so stop checks
        // and journal fsyncs happen at a bounded interval; per-configuration
        // results are identical either way.
        let chunk_len =
            if ctx.is_plain() { usize::MAX } else { EVAL_CHUNK.max(self.config.eval_workers) };
        let mut interrupted = false;
        while pos < n {
            if ctx.stopped() {
                interrupted = true;
                break;
            }
            let end = n.min(pos.saturating_add(chunk_len));
            let chunk = &configs[pos..end];
            let outcomes: Vec<RawOutcome> = if self.config.eval_workers > 0 {
                let par = ParallelBatchEvaluator::with_workers(evaluator, self.config.eval_workers);
                match ctx.journal.as_deref_mut() {
                    Some(j) => {
                        let sink = JournalSink::new(j, pos);
                        let detailed = par.try_evaluate_batch_detailed_observed(chunk, &|i, o| {
                            sink.observe(i, o)
                        });
                        sink.finish().map_err(jerr)?;
                        detailed.into_iter().map(RawOutcome::from_detailed).collect()
                    }
                    None => par
                        .try_evaluate_batch_detailed(chunk)
                        .into_iter()
                        .map(RawOutcome::from_detailed)
                        .collect(),
                }
            } else {
                let raw: Vec<RawOutcome> = evaluator
                    .try_evaluate_batch_detailed(chunk)
                    .into_iter()
                    .map(RawOutcome::from_detailed)
                    .collect();
                if let Some(j) = ctx.journal.as_deref_mut() {
                    for (k, o) in raw.iter().enumerate() {
                        j.append_eval(pos + k, o).map_err(jerr)?;
                    }
                }
                raw
            };
            assert_eq!(outcomes.len(), chunk.len(), "batch size mismatch");
            for (config, outcome) in chunk.iter().zip(&outcomes) {
                if self.apply_raw(st, config.clone(), outcome, phase, n_obj) {
                    successes += 1;
                }
            }
            pos = end;
            ctx.sync_now()?;
        }
        Ok(PhaseOutcome { successes, interrupted })
    }

    /// Apply one raw outcome (live or replayed) to the exploration state:
    /// mark the configuration evaluated and record a validated [`Sample`]
    /// or a [`FailureRecord`]. Returns whether it was a success. Replay
    /// re-validates exactly like the live path, so journaled raw outcomes
    /// derive identical state.
    fn apply_raw(
        &self,
        st: &mut ExplorationState,
        config: Configuration,
        outcome: &RawOutcome,
        phase: Phase,
        n_obj: usize,
    ) -> bool {
        st.evaluated.insert(self.space.flat_index(&config));
        let (result, attempts, elapsed_ms) = match outcome {
            RawOutcome::Ok(objectives) => (Ok(objectives.clone()), 1, 0),
            RawOutcome::Err { error, attempts, elapsed_ms } => {
                (Err(error.clone()), *attempts, *elapsed_ms)
            }
        };
        match validate_objectives(result, n_obj) {
            Ok(objectives) => {
                st.record_sample(Sample { config, objectives, phase });
                true
            }
            Err(error) => {
                st.failures.push(FailureRecord { config, error, phase, attempts, elapsed_ms });
                false
            }
        }
    }

    /// One training dataset per objective from the samples so far; under
    /// [`FailurePolicy::ImputePenalty`], failed configurations are appended
    /// with penalty objectives so the surrogate learns to avoid them.
    fn datasets(
        &self,
        samples: &[Sample],
        failures: &[FailureRecord],
        n_obj: usize,
    ) -> Vec<Dataset> {
        let penalty = match self.config.failure_policy {
            FailurePolicy::Exclude => None,
            FailurePolicy::ImputePenalty { factor } => {
                penalty_objectives(samples, n_obj, factor)
            }
        };
        let imputed: &[FailureRecord] = if penalty.is_some() { failures } else { &[] };
        let rows = samples.len() + imputed.len();
        let mut datasets: Vec<Dataset> =
            (0..n_obj).map(|_| Dataset::with_capacity(self.space.n_params(), rows)).collect();
        let mut feat = Vec::with_capacity(self.space.n_params());
        for s in samples {
            feat.clear();
            self.space.write_features(&s.config, &mut feat);
            for (k, d) in datasets.iter_mut().enumerate() {
                d.push_row(&feat, s.objectives[k]);
            }
        }
        if let Some(penalty) = penalty {
            for f in imputed {
                feat.clear();
                self.space.write_features(&f.config, &mut feat);
                for (k, d) in datasets.iter_mut().enumerate() {
                    d.push_row(&feat, penalty[k]);
                }
            }
        }
        datasets
    }

    /// Fit the per-objective surrogate forests (two separate regressors in
    /// the paper: ATE and runtime), warm-starting from `trainer`'s
    /// persistent datasets and shared level index whenever no imputed rows
    /// are in play. The fitted forests are bit-identical to a cold
    /// `RandomForest::fit` on freshly rebuilt datasets (the
    /// `fit_with_bins`/`append_rows` parity contracts); OOB error is
    /// estimated here, against the exact data each forest trained on.
    fn fit_forests(
        &self,
        trainer: &mut SurrogateTrainer,
        samples: &[Sample],
        failures: &[FailureRecord],
        n_obj: usize,
    ) -> FittedSurrogates {
        let penalty = match self.config.failure_policy {
            FailurePolicy::Exclude => None,
            FailurePolicy::ImputePenalty { factor } => penalty_objectives(samples, n_obj, factor),
        };
        let imputed = penalty.is_some() && !failures.is_empty();
        if imputed || trainer.has_imputed_rows {
            // Cold rebuild. Imputed penalty targets are a function of the
            // *entire* successful-sample set, so any imputed tail from the
            // previous fit is stale the moment a new sample lands — there
            // is nothing incremental to reuse (DESIGN.md §14).
            trainer.rebuild(self.datasets(samples, failures, n_obj), samples.len(), imputed);
        } else {
            trainer.append_samples(&self.space, samples);
        }
        let forests: Vec<RandomForest> = trainer
            .datasets
            .iter()
            .enumerate()
            .map(|(k, d)| {
                let cfg = ForestConfig {
                    seed: self.config.forest.seed ^ ((k as u64 + 1) << 32) ^ self.config.seed,
                    ..self.config.forest.clone()
                };
                RandomForest::fit_with_bins(d, &trainer.bins, &cfg)
            })
            .collect();
        let oob_rmse =
            forests.iter().zip(&trainer.datasets).map(|(f, d)| f.oob_rmse(d)).collect();
        FittedSurrogates { forests, oob_rmse }
    }

    /// Predict all objectives over `pool` and return the configurations on
    /// the predicted Pareto front.
    ///
    /// The surrogate engine is the quantized u16 pool when every feature
    /// fits its cut tables, the f64 compiled pool otherwise — bit-identical
    /// either way (see [`CompiledSurrogate`]). With a cache, each pool
    /// configuration is looked up by flat index first and only the misses
    /// reach the forest; because per-row predictions are independent of
    /// batch composition, predicting the miss subset alone reproduces the
    /// full sweep exactly, so the cache is invisible in the results. The
    /// forests handed in are always freshly fit, so the cache is
    /// invalidated here — this *is* the invalidate-on-refit rule; hits can
    /// only come from re-scoring a configuration against the same fit
    /// (repeated keys within one sweep, or callers outside the
    /// one-refit-per-iteration loop).
    fn predict_front(
        &self,
        forests: &[RandomForest],
        pool: &[Configuration],
        n_obj: usize,
        cache: Option<&mut PredictionCache>,
    ) -> Vec<Configuration> {
        let flatten = |configs: &[&Configuration]| -> Vec<f64> {
            let mut rows = Vec::with_capacity(configs.len() * self.space.n_params());
            for c in configs {
                self.space.write_features(c, &mut rows);
            }
            rows
        };
        // Fuse the per-objective forests into one pool: each candidate row
        // is traversed once, scoring every objective while the row is hot.
        let surrogate = CompiledSurrogate::compile_multi(&forests.iter().collect::<Vec<_>>());
        let preds: Vec<Vec<f64>> = match cache {
            Some(cache) => {
                cache.invalidate();
                let keys: Vec<u64> = pool.iter().map(|c| self.space.flat_index(c)).collect();
                cache.lookup_or_compute(&keys, |miss| {
                    let miss_rows =
                        flatten(&miss.iter().map(|&i| &pool[i]).collect::<Vec<_>>());
                    surrogate.predict_batch_multi(&miss_rows)
                })
            }
            None => surrogate.predict_batch_multi(&flatten(&pool.iter().collect::<Vec<_>>())),
        };

        // Stream the predictions through an incremental front instead of
        // materializing a second `pool.len() × n_obj` point matrix for a
        // batch recompute; membership and output order are bit-identical
        // (the `incremental_front` property tests).
        let mut front = IncrementalFront::new(n_obj);
        let mut point = vec![0.0f64; n_obj];
        for i in 0..pool.len() {
            for (v, p) in point.iter_mut().zip(&preds) {
                *v = p[i];
            }
            front.push(&point);
        }
        front.front_indices().into_iter().map(|i| pool[i].clone()).collect()
    }
}

/// Stop checks and journal fsyncs happen at least every this many live
/// evaluations in a controlled run (journal or stop flag active). A killed
/// process loses at most one chunk of un-fsync'd evaluations under
/// [`crate::journal::SyncPolicy::PerBatch`].
pub const EVAL_CHUNK: usize = 64;

/// The exploration's mutable state machine: everything the loop accumulates
/// and everything a snapshot must capture. `pools_drawn` plus the seed is
/// the RNG position (see the `journal` module docs — RNG state is replayed,
/// never serialized).
struct ExplorationState {
    rng: StdRng,
    evaluated: HashSet<u64>,
    samples: Vec<Sample>,
    failures: Vec<FailureRecord>,
    iterations: Vec<IterationStats>,
    pools_drawn: usize,
    /// Measured Pareto front, maintained incrementally as samples land —
    /// bit-identical to a batch `pareto_front` over `samples` (the
    /// `incremental_front` property tests), so the per-iteration
    /// hypervolume and the final `pareto_indices` never recompute over the
    /// whole sample history.
    front: IncrementalFront,
    /// Running per-objective maximum over all samples — the hypervolume
    /// reference point (the measured nadir).
    nadir: Vec<f64>,
}

impl ExplorationState {
    fn new(seed: u64, n_obj: usize) -> Self {
        ExplorationState {
            rng: StdRng::seed_from_u64(seed),
            evaluated: HashSet::new(),
            samples: Vec::new(),
            failures: Vec::new(),
            iterations: Vec::new(),
            pools_drawn: 0,
            front: IncrementalFront::new(n_obj),
            nadir: vec![f64::NEG_INFINITY; n_obj],
        }
    }

    /// The single ingestion point for successful evaluations: every sample
    /// enters the log, the maintained front, and the nadir together, so
    /// the three can never drift apart.
    fn record_sample(&mut self, sample: Sample) {
        for (n, v) in self.nadir.iter_mut().zip(&sample.objectives) {
            *n = n.max(*v);
        }
        self.front.push(&sample.objectives);
        self.samples.push(sample);
    }

    /// Hypervolume of the measured front for bi-objective runs, from the
    /// maintained front in `O(front)` — bit-identical to
    /// [`measured_hypervolume`] over the full sample log.
    fn measured_hypervolume(&self) -> f64 {
        if self.samples.is_empty() || self.front.n_objectives() != 2 {
            return 0.0;
        }
        self.front.hypervolume((self.nadir[0], self.nadir[1]))
    }

    fn into_result(self, objective_names: Vec<String>, interrupted: bool) -> ExplorationResult {
        let pareto_indices = self.front.front_indices();
        ExplorationResult {
            samples: self.samples,
            pareto_indices,
            iterations: self.iterations,
            objective_names,
            failures: self.failures,
            interrupted,
        }
    }
}

/// The run's durability/shutdown context. `is_plain` (no journal, no stop
/// flag) keeps `try_run` on the exact pre-durability codepath.
struct RunCtx<'a> {
    journal: Option<&'a mut Journal>,
    stop: Option<&'a AtomicBool>,
}

impl RunCtx<'_> {
    fn is_plain(&self) -> bool {
        self.journal.is_none() && self.stop.is_none()
    }

    fn stopped(&self) -> bool {
        self.stop.is_some_and(|s| s.load(Ordering::Relaxed))
    }

    fn phase_start(&mut self, phase: Phase, pfs: usize, flats: Vec<u64>) -> Result<(), HmError> {
        match self.journal.as_deref_mut() {
            Some(j) => j.append_phase_start(phase, pfs, flats).map_err(jerr),
            None => Ok(()),
        }
    }

    fn append_iter(&mut self, stats: &IterationStats) -> Result<(), HmError> {
        match self.journal.as_deref_mut() {
            Some(j) => j.append_iter(stats).map_err(jerr),
            None => Ok(()),
        }
    }

    fn maybe_snapshot(&mut self, state: &SnapshotState) -> Result<(), HmError> {
        match self.journal.as_deref_mut() {
            Some(j) => j.maybe_snapshot(state).map_err(jerr),
            None => Ok(()),
        }
    }

    fn sync_now(&mut self) -> Result<(), HmError> {
        match self.journal.as_deref_mut() {
            Some(j) => j.sync().map_err(jerr),
            None => Ok(()),
        }
    }
}

/// What [`HyperMapper::eval_phase`] reports back to the loop.
struct PhaseOutcome {
    successes: usize,
    interrupted: bool,
}

/// One refit of the per-objective surrogates, plus their out-of-bag error
/// on the data they were trained on.
struct FittedSurrogates {
    forests: Vec<RandomForest>,
    oob_rmse: Vec<Option<f64>>,
}

/// Warm-start surrogate training state, persistent across active-learning
/// iterations.
///
/// Active learning grows its training set by a bounded number of rows per
/// iteration, yet the old fit path rebuilt every per-objective [`Dataset`]
/// *and* re-indexed every feature column from scratch each refit —
/// `O(history)` work per iteration for what is an `O(new rows)` change.
/// This keeps the datasets alive and appends only the samples that landed
/// since the last refit; the feature matrix is identical across objectives
/// (only targets differ), so **one** shared [`BinnedDataset`] level index
/// serves every objective's forest, extended in place via
/// [`BinnedDataset::append_rows`].
///
/// Imputed penalty rows (see [`FailurePolicy::ImputePenalty`]) are the one
/// thing that cannot warm-start: their targets depend on the whole sample
/// set and change every iteration, so a fit with imputed rows rebuilds
/// cold — and taints the trainer so the *next* fit rebuilds too (the
/// imputed tail must come back out).
struct SurrogateTrainer {
    /// Per-objective training sets; row `i` < `samples_seen` is sample `i`.
    datasets: Vec<Dataset>,
    /// Level index over the (shared) feature matrix of `datasets`.
    bins: BinnedDataset,
    /// Prefix of the run's sample log already ingested into `datasets`.
    samples_seen: usize,
    /// `datasets` currently carry an imputed penalty tail after the
    /// sample rows; the next fit must rebuild regardless of policy.
    has_imputed_rows: bool,
}

impl SurrogateTrainer {
    fn new(n_params: usize, n_obj: usize) -> Self {
        let datasets: Vec<Dataset> = (0..n_obj).map(|_| Dataset::new(n_params)).collect();
        let bins = BinnedDataset::new(&datasets[0]);
        SurrogateTrainer { datasets, bins, samples_seen: 0, has_imputed_rows: false }
    }

    /// Warm path: ingest the samples that arrived since the last fit
    /// (possibly several iterations' worth — resume replays whole phases
    /// without fitting) and extend the shared level index to match.
    fn append_samples(&mut self, space: &ParamSpace, samples: &[Sample]) {
        let mut feat = Vec::with_capacity(space.n_params());
        for s in &samples[self.samples_seen..] {
            feat.clear();
            space.write_features(&s.config, &mut feat);
            for (k, d) in self.datasets.iter_mut().enumerate() {
                d.push_row(&feat, s.objectives[k]);
            }
        }
        self.bins.append_rows(&self.datasets[0]);
        self.samples_seen = samples.len();
    }

    /// Cold path: replace everything with freshly built datasets.
    fn rebuild(&mut self, datasets: Vec<Dataset>, n_samples: usize, has_imputed_rows: bool) {
        self.bins = BinnedDataset::new(&datasets[0]);
        self.datasets = datasets;
        self.samples_seen = n_samples;
        self.has_imputed_rows = has_imputed_rows;
    }
}

fn jerr(e: std::io::Error) -> HmError {
    HmError::Journal(e.to_string())
}

/// Field-specific [`HmError::JournalMismatch`] for a resume whose header
/// disagrees with the current optimizer. Worker topology gets its own
/// message — it is the one field an operator plausibly changes between
/// incarnations of the same logical run, so "which field" matters.
fn header_mismatch_error(existing: &RunHeader, current: &RunHeader) -> HmError {
    let topology_only = RunHeader { eval_workers: current.eval_workers, ..existing.clone() }
        == *current;
    let msg = if topology_only {
        match existing.eval_workers {
            Some(was) => format!(
                "journal was recorded with eval_workers={was}; this run uses eval_workers={} — \
                 worker topology is part of the run signature, resume with the original topology",
                current.eval_workers.unwrap_or(0)
            ),
            None => "journal predates worker-topology tracking (run v1 header); re-run from \
                     scratch or resume with the version that wrote it"
                .to_string(),
        }
    } else {
        "journal header (seed, optimizer config, or space fingerprint) differs from this run"
            .to_string()
    };
    HmError::JournalMismatch(msg)
}

/// Classify a raw evaluation outcome: arity and finiteness checks promote
/// bad `Ok` payloads to typed errors so the loop treats a NaN objective the
/// same way it treats a panic.
fn validate_objectives(
    outcome: Result<Vec<f64>, EvalError>,
    n_obj: usize,
) -> Result<Vec<f64>, EvalError> {
    let objectives = outcome?;
    if objectives.len() != n_obj {
        return Err(EvalError::WrongArity { expected: n_obj, got: objectives.len() });
    }
    for (k, &v) in objectives.iter().enumerate() {
        if !v.is_finite() {
            return Err(EvalError::non_finite(k, v));
        }
    }
    Ok(objectives)
}

/// Penalty objective vector for imputing failed configurations: per
/// objective, `worst + factor × (worst − best)` over the successful samples
/// (`worst + factor` when the span is zero). `None` when there are no
/// successes to anchor the penalty to.
fn penalty_objectives(samples: &[Sample], n_obj: usize, factor: f64) -> Option<Vec<f64>> {
    if samples.is_empty() {
        return None;
    }
    let mut penalty = Vec::with_capacity(n_obj);
    for k in 0..n_obj {
        let mut best = f64::INFINITY;
        let mut worst = f64::NEG_INFINITY;
        for s in samples {
            best = best.min(s.objectives[k]);
            worst = worst.max(s.objectives[k]);
        }
        let span = worst - best;
        penalty.push(if span > 0.0 { worst + factor * span } else { worst + factor });
    }
    Some(penalty)
}

/// Hypervolume of the measured front for bi-objective runs, using the
/// nadir of all samples as the reference point. The live optimizer keeps
/// this incrementally ([`ExplorationState::measured_hypervolume`]); the
/// batch recompute survives as the independent cross-check the tests pit
/// against it.
#[cfg(test)]
fn measured_hypervolume(samples: &[Sample]) -> f64 {
    if samples.is_empty() || samples[0].objectives.len() != 2 {
        return 0.0;
    }
    let pts: Vec<(f64, f64)> = samples.iter().map(|s| (s.objectives[0], s.objectives[1])).collect();
    let ref_x = pts.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let ref_y = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    hypervolume_2d(&pts, (ref_x, ref_y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::{CachedEvaluator, FnEvaluator};

    /// A deterministic, non-convex bi-objective toy problem.
    fn toy_space() -> ParamSpace {
        ParamSpace::builder()
            .ordinal("x", (0..40).map(|i| i as f64 * 0.25))
            .ordinal("y", (0..40).map(|i| i as f64 * 0.25))
            .ordinal("z", (0..4).map(f64::from))
            .build()
            .unwrap()
    }

    fn toy_evaluator() -> FnEvaluator<impl Fn(&Configuration) -> Vec<f64> + Sync> {
        FnEvaluator::new(2, |c| {
            let x = c.value_f64(0);
            let y = c.value_f64(1);
            let z = c.value_f64(2);
            // "runtime": cheap at small x, with multi-modal ripples.
            let runtime = 0.5 + x + (y * 1.7).sin().abs() * 2.0 + z * 0.1;
            // "error": decreases as x grows (accuracy/perf trade-off).
            let error = 10.0 - x * 0.9 + (y - 5.0).abs() * 0.3 + (z - 2.0).abs();
            vec![runtime, error]
        })
        .with_names(["runtime", "error"])
    }

    fn quick_config(seed: u64) -> OptimizerConfig {
        OptimizerConfig {
            random_samples: 60,
            max_iterations: 4,
            max_evals_per_iteration: 50,
            pool_size: 2000,
            forest: ForestConfig { n_trees: 20, ..Default::default() },
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn exploration_produces_nonempty_front() {
        let hm = HyperMapper::new(toy_space(), quick_config(1));
        let eval = toy_evaluator();
        let res = hm.run(&eval);
        assert!(!res.pareto_indices.is_empty());
        assert!(res.samples.len() >= 60);
        assert_eq!(res.objective_names, vec!["runtime", "error"]);
        // The front must be mutually non-dominating.
        let front = res.pareto_samples();
        for a in &front {
            for b in &front {
                assert!(!crate::pareto::dominates(&a.objectives, &b.objectives));
            }
        }
    }

    #[test]
    fn active_learning_extends_random_front() {
        let hm = HyperMapper::new(toy_space(), quick_config(7));
        let eval = toy_evaluator();
        let res = hm.run(&eval);
        let full_hv = measured_hypervolume(&res.samples);
        let randoms: Vec<Sample> = res.random_samples().cloned().collect();
        let rand_hv = measured_hypervolume(&randoms);
        // Hypervolume uses the run-wide nadir here, so recompute both with a
        // common reference.
        let pts_all: Vec<(f64, f64)> =
            res.samples.iter().map(|s| (s.objectives[0], s.objectives[1])).collect();
        let reference = (
            pts_all.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max),
            pts_all.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max),
        );
        let pts_rand: Vec<(f64, f64)> =
            randoms.iter().map(|s| (s.objectives[0], s.objectives[1])).collect();
        let hv_all = hypervolume_2d(&pts_all, reference);
        let hv_rand = hypervolume_2d(&pts_rand, reference);
        assert!(hv_all >= hv_rand, "active learning can only extend coverage");
        let _ = (full_hv, rand_hv);
    }

    #[test]
    fn deterministic_given_seed() {
        let eval = toy_evaluator();
        let r1 = HyperMapper::new(toy_space(), quick_config(42)).run(&eval);
        let r2 = HyperMapper::new(toy_space(), quick_config(42)).run(&eval);
        assert_eq!(r1.samples.len(), r2.samples.len());
        for (a, b) in r1.samples.iter().zip(&r2.samples) {
            assert_eq!(a.config, b.config);
            assert_eq!(a.objectives, b.objectives);
            assert_eq!(a.phase, b.phase);
        }
    }

    #[test]
    fn no_configuration_evaluated_twice() {
        let eval = toy_evaluator();
        let cached = CachedEvaluator::new(&eval);
        let res = HyperMapper::new(toy_space(), quick_config(3)).run(&cached);
        assert_eq!(cached.distinct_evaluations(), res.samples.len());
    }

    #[test]
    fn random_only_runs_no_iterations() {
        let eval = toy_evaluator();
        let res = HyperMapper::new(toy_space(), quick_config(5)).run_random_only(&eval);
        assert!(res.iterations.is_empty());
        assert_eq!(res.samples.len(), 60);
        assert!(res.active_samples().next().is_none());
    }

    #[test]
    fn phases_are_labeled() {
        let eval = toy_evaluator();
        let res = HyperMapper::new(toy_space(), quick_config(9)).run(&eval);
        assert_eq!(res.random_samples().count(), 60);
        for s in res.active_samples() {
            match s.phase {
                Phase::Active(i) => assert!(i >= 1 && i <= 4),
                Phase::Random => panic!("random sample in active iterator"),
            }
        }
    }

    #[test]
    fn max_evals_cap_respected() {
        let mut cfg = quick_config(11);
        cfg.max_evals_per_iteration = 10;
        let eval = toy_evaluator();
        let res = HyperMapper::new(toy_space(), cfg).run(&eval);
        for it in &res.iterations {
            assert!(it.new_evaluations <= 10);
        }
    }

    #[test]
    fn best_by_objective_and_valid_counts() {
        let eval = toy_evaluator();
        let res = HyperMapper::new(toy_space(), quick_config(13)).run(&eval);
        let fastest = res.best_by_objective(0).unwrap();
        for s in &res.samples {
            assert!(fastest.objectives[0] <= s.objectives[0]);
        }
        let (r, a) = res.valid_counts(1, 5.0);
        assert!(r + a <= res.samples.len());
    }

    #[test]
    fn hypervolume_nondecreasing_over_iterations() {
        let eval = toy_evaluator();
        let res = HyperMapper::new(toy_space(), quick_config(17)).run(&eval);
        let mut prev = 0.0f64;
        for it in &res.iterations {
            // Note: reference point shifts as worse samples arrive, so use a
            // loose check — the final HV must be at least the first.
            prev = prev.max(it.hypervolume);
        }
        if let (Some(first), Some(last)) = (res.iterations.first(), res.iterations.last()) {
            assert!(last.hypervolume >= first.hypervolume * 0.5);
        }
        let _ = prev;
    }

    #[test]
    fn single_objective_works() {
        let space = ParamSpace::builder()
            .ordinal("x", (0..100).map(f64::from))
            .build()
            .unwrap();
        let eval = FnEvaluator::new(1, |c| {
            let x = c.value_f64(0);
            vec![(x - 63.0).abs()]
        });
        let cfg = OptimizerConfig {
            random_samples: 10,
            max_iterations: 5,
            pool_size: 100,
            forest: ForestConfig { n_trees: 15, ..Default::default() },
            seed: 2,
            ..Default::default()
        };
        let res = HyperMapper::new(space, cfg).run(&eval);
        let best = res.best_by_objective(0).unwrap();
        // The optimum (x = 63) should be found or closely approached.
        assert!(best.objectives[0] <= 5.0, "best {:?}", best.objectives);
    }
}
