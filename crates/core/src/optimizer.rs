//! The HyperMapper active-learning optimizer (Algorithm 1 of the paper).

use crate::doe::{prediction_pool, sample_distinct};
use crate::error::{EvalError, HmError};
use crate::evaluate::Evaluator;
use crate::pareto::{hypervolume_2d, pareto_front, pareto_front_2d};
use crate::scheduler::ParallelBatchEvaluator;
use crate::space::{Configuration, ParamSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use randforest::{CompiledForest, Dataset, ForestConfig, RandomForest};
use serde::Serialize;
use std::collections::HashSet;

/// Which phase of the exploration produced a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Phase {
    /// Uniform random bootstrap sampling.
    Random,
    /// Active-learning iteration `i` (1-based).
    Active(usize),
}

/// One evaluated configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Sample {
    /// The configuration that was run.
    pub config: Configuration,
    /// Measured objectives (minimized).
    pub objectives: Vec<f64>,
    /// Where in the exploration it was produced.
    pub phase: Phase,
}

/// One configuration whose evaluation failed, and why.
///
/// Tracking-failure configurations are a first-class outcome in SLAMBench
/// (Nardi et al. 2015): the exploration records them rather than dying.
#[derive(Debug, Clone, Serialize)]
pub struct FailureRecord {
    /// The configuration that failed.
    pub config: Configuration,
    /// The failure classification.
    pub error: EvalError,
    /// Where in the exploration it failed.
    pub phase: Phase,
}

/// How failed configurations feed (or don't feed) the surrogate forests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum FailurePolicy {
    /// Failed configurations are excluded from forest training entirely
    /// (the default). The surrogate only ever sees measured objectives.
    Exclude,
    /// Failed configurations are imputed with a penalty objective vector so
    /// the surrogate learns to steer away from infeasible regions: each
    /// objective gets `worst + factor × (worst − best)` over the successful
    /// samples so far (`worst + factor` when the span is zero). Imputed
    /// rows only enter training — never `samples`, the Pareto front, or
    /// hypervolume.
    ImputePenalty {
        /// Penalty distance beyond the worst observed value, in units of
        /// the observed objective span.
        factor: f64,
    },
}

impl Default for FailurePolicy {
    fn default() -> Self {
        FailurePolicy::Exclude
    }
}

/// Statistics recorded after each active-learning iteration.
#[derive(Debug, Clone, Serialize)]
pub struct IterationStats {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Size of the predicted Pareto front over the pool.
    pub predicted_front_size: usize,
    /// Number of configurations newly evaluated this iteration
    /// (`P − X_out` in the paper, possibly capped).
    pub new_evaluations: usize,
    /// Number of configurations whose evaluation failed this iteration
    /// (subset of `new_evaluations`).
    pub failed_evaluations: usize,
    /// Out-of-bag RMSE of the per-objective forests, if estimable.
    pub oob_rmse: Vec<Option<f64>>,
    /// Hypervolume of the evaluated Pareto front after this iteration
    /// (bi-objective runs only; 0 otherwise).
    pub hypervolume: f64,
}

/// Tuning knobs for an exploration; the defaults follow the paper.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// `rs`: number of bootstrap random samples (the paper uses 3 000 for
    /// KFusion, 2 400 for ElasticFusion).
    pub random_samples: usize,
    /// Maximum number of active-learning iterations (the paper observed
    /// convergence after ~6).
    pub max_iterations: usize,
    /// Cap on new evaluations per iteration; the paper reports 100–300 new
    /// samples per iteration. `0` disables the cap.
    pub max_evals_per_iteration: usize,
    /// Size of the prediction pool drawn from the space each iteration.
    /// When the space is smaller, the whole space is used (as in the paper).
    pub pool_size: usize,
    /// Random forest hyper-parameters for the per-objective surrogates.
    pub forest: ForestConfig,
    /// Master seed — the full exploration is deterministic given this and
    /// a deterministic evaluator.
    pub seed: u64,
    /// How failed configurations feed the surrogate forests.
    pub failure_policy: FailurePolicy,
    /// Workers for cross-configuration batch evaluation. `0` (the default)
    /// calls the evaluator's own `try_evaluate_batch`; `> 0` fans each
    /// phase's batch across a [`crate::scheduler::ParallelBatchEvaluator`]
    /// with that many OS threads. Because the scheduler preserves values
    /// and ordering exactly, the exploration is bit-identical for any
    /// setting (given a deterministic evaluator) — only wall-clock changes.
    pub eval_workers: usize,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            random_samples: 100,
            max_iterations: 6,
            max_evals_per_iteration: 300,
            pool_size: 50_000,
            forest: ForestConfig { n_trees: 100, ..Default::default() },
            seed: 0,
            failure_policy: FailurePolicy::Exclude,
            eval_workers: 0,
        }
    }
}

/// Result of an exploration.
#[derive(Debug, Clone, Serialize)]
pub struct ExplorationResult {
    /// Every successfully evaluated sample, in evaluation order (random
    /// phase first). Failed configurations never appear here.
    pub samples: Vec<Sample>,
    /// Indices into `samples` of the measured Pareto-optimal points.
    pub pareto_indices: Vec<usize>,
    /// Per-iteration statistics of the active-learning loop.
    pub iterations: Vec<IterationStats>,
    /// Objective names from the evaluator.
    pub objective_names: Vec<String>,
    /// Every configuration whose evaluation failed, in evaluation order.
    pub failures: Vec<FailureRecord>,
}

impl ExplorationResult {
    /// The Pareto-optimal samples themselves, sorted by the first objective.
    /// Uses a total order so degenerate (non-finite) data sorts instead of
    /// panicking.
    pub fn pareto_samples(&self) -> Vec<&Sample> {
        let mut out: Vec<&Sample> = self.pareto_indices.iter().map(|&i| &self.samples[i]).collect();
        out.sort_by(|a, b| a.objectives[0].total_cmp(&b.objectives[0]));
        out
    }

    /// Failures recorded during the random bootstrap phase.
    pub fn bootstrap_failures(&self) -> usize {
        self.failures.iter().filter(|f| f.phase == Phase::Random).count()
    }

    /// Failure counts grouped by [`EvalError::kind`], sorted by kind.
    pub fn failure_kinds(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for f in &self.failures {
            let kind = f.error.kind();
            match counts.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, n)) => *n += 1,
                None => counts.push((kind, 1)),
            }
        }
        counts.sort_by_key(|(k, _)| *k);
        counts
    }

    /// Samples produced by the random bootstrap phase.
    pub fn random_samples(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter().filter(|s| s.phase == Phase::Random)
    }

    /// Samples produced by active learning.
    pub fn active_samples(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter().filter(|s| matches!(s.phase, Phase::Active(_)))
    }

    /// Pareto front restricted to the random-phase samples — the paper's
    /// "random sampling" baseline curve in Figs. 3 and 4.
    pub fn random_phase_front(&self) -> Vec<&Sample> {
        let randoms: Vec<&Sample> = self.random_samples().collect();
        let pts: Vec<Vec<f64>> = randoms.iter().map(|s| s.objectives.clone()).collect();
        let mut out: Vec<&Sample> = pareto_front(&pts).into_iter().map(|i| randoms[i]).collect();
        out.sort_by(|a, b| a.objectives[0].total_cmp(&b.objectives[0]));
        out
    }

    /// The sample minimizing objective `k` (total order: NaN sorts last, so
    /// degenerate data never panics result inspection).
    pub fn best_by_objective(&self, k: usize) -> Option<&Sample> {
        self.samples
            .iter()
            .min_by(|a, b| a.objectives[k].total_cmp(&b.objectives[k]))
    }

    /// Count samples whose objective `k` is below `limit` — the paper's
    /// "valid configurations" metric (ATE < 5 cm), split by phase.
    pub fn valid_counts(&self, k: usize, limit: f64) -> (usize, usize) {
        let rand = self
            .random_samples()
            .filter(|s| s.objectives[k] < limit)
            .count();
        let active = self
            .active_samples()
            .filter(|s| s.objectives[k] < limit)
            .count();
        (rand, active)
    }
}

/// The multi-objective random-forest active-learning optimizer.
///
/// See the crate docs for the algorithm outline and an end-to-end example.
pub struct HyperMapper {
    space: ParamSpace,
    config: OptimizerConfig,
}

impl HyperMapper {
    /// Create an optimizer over `space` with the given knobs.
    pub fn new(space: ParamSpace, config: OptimizerConfig) -> Self {
        HyperMapper { space, config }
    }

    /// The parameter space being explored.
    pub fn space(&self) -> &ParamSpace {
        &self.space
    }

    /// Run the full exploration (random bootstrap + active learning) against
    /// `evaluator`.
    ///
    /// Individual evaluation failures (panics, NaNs, divergences, timeouts)
    /// degrade gracefully: they are recorded in
    /// [`ExplorationResult::failures`], counted per iteration, and kept out
    /// of forest training (see [`FailurePolicy`]).
    ///
    /// # Panics
    /// Only if the whole exploration is unusable: the space holds fewer
    /// configurations than `random_samples`, or *every* evaluation of a
    /// phase fails. Use [`HyperMapper::try_run`] to handle those as errors.
    pub fn run<E: Evaluator>(&self, evaluator: &E) -> ExplorationResult {
        match self.try_run(evaluator) {
            Ok(result) => result,
            Err(e) => panic!("exploration failed: {e}"),
        }
    }

    /// Fallible version of [`HyperMapper::run`]: errors instead of
    /// panicking when the exploration cannot produce any result (too-small
    /// space, or a phase where zero evaluations succeed).
    pub fn try_run<E: Evaluator>(&self, evaluator: &E) -> Result<ExplorationResult, HmError> {
        let n_obj = evaluator.n_objectives();
        assert!(n_obj >= 1, "need at least one objective");
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut evaluated: HashSet<u64> = HashSet::new();
        let mut samples: Vec<Sample> = Vec::new();
        let mut failures: Vec<FailureRecord> = Vec::new();

        // ---- Phase 1: random bootstrap (X_out ← rs distinct samples). ----
        let boot = sample_distinct(
            &self.space,
            self.config.random_samples.min(self.space.size() as usize),
            &evaluated,
            &mut rng,
        )?;
        let attempted = boot.len();
        let successes =
            self.eval_phase(evaluator, boot, n_obj, Phase::Random, &mut evaluated, &mut samples, &mut failures);
        if successes == 0 && attempted > 0 {
            return Err(HmError::NoSuccessfulEvaluations { iteration: None, attempted });
        }

        // ---- Phase 2: active learning. ----
        let mut iterations = Vec::new();
        for iter in 1..=self.config.max_iterations {
            // Fit one forest per objective on everything evaluated so far.
            let forests = self.fit_forests(&samples, &failures, n_obj);

            // Predict over the pool and find the predicted Pareto front.
            let pool = prediction_pool(&self.space, self.config.pool_size, &mut rng);
            let predicted = self.predict_front(&forests, &pool, n_obj);
            let predicted_front_size = predicted.len();

            // P − X_out: keep only configurations not evaluated yet
            // (failed configurations count as spent — re-proposing a
            // deterministically crashing configuration every iteration
            // would starve the loop).
            let mut fresh: Vec<Configuration> = predicted
                .into_iter()
                .filter(|c| !evaluated.contains(&self.space.flat_index(c)))
                .collect();
            if self.config.max_evals_per_iteration > 0
                && fresh.len() > self.config.max_evals_per_iteration
            {
                fresh.truncate(self.config.max_evals_per_iteration);
            }
            if fresh.is_empty() {
                // Predicted front fully evaluated: Algorithm 1's fixed point.
                break;
            }

            let new_evaluations = fresh.len();
            let successes = self.eval_phase(
                evaluator,
                fresh,
                n_obj,
                Phase::Active(iter),
                &mut evaluated,
                &mut samples,
                &mut failures,
            );
            if successes == 0 {
                return Err(HmError::NoSuccessfulEvaluations {
                    iteration: Some(iter),
                    attempted: new_evaluations,
                });
            }

            let oob_rmse = {
                let datasets = self.datasets(&samples, &failures, n_obj);
                forests
                    .iter()
                    .zip(&datasets)
                    .map(|(f, d)| f.oob_rmse(d))
                    .collect()
            };
            iterations.push(IterationStats {
                iteration: iter,
                predicted_front_size,
                new_evaluations,
                failed_evaluations: new_evaluations - successes,
                oob_rmse,
                hypervolume: measured_hypervolume(&samples),
            });
        }

        let pts: Vec<Vec<f64>> = samples.iter().map(|s| s.objectives.clone()).collect();
        let pareto_indices = pareto_front(&pts);
        Ok(ExplorationResult {
            samples,
            pareto_indices,
            iterations,
            objective_names: evaluator.objective_names(),
            failures,
        })
    }

    /// Run only the random bootstrap phase — the paper's baseline.
    pub fn run_random_only<E: Evaluator>(&self, evaluator: &E) -> ExplorationResult {
        let reduced = HyperMapper {
            space: self.space.clone(),
            config: OptimizerConfig { max_iterations: 0, ..self.config.clone() },
        };
        reduced.run(evaluator)
    }

    /// Evaluate one phase's batch, validate every outcome, and append
    /// successes to `samples` / failures to `failures`. Returns the number
    /// of successes. Every attempted configuration is marked `evaluated`.
    #[allow(clippy::too_many_arguments)]
    fn eval_phase<E: Evaluator>(
        &self,
        evaluator: &E,
        configs: Vec<Configuration>,
        n_obj: usize,
        phase: Phase,
        evaluated: &mut HashSet<u64>,
        samples: &mut Vec<Sample>,
        failures: &mut Vec<FailureRecord>,
    ) -> usize {
        let outcomes = if self.config.eval_workers > 0 {
            ParallelBatchEvaluator::with_workers(evaluator, self.config.eval_workers)
                .try_evaluate_batch(&configs)
        } else {
            evaluator.try_evaluate_batch(&configs)
        };
        assert_eq!(outcomes.len(), configs.len(), "batch size mismatch");
        let mut successes = 0usize;
        for (config, outcome) in configs.into_iter().zip(outcomes) {
            evaluated.insert(self.space.flat_index(&config));
            match validate_objectives(outcome, n_obj) {
                Ok(objectives) => {
                    successes += 1;
                    samples.push(Sample { config, objectives, phase });
                }
                Err(error) => failures.push(FailureRecord { config, error, phase }),
            }
        }
        successes
    }

    /// One training dataset per objective from the samples so far; under
    /// [`FailurePolicy::ImputePenalty`], failed configurations are appended
    /// with penalty objectives so the surrogate learns to avoid them.
    fn datasets(
        &self,
        samples: &[Sample],
        failures: &[FailureRecord],
        n_obj: usize,
    ) -> Vec<Dataset> {
        let penalty = match self.config.failure_policy {
            FailurePolicy::Exclude => None,
            FailurePolicy::ImputePenalty { factor } => {
                penalty_objectives(samples, n_obj, factor)
            }
        };
        let imputed: &[FailureRecord] = if penalty.is_some() { failures } else { &[] };
        let rows = samples.len() + imputed.len();
        let mut datasets: Vec<Dataset> =
            (0..n_obj).map(|_| Dataset::with_capacity(self.space.n_params(), rows)).collect();
        let mut feat = Vec::with_capacity(self.space.n_params());
        for s in samples {
            feat.clear();
            self.space.write_features(&s.config, &mut feat);
            for (k, d) in datasets.iter_mut().enumerate() {
                d.push_row(&feat, s.objectives[k]);
            }
        }
        if let Some(penalty) = penalty {
            for f in imputed {
                feat.clear();
                self.space.write_features(&f.config, &mut feat);
                for (k, d) in datasets.iter_mut().enumerate() {
                    d.push_row(&feat, penalty[k]);
                }
            }
        }
        datasets
    }

    /// Fit the per-objective surrogate forests (two separate regressors in
    /// the paper: ATE and runtime).
    fn fit_forests(
        &self,
        samples: &[Sample],
        failures: &[FailureRecord],
        n_obj: usize,
    ) -> Vec<RandomForest> {
        self.datasets(samples, failures, n_obj)
            .iter()
            .enumerate()
            .map(|(k, d)| {
                let cfg = ForestConfig {
                    seed: self.config.forest.seed ^ ((k as u64 + 1) << 32) ^ self.config.seed,
                    ..self.config.forest.clone()
                };
                RandomForest::fit(d, &cfg)
            })
            .collect()
    }

    /// Predict all objectives over `pool` and return the configurations on
    /// the predicted Pareto front.
    fn predict_front(
        &self,
        forests: &[RandomForest],
        pool: &[Configuration],
        n_obj: usize,
    ) -> Vec<Configuration> {
        // Flat feature buffer for batch prediction.
        let mut rows = Vec::with_capacity(pool.len() * self.space.n_params());
        for c in pool {
            self.space.write_features(c, &mut rows);
        }
        // Fuse the per-objective forests into one compiled pool: the pool is
        // traversed once, scoring each candidate row against every objective
        // while the row is hot. Predictions are bit-identical to calling
        // `predict_batch` per forest.
        let compiled = CompiledForest::compile_multi(&forests.iter().collect::<Vec<_>>());
        let preds: Vec<Vec<f64>> = compiled.predict_batch_multi(&rows);

        let front = if n_obj == 2 {
            let pts: Vec<(f64, f64)> =
                (0..pool.len()).map(|i| (preds[0][i], preds[1][i])).collect();
            pareto_front_2d(&pts)
        } else {
            let pts: Vec<Vec<f64>> = (0..pool.len())
                .map(|i| preds.iter().map(|p| p[i]).collect())
                .collect();
            pareto_front(&pts)
        };
        front.into_iter().map(|i| pool[i].clone()).collect()
    }
}

/// Classify a raw evaluation outcome: arity and finiteness checks promote
/// bad `Ok` payloads to typed errors so the loop treats a NaN objective the
/// same way it treats a panic.
fn validate_objectives(
    outcome: Result<Vec<f64>, EvalError>,
    n_obj: usize,
) -> Result<Vec<f64>, EvalError> {
    let objectives = outcome?;
    if objectives.len() != n_obj {
        return Err(EvalError::WrongArity { expected: n_obj, got: objectives.len() });
    }
    for (k, &v) in objectives.iter().enumerate() {
        if !v.is_finite() {
            return Err(EvalError::non_finite(k, v));
        }
    }
    Ok(objectives)
}

/// Penalty objective vector for imputing failed configurations: per
/// objective, `worst + factor × (worst − best)` over the successful samples
/// (`worst + factor` when the span is zero). `None` when there are no
/// successes to anchor the penalty to.
fn penalty_objectives(samples: &[Sample], n_obj: usize, factor: f64) -> Option<Vec<f64>> {
    if samples.is_empty() {
        return None;
    }
    let mut penalty = Vec::with_capacity(n_obj);
    for k in 0..n_obj {
        let mut best = f64::INFINITY;
        let mut worst = f64::NEG_INFINITY;
        for s in samples {
            best = best.min(s.objectives[k]);
            worst = worst.max(s.objectives[k]);
        }
        let span = worst - best;
        penalty.push(if span > 0.0 { worst + factor * span } else { worst + factor });
    }
    Some(penalty)
}

/// Hypervolume of the measured front for bi-objective runs, using the
/// nadir of all samples as the reference point.
fn measured_hypervolume(samples: &[Sample]) -> f64 {
    if samples.is_empty() || samples[0].objectives.len() != 2 {
        return 0.0;
    }
    let pts: Vec<(f64, f64)> = samples.iter().map(|s| (s.objectives[0], s.objectives[1])).collect();
    let ref_x = pts.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let ref_y = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    hypervolume_2d(&pts, (ref_x, ref_y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::{CachedEvaluator, FnEvaluator};

    /// A deterministic, non-convex bi-objective toy problem.
    fn toy_space() -> ParamSpace {
        ParamSpace::builder()
            .ordinal("x", (0..40).map(|i| i as f64 * 0.25))
            .ordinal("y", (0..40).map(|i| i as f64 * 0.25))
            .ordinal("z", (0..4).map(f64::from))
            .build()
            .unwrap()
    }

    fn toy_evaluator() -> FnEvaluator<impl Fn(&Configuration) -> Vec<f64> + Sync> {
        FnEvaluator::new(2, |c| {
            let x = c.value_f64(0);
            let y = c.value_f64(1);
            let z = c.value_f64(2);
            // "runtime": cheap at small x, with multi-modal ripples.
            let runtime = 0.5 + x + (y * 1.7).sin().abs() * 2.0 + z * 0.1;
            // "error": decreases as x grows (accuracy/perf trade-off).
            let error = 10.0 - x * 0.9 + (y - 5.0).abs() * 0.3 + (z - 2.0).abs();
            vec![runtime, error]
        })
        .with_names(["runtime", "error"])
    }

    fn quick_config(seed: u64) -> OptimizerConfig {
        OptimizerConfig {
            random_samples: 60,
            max_iterations: 4,
            max_evals_per_iteration: 50,
            pool_size: 2000,
            forest: ForestConfig { n_trees: 20, ..Default::default() },
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn exploration_produces_nonempty_front() {
        let hm = HyperMapper::new(toy_space(), quick_config(1));
        let eval = toy_evaluator();
        let res = hm.run(&eval);
        assert!(!res.pareto_indices.is_empty());
        assert!(res.samples.len() >= 60);
        assert_eq!(res.objective_names, vec!["runtime", "error"]);
        // The front must be mutually non-dominating.
        let front = res.pareto_samples();
        for a in &front {
            for b in &front {
                assert!(!crate::pareto::dominates(&a.objectives, &b.objectives));
            }
        }
    }

    #[test]
    fn active_learning_extends_random_front() {
        let hm = HyperMapper::new(toy_space(), quick_config(7));
        let eval = toy_evaluator();
        let res = hm.run(&eval);
        let full_hv = measured_hypervolume(&res.samples);
        let randoms: Vec<Sample> = res.random_samples().cloned().collect();
        let rand_hv = measured_hypervolume(&randoms);
        // Hypervolume uses the run-wide nadir here, so recompute both with a
        // common reference.
        let pts_all: Vec<(f64, f64)> =
            res.samples.iter().map(|s| (s.objectives[0], s.objectives[1])).collect();
        let reference = (
            pts_all.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max),
            pts_all.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max),
        );
        let pts_rand: Vec<(f64, f64)> =
            randoms.iter().map(|s| (s.objectives[0], s.objectives[1])).collect();
        let hv_all = hypervolume_2d(&pts_all, reference);
        let hv_rand = hypervolume_2d(&pts_rand, reference);
        assert!(hv_all >= hv_rand, "active learning can only extend coverage");
        let _ = (full_hv, rand_hv);
    }

    #[test]
    fn deterministic_given_seed() {
        let eval = toy_evaluator();
        let r1 = HyperMapper::new(toy_space(), quick_config(42)).run(&eval);
        let r2 = HyperMapper::new(toy_space(), quick_config(42)).run(&eval);
        assert_eq!(r1.samples.len(), r2.samples.len());
        for (a, b) in r1.samples.iter().zip(&r2.samples) {
            assert_eq!(a.config, b.config);
            assert_eq!(a.objectives, b.objectives);
            assert_eq!(a.phase, b.phase);
        }
    }

    #[test]
    fn no_configuration_evaluated_twice() {
        let eval = toy_evaluator();
        let cached = CachedEvaluator::new(&eval);
        let res = HyperMapper::new(toy_space(), quick_config(3)).run(&cached);
        assert_eq!(cached.distinct_evaluations(), res.samples.len());
    }

    #[test]
    fn random_only_runs_no_iterations() {
        let eval = toy_evaluator();
        let res = HyperMapper::new(toy_space(), quick_config(5)).run_random_only(&eval);
        assert!(res.iterations.is_empty());
        assert_eq!(res.samples.len(), 60);
        assert!(res.active_samples().next().is_none());
    }

    #[test]
    fn phases_are_labeled() {
        let eval = toy_evaluator();
        let res = HyperMapper::new(toy_space(), quick_config(9)).run(&eval);
        assert_eq!(res.random_samples().count(), 60);
        for s in res.active_samples() {
            match s.phase {
                Phase::Active(i) => assert!(i >= 1 && i <= 4),
                Phase::Random => panic!("random sample in active iterator"),
            }
        }
    }

    #[test]
    fn max_evals_cap_respected() {
        let mut cfg = quick_config(11);
        cfg.max_evals_per_iteration = 10;
        let eval = toy_evaluator();
        let res = HyperMapper::new(toy_space(), cfg).run(&eval);
        for it in &res.iterations {
            assert!(it.new_evaluations <= 10);
        }
    }

    #[test]
    fn best_by_objective_and_valid_counts() {
        let eval = toy_evaluator();
        let res = HyperMapper::new(toy_space(), quick_config(13)).run(&eval);
        let fastest = res.best_by_objective(0).unwrap();
        for s in &res.samples {
            assert!(fastest.objectives[0] <= s.objectives[0]);
        }
        let (r, a) = res.valid_counts(1, 5.0);
        assert!(r + a <= res.samples.len());
    }

    #[test]
    fn hypervolume_nondecreasing_over_iterations() {
        let eval = toy_evaluator();
        let res = HyperMapper::new(toy_space(), quick_config(17)).run(&eval);
        let mut prev = 0.0f64;
        for it in &res.iterations {
            // Note: reference point shifts as worse samples arrive, so use a
            // loose check — the final HV must be at least the first.
            prev = prev.max(it.hypervolume);
        }
        if let (Some(first), Some(last)) = (res.iterations.first(), res.iterations.last()) {
            assert!(last.hypervolume >= first.hypervolume * 0.5);
        }
        let _ = prev;
    }

    #[test]
    fn single_objective_works() {
        let space = ParamSpace::builder()
            .ordinal("x", (0..100).map(f64::from))
            .build()
            .unwrap();
        let eval = FnEvaluator::new(1, |c| {
            let x = c.value_f64(0);
            vec![(x - 63.0).abs()]
        });
        let cfg = OptimizerConfig {
            random_samples: 10,
            max_iterations: 5,
            pool_size: 100,
            forest: ForestConfig { n_trees: 15, ..Default::default() },
            seed: 2,
            ..Default::default()
        };
        let res = HyperMapper::new(space, cfg).run(&eval);
        let best = res.best_by_objective(0).unwrap();
        // The optimum (x = 63) should be found or closely approached.
        assert!(best.objectives[0] <= 5.0, "best {:?}", best.objectives);
    }
}
