//! Bounded parallel batch scheduling for evaluators.
//!
//! [`ParallelBatchEvaluator`] fans one batch of configurations across a
//! bounded pool of OS worker threads while keeping the results — values,
//! ordering, and per-configuration failure records — bit-identical to the
//! sequential path. Workers pull configuration indices from a shared atomic
//! counter (so an expensive configuration never blocks the rest of the
//! batch behind a static partition) and every result is placed back into
//! the slot of the index it was taken from.
//!
//! Two properties make this safe to drop into an exploration:
//!
//! * **Determinism** — each configuration's evaluation is independent, so
//!   as long as the inner evaluator is deterministic per configuration, the
//!   batch result does not depend on worker count, scheduling order, or
//!   thread timing. `HyperMapper::try_run` produces bit-identical
//!   explorations with parallel evaluation on and off
//!   (`crates/core/tests/parallel_eval.rs`).
//! * **Oversubscription control** — SLAM pipelines are internally parallel
//!   (Rayon). By default each worker runs its evaluations inside a
//!   dedicated Rayon pool of `total_threads / workers` threads, so `w`
//!   concurrent pipeline evaluations use the same number of cores as one
//!   uncapped evaluation instead of `w ×` oversubscribing the machine.
//!   Pools are leased from a process-wide registry rather than rebuilt per
//!   batch, and the calling thread works a slot itself instead of parking,
//!   so the per-batch dispatch cost is `workers − 1` thread spawns and
//!   nothing else.
//!
//! Cheap batches are not worth even that: [`with_cost_hint_ns`]
//! (`ParallelBatchEvaluator::with_cost_hint_ns`) declares an estimated
//! per-configuration cost, and batches whose projected saving cannot pay
//! the projected dispatch overhead fall back to the sequential path — same
//! values, same order, no threads.
//!
//! What this wrapper does **not** make safe is wall-clock measurement:
//! configurations timed while sharing the machine with `w − 1` siblings
//! report contended numbers. Use it with throughput-mode (work-proxy)
//! evaluators and re-measure the surviving Pareto front serially in timing
//! mode — see `slambench::MeasurementMode` and DESIGN §9.
//!
//! Composition: wrap the full per-configuration stack, e.g.
//! `ParallelBatchEvaluator::new(&CachedEvaluator::new(&ResilientEvaluator::new(&inner, policy)))`
//! — the scheduler only distributes per-configuration `try_evaluate` calls,
//! so retry, deadline, and in-flight-dedup semantics are unchanged.

use crate::error::EvalError;
use crate::evaluate::{Evaluator, FailedEvaluation};
use crate::space::Configuration;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default worker count: the machine's available parallelism (1 when it
/// cannot be determined).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Process-wide registry of leased inner Rayon pools, keyed by
/// `(threads, worker slot)`.
///
/// Building a Rayon pool spawns OS threads — done per batch (as the first
/// version of this scheduler did) that setup cost dominated cheap
/// workloads and produced the `batch_compute_parallel_8cfg` regression
/// recorded in `BENCH_surrogate.json`. Pools are instead built on first
/// use and retained for the life of the process; the key includes the
/// worker slot so concurrent workers never serialize on one shared pool,
/// and the thread count so a reconfigured evaluator gets right-sized pools.
/// The registry is bounded in practice by `workers × distinct thread
/// counts`, both small (≤ machine cores).
///
/// A plain `std::sync::Mutex` guards the registry: it is held only for the
/// lookup/insert, never across an evaluation, and lock poisoning is
/// recovered from because a panicking evaluation elsewhere must not wedge
/// later batches.
fn leased_pool(threads: usize, slot: usize) -> Option<Arc<rayon::ThreadPool>> {
    type Registry = Mutex<Vec<((usize, usize), Arc<rayon::ThreadPool>)>>;
    static POOLS: OnceLock<Registry> = OnceLock::new();
    let mut pools = POOLS
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    if let Some((_, pool)) = pools.iter().find(|((t, s), _)| *t == threads && *s == slot) {
        return Some(Arc::clone(pool));
    }
    let pool = Arc::new(
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .ok()?,
    );
    pools.push(((threads, slot), Arc::clone(&pool)));
    Some(pool)
}

/// Fan batches of evaluations across a bounded pool of OS worker threads
/// with deterministic result ordering (see the module docs).
///
/// Single-configuration calls ([`Evaluator::evaluate`],
/// [`Evaluator::try_evaluate`]) delegate straight to the inner evaluator —
/// only batches are scheduled.
pub struct ParallelBatchEvaluator<'a, E: Evaluator> {
    inner: &'a E,
    workers: usize,
    cap_inner_parallelism: bool,
    /// Caller-supplied per-configuration cost estimate, in nanoseconds;
    /// feeds the auto-sequential heuristic. `None` means "assume the work
    /// is worth dispatching".
    est_eval_ns: Option<u64>,
}

impl<'a, E: Evaluator> ParallelBatchEvaluator<'a, E> {
    /// Wrap `inner` with one worker per available core.
    pub fn new(inner: &'a E) -> Self {
        Self::with_workers(inner, default_workers())
    }

    /// Wrap `inner` with an explicit worker count (clamped to ≥ 1).
    /// `workers == 1` forces strictly sequential batches.
    pub fn with_workers(inner: &'a E, workers: usize) -> Self {
        ParallelBatchEvaluator {
            inner,
            workers: workers.max(1),
            cap_inner_parallelism: true,
            est_eval_ns: None,
        }
    }

    /// Declare a rough per-configuration evaluation cost, enabling the
    /// auto-sequential heuristic: a batch whose projected parallel saving
    /// (`total − total / workers`) does not clear the projected dispatch
    /// bill ([`Self::DISPATCH_OVERHEAD_NS`] per worker) runs on the calling
    /// thread instead of fanning out. Values and ordering are identical
    /// either way — the hint only moves the parallel/sequential crossover,
    /// so a wildly wrong estimate costs wall-clock, never correctness. The
    /// estimate is the caller's (from a model or prior measurement); the
    /// scheduler itself never reads a clock outside timing contexts.
    pub fn with_cost_hint_ns(mut self, est_eval_ns: u64) -> Self {
        self.est_eval_ns = Some(est_eval_ns);
        self
    }

    /// Disable the per-worker Rayon pool cap: inner evaluations share the
    /// global Rayon pool instead. Useful when the inner evaluator is known
    /// to be single-threaded (analytic models, closures) and pool setup
    /// would be pure overhead.
    pub fn without_inner_cap(mut self) -> Self {
        self.cap_inner_parallelism = false;
        self
    }

    /// The bounded worker count used for batches.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Dispatch cost the auto-sequential heuristic charges per worker: an
    /// OS thread spawn + join and the first-touch of a leased Rayon pool,
    /// tens of microseconds on commodity Linux. Deliberately a fixed
    /// constant, not a measurement — the heuristic must be a pure function
    /// of its inputs so batch placement (and therefore any timing observed
    /// through it) is reproducible run to run.
    pub const DISPATCH_OVERHEAD_NS: u64 = 50_000;

    /// Workers a batch of `n` will actually use: `workers.min(n)`, dropped
    /// to 1 when the cost hint says the parallel saving cannot pay for the
    /// dispatch overhead.
    fn effective_workers(&self, n: usize) -> usize {
        let workers = self.workers.min(n);
        if workers > 1 {
            if let Some(est) = self.est_eval_ns {
                let total = est.saturating_mul(n as u64);
                let saved = total.saturating_sub(total / workers as u64);
                if saved <= Self::DISPATCH_OVERHEAD_NS.saturating_mul(workers as u64) {
                    return 1;
                }
            }
        }
        workers
    }

    /// Run `f(i)` for every `i < n` across the worker pool and return the
    /// results in index order. Results are bit-identical to the sequential
    /// `(0..n).map(f)` for any per-index-deterministic `f`.
    fn fan_out<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.fan_out_observed(n, f, None)
    }

    /// [`fan_out`](Self::fan_out) with an optional completion observer:
    /// `observe(i, &result)` fires on the worker thread the moment index
    /// `i`'s evaluation finishes, in *completion* order (any interleaving).
    /// The returned vector is still in index order and still bit-identical
    /// to the sequential path — observers see results, never change them.
    /// This is the hook the write-ahead journal uses to persist batch
    /// results mid-flight instead of only at the batch barrier.
    fn fan_out_observed<T, F>(
        &self,
        n: usize,
        f: F,
        observe: Option<&(dyn Fn(usize, &T) + Sync)>,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.effective_workers(n);
        if workers <= 1 {
            return (0..n)
                .map(|i| {
                    let out = f(i);
                    if let Some(obs) = observe {
                        obs(i, &out);
                    }
                    out
                })
                .collect();
        }
        // Cap nested Rayon parallelism: give each worker a dedicated pool
        // of `total / workers` threads so `workers` concurrent internally-
        // parallel evaluations cannot oversubscribe the machine. Pools are
        // leased from the process-wide registry (see [`leased_pool`]), so
        // after the first batch the handoff costs no pool construction.
        let inner_threads = if self.cap_inner_parallelism {
            (rayon::current_num_threads() / workers).max(1)
        } else {
            0
        };
        let next = AtomicUsize::new(0);
        // One worker loop per slot; the calling thread runs slot 0 itself
        // (one fewer spawn, and the caller contributes instead of parking
        // at the join barrier).
        let run_worker = |slot: usize| {
            let pool = (inner_threads > 0)
                .then(|| leased_pool(inner_threads, slot))
                .flatten();
            let mut local = Vec::new();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = match &pool {
                    Some(p) => p.install(|| f(i)),
                    None => f(i),
                };
                if let Some(obs) = observe {
                    obs(i, &out);
                }
                local.push((i, out));
            }
            local
        };
        let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
            let run_worker = &run_worker;
            let handles: Vec<_> = (1..workers)
                .map(|slot| scope.spawn(move || run_worker(slot)))
                .collect();
            let mut all = vec![run_worker(0)];
            all.extend(
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p))),
            );
            all
        });
        // Every index below `n` is handed out exactly once by the fetch_add
        // above and the scope joins every worker, so the pairs are a
        // permutation of 0..n — a sort restores slot order with no
        // unreachable!-guarded placeholder slots.
        let mut pairs: Vec<(usize, T)> = per_worker.into_iter().flatten().collect();
        debug_assert_eq!(pairs.len(), n, "claimed indices must cover the batch");
        pairs.sort_unstable_by_key(|&(i, _)| i);
        pairs.into_iter().map(|(_, v)| v).collect()
    }

    /// Detailed batch evaluation with a completion observer. `observe(i,
    /// &outcome)` fires per configuration as it completes (completion
    /// order); the returned vector is in index order, bit-identical to the
    /// sequential path. This is the journaling entry point: the observer
    /// appends each outcome to the write-ahead log mid-batch, so a kill
    /// between batch start and batch end loses only the evaluations that
    /// had not yet finished.
    pub fn try_evaluate_batch_detailed_observed(
        &self,
        configs: &[Configuration],
        observe: &(dyn Fn(usize, &Result<Vec<f64>, FailedEvaluation>) + Sync),
    ) -> Vec<Result<Vec<f64>, FailedEvaluation>> {
        self.fan_out_observed(
            configs.len(),
            |i| self.inner.try_evaluate_detailed(&configs[i]),
            Some(observe),
        )
    }
}

impl<E: Evaluator> Evaluator for ParallelBatchEvaluator<'_, E> {
    fn n_objectives(&self) -> usize {
        self.inner.n_objectives()
    }
    fn objective_names(&self) -> Vec<String> {
        self.inner.objective_names()
    }
    fn evaluate(&self, config: &Configuration) -> Vec<f64> {
        self.inner.evaluate(config)
    }
    fn evaluate_batch(&self, configs: &[Configuration]) -> Vec<Vec<f64>> {
        self.fan_out(configs.len(), |i| self.inner.evaluate(&configs[i]))
    }
    fn try_evaluate(&self, config: &Configuration) -> Result<Vec<f64>, EvalError> {
        self.inner.try_evaluate(config)
    }
    /// Fallible batch: one configuration's failure is returned in its own
    /// slot and never affects its batch siblings, exactly as in the
    /// sequential path.
    fn try_evaluate_batch(&self, configs: &[Configuration]) -> Vec<Result<Vec<f64>, EvalError>> {
        self.fan_out(configs.len(), |i| self.inner.try_evaluate(&configs[i]))
    }
    fn try_evaluate_detailed(
        &self,
        config: &Configuration,
    ) -> Result<Vec<f64>, FailedEvaluation> {
        self.inner.try_evaluate_detailed(config)
    }
    /// Detailed batch: scheduled like [`Evaluator::try_evaluate_batch`],
    /// but each slot keeps the inner evaluator's retry metadata.
    fn try_evaluate_batch_detailed(
        &self,
        configs: &[Configuration],
    ) -> Vec<Result<Vec<f64>, FailedEvaluation>> {
        self.fan_out(configs.len(), |i| self.inner.try_evaluate_detailed(&configs[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::{CachedEvaluator, FnEvaluator};
    use crate::space::ParamSpace;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn space() -> ParamSpace {
        ParamSpace::builder()
            .ordinal("x", (0..64).map(f64::from))
            .build()
            .unwrap()
    }

    #[test]
    fn batch_matches_sequential_values_and_order() {
        let s = space();
        let e = FnEvaluator::new(2, |c| {
            let x = c.value_f64(0);
            vec![x * 1.5, (x * 0.37).sin()]
        });
        let configs: Vec<_> = (0..64).map(|i| s.config_at(i)).collect();
        let sequential: Vec<_> = configs.iter().map(|c| e.try_evaluate(c)).collect();
        for workers in [1, 2, 3, 7, 16, 100] {
            let par = ParallelBatchEvaluator::with_workers(&e, workers);
            assert_eq!(par.try_evaluate_batch(&configs), sequential, "workers={workers}");
            assert_eq!(
                par.evaluate_batch(&configs),
                sequential.iter().map(|r| r.clone().unwrap()).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn failures_stay_in_their_own_slots() {
        let s = space();
        let e = FnEvaluator::new(1, |c| {
            let x = c.value_f64(0);
            assert!(x as usize % 5 != 3, "boom at {x}");
            vec![x]
        });
        let configs: Vec<_> = (0..40).map(|i| s.config_at(i)).collect();
        let par = ParallelBatchEvaluator::with_workers(&e, 4);
        let out = par.try_evaluate_batch(&configs);
        assert_eq!(out.len(), 40);
        for (i, r) in out.iter().enumerate() {
            if i % 5 == 3 {
                assert!(matches!(r, Err(EvalError::Panicked { .. })), "slot {i}: {r:?}");
            } else {
                assert_eq!(r, &Ok(vec![i as f64]), "slot {i}");
            }
        }
    }

    #[test]
    fn workers_accessor_and_clamping() {
        let e = FnEvaluator::new(1, |c| vec![c.value_f64(0)]);
        assert_eq!(ParallelBatchEvaluator::with_workers(&e, 0).workers(), 1);
        assert_eq!(ParallelBatchEvaluator::with_workers(&e, 5).workers(), 5);
        assert!(ParallelBatchEvaluator::new(&e).workers() >= 1);
    }

    #[test]
    fn single_config_calls_delegate() {
        let s = space();
        let e = FnEvaluator::new(1, |c| vec![c.value_f64(0) + 1.0]);
        let par = ParallelBatchEvaluator::with_workers(&e, 8);
        assert_eq!(par.evaluate(&s.config_at(3)), vec![4.0]);
        assert_eq!(par.try_evaluate(&s.config_at(3)), Ok(vec![4.0]));
        assert_eq!(par.n_objectives(), 1);
    }

    #[test]
    fn composes_with_cached_evaluator_in_flight_dedup() {
        // Parallel workers racing on duplicate uncached configurations must
        // still run the inner evaluator exactly once per distinct config.
        let s = space();
        let calls = AtomicUsize::new(0);
        let e = FnEvaluator::new(1, |c| {
            calls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(std::time::Duration::from_millis(1));
            vec![c.value_f64(0)]
        });
        let cached = CachedEvaluator::with_space(&e, &s);
        let par = ParallelBatchEvaluator::with_workers(&cached, 6).without_inner_cap();
        let configs: Vec<_> = (0..48).map(|i| s.config_at(i % 4)).collect();
        let out = par.try_evaluate_batch(&configs);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r, &Ok(vec![(i % 4) as f64]));
        }
        assert_eq!(calls.load(Ordering::Relaxed), 4, "duplicated inner work");
        assert_eq!(cached.distinct_evaluations(), 4);
    }

    #[test]
    fn cost_hint_parity_and_crossover() {
        let s = space();
        let e = FnEvaluator::new(2, |c| {
            let x = c.value_f64(0);
            vec![x * 1.5, (x * 0.37).sin()]
        });
        let configs: Vec<_> = (0..32).map(|i| s.config_at(i)).collect();
        let unhinted = ParallelBatchEvaluator::with_workers(&e, 8);
        let baseline = unhinted.try_evaluate_batch(&configs);
        // Same seedless deterministic evaluator, any hint: bit-identical
        // results whether the heuristic picks sequential (tiny estimate),
        // parallel (huge estimate), or is absent.
        for hint_ns in [1, 1_000, u64::MAX / (1 << 20)] {
            let hinted =
                ParallelBatchEvaluator::with_workers(&e, 8).with_cost_hint_ns(hint_ns);
            assert_eq!(hinted.try_evaluate_batch(&configs), baseline, "hint={hint_ns}");
        }

        // The crossover itself: below-threshold work sequentializes, heavy
        // work keeps its workers.
        let cheap = ParallelBatchEvaluator::with_workers(&e, 8).with_cost_hint_ns(1_000);
        assert_eq!(cheap.effective_workers(32), 1);
        let heavy =
            ParallelBatchEvaluator::with_workers(&e, 8).with_cost_hint_ns(10_000_000);
        assert_eq!(heavy.effective_workers(32), 8);
        assert_eq!(unhinted.effective_workers(32), 8, "no hint, no heuristic");
        // A single-config batch never dispatches regardless of hints.
        assert_eq!(heavy.effective_workers(1), 1);
    }

    #[test]
    fn leased_pools_are_reused_across_batches() {
        let p1 = leased_pool(2, 0).expect("pool builds");
        let p2 = leased_pool(2, 0).expect("pool lookup");
        assert!(Arc::ptr_eq(&p1, &p2), "same (threads, slot) key must share one pool");
        let other_slot = leased_pool(2, 1).expect("pool builds");
        assert!(!Arc::ptr_eq(&p1, &other_slot), "slots must not serialize on one pool");
    }

    #[test]
    fn empty_batch_is_empty() {
        let e = FnEvaluator::new(1, |c| vec![c.value_f64(0)]);
        let par = ParallelBatchEvaluator::with_workers(&e, 4);
        assert!(par.try_evaluate_batch(&[]).is_empty());
        assert!(par.evaluate_batch(&[]).is_empty());
    }

    #[test]
    fn infallible_batch_propagates_panics() {
        let s = space();
        let e = FnEvaluator::new(1, |c| {
            if c.value_f64(0) == 2.0 {
                panic!("injected panic for scheduler test");
            }
            vec![c.value_f64(0)]
        });
        let par = ParallelBatchEvaluator::with_workers(&e, 3);
        let configs: Vec<_> = (0..8).map(|i| s.config_at(i)).collect();
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par.evaluate_batch(&configs)
        }));
        assert!(out.is_err(), "sequential semantics: a panicking config panics the batch");
    }
}
