//! # HyperMapper-RS
//!
//! A from-scratch Rust reproduction of **HyperMapper** — the multi-objective,
//! random-forest, active-learning design-space-exploration framework of
//! Nardi et al., *"Algorithmic Performance-Accuracy Trade-off in 3D Vision
//! Applications Using HyperMapper"* (iWAPT 2017) and Bodin et al. (PACT
//! 2016).
//!
//! The workflow mirrors Algorithm 1 of the paper:
//!
//! 1. draw `rs` distinct random configurations from the parameter space and
//!    evaluate them on the target (hardware, simulator, or any black box),
//! 2. fit one [`randforest::RandomForest`] per objective,
//! 3. predict every objective over the (sub-sampled) configuration pool and
//!    compute the **predicted** Pareto front,
//! 4. evaluate the predicted-Pareto configurations that have not been run
//!    yet, add them to the training set, and repeat until the predicted
//!    front is fully evaluated (or an iteration cap is reached).
//!
//! The crate is application-agnostic: anything implementing [`Evaluator`]
//! can be explored. The SLAM use cases from the paper live in the
//! `slambench` crate.
//!
//! ```
//! use hypermapper::{Evaluator, HyperMapper, OptimizerConfig, ParamSpace};
//!
//! // A toy 2-objective problem over a 2-parameter space.
//! let space = ParamSpace::builder()
//!     .ordinal("x", (0..=20).map(|i| i as f64 * 0.1))
//!     .ordinal("y", (0..=20).map(|i| i as f64 * 0.1))
//!     .build()
//!     .unwrap();
//!
//! struct Toy;
//! impl Evaluator for Toy {
//!     fn n_objectives(&self) -> usize { 2 }
//!     fn evaluate(&self, config: &hypermapper::Configuration) -> Vec<f64> {
//!         let x = config.value_f64(0);
//!         let y = config.value_f64(1);
//!         vec![x * x + y, (x - 2.0) * (x - 2.0) + y * y]
//!     }
//! }
//!
//! let config = OptimizerConfig { random_samples: 30, seed: 1, ..Default::default() };
//! let result = HyperMapper::new(space, config).run(&Toy);
//! assert!(!result.pareto_indices.is_empty());
//! ```

pub mod analysis;
pub mod doe;
pub mod error;
pub mod evaluate;
pub mod faults;
pub mod journal;
pub mod optimizer;
pub mod pareto;
pub mod param;
pub mod resilient;
pub mod scheduler;
pub mod space;

pub use analysis::{pearson, spearman, ParamImportance};
pub use doe::{sample_distinct, sample_distinct_where};
pub use error::{EvalError, HmError};
pub use evaluate::{catch_eval, CachedEvaluator, Evaluator, FailedEvaluation, FnEvaluator};
pub use faults::{
    silence_injected_panics, Fault, FaultCounts, FaultInjectingEvaluator, FaultPlan,
};
pub use journal::{Journal, LeaseRecord, RawOutcome, SyncPolicy};
pub use optimizer::{
    ExplorationResult, FailurePolicy, FailureRecord, HyperMapper, IterationStats,
    OptimizerConfig, Phase, Sample, EVAL_CHUNK,
};
pub use resilient::{FailureLogEntry, ResilientEvaluator, RetryPolicy};
// Surrogate prediction engine types, re-exported so optimizer-facing code
// can reason about the quantized/fallback split and the lossy prediction
// cache without depending on `randforest` directly.
pub use randforest::{CompiledSurrogate, PredictionCache, QuantizeError, QuantizedForest};
pub use scheduler::{default_workers, ParallelBatchEvaluator};
pub use pareto::{dominates, hypervolume_2d, pareto_front, pareto_front_2d, IncrementalFront};
pub use param::{Domain, ParamDef};
pub use space::{ConfigStream, Configuration, ParamSpace, SpaceBuilder};
