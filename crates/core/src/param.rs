//! Parameter definitions.

use serde::{Deserialize, Serialize};

/// The domain of a single tunable parameter.
///
/// HyperMapper explores *finite* algorithmic spaces (the paper's KFusion
/// space has ~1.8 M points, ElasticFusion ~450 K), so every domain is an
/// explicit finite set; a configuration stores one choice index per
/// parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Domain {
    /// Ordered numeric values, e.g. `µ ∈ {0.0125, 0.025, …}`. Order matters
    /// to the surrogate model (the feature is the numeric value itself).
    Ordinal(Vec<f64>),
    /// Unordered labeled alternatives, e.g. an implementation choice.
    /// Encoded for the surrogate by choice index.
    Categorical(Vec<String>),
    /// A binary flag (ElasticFusion's SO3 / open-loop / relocalisation /
    /// fast-odometry / frame-to-frame-RGB switches).
    Boolean,
}

impl Domain {
    /// Number of possible choices.
    pub fn cardinality(&self) -> usize {
        match self {
            Domain::Ordinal(v) => v.len(),
            Domain::Categorical(v) => v.len(),
            Domain::Boolean => 2,
        }
    }

    /// Numeric value of choice `idx` as fed to the surrogate model
    /// (before any log transform).
    pub fn numeric_value(&self, idx: usize) -> f64 {
        match self {
            Domain::Ordinal(v) => v[idx],
            Domain::Categorical(_) => idx as f64,
            Domain::Boolean => idx as f64,
        }
    }

    /// Human-readable form of choice `idx`.
    pub fn label(&self, idx: usize) -> String {
        match self {
            Domain::Ordinal(v) => format!("{}", v[idx]),
            Domain::Categorical(v) => v[idx].clone(),
            Domain::Boolean => if idx == 1 { "true".into() } else { "false".into() },
        }
    }

    /// Index of the ordinal value closest to `x` (panics on empty domain,
    /// which the builder prevents). For categorical/boolean domains, `x`
    /// is treated as an index.
    pub fn nearest_index(&self, x: f64) -> usize {
        match self {
            Domain::Ordinal(v) => {
                let mut best = 0;
                let mut best_d = f64::INFINITY;
                for (i, &val) in v.iter().enumerate() {
                    let d = (val - x).abs();
                    if d < best_d {
                        best_d = d;
                        best = i;
                    }
                }
                best
            }
            _ => (x.round().max(0.0) as usize).min(self.cardinality() - 1),
        }
    }
}

/// A named parameter with its domain and feature-encoding hint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamDef {
    /// Unique name, e.g. `"volume-resolution"`.
    pub name: String,
    /// Set of allowed values.
    pub domain: Domain,
    /// When true the surrogate feature is `log10(value)` — appropriate for
    /// parameters spanning orders of magnitude (µ, the ICP threshold).
    pub log_feature: bool,
}

impl ParamDef {
    /// Surrogate feature value for choice `idx`.
    pub fn feature(&self, idx: usize) -> f64 {
        let v = self.domain.numeric_value(idx);
        if self.log_feature {
            // Guard against log(0): clamp to a tiny positive value.
            v.max(1e-300).log10()
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities() {
        assert_eq!(Domain::Ordinal(vec![1.0, 2.0, 3.0]).cardinality(), 3);
        assert_eq!(Domain::Categorical(vec!["a".into(), "b".into()]).cardinality(), 2);
        assert_eq!(Domain::Boolean.cardinality(), 2);
    }

    #[test]
    fn numeric_values_and_labels() {
        let d = Domain::Ordinal(vec![0.5, 1.5]);
        assert_eq!(d.numeric_value(1), 1.5);
        assert_eq!(d.label(0), "0.5");
        let c = Domain::Categorical(vec!["foo".into(), "bar".into()]);
        assert_eq!(c.numeric_value(1), 1.0);
        assert_eq!(c.label(1), "bar");
        assert_eq!(Domain::Boolean.label(1), "true");
        assert_eq!(Domain::Boolean.label(0), "false");
    }

    #[test]
    fn nearest_index_ordinal() {
        let d = Domain::Ordinal(vec![1.0, 2.0, 4.0, 8.0]);
        assert_eq!(d.nearest_index(0.0), 0);
        assert_eq!(d.nearest_index(2.4), 1);
        assert_eq!(d.nearest_index(3.1), 2);
        assert_eq!(d.nearest_index(100.0), 3);
    }

    #[test]
    fn nearest_index_bool_clamps() {
        assert_eq!(Domain::Boolean.nearest_index(-3.0), 0);
        assert_eq!(Domain::Boolean.nearest_index(0.6), 1);
        assert_eq!(Domain::Boolean.nearest_index(9.0), 1);
    }

    #[test]
    fn log_feature_encoding() {
        let p = ParamDef {
            name: "icp-threshold".into(),
            domain: Domain::Ordinal(vec![1e-6, 1e-3, 1e-1]),
            log_feature: true,
        };
        assert!((p.feature(0) - (-6.0)).abs() < 1e-9);
        assert!((p.feature(2) - (-1.0)).abs() < 1e-9);
        let linear = ParamDef { name: "x".into(), domain: Domain::Ordinal(vec![5.0]), log_feature: false };
        assert_eq!(linear.feature(0), 5.0);
    }
}
