//! Retry/deadline hardening for fallible evaluators.
//!
//! [`ResilientEvaluator`] wraps any [`Evaluator`] and applies a
//! per-configuration failure policy before errors reach the optimizer:
//! transient failures are retried a bounded number of times with
//! deterministic exponential backoff, slow evaluations are reported as
//! [`EvalError::Timeout`], and every failed attempt is appended to an
//! inspectable failure log.

use crate::error::EvalError;
use crate::evaluate::{Evaluator, FailedEvaluation};
use crate::space::Configuration;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Default bound on the failure log (entries, not configurations).
pub const DEFAULT_LOG_CAPACITY: usize = 4096;

/// Retry and deadline policy for [`ResilientEvaluator`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum number of *re*-attempts after a [`EvalError::Transient`]
    /// failure (0 disables retries). Non-transient errors are never
    /// retried: panics, NaNs, and divergences are deterministic properties
    /// of the configuration.
    pub max_retries: usize,
    /// Base backoff slept before retry `k` (1-based): `base × 2^(k−1)`,
    /// capped at [`RetryPolicy::max_backoff`]. The schedule is a pure
    /// function of the attempt number, so reruns are deterministic.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_backoff: Duration,
    /// Per-configuration wall-clock budget across all attempts, *backoff
    /// sleeps included*, or `None` for unlimited. The deadline is enforced
    /// *cooperatively*: the running attempt is not preempted (that would
    /// require process isolation), but an attempt that finishes past the
    /// deadline is reported as [`EvalError::Timeout`] and its result
    /// discarded, and a retry whose backoff sleep would exhaust the
    /// remaining budget is never started — the backoff schedule cannot
    /// overshoot the deadline.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
            deadline: None,
        }
    }
}

impl RetryPolicy {
    /// The backoff slept before 1-based retry `k`.
    pub fn backoff(&self, k: usize) -> Duration {
        let factor = 1u32 << (k - 1).min(16) as u32;
        self.backoff_base
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

/// One failed attempt, as recorded in the failure log.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureLogEntry {
    /// Choice vector of the configuration that failed (stable across runs,
    /// cheaper than cloning the full [`Configuration`]).
    pub choices: Vec<u32>,
    /// 1-based attempt number that produced this failure.
    pub attempt: usize,
    /// What went wrong.
    pub error: EvalError,
    /// Wall-clock spent on this configuration so far (all attempts up to
    /// and including this one), in milliseconds.
    pub elapsed_ms: u64,
}

/// Fault-tolerance wrapper: bounded retry for transient failures, a
/// cooperative per-configuration deadline, and a failure log.
///
/// Stacking order with [`crate::CachedEvaluator`] matters: wrap the
/// resilient evaluator *inside* the cache
/// (`CachedEvaluator::new(&ResilientEvaluator::new(&inner, policy))`) so the
/// cache stores post-retry outcomes. Under
/// [`crate::scheduler::ParallelBatchEvaluator`] this wrapper goes *inside*
/// the scheduler: retries, backoff, and the cooperative deadline are all
/// per-configuration state driven through `try_evaluate`, so each worker
/// carries them independently and the failure log records the same attempts
/// it would sequentially (log *order* across configurations follows
/// completion time, as documented for batches).
pub struct ResilientEvaluator<'a, E: Evaluator> {
    inner: &'a E,
    policy: RetryPolicy,
    /// Bounded ring buffer: when full, the *oldest* entry is dropped (and
    /// counted in `dropped`) — a week-long fault-heavy run keeps its most
    /// recent failures inspectable at constant memory.
    log: Mutex<VecDeque<FailureLogEntry>>,
    log_capacity: usize,
    dropped: AtomicUsize,
    retries: AtomicUsize,
    timeouts: AtomicUsize,
}

impl<'a, E: Evaluator> ResilientEvaluator<'a, E> {
    /// Wrap `inner` under `policy`, with the failure log bounded at
    /// [`DEFAULT_LOG_CAPACITY`] entries.
    pub fn new(inner: &'a E, policy: RetryPolicy) -> Self {
        ResilientEvaluator {
            inner,
            policy,
            log: Mutex::new(VecDeque::new()),
            log_capacity: DEFAULT_LOG_CAPACITY,
            dropped: AtomicUsize::new(0),
            retries: AtomicUsize::new(0),
            timeouts: AtomicUsize::new(0),
        }
    }

    /// Bound the failure log at `capacity` entries (`0` disables logging
    /// entirely — every entry counts as dropped).
    pub fn with_log_capacity(mut self, capacity: usize) -> Self {
        self.log_capacity = capacity;
        self
    }

    /// The active policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// The retained failed attempts, oldest first. Under log pressure this
    /// is a suffix of the full history — see
    /// [`ResilientEvaluator::dropped_log_entries`].
    pub fn failure_log(&self) -> Vec<FailureLogEntry> {
        self.log.lock().unwrap_or_else(|e| e.into_inner()).iter().cloned().collect()
    }

    /// The configured failure-log bound.
    pub fn log_capacity(&self) -> usize {
        self.log_capacity
    }

    /// Number of failure-log entries evicted (or never stored, when the
    /// capacity is 0) because the ring buffer was full.
    pub fn dropped_log_entries(&self) -> usize {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of retry attempts performed (not configurations retried).
    pub fn retries(&self) -> usize {
        self.retries.load(Ordering::Relaxed)
    }

    /// Number of evaluations that blew their deadline.
    pub fn timeouts(&self) -> usize {
        self.timeouts.load(Ordering::Relaxed)
    }

    fn record(&self, config: &Configuration, attempt: usize, error: &EvalError, elapsed: Duration) {
        let mut log = self.log.lock().unwrap_or_else(|e| e.into_inner());
        if self.log_capacity == 0 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if log.len() >= self.log_capacity {
            log.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        log.push_back(FailureLogEntry {
            choices: config.choices().to_vec(),
            attempt,
            error: error.clone(),
            elapsed_ms: elapsed.as_millis() as u64,
        });
    }
}

impl<E: Evaluator> Evaluator for ResilientEvaluator<'_, E> {
    fn n_objectives(&self) -> usize {
        self.inner.n_objectives()
    }
    fn objective_names(&self) -> Vec<String> {
        self.inner.objective_names()
    }
    /// Infallible view: panics with the final error when every attempt
    /// fails. Prefer [`Evaluator::try_evaluate`].
    fn evaluate(&self, config: &Configuration) -> Vec<f64> {
        match self.try_evaluate(config) {
            Ok(v) => v,
            // lint: allow(no-unaudited-panic): documented panicking bridge; fallible callers use try_evaluate
            Err(e) => panic!("evaluation failed after retries: {e}"),
        }
    }
    fn try_evaluate(&self, config: &Configuration) -> Result<Vec<f64>, EvalError> {
        self.try_evaluate_detailed(config).map_err(EvalError::from)
    }
    /// The full retry story: the final error plus the real attempt count
    /// and wall-clock across attempts (the plain [`Evaluator::try_evaluate`]
    /// view drops them).
    fn try_evaluate_detailed(
        &self,
        config: &Configuration,
    ) -> Result<Vec<f64>, FailedEvaluation> {
        let clock = hm_timing::Stopwatch::start();
        let mut attempt = 1usize;
        loop {
            let result = self.inner.try_evaluate(config);
            let elapsed = clock.elapsed();
            let overdue = self
                .policy
                .deadline
                .filter(|d| elapsed > *d)
                .map(|d| EvalError::timeout(elapsed, d));
            let fail = |error: EvalError| FailedEvaluation {
                error,
                attempts: attempt as u32,
                elapsed_ms: elapsed.as_millis() as u64,
            };
            match (result, overdue) {
                // A result that lands past the deadline is discarded: the
                // configuration's budget is spent either way, and treating
                // late successes as failures keeps timeout accounting
                // independent of what the evaluator happened to return.
                (_, Some(timeout)) => {
                    self.timeouts.fetch_add(1, Ordering::Relaxed);
                    self.record(config, attempt, &timeout, elapsed);
                    return Err(fail(timeout));
                }
                (Ok(v), None) => return Ok(v),
                (Err(e), None) => {
                    self.record(config, attempt, &e, elapsed);
                    if !e.is_retryable() || attempt > self.policy.max_retries {
                        return Err(fail(e));
                    }
                    // The deadline spans *all* attempts, backoff included: a
                    // retry whose backoff sleep alone would exhaust the
                    // remaining budget is not started — the configuration
                    // times out now instead of overshooting the deadline
                    // asleep and timing out later anyway.
                    let backoff = self.policy.backoff(attempt);
                    if let Some(d) = self.policy.deadline {
                        if elapsed + backoff >= d {
                            let timeout = EvalError::timeout(elapsed, d);
                            self.timeouts.fetch_add(1, Ordering::Relaxed);
                            self.record(config, attempt, &timeout, elapsed);
                            return Err(fail(timeout));
                        }
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(backoff);
                    attempt += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::FnEvaluator;
    use crate::space::ParamSpace;
    use std::time::Instant;

    fn space() -> ParamSpace {
        ParamSpace::builder()
            .ordinal("x", (0..10).map(f64::from))
            .build()
            .unwrap()
    }

    /// An evaluator whose `try_evaluate` fails transiently the first
    /// `fail_attempts` times per configuration.
    struct Flaky {
        fail_attempts: usize,
        attempts: Mutex<std::collections::HashMap<Vec<u32>, usize>>,
    }

    impl Flaky {
        fn new(fail_attempts: usize) -> Self {
            Flaky { fail_attempts, attempts: Mutex::new(Default::default()) }
        }
    }

    impl Evaluator for Flaky {
        fn n_objectives(&self) -> usize {
            1
        }
        fn evaluate(&self, config: &Configuration) -> Vec<f64> {
            vec![config.value_f64(0)]
        }
        fn try_evaluate(&self, config: &Configuration) -> Result<Vec<f64>, EvalError> {
            let mut attempts = self.attempts.lock().unwrap();
            let n = attempts.entry(config.choices().to_vec()).or_insert(0);
            *n += 1;
            if *n <= self.fail_attempts {
                Err(EvalError::Transient { reason: format!("attempt {n}") })
            } else {
                Ok(vec![config.value_f64(0)])
            }
        }
    }

    #[test]
    fn transient_failures_are_retried() {
        let s = space();
        let flaky = Flaky::new(2);
        let policy = RetryPolicy {
            max_retries: 2,
            backoff_base: Duration::from_micros(10),
            ..Default::default()
        };
        let resilient = ResilientEvaluator::new(&flaky, policy);
        assert_eq!(resilient.try_evaluate(&s.config_at(4)), Ok(vec![4.0]));
        assert_eq!(resilient.retries(), 2);
        let log = resilient.failure_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].attempt, 1);
        assert_eq!(log[1].attempt, 2);
        assert!(log.iter().all(|f| f.error.is_retryable()));
    }

    #[test]
    fn retry_budget_is_bounded() {
        let s = space();
        let flaky = Flaky::new(usize::MAX);
        let policy = RetryPolicy {
            max_retries: 3,
            backoff_base: Duration::from_micros(10),
            ..Default::default()
        };
        let resilient = ResilientEvaluator::new(&flaky, policy);
        let out = resilient.try_evaluate(&s.config_at(1));
        assert!(matches!(out, Err(EvalError::Transient { .. })));
        // 1 initial + 3 retries, all logged.
        assert_eq!(resilient.failure_log().len(), 4);
        assert_eq!(resilient.retries(), 3);
    }

    #[test]
    fn non_transient_errors_never_retry() {
        let s = space();
        let e = FnEvaluator::new(1, |_| panic!("deterministic crash"));
        let resilient = ResilientEvaluator::new(&e, RetryPolicy::default());
        let out = resilient.try_evaluate(&s.config_at(0));
        assert!(matches!(out, Err(EvalError::Panicked { .. })));
        assert_eq!(resilient.retries(), 0);
        assert_eq!(resilient.failure_log().len(), 1);
    }

    #[test]
    fn slow_evaluations_hit_the_deadline() {
        let s = space();
        let e = FnEvaluator::new(1, |c| {
            std::thread::sleep(Duration::from_millis(30));
            vec![c.value_f64(0)]
        });
        let policy = RetryPolicy { deadline: Some(Duration::from_millis(1)), ..Default::default() };
        let resilient = ResilientEvaluator::new(&e, policy);
        match resilient.try_evaluate(&s.config_at(2)) {
            Err(EvalError::Timeout { elapsed_ms, deadline_ms }) => {
                assert!(elapsed_ms >= deadline_ms, "{elapsed_ms} < {deadline_ms}");
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert_eq!(resilient.timeouts(), 1);
    }

    #[test]
    fn fast_evaluations_pass_the_deadline() {
        let s = space();
        let e = FnEvaluator::new(1, |c| vec![c.value_f64(0)]);
        let policy = RetryPolicy { deadline: Some(Duration::from_secs(30)), ..Default::default() };
        let resilient = ResilientEvaluator::new(&e, policy);
        assert_eq!(resilient.try_evaluate(&s.config_at(3)), Ok(vec![3.0]));
        assert_eq!(resilient.timeouts(), 0);
        assert!(resilient.failure_log().is_empty());
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let policy = RetryPolicy {
            backoff_base: Duration::from_millis(2),
            max_backoff: Duration::from_millis(9),
            ..Default::default()
        };
        assert_eq!(policy.backoff(1), Duration::from_millis(2));
        assert_eq!(policy.backoff(2), Duration::from_millis(4));
        assert_eq!(policy.backoff(3), Duration::from_millis(8));
        assert_eq!(policy.backoff(4), Duration::from_millis(9)); // capped
        assert_eq!(policy.backoff(60), Duration::from_millis(9)); // no overflow
    }

    #[test]
    fn backoff_never_overshoots_the_deadline() {
        let s = space();
        let flaky = Flaky::new(usize::MAX);
        // Attempts are near-instantaneous, so the schedule is driven by the
        // backoffs alone: 50 then 100 ms fit the 300 ms budget, but the
        // third backoff (200 ms on top of ~150 ms elapsed) would overshoot
        // it — the retry must be refused *before* its sleep. Pre-fix, the
        // sleep happened anyway and a 4th attempt ran past the budget.
        let policy = RetryPolicy {
            max_retries: 10,
            backoff_base: Duration::from_millis(50),
            max_backoff: Duration::from_secs(10),
            deadline: Some(Duration::from_millis(300)),
        };
        let resilient = ResilientEvaluator::new(&flaky, policy.clone());
        let start = Instant::now();
        let out = resilient.try_evaluate_detailed(&s.config_at(1));
        let wall = start.elapsed();
        let f = out.expect_err("budget-bounded retries must fail");
        assert!(matches!(f.error, EvalError::Timeout { .. }), "final error: {:?}", f.error);
        // Attempts 1..=3 ran at most; the would-be next backoff was refused
        // before its sleep (on a loaded machine oversleep can only make the
        // refusal happen *earlier*, never add attempts).
        assert!(f.attempts <= 3, "attempts {}", f.attempts);
        assert_eq!(resilient.timeouts(), 1);
        // The wrapper itself never sleeps past the deadline: total wall
        // clock stays within the budget plus one backoff's slack.
        assert!(
            wall < Duration::from_millis(300) + policy.backoff(3),
            "overshot the deadline: {wall:?}"
        );
        // The schedule that ran is the deterministic pinned prefix.
        assert_eq!(policy.backoff(1), Duration::from_millis(50));
        assert_eq!(policy.backoff(2), Duration::from_millis(100));
        assert_eq!(policy.backoff(3), Duration::from_millis(200));
    }

    #[test]
    fn failure_log_is_a_bounded_ring() {
        let s = space();
        let flaky = Flaky::new(usize::MAX);
        let policy = RetryPolicy {
            max_retries: 0,
            backoff_base: Duration::from_micros(10),
            ..Default::default()
        };
        let resilient = ResilientEvaluator::new(&flaky, policy).with_log_capacity(3);
        assert_eq!(resilient.log_capacity(), 3);
        for i in 0..5 {
            let _ = resilient.try_evaluate(&s.config_at(i));
        }
        let log = resilient.failure_log();
        assert_eq!(log.len(), 3, "ring keeps only the newest entries");
        assert_eq!(resilient.dropped_log_entries(), 2);
        // The survivors are the three *most recent* failures, oldest first.
        let kept: Vec<u32> = log.iter().map(|e| e.choices[0]).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let s = space();
        let flaky = Flaky::new(usize::MAX);
        let policy = RetryPolicy { max_retries: 0, ..Default::default() };
        let resilient = ResilientEvaluator::new(&flaky, policy).with_log_capacity(0);
        let _ = resilient.try_evaluate(&s.config_at(0));
        assert!(resilient.failure_log().is_empty());
        assert_eq!(resilient.dropped_log_entries(), 1);
    }

    #[test]
    fn detailed_failures_carry_the_retry_story() {
        let s = space();
        let flaky = Flaky::new(usize::MAX);
        let policy = RetryPolicy {
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            ..Default::default()
        };
        let resilient = ResilientEvaluator::new(&flaky, policy);
        match resilient.try_evaluate_detailed(&s.config_at(1)) {
            Err(f) => {
                assert_eq!(f.attempts, 3, "1 initial + 2 retries");
                assert!(matches!(f.error, EvalError::Transient { .. }));
                // Two 1–2 ms backoffs happened before the final failure.
                assert!(f.elapsed_ms >= 1, "elapsed {}", f.elapsed_ms);
            }
            Ok(v) => panic!("expected failure, got {v:?}"),
        }
        // Log entries carry per-attempt elapsed time, nondecreasing.
        let log = resilient.failure_log();
        assert_eq!(log.len(), 3);
        for pair in log.windows(2) {
            assert!(pair[0].elapsed_ms <= pair[1].elapsed_ms);
        }
    }
}
