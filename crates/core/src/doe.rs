//! Design-of-experiments sampling helpers.

use crate::error::HmError;
use crate::space::{Configuration, ParamSpace};
use rand::Rng;
use std::collections::HashSet;

/// Draw `n` **distinct** uniformly random configurations from `space`,
/// skipping any whose flat index is in `exclude` (pass an empty set when
/// there is no history).
///
/// When many more configurations are *available* (not excluded) than
/// requested this is a simple rejection loop; otherwise it falls back to
/// enumerating and shuffling the remaining indices so it always terminates.
/// The branch is chosen on `available = size − |exclude|`, not on the raw
/// space size: a large space whose exclude set covers almost everything
/// would make rejection sampling spin nearly unboundedly hunting for the
/// few free indices.
pub fn sample_distinct<R: Rng>(
    space: &ParamSpace,
    n: usize,
    exclude: &HashSet<u64>,
    rng: &mut R,
) -> Result<Vec<Configuration>, HmError> {
    let size = space.size();
    let available = size.saturating_sub(exclude.len() as u64);
    if (n as u64) > available {
        return Err(HmError::NotEnoughConfigurations { requested: n, available });
    }

    // Dense case: enumerate what's left and partially shuffle. Enumerating
    // walks `0..size`, which is only reachable for enumerable spaces: a
    // u64-sized space can take this branch only if `exclude` covers almost
    // all of it, and an exclude set of ~2^64 indices cannot exist in
    // memory. u64-sized spaces therefore always sample by rejection below,
    // without materializing anything (`crates/core/tests/huge_space.rs`).
    if available <= (n as u64).saturating_mul(4).max(1024) {
        let mut remaining: Vec<u64> = (0..size).filter(|i| !exclude.contains(i)).collect();
        // Partial Fisher–Yates: we only need the first n.
        let len = remaining.len();
        for i in 0..n {
            let j = rng.gen_range(i..len);
            remaining.swap(i, j);
        }
        return Ok(remaining[..n].iter().map(|&i| space.config_at(i)).collect());
    }

    // Sparse case: rejection sampling.
    let mut chosen = HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let flat = rng.gen_range(0..size);
        if exclude.contains(&flat) || !chosen.insert(flat) {
            continue;
        }
        out.push(space.config_at(flat));
    }
    Ok(out)
}

/// Draw `n` distinct uniformly random configurations satisfying
/// `predicate` — constrained sampling over spaces that never materialize:
/// candidates are drawn by flat-index rejection (plus the predicate as a
/// second rejection stage), so a u64-sized space with a sparse constraint
/// costs `O(n / acceptance_rate)` work and `O(n)` memory.
///
/// Unlike [`sample_distinct`], the number of *valid* configurations is
/// unknown (the predicate is a black box), so exhaustion cannot be detected
/// up front; instead the draw gives up with
/// [`HmError::NotEnoughConfigurations`] after `max_attempts` rejections in
/// a row without an accept (pass e.g. `10_000 × n` for a predicate
/// expected to accept ≳ 0.1% of the space). Small spaces degrade to an
/// exact streamed enumeration when the rejection loop stalls, so feasible
/// requests on enumerable spaces always succeed.
pub fn sample_distinct_where<R: Rng, F: FnMut(&Configuration) -> bool>(
    space: &ParamSpace,
    n: usize,
    exclude: &HashSet<u64>,
    mut predicate: F,
    max_attempts: u64,
    rng: &mut R,
) -> Result<Vec<Configuration>, HmError> {
    let size = space.size();
    let mut chosen = HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    let mut misses = 0u64;
    while out.len() < n {
        if misses >= max_attempts {
            // Enumerable space: fall back to an exact streamed scan of what
            // the rejection loop could not find (no materialization — the
            // stream is the odometer, and only accepted configurations are
            // kept). Non-enumerable spaces report exhaustion honestly.
            if size <= ENUM_FALLBACK_CAP {
                for c in space.stream() {
                    if out.len() == n {
                        break;
                    }
                    let flat = space.flat_index(&c);
                    if exclude.contains(&flat) || chosen.contains(&flat) || !predicate(&c) {
                        continue;
                    }
                    chosen.insert(flat);
                    out.push(c);
                }
                if out.len() == n {
                    return Ok(out);
                }
            }
            return Err(HmError::NotEnoughConfigurations {
                requested: n,
                available: out.len() as u64,
            });
        }
        let flat = rng.gen_range(0..size);
        if exclude.contains(&flat) || chosen.contains(&flat) {
            misses += 1;
            continue;
        }
        let config = space.config_at(flat);
        if !predicate(&config) {
            misses += 1;
            continue;
        }
        misses = 0;
        chosen.insert(flat);
        out.push(config);
    }
    Ok(out)
}

/// Spaces up to this size may be exactly enumerated (streamed, not
/// materialized) when constrained rejection sampling stalls.
const ENUM_FALLBACK_CAP: u64 = 1 << 24;

/// Draw a prediction pool of up to `pool_size` distinct configurations. When
/// the space is small enough the pool is the whole space (the paper predicts
/// over all of `X`); otherwise a uniform subsample stands in for it.
pub fn prediction_pool<R: Rng>(
    space: &ParamSpace,
    pool_size: usize,
    rng: &mut R,
) -> Vec<Configuration> {
    if space.size() <= pool_size as u64 {
        space.iter_all().collect()
    } else {
        // Unreachable by the size guard above; degrading to the full space
        // keeps the pool well-defined without a panic path. `sample_distinct`
        // rejects over-large requests before drawing, so the RNG stream is
        // untouched on the error branch and replay stays aligned.
        sample_distinct(space, pool_size, &HashSet::new(), rng)
            .unwrap_or_else(|_| space.iter_all().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space(n_values: usize) -> ParamSpace {
        ParamSpace::builder()
            .ordinal("a", (0..n_values).map(|i| i as f64))
            .ordinal("b", (0..n_values).map(|i| i as f64))
            .build()
            .unwrap()
    }

    #[test]
    fn samples_are_distinct() {
        let s = space(30); // 900 configs
        let mut rng = StdRng::seed_from_u64(1);
        let samples = sample_distinct(&s, 500, &HashSet::new(), &mut rng).unwrap();
        let set: HashSet<u64> = samples.iter().map(|c| s.flat_index(c)).collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn excluded_indices_never_drawn() {
        let s = space(10); // 100 configs
        let exclude: HashSet<u64> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let samples = sample_distinct(&s, 50, &exclude, &mut rng).unwrap();
        assert_eq!(samples.len(), 50);
        for c in &samples {
            assert!(!exclude.contains(&s.flat_index(&c.clone())));
        }
    }

    #[test]
    fn requesting_too_many_errors() {
        let s = space(3); // 9 configs
        let mut rng = StdRng::seed_from_u64(3);
        let err = sample_distinct(&s, 10, &HashSet::new(), &mut rng).unwrap_err();
        assert!(matches!(err, HmError::NotEnoughConfigurations { requested: 10, available: 9 }));
        // Exactly the space size works and enumerates everything.
        let all = sample_distinct(&s, 9, &HashSet::new(), &mut rng).unwrap();
        let set: HashSet<u64> = all.iter().map(|c| s.flat_index(c)).collect();
        assert_eq!(set.len(), 9);
    }

    #[test]
    fn exclusion_plus_request_exhausting_space() {
        let s = space(4); // 16 configs
        let exclude: HashSet<u64> = (0..10).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let samples = sample_distinct(&s, 6, &exclude, &mut rng).unwrap();
        let set: HashSet<u64> = samples.iter().map(|c| s.flat_index(c)).collect();
        assert_eq!(set, (10..16).collect::<HashSet<u64>>());
    }

    #[test]
    fn dense_exclusion_of_sparse_space_terminates() {
        // Regression: the dense-vs-rejection branch used to be chosen on
        // `space.size()`, so a large space with an exclude set covering
        // >99% of it took the rejection path and spun almost unboundedly
        // hunting for the few free indices. Branching on `available`
        // makes this an instant enumerate-and-shuffle.
        let s = space(40); // 1600 configs — above the 1024 dense cutoff
        let exclude: HashSet<u64> = (0..1590).collect(); // 99.4% excluded
        let mut rng = StdRng::seed_from_u64(11);
        let samples = sample_distinct(&s, 8, &exclude, &mut rng).unwrap();
        assert_eq!(samples.len(), 8);
        let set: HashSet<u64> = samples.iter().map(|c| s.flat_index(c)).collect();
        assert_eq!(set.len(), 8);
        for &i in &set {
            assert!((1590..1600).contains(&i), "drew excluded index {i}");
        }
        // Requesting every free index works too.
        let all = sample_distinct(&s, 10, &exclude, &mut StdRng::seed_from_u64(12)).unwrap();
        let set: HashSet<u64> = all.iter().map(|c| s.flat_index(c)).collect();
        assert_eq!(set, (1590..1600).collect::<HashSet<u64>>());
    }

    #[test]
    fn deterministic_given_seed() {
        let s = space(50);
        let a = sample_distinct(&s, 100, &HashSet::new(), &mut StdRng::seed_from_u64(9)).unwrap();
        let b = sample_distinct(&s, 100, &HashSet::new(), &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pool_is_whole_space_when_small() {
        let s = space(5); // 25
        let mut rng = StdRng::seed_from_u64(5);
        let pool = prediction_pool(&s, 100, &mut rng);
        assert_eq!(pool.len(), 25);
    }

    #[test]
    fn pool_subsamples_when_large() {
        let s = space(100); // 10_000
        let mut rng = StdRng::seed_from_u64(6);
        let pool = prediction_pool(&s, 500, &mut rng);
        assert_eq!(pool.len(), 500);
        let set: HashSet<u64> = pool.iter().map(|c| s.flat_index(c)).collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn sample_distinct_on_u64_scale_space_never_materializes() {
        // 2^63 configurations: only the rejection path is reachable, and it
        // allocates O(n), not O(size).
        let s = ParamSpace::builder()
            .ordinal("a", (0..1u32 << 16).map(f64::from))
            .ordinal("b", (0..1u32 << 16).map(f64::from))
            .ordinal("c", (0..1u32 << 16).map(f64::from))
            .ordinal("d", (0..1u32 << 15).map(f64::from))
            .build()
            .unwrap();
        assert_eq!(s.size(), 1u64 << 63);
        let mut rng = StdRng::seed_from_u64(21);
        let samples = sample_distinct(&s, 200, &HashSet::new(), &mut rng).unwrap();
        let set: HashSet<u64> = samples.iter().map(|c| s.flat_index(c)).collect();
        assert_eq!(set.len(), 200);
    }

    #[test]
    fn constrained_sampling_respects_predicate_and_exclusions() {
        let s = space(30); // 900 configs
        let exclude: HashSet<u64> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(31);
        let even = |c: &Configuration| c.choice(0) % 2 == 0;
        let samples = sample_distinct_where(&s, 50, &exclude, even, 10_000, &mut rng).unwrap();
        assert_eq!(samples.len(), 50);
        let set: HashSet<u64> = samples.iter().map(|c| s.flat_index(c)).collect();
        assert_eq!(set.len(), 50);
        for c in &samples {
            assert!(c.choice(0) % 2 == 0);
            assert!(!exclude.contains(&s.flat_index(c)));
        }
        // Deterministic given the seed.
        let again = sample_distinct_where(
            &s,
            50,
            &exclude,
            |c| c.choice(0) % 2 == 0,
            10_000,
            &mut StdRng::seed_from_u64(31),
        )
        .unwrap();
        assert_eq!(samples, again);
    }

    #[test]
    fn constrained_sampling_exhausts_gracefully() {
        let s = space(10); // 100 configs; predicate accepts exactly 10
        let mut rng = StdRng::seed_from_u64(33);
        // Feasible-but-rare: the streamed fallback finds all 10.
        let all =
            sample_distinct_where(&s, 10, &HashSet::new(), |c| c.choice(0) == 3, 64, &mut rng)
                .unwrap();
        assert_eq!(all.len(), 10);
        assert!(all.iter().all(|c| c.choice(0) == 3));
        // Infeasible: errors with the count actually found, instead of
        // spinning forever.
        let err = sample_distinct_where(&s, 11, &HashSet::new(), |c| c.choice(0) == 3, 64, &mut rng)
            .unwrap_err();
        assert!(
            matches!(err, HmError::NotEnoughConfigurations { requested: 11, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn rough_uniformity_of_sampling() {
        // Chi-square-ish sanity check: over many draws each first-param
        // bucket should be hit a similar number of times.
        let s = space(10);
        let mut counts = [0usize; 10];
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            for c in sample_distinct(&s, 10, &HashSet::new(), &mut rng).unwrap() {
                counts[c.choice(0)] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        let expected = total as f64 / 10.0;
        for &c in &counts {
            assert!(
                (c as f64) > expected * 0.6 && (c as f64) < expected * 1.4,
                "bucket count {c} vs expected {expected}"
            );
        }
    }
}
