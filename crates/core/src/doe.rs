//! Design-of-experiments sampling helpers.

use crate::error::HmError;
use crate::space::{Configuration, ParamSpace};
use rand::Rng;
use std::collections::HashSet;

/// Draw `n` **distinct** uniformly random configurations from `space`,
/// skipping any whose flat index is in `exclude` (pass an empty set when
/// there is no history).
///
/// When many more configurations are *available* (not excluded) than
/// requested this is a simple rejection loop; otherwise it falls back to
/// enumerating and shuffling the remaining indices so it always terminates.
/// The branch is chosen on `available = size − |exclude|`, not on the raw
/// space size: a large space whose exclude set covers almost everything
/// would make rejection sampling spin nearly unboundedly hunting for the
/// few free indices.
pub fn sample_distinct<R: Rng>(
    space: &ParamSpace,
    n: usize,
    exclude: &HashSet<u64>,
    rng: &mut R,
) -> Result<Vec<Configuration>, HmError> {
    let size = space.size();
    let available = size.saturating_sub(exclude.len() as u64);
    if (n as u64) > available {
        return Err(HmError::NotEnoughConfigurations { requested: n, available });
    }

    // Dense case: enumerate what's left and partially shuffle.
    if available <= (n as u64).saturating_mul(4).max(1024) {
        let mut remaining: Vec<u64> = (0..size).filter(|i| !exclude.contains(i)).collect();
        // Partial Fisher–Yates: we only need the first n.
        let len = remaining.len();
        for i in 0..n {
            let j = rng.gen_range(i..len);
            remaining.swap(i, j);
        }
        return Ok(remaining[..n].iter().map(|&i| space.config_at(i)).collect());
    }

    // Sparse case: rejection sampling.
    let mut chosen = HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let flat = rng.gen_range(0..size);
        if exclude.contains(&flat) || !chosen.insert(flat) {
            continue;
        }
        out.push(space.config_at(flat));
    }
    Ok(out)
}

/// Draw a prediction pool of up to `pool_size` distinct configurations. When
/// the space is small enough the pool is the whole space (the paper predicts
/// over all of `X`); otherwise a uniform subsample stands in for it.
pub fn prediction_pool<R: Rng>(
    space: &ParamSpace,
    pool_size: usize,
    rng: &mut R,
) -> Vec<Configuration> {
    if space.size() <= pool_size as u64 {
        space.iter_all().collect()
    } else {
        // Unreachable by the size guard above; degrading to the full space
        // keeps the pool well-defined without a panic path. `sample_distinct`
        // rejects over-large requests before drawing, so the RNG stream is
        // untouched on the error branch and replay stays aligned.
        sample_distinct(space, pool_size, &HashSet::new(), rng)
            .unwrap_or_else(|_| space.iter_all().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space(n_values: usize) -> ParamSpace {
        ParamSpace::builder()
            .ordinal("a", (0..n_values).map(|i| i as f64))
            .ordinal("b", (0..n_values).map(|i| i as f64))
            .build()
            .unwrap()
    }

    #[test]
    fn samples_are_distinct() {
        let s = space(30); // 900 configs
        let mut rng = StdRng::seed_from_u64(1);
        let samples = sample_distinct(&s, 500, &HashSet::new(), &mut rng).unwrap();
        let set: HashSet<u64> = samples.iter().map(|c| s.flat_index(c)).collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn excluded_indices_never_drawn() {
        let s = space(10); // 100 configs
        let exclude: HashSet<u64> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let samples = sample_distinct(&s, 50, &exclude, &mut rng).unwrap();
        assert_eq!(samples.len(), 50);
        for c in &samples {
            assert!(!exclude.contains(&s.flat_index(&c.clone())));
        }
    }

    #[test]
    fn requesting_too_many_errors() {
        let s = space(3); // 9 configs
        let mut rng = StdRng::seed_from_u64(3);
        let err = sample_distinct(&s, 10, &HashSet::new(), &mut rng).unwrap_err();
        assert!(matches!(err, HmError::NotEnoughConfigurations { requested: 10, available: 9 }));
        // Exactly the space size works and enumerates everything.
        let all = sample_distinct(&s, 9, &HashSet::new(), &mut rng).unwrap();
        let set: HashSet<u64> = all.iter().map(|c| s.flat_index(c)).collect();
        assert_eq!(set.len(), 9);
    }

    #[test]
    fn exclusion_plus_request_exhausting_space() {
        let s = space(4); // 16 configs
        let exclude: HashSet<u64> = (0..10).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let samples = sample_distinct(&s, 6, &exclude, &mut rng).unwrap();
        let set: HashSet<u64> = samples.iter().map(|c| s.flat_index(c)).collect();
        assert_eq!(set, (10..16).collect::<HashSet<u64>>());
    }

    #[test]
    fn dense_exclusion_of_sparse_space_terminates() {
        // Regression: the dense-vs-rejection branch used to be chosen on
        // `space.size()`, so a large space with an exclude set covering
        // >99% of it took the rejection path and spun almost unboundedly
        // hunting for the few free indices. Branching on `available`
        // makes this an instant enumerate-and-shuffle.
        let s = space(40); // 1600 configs — above the 1024 dense cutoff
        let exclude: HashSet<u64> = (0..1590).collect(); // 99.4% excluded
        let mut rng = StdRng::seed_from_u64(11);
        let samples = sample_distinct(&s, 8, &exclude, &mut rng).unwrap();
        assert_eq!(samples.len(), 8);
        let set: HashSet<u64> = samples.iter().map(|c| s.flat_index(c)).collect();
        assert_eq!(set.len(), 8);
        for &i in &set {
            assert!((1590..1600).contains(&i), "drew excluded index {i}");
        }
        // Requesting every free index works too.
        let all = sample_distinct(&s, 10, &exclude, &mut StdRng::seed_from_u64(12)).unwrap();
        let set: HashSet<u64> = all.iter().map(|c| s.flat_index(c)).collect();
        assert_eq!(set, (1590..1600).collect::<HashSet<u64>>());
    }

    #[test]
    fn deterministic_given_seed() {
        let s = space(50);
        let a = sample_distinct(&s, 100, &HashSet::new(), &mut StdRng::seed_from_u64(9)).unwrap();
        let b = sample_distinct(&s, 100, &HashSet::new(), &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pool_is_whole_space_when_small() {
        let s = space(5); // 25
        let mut rng = StdRng::seed_from_u64(5);
        let pool = prediction_pool(&s, 100, &mut rng);
        assert_eq!(pool.len(), 25);
    }

    #[test]
    fn pool_subsamples_when_large() {
        let s = space(100); // 10_000
        let mut rng = StdRng::seed_from_u64(6);
        let pool = prediction_pool(&s, 500, &mut rng);
        assert_eq!(pool.len(), 500);
        let set: HashSet<u64> = pool.iter().map(|c| s.flat_index(c)).collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn rough_uniformity_of_sampling() {
        // Chi-square-ish sanity check: over many draws each first-param
        // bucket should be hit a similar number of times.
        let s = space(10);
        let mut counts = [0usize; 10];
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            for c in sample_distinct(&s, 10, &HashSet::new(), &mut rng).unwrap() {
                counts[c.choice(0)] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        let expected = total as f64 / 10.0;
        for &c in &counts {
            assert!(
                (c as f64) > expected * 0.6 && (c as f64) < expected * 1.4,
                "bucket count {c} vs expected {expected}"
            );
        }
    }
}
