//! Deterministic fault injection for exercising the fault-tolerant
//! evaluation stack.
//!
//! [`FaultInjectingEvaluator`] wraps any evaluator and, based purely on a
//! seed and each configuration's choice vector, makes a deterministic subset
//! of configurations panic, return NaN, stall past a deadline, or fail
//! transiently. Because the fault assignment is a pure function of
//! `(seed, configuration)` — never of call order or thread timing — a run
//! against the injector is exactly as reproducible as a run against the
//! clean evaluator, which is what lets property tests assert bit-identical
//! exploration results under heavy fault load.

use crate::error::EvalError;
use crate::evaluate::{catch_eval, Evaluator};
use crate::space::Configuration;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Which fault (if any) a configuration is assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// No fault: the inner evaluator runs normally.
    None,
    /// The evaluation panics.
    Panic,
    /// Every objective comes back NaN.
    Nan,
    /// The evaluation sleeps for [`FaultPlan::delay`] before returning.
    Delay,
    /// The first [`FaultPlan::transient_attempts`] attempts fail with
    /// [`EvalError::Transient`]; later attempts succeed.
    Transient,
}

/// Injection rates and shapes. Rates are cumulative probabilities over the
/// per-configuration hash: a configuration is assigned exactly one fault
/// class (or none).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Fraction of configurations that panic.
    pub panic_rate: f64,
    /// Fraction of configurations that return NaN objectives.
    pub nan_rate: f64,
    /// Fraction of configurations that stall for [`FaultPlan::delay`].
    pub delay_rate: f64,
    /// Fraction of configurations that fail transiently.
    pub transient_rate: f64,
    /// How long a delayed configuration stalls.
    pub delay: Duration,
    /// Failed attempts before a transient configuration succeeds.
    pub transient_attempts: usize,
    /// Seed for the per-configuration fault assignment.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            panic_rate: 0.05,
            nan_rate: 0.05,
            delay_rate: 0.02,
            transient_rate: 0.03,
            delay: Duration::from_millis(50),
            transient_attempts: 1,
            seed: 0,
        }
    }
}

impl FaultPlan {
    /// Total fraction of configurations assigned *some* fault.
    pub fn total_rate(&self) -> f64 {
        self.panic_rate + self.nan_rate + self.delay_rate + self.transient_rate
    }

    /// The fault assigned to a configuration (pure function of the plan's
    /// seed and the choice vector).
    pub fn fault_for(&self, config: &Configuration) -> Fault {
        let mut h = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        for &c in config.choices() {
            h = splitmix64(h ^ c as u64);
        }
        // Map to [0, 1): 53 uniform bits.
        let u = (splitmix64(h) >> 11) as f64 / (1u64 << 53) as f64;
        let mut limit = self.panic_rate;
        if u < limit {
            return Fault::Panic;
        }
        limit += self.nan_rate;
        if u < limit {
            return Fault::Nan;
        }
        limit += self.delay_rate;
        if u < limit {
            return Fault::Delay;
        }
        limit += self.transient_rate;
        if u < limit {
            return Fault::Transient;
        }
        Fault::None
    }
}

/// Install a process-wide panic hook that swallows the injector's own
/// panic messages (they contain `"injected panic"`) and forwards everything
/// else to the previous hook. Injected panics fire on Rayon worker threads,
/// whose output escapes the test harness's capture; without this, a fault-
/// injection test run drowns real diagnostics in expected-panic noise.
/// Idempotent; intended for test binaries.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let message = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied());
            let injected = message.is_some_and(|m| m.contains("injected panic"));
            if !injected {
                previous(info);
            }
        }));
    });
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Counters of faults actually fired, by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Panics raised.
    pub panics: usize,
    /// NaN objective vectors returned.
    pub nans: usize,
    /// Delays slept.
    pub delays: usize,
    /// Transient errors returned (attempts, not configurations).
    pub transients: usize,
}

impl FaultCounts {
    /// Total faults fired.
    pub fn total(&self) -> usize {
        self.panics + self.nans + self.delays + self.transients
    }
}

/// Seeded fault-injecting wrapper around any [`Evaluator`].
///
/// Panics, NaNs, and delays are injected through the *infallible*
/// [`Evaluator::evaluate`] path, exercising the default `catch_unwind`
/// bridge and downstream NaN/deadline detection exactly as a real crashing
/// evaluator would. Transient faults are injected through
/// [`Evaluator::try_evaluate`] (the infallible API cannot express them).
pub struct FaultInjectingEvaluator<'a, E: Evaluator> {
    inner: &'a E,
    plan: FaultPlan,
    /// Per-configuration attempt counts (drives transient recovery).
    attempts: Mutex<HashMap<Vec<u32>, usize>>,
    panics: AtomicUsize,
    nans: AtomicUsize,
    delays: AtomicUsize,
    transients: AtomicUsize,
}

impl<'a, E: Evaluator> FaultInjectingEvaluator<'a, E> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: &'a E, plan: FaultPlan) -> Self {
        FaultInjectingEvaluator {
            inner,
            plan,
            attempts: Mutex::new(HashMap::new()),
            panics: AtomicUsize::new(0),
            nans: AtomicUsize::new(0),
            delays: AtomicUsize::new(0),
            transients: AtomicUsize::new(0),
        }
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Faults fired so far, by class.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            panics: self.panics.load(Ordering::Relaxed),
            nans: self.nans.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            transients: self.transients.load(Ordering::Relaxed),
        }
    }
}

impl<E: Evaluator> Evaluator for FaultInjectingEvaluator<'_, E> {
    fn n_objectives(&self) -> usize {
        self.inner.n_objectives()
    }
    fn objective_names(&self) -> Vec<String> {
        self.inner.objective_names()
    }
    fn evaluate(&self, config: &Configuration) -> Vec<f64> {
        match self.plan.fault_for(config) {
            Fault::Panic => {
                self.panics.fetch_add(1, Ordering::Relaxed);
                // lint: allow(no-unaudited-panic): this evaluator exists to inject panics for resilience tests
                panic!("injected panic (seed {})", self.plan.seed);
            }
            Fault::Nan => {
                self.nans.fetch_add(1, Ordering::Relaxed);
                vec![f64::NAN; self.inner.n_objectives()]
            }
            Fault::Delay => {
                self.delays.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.plan.delay);
                self.inner.evaluate(config)
            }
            // The infallible path cannot express a transient error; behave
            // like the recovered (successful) attempt.
            Fault::Transient | Fault::None => self.inner.evaluate(config),
        }
    }
    fn try_evaluate(&self, config: &Configuration) -> Result<Vec<f64>, EvalError> {
        if self.plan.fault_for(config) == Fault::Transient {
            let due = {
                let mut attempts = self.attempts.lock().unwrap_or_else(|e| e.into_inner());
                let n = attempts.entry(config.choices().to_vec()).or_insert(0);
                *n += 1;
                *n <= self.plan.transient_attempts
            };
            if due {
                self.transients.fetch_add(1, Ordering::Relaxed);
                return Err(EvalError::Transient {
                    reason: format!("injected transient (seed {})", self.plan.seed),
                });
            }
        }
        catch_eval(self, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::FnEvaluator;
    use crate::space::ParamSpace;

    fn space() -> ParamSpace {
        ParamSpace::builder()
            .ordinal("x", (0..200).map(f64::from))
            .build()
            .unwrap()
    }

    fn heavy_plan(seed: u64) -> FaultPlan {
        FaultPlan {
            panic_rate: 0.10,
            nan_rate: 0.10,
            delay_rate: 0.0,
            transient_rate: 0.10,
            transient_attempts: 1,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn fault_assignment_is_deterministic() {
        let s = space();
        let plan = heavy_plan(7);
        for i in 0..s.size() {
            let c = s.config_at(i);
            assert_eq!(plan.fault_for(&c), plan.fault_for(&c));
        }
    }

    #[test]
    fn fault_rates_are_roughly_respected() {
        let s = space();
        let plan = heavy_plan(42);
        let mut counts = [0usize; 5];
        for i in 0..s.size() {
            let f = plan.fault_for(&s.config_at(i));
            counts[match f {
                Fault::None => 0,
                Fault::Panic => 1,
                Fault::Nan => 2,
                Fault::Delay => 3,
                Fault::Transient => 4,
            }] += 1;
        }
        let n = s.size() as f64;
        let faulty = (counts[1] + counts[2] + counts[3] + counts[4]) as f64 / n;
        assert!(
            (faulty - plan.total_rate()).abs() < 0.15,
            "observed fault rate {faulty}, planned {}",
            plan.total_rate()
        );
        assert!(counts[1] > 0 && counts[2] > 0 && counts[4] > 0);
    }

    #[test]
    fn injected_faults_surface_as_typed_errors() {
        silence_injected_panics();
        let s = space();
        let e = FnEvaluator::new(1, |c| vec![c.value_f64(0)]);
        let plan = heavy_plan(3);
        let inj = FaultInjectingEvaluator::new(&e, plan.clone());
        let mut seen_panic = false;
        let mut seen_nan_value = false;
        let mut seen_transient = false;
        for i in 0..s.size() {
            let c = s.config_at(i);
            match plan.fault_for(&c) {
                Fault::Panic => {
                    assert!(matches!(
                        inj.try_evaluate(&c),
                        Err(EvalError::Panicked { .. })
                    ));
                    seen_panic = true;
                }
                Fault::Nan => {
                    // NaN is returned as a value; classification to
                    // `EvalError::NonFinite` happens in the optimizer.
                    let v = inj.try_evaluate(&c).expect("nan is a value, not an error");
                    assert!(v[0].is_nan());
                    seen_nan_value = true;
                }
                Fault::Transient => {
                    assert!(matches!(
                        inj.try_evaluate(&c),
                        Err(EvalError::Transient { .. })
                    ));
                    // Recovery on the next attempt.
                    assert_eq!(inj.try_evaluate(&c), Ok(vec![c.value_f64(0)]));
                    seen_transient = true;
                }
                _ => {
                    assert_eq!(inj.try_evaluate(&c), Ok(vec![c.value_f64(0)]));
                }
            }
        }
        assert!(seen_panic && seen_nan_value && seen_transient);
        assert!(inj.counts().total() > 0);
    }
}
