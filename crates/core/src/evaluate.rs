//! The black-box evaluation interface.

use crate::space::{Configuration, ParamSpace};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A black-box objective function: given a configuration, measure (or model)
/// each objective. All objectives are **minimized**.
///
/// In the paper this is "run SLAMBench on the board and record max-ATE and
/// per-frame runtime"; in this reproduction it is either a real pipeline run
/// or an analytic device model. Implementations must be `Sync` — the
/// optimizer evaluates batches in parallel.
pub trait Evaluator: Sync {
    /// Number of objectives returned by [`Evaluator::evaluate`].
    fn n_objectives(&self) -> usize;

    /// Human-readable objective names, used in reports.
    fn objective_names(&self) -> Vec<String> {
        (0..self.n_objectives()).map(|i| format!("objective{i}")).collect()
    }

    /// Measure all objectives for one configuration.
    fn evaluate(&self, config: &Configuration) -> Vec<f64>;

    /// Evaluate a batch in parallel (order-preserving). The default uses
    /// Rayon; override for evaluators with their own scheduling.
    fn evaluate_batch(&self, configs: &[Configuration]) -> Vec<Vec<f64>> {
        configs.par_iter().map(|c| self.evaluate(c)).collect()
    }
}

/// Adapter turning a plain closure into an [`Evaluator`].
///
/// ```
/// use hypermapper::{FnEvaluator, Evaluator, ParamSpace};
/// let space = ParamSpace::builder().ordinal("x", [0.0, 1.0, 2.0]).build().unwrap();
/// let eval = FnEvaluator::new(2, |c| vec![c.value_f64(0), -c.value_f64(0)]);
/// assert_eq!(eval.evaluate(&space.config_at(2)), vec![2.0, -2.0]);
/// ```
pub struct FnEvaluator<F: Fn(&Configuration) -> Vec<f64> + Sync> {
    n_objectives: usize,
    names: Vec<String>,
    f: F,
}

impl<F: Fn(&Configuration) -> Vec<f64> + Sync> FnEvaluator<F> {
    /// Wrap `f`, which must return `n_objectives` values per call.
    pub fn new(n_objectives: usize, f: F) -> Self {
        FnEvaluator {
            n_objectives,
            names: (0..n_objectives).map(|i| format!("objective{i}")).collect(),
            f,
        }
    }

    /// Set the objective names reported by this evaluator.
    pub fn with_names<S: Into<String>, I: IntoIterator<Item = S>>(mut self, names: I) -> Self {
        self.names = names.into_iter().map(Into::into).collect();
        assert_eq!(self.names.len(), self.n_objectives, "one name per objective");
        self
    }
}

impl<F: Fn(&Configuration) -> Vec<f64> + Sync> Evaluator for FnEvaluator<F> {
    fn n_objectives(&self) -> usize {
        self.n_objectives
    }
    fn objective_names(&self) -> Vec<String> {
        self.names.clone()
    }
    fn evaluate(&self, config: &Configuration) -> Vec<f64> {
        (self.f)(config)
    }
}

/// Cache key: the compact flat index when a [`ParamSpace`] is attached,
/// otherwise the configuration's choice vector (cheaper than cloning the
/// whole [`Configuration`], which also carries resolved `f64` values).
#[derive(PartialEq, Eq, Hash)]
enum CacheKey {
    Flat(u64),
    Choices(Vec<u32>),
}

/// Memoizing wrapper: caches objective vectors by configuration and counts
/// the number of *distinct* underlying evaluations. Useful both to avoid
/// re-running expensive pipelines and to audit an exploration's evaluation
/// budget in tests.
///
/// Concurrency: each key owns a once-cell, so when two threads race on the
/// same *uncached* configuration the second blocks on the first's result
/// instead of duplicating the evaluation (in-flight deduplication). The map
/// lock is held only to look up/insert the cell, never across an inner
/// evaluation.
pub struct CachedEvaluator<'a, E: Evaluator> {
    inner: &'a E,
    space: Option<&'a ParamSpace>,
    cache: Mutex<HashMap<CacheKey, Arc<OnceLock<Vec<f64>>>>>,
    evaluations: AtomicUsize,
}

impl<'a, E: Evaluator> CachedEvaluator<'a, E> {
    /// Wrap `inner` with an empty cache, keyed by choice vector.
    pub fn new(inner: &'a E) -> Self {
        CachedEvaluator {
            inner,
            space: None,
            cache: Mutex::new(HashMap::new()),
            evaluations: AtomicUsize::new(0),
        }
    }

    /// Wrap `inner` with an empty cache keyed by the space's flat index —
    /// no per-key allocation. All evaluated configurations must come from
    /// `space`.
    pub fn with_space(inner: &'a E, space: &'a ParamSpace) -> Self {
        CachedEvaluator {
            inner,
            space: Some(space),
            cache: Mutex::new(HashMap::new()),
            evaluations: AtomicUsize::new(0),
        }
    }

    fn key(&self, config: &Configuration) -> CacheKey {
        match self.space {
            Some(space) => CacheKey::Flat(space.flat_index(config)),
            None => CacheKey::Choices(config.choices().to_vec()),
        }
    }

    /// Number of distinct configurations actually evaluated so far (cache
    /// hits and deduplicated in-flight races don't count).
    pub fn distinct_evaluations(&self) -> usize {
        self.evaluations.load(Ordering::Relaxed)
    }
}

impl<E: Evaluator> Evaluator for CachedEvaluator<'_, E> {
    fn n_objectives(&self) -> usize {
        self.inner.n_objectives()
    }
    fn objective_names(&self) -> Vec<String> {
        self.inner.objective_names()
    }
    fn evaluate(&self, config: &Configuration) -> Vec<f64> {
        let cell = {
            let mut map = self.cache.lock().expect("poisoned");
            Arc::clone(map.entry(self.key(config)).or_default())
        };
        cell.get_or_init(|| {
            self.evaluations.fetch_add(1, Ordering::Relaxed);
            self.inner.evaluate(config)
        })
        .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ParamSpace;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn space() -> ParamSpace {
        ParamSpace::builder()
            .ordinal("x", (0..10).map(f64::from))
            .build()
            .unwrap()
    }

    #[test]
    fn fn_evaluator_basics() {
        let s = space();
        let e = FnEvaluator::new(2, |c| vec![c.value_f64(0), 10.0 - c.value_f64(0)])
            .with_names(["time", "error"]);
        assert_eq!(e.n_objectives(), 2);
        assert_eq!(e.objective_names(), vec!["time", "error"]);
        assert_eq!(e.evaluate(&s.config_at(3)), vec![3.0, 7.0]);
    }

    #[test]
    fn batch_matches_single_and_preserves_order() {
        let s = space();
        let e = FnEvaluator::new(1, |c| vec![c.value_f64(0) * 2.0]);
        let configs: Vec<_> = (0..10).map(|i| s.config_at(i)).collect();
        let batch = e.evaluate_batch(&configs);
        for (i, out) in batch.iter().enumerate() {
            assert_eq!(out, &e.evaluate(&configs[i]));
        }
    }

    #[test]
    fn cache_avoids_reevaluation() {
        let s = space();
        let calls = AtomicUsize::new(0);
        let e = FnEvaluator::new(1, |c| {
            calls.fetch_add(1, Ordering::Relaxed);
            vec![c.value_f64(0)]
        });
        let cached = CachedEvaluator::new(&e);
        let c = s.config_at(5);
        assert_eq!(cached.evaluate(&c), vec![5.0]);
        assert_eq!(cached.evaluate(&c), vec![5.0]);
        assert_eq!(cached.evaluate(&s.config_at(5)), vec![5.0]);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(cached.distinct_evaluations(), 1);
        cached.evaluate(&s.config_at(6));
        assert_eq!(cached.distinct_evaluations(), 2);
    }

    #[test]
    fn cached_batch_parallel_safe() {
        let s = space();
        let e = FnEvaluator::new(1, |c| vec![c.value_f64(0)]);
        let cached = CachedEvaluator::new(&e);
        let configs: Vec<_> = (0..10).map(|i| s.config_at(i % 5)).collect();
        let out = cached.evaluate_batch(&configs);
        assert_eq!(out.len(), 10);
        assert_eq!(cached.distinct_evaluations(), 5);
    }

    #[test]
    fn cached_batch_never_duplicates_inner_work() {
        // Even when the same uncached configuration appears many times in
        // one parallel batch, the inner evaluator runs exactly once per
        // distinct configuration (in-flight dedup, not just memoization).
        let s = space();
        let calls = AtomicUsize::new(0);
        let e = FnEvaluator::new(1, |c| {
            calls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(std::time::Duration::from_millis(2));
            vec![c.value_f64(0)]
        });
        let cached = CachedEvaluator::new(&e);
        let configs: Vec<_> = (0..64).map(|i| s.config_at(i % 4)).collect();
        let out = cached.evaluate_batch(&configs);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o, &vec![(i % 4) as f64]);
        }
        assert_eq!(calls.load(Ordering::Relaxed), 4, "duplicated inner work");
        assert_eq!(cached.distinct_evaluations(), 4);
    }

    #[test]
    fn with_space_keys_by_flat_index() {
        let s = space();
        let calls = AtomicUsize::new(0);
        let e = FnEvaluator::new(1, |c| {
            calls.fetch_add(1, Ordering::Relaxed);
            vec![c.value_f64(0)]
        });
        let cached = CachedEvaluator::with_space(&e, &s);
        assert_eq!(cached.evaluate(&s.config_at(7)), vec![7.0]);
        assert_eq!(cached.evaluate(&s.config_at(7)), vec![7.0]);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(cached.distinct_evaluations(), 1);
    }
}
