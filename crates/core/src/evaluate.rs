//! The black-box evaluation interface.

use crate::error::EvalError;
use crate::space::{Configuration, ParamSpace};
use rayon::prelude::*;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Run `evaluator.evaluate(config)` with a panic guard, converting an unwind
/// into [`EvalError::Panicked`]. This is the default bridge from the
/// infallible API to the fallible one; fallible evaluators and wrappers that
/// override [`Evaluator::try_evaluate`] can reuse it for their fall-through
/// path.
pub fn catch_eval<E: Evaluator + ?Sized>(
    evaluator: &E,
    config: &Configuration,
) -> Result<Vec<f64>, EvalError> {
    catch_unwind(AssertUnwindSafe(|| evaluator.evaluate(config)))
        // `as_ref` matters: coercing `&Box<dyn Any>` would downcast against
        // the box itself and never match `&str`/`String` payloads.
        .map_err(|payload| EvalError::Panicked { message: panic_message(payload.as_ref()) })
}

/// A failed evaluation with its full retry story: the final error plus how
/// many attempts were made and how long they took in total. This is what the
/// journal records and what `FailureRecord` carries — the plain
/// [`EvalError`] API drops the metadata for callers that don't need it.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedEvaluation {
    /// The final (post-retry) failure.
    pub error: EvalError,
    /// Attempts made, retries included (≥ 1).
    pub attempts: u32,
    /// Wall-clock across all attempts, in milliseconds.
    pub elapsed_ms: u64,
}

impl FailedEvaluation {
    /// Wrap a single-attempt failure whose duration was not measured.
    pub fn single(error: EvalError) -> Self {
        FailedEvaluation { error, attempts: 1, elapsed_ms: 0 }
    }
}

impl From<FailedEvaluation> for EvalError {
    fn from(f: FailedEvaluation) -> EvalError {
        f.error
    }
}

/// Stringify a panic payload (the common `&str`/`String` cases).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A black-box objective function: given a configuration, measure (or model)
/// each objective. All objectives are **minimized**.
///
/// In the paper this is "run SLAMBench on the board and record max-ATE and
/// per-frame runtime"; in this reproduction it is either a real pipeline run
/// or an analytic device model. Implementations must be `Sync` — the
/// optimizer evaluates batches in parallel.
///
/// # Fallibility
///
/// Real measurement targets crash, hang, and diverge. The optimizer drives
/// evaluations exclusively through [`Evaluator::try_evaluate_batch`]; the
/// default implementations wrap the infallible [`Evaluator::evaluate`] in a
/// panic guard, so existing infallible implementors keep working unchanged
/// while inherently fallible evaluators (pipeline runners, device farms)
/// override [`Evaluator::try_evaluate`] and report structured
/// [`EvalError`]s.
pub trait Evaluator: Sync {
    /// Number of objectives returned by [`Evaluator::evaluate`].
    fn n_objectives(&self) -> usize;

    /// Human-readable objective names, used in reports.
    fn objective_names(&self) -> Vec<String> {
        (0..self.n_objectives()).map(|i| format!("objective{i}")).collect()
    }

    /// Measure all objectives for one configuration.
    fn evaluate(&self, config: &Configuration) -> Vec<f64>;

    /// Evaluate a batch in parallel (order-preserving). The default uses
    /// Rayon; override for evaluators with their own scheduling.
    fn evaluate_batch(&self, configs: &[Configuration]) -> Vec<Vec<f64>> {
        configs.par_iter().map(|c| self.evaluate(c)).collect()
    }

    /// Fallible evaluation of one configuration. The default catches panics
    /// from [`Evaluator::evaluate`] and reports them as
    /// [`EvalError::Panicked`]; override to surface richer failure modes
    /// (divergence, timeouts, transient device errors).
    fn try_evaluate(&self, config: &Configuration) -> Result<Vec<f64>, EvalError> {
        catch_eval(self, config)
    }

    /// Fallible batch evaluation (order-preserving, parallel by default).
    /// One configuration's failure never affects its batch siblings.
    fn try_evaluate_batch(&self, configs: &[Configuration]) -> Vec<Result<Vec<f64>, EvalError>> {
        configs.par_iter().map(|c| self.try_evaluate(c)).collect()
    }

    /// Like [`Evaluator::try_evaluate`], but a failure carries its retry
    /// story ([`FailedEvaluation`]: attempt count + elapsed wall-clock).
    /// The default times a single `try_evaluate` call; wrappers that retry
    /// internally (e.g. `ResilientEvaluator`) override this to report real
    /// attempt counts.
    fn try_evaluate_detailed(
        &self,
        config: &Configuration,
    ) -> Result<Vec<f64>, FailedEvaluation> {
        let clock = hm_timing::Stopwatch::start();
        self.try_evaluate(config).map_err(|error| FailedEvaluation {
            error,
            attempts: 1,
            elapsed_ms: clock.elapsed_ms(),
        })
    }

    /// Detailed batch evaluation. The default routes through
    /// [`Evaluator::try_evaluate_batch`] — *not* per-config
    /// `try_evaluate_detailed` — so evaluators with custom batch scheduling
    /// keep their scheduling (and their exact results) on the detailed
    /// path; the trade-off is that failures reported this way carry no
    /// timing metadata (`attempts = 1`, `elapsed_ms = 0`).
    fn try_evaluate_batch_detailed(
        &self,
        configs: &[Configuration],
    ) -> Vec<Result<Vec<f64>, FailedEvaluation>> {
        self.try_evaluate_batch(configs)
            .into_iter()
            .map(|r| r.map_err(FailedEvaluation::single))
            .collect()
    }
}

/// Adapter turning a plain closure into an [`Evaluator`].
///
/// ```
/// use hypermapper::{FnEvaluator, Evaluator, ParamSpace};
/// let space = ParamSpace::builder().ordinal("x", [0.0, 1.0, 2.0]).build().unwrap();
/// let eval = FnEvaluator::new(2, |c| vec![c.value_f64(0), -c.value_f64(0)]);
/// assert_eq!(eval.evaluate(&space.config_at(2)), vec![2.0, -2.0]);
/// ```
pub struct FnEvaluator<F: Fn(&Configuration) -> Vec<f64> + Sync> {
    n_objectives: usize,
    names: Vec<String>,
    f: F,
}

impl<F: Fn(&Configuration) -> Vec<f64> + Sync> FnEvaluator<F> {
    /// Wrap `f`, which must return `n_objectives` values per call.
    pub fn new(n_objectives: usize, f: F) -> Self {
        FnEvaluator {
            n_objectives,
            names: (0..n_objectives).map(|i| format!("objective{i}")).collect(),
            f,
        }
    }

    /// Set the objective names reported by this evaluator.
    pub fn with_names<S: Into<String>, I: IntoIterator<Item = S>>(mut self, names: I) -> Self {
        self.names = names.into_iter().map(Into::into).collect();
        assert_eq!(self.names.len(), self.n_objectives, "one name per objective");
        self
    }
}

impl<F: Fn(&Configuration) -> Vec<f64> + Sync> Evaluator for FnEvaluator<F> {
    fn n_objectives(&self) -> usize {
        self.n_objectives
    }
    fn objective_names(&self) -> Vec<String> {
        self.names.clone()
    }
    fn evaluate(&self, config: &Configuration) -> Vec<f64> {
        (self.f)(config)
    }
}

/// Cache key: the compact flat index when a [`ParamSpace`] is attached,
/// otherwise the configuration's choice vector (cheaper than cloning the
/// whole [`Configuration`], which also carries resolved `f64` values).
#[derive(PartialEq, Eq, Hash)]
enum CacheKey {
    Flat(u64),
    Choices(Vec<u32>),
}

/// State of one configuration's evaluation cell.
enum CellState {
    /// No evaluation has completed; nobody is working on it.
    Idle,
    /// A thread is currently evaluating this configuration.
    Running,
    /// A successful result, served to every later caller.
    Done(Vec<f64>),
}

/// A retry-capable once-cell: deduplicates in-flight work like
/// `OnceLock::get_or_init`, but a *failed* (panicked or erroring) evaluation
/// returns the cell to `Idle` so a later caller can retry instead of being
/// wedged by a poisoned `Once`.
struct EvalCell {
    state: Mutex<CellState>,
    ready: Condvar,
}

impl EvalCell {
    fn new() -> Self {
        EvalCell { state: Mutex::new(CellState::Idle), ready: Condvar::new() }
    }

    /// Get the cached success, or run `f` (at most one runner at a time per
    /// cell). On `Err` the cell becomes retryable and the error is returned
    /// to this caller only; waiting callers re-attempt themselves.
    ///
    /// Generic over the error type so an infallible initializer can use
    /// [`std::convert::Infallible`] and match the error away instead of
    /// bridging through a panic.
    fn get_or_try_init<Er>(
        &self,
        f: impl Fn() -> Result<Vec<f64>, Er>,
    ) -> Result<Vec<f64>, Er> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match &*state {
                CellState::Done(v) => return Ok(v.clone()),
                CellState::Running => {
                    state = self
                        .ready
                        .wait(state)
                        .unwrap_or_else(|e| e.into_inner());
                }
                CellState::Idle => {
                    *state = CellState::Running;
                    drop(state);
                    // `f` has its own panic guard (`try_evaluate`), but stay
                    // defensive: if it unwinds anyway, reset to Idle before
                    // re-raising so waiters are released, not wedged.
                    let result = catch_unwind(AssertUnwindSafe(&f));
                    state = self.state.lock().unwrap_or_else(|e| e.into_inner());
                    match result {
                        Ok(Ok(v)) => {
                            *state = CellState::Done(v.clone());
                            self.ready.notify_all();
                            return Ok(v);
                        }
                        Ok(Err(e)) => {
                            *state = CellState::Idle;
                            self.ready.notify_all();
                            return Err(e);
                        }
                        Err(payload) => {
                            *state = CellState::Idle;
                            self.ready.notify_all();
                            drop(state);
                            std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        }
    }
}

/// Memoizing wrapper: caches objective vectors by configuration and counts
/// the number of *distinct* underlying evaluations. Useful both to avoid
/// re-running expensive pipelines and to audit an exploration's evaluation
/// budget in tests.
///
/// Concurrency: each key owns an [`EvalCell`], so when two threads race on
/// the same *uncached* configuration the second blocks on the first's result
/// instead of duplicating the evaluation (in-flight deduplication). The map
/// lock is held only to look up/insert the cell, never across an inner
/// evaluation, and both locks recover from poisoning — a panicking inner
/// evaluation can never wedge later callers.
///
/// Failure semantics: only **successes** are cached. A failed evaluation
/// (panic or [`EvalError`]) leaves its cell retryable, so wrapping order
/// matters — put retry logic *inside* the cache
/// (`CachedEvaluator::new(&resilient)`) to cache final outcomes, or outside
/// to retry through the cache.
///
/// Composes under [`crate::scheduler::ParallelBatchEvaluator`]: when
/// parallel workers race on the same uncached configuration, the in-flight
/// deduplication above guarantees exactly one inner evaluation per distinct
/// configuration regardless of worker count.
pub struct CachedEvaluator<'a, E: Evaluator> {
    inner: &'a E,
    space: Option<&'a ParamSpace>,
    cache: Mutex<HashMap<CacheKey, Arc<EvalCell>>>,
    evaluations: AtomicUsize,
}

impl<'a, E: Evaluator> CachedEvaluator<'a, E> {
    /// Wrap `inner` with an empty cache, keyed by choice vector.
    pub fn new(inner: &'a E) -> Self {
        CachedEvaluator {
            inner,
            space: None,
            cache: Mutex::new(HashMap::new()),
            evaluations: AtomicUsize::new(0),
        }
    }

    /// Wrap `inner` with an empty cache keyed by the space's flat index —
    /// no per-key allocation. All evaluated configurations must come from
    /// `space`.
    pub fn with_space(inner: &'a E, space: &'a ParamSpace) -> Self {
        CachedEvaluator {
            inner,
            space: Some(space),
            cache: Mutex::new(HashMap::new()),
            evaluations: AtomicUsize::new(0),
        }
    }

    fn key(&self, config: &Configuration) -> CacheKey {
        match self.space {
            Some(space) => CacheKey::Flat(space.flat_index(config)),
            None => CacheKey::Choices(config.choices().to_vec()),
        }
    }

    /// Number of distinct configurations actually evaluated so far (cache
    /// hits and deduplicated in-flight races don't count).
    pub fn distinct_evaluations(&self) -> usize {
        self.evaluations.load(Ordering::Relaxed)
    }
}

impl<E: Evaluator> CachedEvaluator<'_, E> {
    fn cell(&self, config: &Configuration) -> Arc<EvalCell> {
        let mut map = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(self.key(config))
                .or_insert_with(|| Arc::new(EvalCell::new())),
        )
    }
}

impl<E: Evaluator> Evaluator for CachedEvaluator<'_, E> {
    fn n_objectives(&self) -> usize {
        self.inner.n_objectives()
    }
    fn objective_names(&self) -> Vec<String> {
        self.inner.objective_names()
    }
    /// Infallible path: panics from the inner evaluator propagate to the
    /// caller (preserving the uncached behaviour), but the cell stays
    /// retryable and no lock is left poisoned. The initializer's error type
    /// is [`Infallible`](std::convert::Infallible), so the `Err` arm is
    /// statically uninhabited — no audited-panic bridge needed.
    fn evaluate(&self, config: &Configuration) -> Vec<f64> {
        self.cell(config)
            .get_or_try_init(|| {
                self.evaluations.fetch_add(1, Ordering::Relaxed);
                Ok::<_, std::convert::Infallible>(self.inner.evaluate(config))
            })
            .unwrap_or_else(|never| match never {})
    }
    fn try_evaluate(&self, config: &Configuration) -> Result<Vec<f64>, EvalError> {
        self.cell(config).get_or_try_init(|| {
            self.evaluations.fetch_add(1, Ordering::Relaxed);
            self.inner.try_evaluate(config)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ParamSpace;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn space() -> ParamSpace {
        ParamSpace::builder()
            .ordinal("x", (0..10).map(f64::from))
            .build()
            .unwrap()
    }

    #[test]
    fn fn_evaluator_basics() {
        let s = space();
        let e = FnEvaluator::new(2, |c| vec![c.value_f64(0), 10.0 - c.value_f64(0)])
            .with_names(["time", "error"]);
        assert_eq!(e.n_objectives(), 2);
        assert_eq!(e.objective_names(), vec!["time", "error"]);
        assert_eq!(e.evaluate(&s.config_at(3)), vec![3.0, 7.0]);
    }

    #[test]
    fn batch_matches_single_and_preserves_order() {
        let s = space();
        let e = FnEvaluator::new(1, |c| vec![c.value_f64(0) * 2.0]);
        let configs: Vec<_> = (0..10).map(|i| s.config_at(i)).collect();
        let batch = e.evaluate_batch(&configs);
        for (i, out) in batch.iter().enumerate() {
            assert_eq!(out, &e.evaluate(&configs[i]));
        }
    }

    #[test]
    fn cache_avoids_reevaluation() {
        let s = space();
        let calls = AtomicUsize::new(0);
        let e = FnEvaluator::new(1, |c| {
            calls.fetch_add(1, Ordering::Relaxed);
            vec![c.value_f64(0)]
        });
        let cached = CachedEvaluator::new(&e);
        let c = s.config_at(5);
        assert_eq!(cached.evaluate(&c), vec![5.0]);
        assert_eq!(cached.evaluate(&c), vec![5.0]);
        assert_eq!(cached.evaluate(&s.config_at(5)), vec![5.0]);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(cached.distinct_evaluations(), 1);
        cached.evaluate(&s.config_at(6));
        assert_eq!(cached.distinct_evaluations(), 2);
    }

    #[test]
    fn cached_batch_parallel_safe() {
        let s = space();
        let e = FnEvaluator::new(1, |c| vec![c.value_f64(0)]);
        let cached = CachedEvaluator::new(&e);
        let configs: Vec<_> = (0..10).map(|i| s.config_at(i % 5)).collect();
        let out = cached.evaluate_batch(&configs);
        assert_eq!(out.len(), 10);
        assert_eq!(cached.distinct_evaluations(), 5);
    }

    #[test]
    fn cached_batch_never_duplicates_inner_work() {
        // Even when the same uncached configuration appears many times in
        // one parallel batch, the inner evaluator runs exactly once per
        // distinct configuration (in-flight dedup, not just memoization).
        let s = space();
        let calls = AtomicUsize::new(0);
        let e = FnEvaluator::new(1, |c| {
            calls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(std::time::Duration::from_millis(2));
            vec![c.value_f64(0)]
        });
        let cached = CachedEvaluator::new(&e);
        let configs: Vec<_> = (0..64).map(|i| s.config_at(i % 4)).collect();
        let out = cached.evaluate_batch(&configs);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o, &vec![(i % 4) as f64]);
        }
        assert_eq!(calls.load(Ordering::Relaxed), 4, "duplicated inner work");
        assert_eq!(cached.distinct_evaluations(), 4);
    }

    #[test]
    fn default_try_evaluate_catches_panics() {
        let s = space();
        let e = FnEvaluator::new(1, |c| {
            if c.value_f64(0) == 3.0 {
                panic!("injected failure at x=3");
            }
            vec![c.value_f64(0)]
        });
        assert_eq!(e.try_evaluate(&s.config_at(2)), Ok(vec![2.0]));
        match e.try_evaluate(&s.config_at(3)) {
            Err(EvalError::Panicked { message }) => {
                assert!(message.contains("injected failure"), "message: {message}")
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn try_batch_isolates_failures() {
        let s = space();
        let e = FnEvaluator::new(1, |c| {
            assert!(c.value_f64(0) != 4.0, "boom");
            vec![c.value_f64(0)]
        });
        let configs: Vec<_> = (0..8).map(|i| s.config_at(i)).collect();
        let out = e.try_evaluate_batch(&configs);
        assert_eq!(out.len(), 8);
        for (i, r) in out.iter().enumerate() {
            if i == 4 {
                assert!(matches!(r, Err(EvalError::Panicked { .. })));
            } else {
                assert_eq!(r, &Ok(vec![i as f64]));
            }
        }
    }

    #[test]
    fn cache_leaves_panicked_cell_retryable() {
        // Before the fault-tolerance rework this scenario wedged: the panic
        // poisoned the cell's `Once`, so the *retry* (second call) panicked
        // with "Once instance has previously been poisoned" instead of
        // re-running the evaluation.
        let s = space();
        let calls = AtomicUsize::new(0);
        let e = FnEvaluator::new(1, |c| {
            // Fail only the first attempt for this configuration.
            if calls.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("flaky first attempt");
            }
            vec![c.value_f64(0)]
        });
        let cached = CachedEvaluator::new(&e);
        let c = s.config_at(5);
        let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cached.evaluate(&c)));
        assert!(first.is_err(), "first attempt must propagate the panic");
        // Retry succeeds and is then served from cache.
        assert_eq!(cached.evaluate(&c), vec![5.0]);
        assert_eq!(cached.evaluate(&c), vec![5.0]);
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn cache_try_path_does_not_cache_errors() {
        let s = space();
        let calls = AtomicUsize::new(0);
        let e = FnEvaluator::new(1, |c| {
            if calls.fetch_add(1, Ordering::Relaxed) < 2 {
                panic!("two bad attempts");
            }
            vec![c.value_f64(0)]
        });
        let cached = CachedEvaluator::new(&e);
        let c = s.config_at(7);
        assert!(matches!(cached.try_evaluate(&c), Err(EvalError::Panicked { .. })));
        assert!(matches!(cached.try_evaluate(&c), Err(EvalError::Panicked { .. })));
        assert_eq!(cached.try_evaluate(&c), Ok(vec![7.0]));
        // Success is cached: no further inner calls.
        assert_eq!(cached.try_evaluate(&c), Ok(vec![7.0]));
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn with_space_keys_by_flat_index() {
        let s = space();
        let calls = AtomicUsize::new(0);
        let e = FnEvaluator::new(1, |c| {
            calls.fetch_add(1, Ordering::Relaxed);
            vec![c.value_f64(0)]
        });
        let cached = CachedEvaluator::with_space(&e, &s);
        assert_eq!(cached.evaluate(&s.config_at(7)), vec![7.0]);
        assert_eq!(cached.evaluate(&s.config_at(7)), vec![7.0]);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(cached.distinct_evaluations(), 1);
    }
}
