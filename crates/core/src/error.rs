//! Error types for space construction, evaluation, and exploration.

use serde::Serialize;
use std::fmt;
use std::time::Duration;

/// Why a single configuration's evaluation failed.
///
/// This is the per-configuration failure taxonomy of the fault-tolerant
/// evaluation layer: SLAMBench-style workloads crash, hang, or diverge on
/// individual configurations (tracking-failure configurations are a
/// first-class outcome in Nardi et al. 2015 and Bodin et al. 2018), and the
/// optimizer must record those outcomes instead of dying with them.
#[derive(Debug, Clone, Serialize)]
pub enum EvalError {
    /// The evaluator returned a NaN or infinite objective value.
    NonFinite {
        /// Index of the offending objective.
        objective: usize,
        /// The offending value, carried as raw bits so the error stays
        /// comparable (`f64::NAN != f64::NAN`).
        bits: u64,
    },
    /// The evaluator returned the wrong number of objectives.
    WrongArity {
        /// Objectives the optimizer expected.
        expected: usize,
        /// Objectives the evaluator returned.
        got: usize,
    },
    /// The underlying pipeline diverged (lost tracking, non-finite pose)
    /// and aborted early.
    Diverged {
        /// Human-readable description of the divergence.
        reason: String,
    },
    /// The evaluation panicked and was caught by `catch_unwind`.
    Panicked {
        /// The panic payload, stringified when possible.
        message: String,
    },
    /// The evaluation exceeded its per-configuration deadline.
    Timeout {
        /// Wall-clock milliseconds actually spent.
        elapsed_ms: u64,
        /// The deadline that was exceeded, in milliseconds.
        deadline_ms: u64,
    },
    /// A transient infrastructure failure (flaky device, lost connection);
    /// retrying the same configuration may succeed.
    Transient {
        /// Human-readable description of the transient condition.
        reason: String,
    },
}

impl EvalError {
    /// Construct a [`EvalError::NonFinite`] from the offending value.
    pub fn non_finite(objective: usize, value: f64) -> Self {
        EvalError::NonFinite { objective, bits: value.to_bits() }
    }

    /// Construct a [`EvalError::Timeout`] from durations.
    pub fn timeout(elapsed: Duration, deadline: Duration) -> Self {
        EvalError::Timeout {
            elapsed_ms: elapsed.as_millis() as u64,
            deadline_ms: deadline.as_millis() as u64,
        }
    }

    /// The offending value of a [`EvalError::NonFinite`], if any.
    pub fn non_finite_value(&self) -> Option<f64> {
        match self {
            EvalError::NonFinite { bits, .. } => Some(f64::from_bits(*bits)),
            _ => None,
        }
    }

    /// Whether a retry of the same configuration may plausibly succeed.
    /// Only [`EvalError::Transient`] qualifies: panics, NaNs, and
    /// divergences are deterministic properties of the configuration, and a
    /// timed-out configuration has already consumed its budget.
    pub fn is_retryable(&self) -> bool {
        matches!(self, EvalError::Transient { .. })
    }

    /// Short stable tag for logs and failure statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            EvalError::NonFinite { .. } => "non-finite",
            EvalError::WrongArity { .. } => "wrong-arity",
            EvalError::Diverged { .. } => "diverged",
            EvalError::Panicked { .. } => "panicked",
            EvalError::Timeout { .. } => "timeout",
            EvalError::Transient { .. } => "transient",
        }
    }
}

impl PartialEq for EvalError {
    fn eq(&self, other: &Self) -> bool {
        use EvalError::*;
        match (self, other) {
            (
                NonFinite { objective: a, bits: ab },
                NonFinite { objective: b, bits: bb },
            ) => a == b && ab == bb,
            (
                WrongArity { expected: a, got: ag },
                WrongArity { expected: b, got: bg },
            ) => a == b && ag == bg,
            (Diverged { reason: a }, Diverged { reason: b }) => a == b,
            (Panicked { message: a }, Panicked { message: b }) => a == b,
            (
                Timeout { elapsed_ms: a, deadline_ms: ad },
                Timeout { elapsed_ms: b, deadline_ms: bd },
            ) => a == b && ad == bd,
            (Transient { reason: a }, Transient { reason: b }) => a == b,
            _ => false,
        }
    }
}

impl Eq for EvalError {}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::NonFinite { objective, bits } => {
                write!(f, "objective {objective} is non-finite ({})", f64::from_bits(*bits))
            }
            EvalError::WrongArity { expected, got } => {
                write!(f, "evaluator returned {got} objectives, expected {expected}")
            }
            EvalError::Diverged { reason } => write!(f, "pipeline diverged: {reason}"),
            EvalError::Panicked { message } => write!(f, "evaluation panicked: {message}"),
            EvalError::Timeout { elapsed_ms, deadline_ms } => {
                write!(f, "evaluation took {elapsed_ms} ms, deadline {deadline_ms} ms")
            }
            EvalError::Transient { reason } => write!(f, "transient failure: {reason}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Errors produced while building parameter spaces or running explorations.
#[derive(Debug, Clone, PartialEq)]
pub enum HmError {
    /// A parameter was declared with an empty domain.
    EmptyDomain(String),
    /// Two parameters share a name.
    DuplicateParam(String),
    /// A space with no parameters was requested.
    EmptySpace,
    /// An ordinal domain contained a non-finite value.
    NonFiniteValue(String),
    /// The requested number of distinct samples exceeds the space size.
    NotEnoughConfigurations { requested: usize, available: u64 },
    /// An evaluator returned the wrong number of objectives.
    ObjectiveArity { expected: usize, got: usize },
    /// An evaluator returned a non-finite objective value.
    NonFiniteObjective { objective: usize },
    /// Every evaluation in a phase failed — there is nothing to train on.
    /// `iteration` is `None` for the random bootstrap phase.
    NoSuccessfulEvaluations { iteration: Option<usize>, attempted: usize },
    /// The write-ahead journal could not be written or flushed.
    Journal(String),
    /// A journal was replayed against an optimizer whose configuration,
    /// space, or recorded history does not match the one that wrote it.
    JournalMismatch(String),
}

impl fmt::Display for HmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HmError::EmptyDomain(name) => write!(f, "parameter `{name}` has an empty domain"),
            HmError::DuplicateParam(name) => write!(f, "duplicate parameter name `{name}`"),
            HmError::EmptySpace => write!(f, "a parameter space needs at least one parameter"),
            HmError::NonFiniteValue(name) => {
                write!(f, "parameter `{name}` contains a non-finite value")
            }
            HmError::NotEnoughConfigurations { requested, available } => write!(
                f,
                "requested {requested} distinct configurations but the space only has {available}"
            ),
            HmError::ObjectiveArity { expected, got } => {
                write!(f, "evaluator returned {got} objectives, expected {expected}")
            }
            HmError::NonFiniteObjective { objective } => {
                write!(f, "evaluator returned a non-finite value for objective {objective}")
            }
            HmError::NoSuccessfulEvaluations { iteration, attempted } => match iteration {
                Some(i) => write!(
                    f,
                    "all {attempted} evaluations of active-learning iteration {i} failed"
                ),
                None => write!(f, "all {attempted} bootstrap evaluations failed"),
            },
            HmError::Journal(reason) => write!(f, "journal write failed: {reason}"),
            HmError::JournalMismatch(reason) => {
                write!(f, "journal does not match this run: {reason}")
            }
        }
    }
}

impl std::error::Error for HmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_context() {
        let e = HmError::EmptyDomain("mu".into());
        assert!(e.to_string().contains("mu"));
        let e = HmError::NotEnoughConfigurations { requested: 10, available: 5 };
        assert!(e.to_string().contains("10") && e.to_string().contains('5'));
        let e = HmError::ObjectiveArity { expected: 2, got: 3 };
        assert!(e.to_string().contains('2') && e.to_string().contains('3'));
    }
}
