//! Error type for space construction and exploration.

use std::fmt;

/// Errors produced while building parameter spaces or running explorations.
#[derive(Debug, Clone, PartialEq)]
pub enum HmError {
    /// A parameter was declared with an empty domain.
    EmptyDomain(String),
    /// Two parameters share a name.
    DuplicateParam(String),
    /// A space with no parameters was requested.
    EmptySpace,
    /// An ordinal domain contained a non-finite value.
    NonFiniteValue(String),
    /// The requested number of distinct samples exceeds the space size.
    NotEnoughConfigurations { requested: usize, available: u64 },
    /// An evaluator returned the wrong number of objectives.
    ObjectiveArity { expected: usize, got: usize },
    /// An evaluator returned a non-finite objective value.
    NonFiniteObjective { objective: usize },
}

impl fmt::Display for HmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HmError::EmptyDomain(name) => write!(f, "parameter `{name}` has an empty domain"),
            HmError::DuplicateParam(name) => write!(f, "duplicate parameter name `{name}`"),
            HmError::EmptySpace => write!(f, "a parameter space needs at least one parameter"),
            HmError::NonFiniteValue(name) => {
                write!(f, "parameter `{name}` contains a non-finite value")
            }
            HmError::NotEnoughConfigurations { requested, available } => write!(
                f,
                "requested {requested} distinct configurations but the space only has {available}"
            ),
            HmError::ObjectiveArity { expected, got } => {
                write!(f, "evaluator returned {got} objectives, expected {expected}")
            }
            HmError::NonFiniteObjective { objective } => {
                write!(f, "evaluator returned a non-finite value for objective {objective}")
            }
        }
    }
}

impl std::error::Error for HmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_context() {
        let e = HmError::EmptyDomain("mu".into());
        assert!(e.to_string().contains("mu"));
        let e = HmError::NotEnoughConfigurations { requested: 10, available: 5 };
        assert!(e.to_string().contains("10") && e.to_string().contains('5'));
        let e = HmError::ObjectiveArity { expected: 2, got: 3 };
        assert!(e.to_string().contains('2') && e.to_string().contains('3'));
    }
}
