//! Pareto-dominance machinery (all objectives are **minimized**).
//!
//! # Non-finite points
//!
//! The front routines ([`pareto_front`], [`pareto_front_2d`]) **exclude**
//! points with any NaN or infinite objective: a non-measurement can neither
//! dominate nor sit on the front. Both the fast 2-objective sweep and the
//! general O(n²) scan apply the same filter, so the two paths agree on
//! degenerate inputs. (The optimizer already promotes non-finite objectives
//! to evaluation failures before they reach a front, so this filter is a
//! backstop for direct library users.)
//!
//! # Duplicates — the weak-Pareto convention
//!
//! Every routine in this module follows one convention for exactly equal
//! points, spelled out here because it is easy to get subtly inconsistent:
//!
//! * [`dominates`] is **strict**: `dominates(a, a)` is `false`. Two exact
//!   duplicates never dominate each other.
//! * Consequently the front routines keep **all copies** of a duplicated
//!   non-dominated point — membership is "not dominated by any other
//!   point", and equals don't count as dominators. The 2-objective sweep
//!   and the general scan agree on this.
//! * [`hypervolume_2d`] counts a duplicated front point's area **once**:
//!   the staircase accumulation skips copies that do not lower `y`.
//! * [`IncrementalFront`] inherits the same convention — its
//!   [`front_indices`](IncrementalFront::front_indices) is proven
//!   bit-identical to [`pareto_front`] on every input, duplicates included
//!   (`crates/core/tests/incremental_front.rs`).

/// True when `a` Pareto-dominates `b`: `a` is no worse in every objective
/// and strictly better in at least one.
///
/// NaN comparisons are always false, so a NaN objective can neither help
/// `a` dominate nor be dominated — callers comparing possibly-NaN points
/// should filter them first, as the front routines in this module do.
///
/// # Panics
/// If the two points have different arity.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective arity mismatch");
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Indices of the non-dominated points among `points` (each a slice of
/// minimized objectives). Duplicated non-dominated points are all kept;
/// points with any non-finite objective are excluded (see the module docs).
///
/// Dispatches to the fast sort-based routine for the bi-objective case
/// (the paper's accuracy/runtime setting) and falls back to the general
/// O(n²) scan otherwise.
pub fn pareto_front(points: &[Vec<f64>]) -> Vec<usize> {
    if points.is_empty() {
        return Vec::new();
    }
    if points[0].len() == 2 {
        return pareto_front_2d_impl(points.len(), |i| (points[i][0], points[i][1]));
    }
    let finite: Vec<usize> = (0..points.len())
        .filter(|&i| points[i].iter().all(|v| v.is_finite()))
        .collect();
    let mut front = Vec::new();
    'outer: for &i in &finite {
        for &j in &finite {
            if i != j && dominates(&points[j], &points[i]) {
                continue 'outer;
            }
        }
        front.push(i);
    }
    front
}

/// Fast bi-objective Pareto front over `(x, y)` pairs: sort by `x` then
/// sweep keeping points that improve the best `y` seen so far.
/// Returns indices into the original slice, sorted by ascending `x`.
/// Points with a non-finite coordinate are excluded (see the module docs).
pub fn pareto_front_2d(points: &[(f64, f64)]) -> Vec<usize> {
    pareto_front_2d_impl(points.len(), |i| points[i])
}

/// Canonicalize a signed zero: `-0.0` and `+0.0` compare equal numerically,
/// so sort keys must not distinguish them. Identity for every other value.
#[inline]
fn canon(v: f64) -> f64 {
    v + 0.0
}

fn pareto_front_2d_impl(n: usize, get: impl Fn(usize) -> (f64, f64)) -> Vec<usize> {
    // Drop non-finite points up front: a NaN or ±∞ coordinate is a failed
    // measurement, and letting one through (e.g. x = −∞) would dominate
    // every real point and empty the front. This matches the general-path
    // filter in `pareto_front`.
    let mut order: Vec<usize> = (0..n)
        .filter(|&i| {
            let (x, y) = get(i);
            x.is_finite() && y.is_finite()
        })
        .collect();
    // Sort by x, tie-break by y, so the sweep sees the best y first among
    // equal-x points. Coordinates are canonicalized (−0.0 → +0.0) so the
    // sort groups *numerically* equal x together: `total_cmp` alone orders
    // −0.0 before +0.0, which would let a point at x = −0.0 slip past the
    // sweep ahead of a dominating point at x = +0.0 and disagree with the
    // general path's numeric dominance (see the module's duplicate docs).
    order.sort_by(|&a, &b| {
        let (ax, ay) = get(a);
        let (bx, by) = get(b);
        canon(ax).total_cmp(&canon(bx)).then(canon(ay).total_cmp(&canon(by)))
    });
    let mut front = Vec::new();
    let mut best_y = f64::INFINITY;
    let mut last_x = f64::NEG_INFINITY;
    for &i in &order {
        let (x, y) = get(i);
        if y < best_y || (y == best_y && x == last_x) {
            // Keep duplicates of an accepted point; a strictly worse-or-equal
            // y at larger x is dominated.
            if y < best_y {
                best_y = y;
                last_x = x;
                front.push(i);
            } else if x == last_x {
                front.push(i);
            }
        }
    }
    front
}

/// Hypervolume (area) dominated by the bi-objective front of `points`,
/// bounded by the reference point `(ref_x, ref_y)` (must be weakly worse
/// than every point considered). Points beyond the reference — and points
/// with any non-finite coordinate, which would contribute infinite or NaN
/// slabs — are ignored. A non-finite reference is rejected: it returns 0.0
/// (debug builds also assert), since no finite area is bounded by it.
///
/// This is the scalar progress measure used to compare random sampling vs.
/// active learning across iterations.
pub fn hypervolume_2d(points: &[(f64, f64)], reference: (f64, f64)) -> f64 {
    if !(reference.0.is_finite() && reference.1.is_finite()) {
        debug_assert!(false, "non-finite hypervolume reference {reference:?}");
        return 0.0;
    }
    let in_box: Vec<(f64, f64)> = points
        .iter()
        .copied()
        .filter(|&(x, y)| x.is_finite() && y.is_finite() && x <= reference.0 && y <= reference.1)
        .collect();
    if in_box.is_empty() {
        return 0.0;
    }
    let front = pareto_front_2d(&in_box);
    // Front is sorted by ascending x (descending y); accumulate slabs.
    let mut area = 0.0;
    let mut prev_y = reference.1;
    for &i in &front {
        let (x, y) = in_box[i];
        if y >= prev_y {
            continue; // duplicate kept by the front routine
        }
        area += (reference.0 - x) * (prev_y - y);
        prev_y = y;
    }
    area
}

/// Order-preserving map from finite `f64` to `u64`: `key(a) < key(b)` iff
/// `a < b` numerically. Signed zeros are canonicalized first, so the key
/// order agrees exactly with the numeric order the dominance helpers use
/// (the standard sign-magnitude flip otherwise orders `-0.0 < +0.0`).
#[inline]
fn total_order_key(v: f64) -> u64 {
    let b = canon(v).to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b ^ (1 << 63)
    }
}

/// An incrementally-maintained Pareto front: points are [`push`]ed one at a
/// time and the current front is available at any moment, without ever
/// recomputing it from scratch.
///
/// [`front_indices`] returns **exactly** what [`pareto_front`] returns on
/// the same points in the same order — membership, duplicate handling (see
/// the module docs), non-finite exclusion, and output ordering are all
/// bit-identical, property-tested on 200 000+ point pools
/// (`crates/core/tests/incremental_front.rs`). That makes it a drop-in
/// replacement for per-iteration full recomputes in the optimizer: a pool
/// sweep or a growing sample archive pays `O(log f)`-ish per insertion
/// instead of `O(n log n)` per iteration.
///
/// Two regimes, dispatched on arity like [`pareto_front`]:
///
/// * **2 objectives** — an ordered set keyed by the batch routine's sort
///   key `(x, y, insertion index)` in numeric order (signed zeros equal).
///   The staircase invariant (y strictly decreasing across distinct x)
///   makes dominance a predecessor probe and eviction a forward range
///   scan, so insertion is `O(log f + evicted)`.
/// * **k objectives** — an archive scanned linearly per insertion
///   (`O(f)`), matching the general path's semantics.
///
/// [`push`]: IncrementalFront::push
/// [`front_indices`]: IncrementalFront::front_indices
#[derive(Debug, Clone)]
pub struct IncrementalFront {
    n_obj: usize,
    /// Points pushed so far (the next index to assign).
    n_points: usize,
    /// 2-objective regime: front members keyed by
    /// `(total_order_key(x), total_order_key(y), index)`.
    sorted: std::collections::BTreeMap<(u64, u64, usize), (f64, f64)>,
    /// k-objective regime: front members as `(index, objectives)`,
    /// ascending index.
    archive: Vec<(usize, Vec<f64>)>,
}

impl IncrementalFront {
    /// Empty front for points of `n_obj` objectives.
    ///
    /// # Panics
    /// If `n_obj == 0`.
    pub fn new(n_obj: usize) -> Self {
        assert!(n_obj >= 1, "need at least one objective");
        IncrementalFront {
            n_obj,
            n_points: 0,
            sorted: std::collections::BTreeMap::new(),
            archive: Vec::new(),
        }
    }

    /// Number of objectives per point.
    pub fn n_objectives(&self) -> usize {
        self.n_obj
    }

    /// Number of points pushed so far (the index the next push receives).
    pub fn len_points(&self) -> usize {
        self.n_points
    }

    /// Number of points currently on the front.
    pub fn front_len(&self) -> usize {
        if self.n_obj == 2 {
            self.sorted.len()
        } else {
            self.archive.len()
        }
    }

    /// Push the next point and return whether it joined the front.
    /// Non-finite points are counted but never join (the batch routines'
    /// filter). Pushing can evict previously-front points it dominates.
    ///
    /// # Panics
    /// If `point.len() != n_objectives()`.
    pub fn push(&mut self, point: &[f64]) -> bool {
        assert_eq!(point.len(), self.n_obj, "objective arity mismatch");
        let idx = self.n_points;
        self.n_points += 1;
        if point.iter().any(|v| !v.is_finite()) {
            return false;
        }
        if self.n_obj == 2 {
            self.push_2d(point[0], point[1], idx)
        } else {
            self.push_kd(point, idx)
        }
    }

    fn push_2d(&mut self, x: f64, y: f64, idx: usize) -> bool {
        let (xk, yk) = (total_order_key(x), total_order_key(y));

        // Dominance probe: the front's y is non-increasing in key order and
        // strictly decreasing across distinct x, so the predecessor
        // (greatest key before this point's slot) holds the minimum y among
        // members with x' ≤ x — the only candidate dominator.
        if let Some((_, &(px, py))) = self.sorted.range(..(xk, yk, usize::MAX)).next_back() {
            if py < y || (py == y && px < x) {
                return false; // strictly better y at no-worse x, or equal y at strictly smaller x
            }
        }

        // Evict members this point dominates: the contiguous run after the
        // slot whose y is no better (worse y at no-better x, or equal y at
        // strictly larger x — every range member has x' ≥ x, and exact
        // duplicates of this point sort *before* the range start, so they
        // are kept per the weak-Pareto convention). The scan stops at the
        // first strictly-better y; everything beyond is a trade-off.
        let mut evict: Vec<(u64, u64, usize)> = Vec::new();
        for (&k, &(_, qy)) in self.sorted.range((xk, yk, usize::MAX)..) {
            if qy < y {
                break;
            }
            evict.push(k);
        }
        for k in evict {
            self.sorted.remove(&k);
        }
        self.sorted.insert((xk, yk, idx), (x, y));
        true
    }

    fn push_kd(&mut self, point: &[f64], idx: usize) -> bool {
        if self.archive.iter().any(|(_, q)| dominates(q, point)) {
            return false;
        }
        self.archive.retain(|(_, q)| !dominates(point, q));
        self.archive.push((idx, point.to_vec()));
        true
    }

    /// Indices (in push order) of the points currently on the front —
    /// bit-identical to `pareto_front(&all_points_pushed_so_far)`:
    /// 2-objective fronts come out sorted by `(x, y)` numerically (ties in
    /// push order), k-objective fronts in ascending push order.
    pub fn front_indices(&self) -> Vec<usize> {
        if self.n_obj == 2 {
            self.sorted.keys().map(|&(_, _, i)| i).collect()
        } else {
            self.archive.iter().map(|&(i, _)| i).collect()
        }
    }

    /// The front's objective vectors, in [`front_indices`] order.
    ///
    /// [`front_indices`]: IncrementalFront::front_indices
    pub fn front_points(&self) -> Vec<Vec<f64>> {
        if self.n_obj == 2 {
            self.sorted.values().map(|&(x, y)| vec![x, y]).collect()
        } else {
            self.archive.iter().map(|(_, p)| p.clone()).collect()
        }
    }

    /// Hypervolume dominated by the maintained 2-objective front, bounded
    /// by `reference` — bit-identical to [`hypervolume_2d`] over the full
    /// point set whenever `reference` is weakly worse than every pushed
    /// point (dominated points never contribute slabs), computed in
    /// `O(front)` instead of `O(n log n)`.
    ///
    /// Returns 0.0 for non-2-objective fronts and for non-finite references
    /// (debug builds assert, matching [`hypervolume_2d`]).
    pub fn hypervolume(&self, reference: (f64, f64)) -> f64 {
        if self.n_obj != 2 {
            return 0.0;
        }
        if !(reference.0.is_finite() && reference.1.is_finite()) {
            debug_assert!(false, "non-finite hypervolume reference {reference:?}");
            return 0.0;
        }
        // Same slab accumulation as `hypervolume_2d`, in the same sweep
        // order, with the same skips — identical f64 operations, identical
        // result bits.
        let mut area = 0.0;
        let mut prev_y = reference.1;
        for &(x, y) in self.sorted.values() {
            if x > reference.0 || y > reference.1 || y >= prev_y {
                continue;
            }
            area += (reference.0 - x) * (prev_y - y);
            prev_y = y;
        }
        area
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basics() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
        assert!(!dominates(&[2.0, 2.0], &[1.0, 1.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0])); // trade-off
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0])); // equal: not strict
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn dominance_arity_checked() {
        dominates(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn front_of_convex_set() {
        let pts = vec![
            (1.0, 5.0),
            (2.0, 3.0),
            (3.0, 4.0), // dominated by (2,3)
            (4.0, 2.0),
            (5.0, 2.5), // dominated by (4,2)
            (6.0, 1.0),
        ];
        let mut front = pareto_front_2d(&pts);
        front.sort_unstable();
        assert_eq!(front, vec![0, 1, 3, 5]);
    }

    #[test]
    fn front_2d_matches_general() {
        // Deterministic pseudo-random points.
        let pts: Vec<(f64, f64)> = (0..200u64)
            .map(|i| {
                let x = ((i.wrapping_mul(2654435761)) % 1000) as f64;
                let y = ((i.wrapping_mul(40503).wrapping_add(17)) % 1000) as f64;
                (x, y)
            })
            .collect();
        let as_vecs: Vec<Vec<f64>> = pts.iter().map(|&(x, y)| vec![x, y]).collect();
        let mut a = pareto_front_2d(&pts);
        let mut b = pareto_front(&as_vecs);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn front_2d_matches_general_with_non_finite_inputs() {
        // Salt the deterministic cloud with every non-finite flavour; both
        // paths must drop them and agree on the remaining front.
        let mut pts: Vec<(f64, f64)> = (0..100u64)
            .map(|i| {
                let x = ((i.wrapping_mul(2654435761)) % 1000) as f64;
                let y = ((i.wrapping_mul(40503).wrapping_add(17)) % 1000) as f64;
                (x, y)
            })
            .collect();
        pts.push((f64::NAN, 0.0));
        pts.push((0.0, f64::NAN));
        pts.push((f64::NAN, f64::NAN));
        pts.push((f64::NEG_INFINITY, 0.0)); // would dominate everything if kept
        pts.push((0.0, f64::NEG_INFINITY));
        pts.push((f64::INFINITY, f64::INFINITY));
        let as_vecs: Vec<Vec<f64>> = pts.iter().map(|&(x, y)| vec![x, y]).collect();
        let mut a = pareto_front_2d(&pts);
        let mut b = pareto_front(&as_vecs);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        let finite_cutoff = pts.len() - 6;
        assert!(!a.is_empty(), "finite points must survive the salting");
        for &i in &a {
            assert!(i < finite_cutoff, "non-finite point {i} leaked onto the front");
        }
    }

    #[test]
    fn non_finite_points_are_excluded_from_both_paths() {
        // 2-objective sweep path.
        let pts = vec![(f64::NEG_INFINITY, 1.0), (1.0, f64::NAN), (2.0, 3.0)];
        assert_eq!(pareto_front_2d(&pts), vec![2]);
        // General path (3 objectives).
        let pts3 = vec![
            vec![f64::NAN, 1.0, 1.0],
            vec![1.0, f64::NEG_INFINITY, 1.0],
            vec![2.0, 2.0, 2.0],
        ];
        assert_eq!(pareto_front(&pts3), vec![2]);
        // Entirely non-finite input yields an empty front, not a panic.
        assert_eq!(pareto_front_2d(&[(f64::NAN, f64::NAN)]), Vec::<usize>::new());
    }

    #[test]
    fn front_general_3d() {
        let pts = vec![
            vec![1.0, 1.0, 1.0], // dominated by [1, 1, 0.5]
            vec![2.0, 2.0, 2.0], // dominated
            vec![0.5, 3.0, 1.0], // trade-off: kept
            vec![1.0, 1.0, 0.5], // kept
        ];
        let mut front = pareto_front(&pts);
        front.sort_unstable();
        assert_eq!(front, vec![2, 3]);
    }

    #[test]
    fn front_with_duplicates_keeps_all_copies() {
        let pts = vec![(1.0, 1.0), (1.0, 1.0), (2.0, 0.5)];
        let front = pareto_front_2d(&pts);
        assert_eq!(front.len(), 3);
    }

    #[test]
    fn equal_points_never_dominate_each_other() {
        // The module's duplicate convention, stated as tests: dominance is
        // strict, so exact duplicates are mutually non-dominating and every
        // copy of a non-dominated point sits on the front — in the sweep,
        // the general scan, and the incremental structure alike.
        let a = [1.0, 2.0];
        assert!(!dominates(&a, &a));
        let pts3 = vec![vec![1.0, 2.0, 3.0], vec![1.0, 2.0, 3.0], vec![0.5, 2.0, 3.0]];
        let front = pareto_front(&pts3);
        assert_eq!(front, vec![2], "duplicates of a dominated point are all dropped");
        let dup3 = vec![vec![1.0, 2.0, 3.0], vec![1.0, 2.0, 3.0]];
        assert_eq!(pareto_front(&dup3), vec![0, 1], "duplicate optima are all kept");
        let mut inc = IncrementalFront::new(3);
        for p in &dup3 {
            assert!(inc.push(p));
        }
        assert_eq!(inc.front_indices(), vec![0, 1]);
    }

    #[test]
    fn signed_zero_is_numerically_equal_in_both_paths() {
        // Regression: the sweep used to sort by raw `total_cmp`, which
        // orders −0.0 before +0.0, letting (−0.0, 5) survive ahead of the
        // dominating (+0.0, 3) while the general path dropped it. Both
        // paths must now treat ±0.0 as the equal values they are.
        let pts = vec![(-0.0, 5.0), (0.0, 3.0)];
        let as_vecs: Vec<Vec<f64>> = pts.iter().map(|&(x, y)| vec![x, y]).collect();
        assert_eq!(pareto_front_2d(&pts), vec![1]);
        assert_eq!(pareto_front(&as_vecs), vec![1]);
        // ±0.0 duplicates in y are still duplicates: all copies kept.
        let pts = vec![(1.0, -0.0), (1.0, 0.0)];
        assert_eq!(pareto_front_2d(&pts), vec![0, 1]);
        // And the incremental structure agrees in both orders of arrival.
        for pts in [vec![(-0.0, 5.0), (0.0, 3.0)], vec![(0.0, 3.0), (-0.0, 5.0)]] {
            let mut inc = IncrementalFront::new(2);
            for &(x, y) in &pts {
                inc.push(&[x, y]);
            }
            let as_vecs: Vec<Vec<f64>> = pts.iter().map(|&(x, y)| vec![x, y]).collect();
            assert_eq!(inc.front_indices(), pareto_front(&as_vecs), "points {pts:?}");
        }
    }

    #[test]
    fn incremental_front_tracks_batch_on_small_streams() {
        let pts: Vec<(f64, f64)> = (0..200u64)
            .map(|i| {
                let x = ((i.wrapping_mul(2654435761)) % 50) as f64;
                let y = ((i.wrapping_mul(40503).wrapping_add(17)) % 50) as f64;
                (x, y)
            })
            .collect();
        let mut inc = IncrementalFront::new(2);
        let mut seen: Vec<Vec<f64>> = Vec::new();
        for &(x, y) in &pts {
            inc.push(&[x, y]);
            seen.push(vec![x, y]);
            assert_eq!(inc.front_indices(), pareto_front(&seen));
            assert_eq!(inc.len_points(), seen.len());
            assert_eq!(inc.front_len(), inc.front_indices().len());
        }
    }

    #[test]
    fn incremental_front_kd_tracks_batch() {
        let mut inc = IncrementalFront::new(3);
        let mut seen: Vec<Vec<f64>> = Vec::new();
        for i in 0..300u64 {
            let p = vec![
                ((i.wrapping_mul(2654435761)) % 20) as f64,
                ((i.wrapping_mul(40503).wrapping_add(17)) % 20) as f64,
                ((i.wrapping_mul(9973).wrapping_add(5)) % 20) as f64,
            ];
            inc.push(&p);
            seen.push(p);
            assert_eq!(inc.front_indices(), pareto_front(&seen));
        }
    }

    #[test]
    fn incremental_front_excludes_non_finite() {
        let mut inc = IncrementalFront::new(2);
        assert!(!inc.push(&[f64::NAN, 1.0]));
        assert!(!inc.push(&[1.0, f64::NEG_INFINITY]));
        assert!(inc.push(&[2.0, 3.0]));
        assert_eq!(inc.front_indices(), vec![2]);
        assert_eq!(inc.len_points(), 3);
    }

    #[test]
    fn incremental_hypervolume_matches_batch() {
        let pts: Vec<(f64, f64)> = (0..500u64)
            .map(|i| {
                let x = ((i.wrapping_mul(2654435761)) % 100) as f64 * 0.13;
                let y = ((i.wrapping_mul(40503).wrapping_add(17)) % 100) as f64 * 0.21;
                (x, y)
            })
            .collect();
        let mut inc = IncrementalFront::new(2);
        let mut reference = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &pts {
            inc.push(&[x, y]);
            reference = (reference.0.max(x), reference.1.max(y));
        }
        let batch = hypervolume_2d(&pts, reference);
        assert_eq!(inc.hypervolume(reference).to_bits(), batch.to_bits());
        // Duplicated front points count their area once on both sides.
        let dup = vec![(1.0, 2.0), (1.0, 2.0), (2.0, 1.0)];
        let mut inc = IncrementalFront::new(2);
        for &(x, y) in &dup {
            inc.push(&[x, y]);
        }
        let batch = hypervolume_2d(&dup, (3.0, 3.0));
        assert_eq!(inc.hypervolume((3.0, 3.0)).to_bits(), batch.to_bits());
        assert!((batch - 3.0).abs() < 1e-12);
    }

    #[test]
    fn incremental_front_points_are_in_front_order() {
        let mut inc = IncrementalFront::new(2);
        for p in [[3.0, 1.0], [1.0, 3.0], [2.0, 2.0]] {
            inc.push(&p);
        }
        assert_eq!(inc.front_points(), vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]]);
        assert_eq!(inc.front_indices(), vec![1, 2, 0]);
        assert_eq!(inc.n_objectives(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn incremental_front_checks_arity() {
        IncrementalFront::new(2).push(&[1.0]);
    }

    #[test]
    fn front_of_single_point() {
        assert_eq!(pareto_front_2d(&[(3.0, 4.0)]), vec![0]);
        assert_eq!(pareto_front(&[]), Vec::<usize>::new());
    }

    #[test]
    fn front_all_on_a_line() {
        // Strictly decreasing y with increasing x: everything is optimal.
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, -(i as f64))).collect();
        assert_eq!(pareto_front_2d(&pts).len(), 10);
        // Strictly increasing y: only the first point survives.
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, i as f64)).collect();
        assert_eq!(pareto_front_2d(&pts), vec![0]);
    }

    #[test]
    fn hypervolume_single_point() {
        let hv = hypervolume_2d(&[(1.0, 1.0)], (3.0, 3.0));
        assert!((hv - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_two_points_staircase() {
        let hv = hypervolume_2d(&[(1.0, 2.0), (2.0, 1.0)], (3.0, 3.0));
        // (3-1)*(3-2) + (3-2)*(2-1) = 2 + 1 = 3
        assert!((hv - 3.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_ignores_out_of_box_and_dominated() {
        let hv1 = hypervolume_2d(&[(1.0, 1.0), (2.0, 2.0), (10.0, 0.0)], (3.0, 3.0));
        let hv2 = hypervolume_2d(&[(1.0, 1.0)], (3.0, 3.0));
        assert!((hv1 - hv2).abs() < 1e-12);
        assert_eq!(hypervolume_2d(&[], (1.0, 1.0)), 0.0);
    }

    #[test]
    fn hypervolume_monotone_under_improvement() {
        let base = hypervolume_2d(&[(2.0, 2.0)], (4.0, 4.0));
        let better = hypervolume_2d(&[(2.0, 2.0), (1.0, 3.0)], (4.0, 4.0));
        assert!(better > base);
    }

    #[test]
    fn hypervolume_ignores_non_finite_points() {
        let hv = hypervolume_2d(
            &[(1.0, 1.0), (f64::NEG_INFINITY, 0.5), (0.5, f64::NAN)],
            (3.0, 3.0),
        );
        assert!((hv - 4.0).abs() < 1e-12, "non-finite points must not contribute area");
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-finite hypervolume reference")]
    fn hypervolume_non_finite_reference_asserts_in_debug() {
        hypervolume_2d(&[(1.0, 1.0)], (f64::NAN, 3.0));
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn hypervolume_non_finite_reference_is_zero_in_release() {
        assert_eq!(hypervolume_2d(&[(1.0, 1.0)], (f64::INFINITY, 3.0)), 0.0);
        assert_eq!(hypervolume_2d(&[(1.0, 1.0)], (3.0, f64::NAN)), 0.0);
    }
}
