//! Pareto-dominance machinery (all objectives are **minimized**).
//!
//! # Non-finite points
//!
//! The front routines ([`pareto_front`], [`pareto_front_2d`]) **exclude**
//! points with any NaN or infinite objective: a non-measurement can neither
//! dominate nor sit on the front. Both the fast 2-objective sweep and the
//! general O(n²) scan apply the same filter, so the two paths agree on
//! degenerate inputs. (The optimizer already promotes non-finite objectives
//! to evaluation failures before they reach a front, so this filter is a
//! backstop for direct library users.)

/// True when `a` Pareto-dominates `b`: `a` is no worse in every objective
/// and strictly better in at least one.
///
/// NaN comparisons are always false, so a NaN objective can neither help
/// `a` dominate nor be dominated — callers comparing possibly-NaN points
/// should filter them first, as the front routines in this module do.
///
/// # Panics
/// If the two points have different arity.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective arity mismatch");
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Indices of the non-dominated points among `points` (each a slice of
/// minimized objectives). Duplicated non-dominated points are all kept;
/// points with any non-finite objective are excluded (see the module docs).
///
/// Dispatches to the fast sort-based routine for the bi-objective case
/// (the paper's accuracy/runtime setting) and falls back to the general
/// O(n²) scan otherwise.
pub fn pareto_front(points: &[Vec<f64>]) -> Vec<usize> {
    if points.is_empty() {
        return Vec::new();
    }
    if points[0].len() == 2 {
        return pareto_front_2d_impl(points.len(), |i| (points[i][0], points[i][1]));
    }
    let finite: Vec<usize> = (0..points.len())
        .filter(|&i| points[i].iter().all(|v| v.is_finite()))
        .collect();
    let mut front = Vec::new();
    'outer: for &i in &finite {
        for &j in &finite {
            if i != j && dominates(&points[j], &points[i]) {
                continue 'outer;
            }
        }
        front.push(i);
    }
    front
}

/// Fast bi-objective Pareto front over `(x, y)` pairs: sort by `x` then
/// sweep keeping points that improve the best `y` seen so far.
/// Returns indices into the original slice, sorted by ascending `x`.
/// Points with a non-finite coordinate are excluded (see the module docs).
pub fn pareto_front_2d(points: &[(f64, f64)]) -> Vec<usize> {
    pareto_front_2d_impl(points.len(), |i| points[i])
}

fn pareto_front_2d_impl(n: usize, get: impl Fn(usize) -> (f64, f64)) -> Vec<usize> {
    // Drop non-finite points up front: a NaN or ±∞ coordinate is a failed
    // measurement, and letting one through (e.g. x = −∞) would dominate
    // every real point and empty the front. This matches the general-path
    // filter in `pareto_front`.
    let mut order: Vec<usize> = (0..n)
        .filter(|&i| {
            let (x, y) = get(i);
            x.is_finite() && y.is_finite()
        })
        .collect();
    // Sort by x, tie-break by y, so the sweep sees the best y first among
    // equal-x points.
    order.sort_by(|&a, &b| {
        let (ax, ay) = get(a);
        let (bx, by) = get(b);
        ax.total_cmp(&bx).then(ay.total_cmp(&by))
    });
    let mut front = Vec::new();
    let mut best_y = f64::INFINITY;
    let mut last_x = f64::NEG_INFINITY;
    for &i in &order {
        let (x, y) = get(i);
        if y < best_y || (y == best_y && x == last_x) {
            // Keep duplicates of an accepted point; a strictly worse-or-equal
            // y at larger x is dominated.
            if y < best_y {
                best_y = y;
                last_x = x;
                front.push(i);
            } else if x == last_x {
                front.push(i);
            }
        }
    }
    front
}

/// Hypervolume (area) dominated by the bi-objective front of `points`,
/// bounded by the reference point `(ref_x, ref_y)` (must be weakly worse
/// than every point considered). Points beyond the reference — and points
/// with any non-finite coordinate, which would contribute infinite or NaN
/// slabs — are ignored. A non-finite reference is rejected: it returns 0.0
/// (debug builds also assert), since no finite area is bounded by it.
///
/// This is the scalar progress measure used to compare random sampling vs.
/// active learning across iterations.
pub fn hypervolume_2d(points: &[(f64, f64)], reference: (f64, f64)) -> f64 {
    if !(reference.0.is_finite() && reference.1.is_finite()) {
        debug_assert!(false, "non-finite hypervolume reference {reference:?}");
        return 0.0;
    }
    let in_box: Vec<(f64, f64)> = points
        .iter()
        .copied()
        .filter(|&(x, y)| x.is_finite() && y.is_finite() && x <= reference.0 && y <= reference.1)
        .collect();
    if in_box.is_empty() {
        return 0.0;
    }
    let front = pareto_front_2d(&in_box);
    // Front is sorted by ascending x (descending y); accumulate slabs.
    let mut area = 0.0;
    let mut prev_y = reference.1;
    for &i in &front {
        let (x, y) = in_box[i];
        if y >= prev_y {
            continue; // duplicate kept by the front routine
        }
        area += (reference.0 - x) * (prev_y - y);
        prev_y = y;
    }
    area
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basics() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
        assert!(!dominates(&[2.0, 2.0], &[1.0, 1.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0])); // trade-off
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0])); // equal: not strict
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn dominance_arity_checked() {
        dominates(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn front_of_convex_set() {
        let pts = vec![
            (1.0, 5.0),
            (2.0, 3.0),
            (3.0, 4.0), // dominated by (2,3)
            (4.0, 2.0),
            (5.0, 2.5), // dominated by (4,2)
            (6.0, 1.0),
        ];
        let mut front = pareto_front_2d(&pts);
        front.sort_unstable();
        assert_eq!(front, vec![0, 1, 3, 5]);
    }

    #[test]
    fn front_2d_matches_general() {
        // Deterministic pseudo-random points.
        let pts: Vec<(f64, f64)> = (0..200u64)
            .map(|i| {
                let x = ((i.wrapping_mul(2654435761)) % 1000) as f64;
                let y = ((i.wrapping_mul(40503).wrapping_add(17)) % 1000) as f64;
                (x, y)
            })
            .collect();
        let as_vecs: Vec<Vec<f64>> = pts.iter().map(|&(x, y)| vec![x, y]).collect();
        let mut a = pareto_front_2d(&pts);
        let mut b = pareto_front(&as_vecs);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn front_2d_matches_general_with_non_finite_inputs() {
        // Salt the deterministic cloud with every non-finite flavour; both
        // paths must drop them and agree on the remaining front.
        let mut pts: Vec<(f64, f64)> = (0..100u64)
            .map(|i| {
                let x = ((i.wrapping_mul(2654435761)) % 1000) as f64;
                let y = ((i.wrapping_mul(40503).wrapping_add(17)) % 1000) as f64;
                (x, y)
            })
            .collect();
        pts.push((f64::NAN, 0.0));
        pts.push((0.0, f64::NAN));
        pts.push((f64::NAN, f64::NAN));
        pts.push((f64::NEG_INFINITY, 0.0)); // would dominate everything if kept
        pts.push((0.0, f64::NEG_INFINITY));
        pts.push((f64::INFINITY, f64::INFINITY));
        let as_vecs: Vec<Vec<f64>> = pts.iter().map(|&(x, y)| vec![x, y]).collect();
        let mut a = pareto_front_2d(&pts);
        let mut b = pareto_front(&as_vecs);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        let finite_cutoff = pts.len() - 6;
        assert!(!a.is_empty(), "finite points must survive the salting");
        for &i in &a {
            assert!(i < finite_cutoff, "non-finite point {i} leaked onto the front");
        }
    }

    #[test]
    fn non_finite_points_are_excluded_from_both_paths() {
        // 2-objective sweep path.
        let pts = vec![(f64::NEG_INFINITY, 1.0), (1.0, f64::NAN), (2.0, 3.0)];
        assert_eq!(pareto_front_2d(&pts), vec![2]);
        // General path (3 objectives).
        let pts3 = vec![
            vec![f64::NAN, 1.0, 1.0],
            vec![1.0, f64::NEG_INFINITY, 1.0],
            vec![2.0, 2.0, 2.0],
        ];
        assert_eq!(pareto_front(&pts3), vec![2]);
        // Entirely non-finite input yields an empty front, not a panic.
        assert_eq!(pareto_front_2d(&[(f64::NAN, f64::NAN)]), Vec::<usize>::new());
    }

    #[test]
    fn front_general_3d() {
        let pts = vec![
            vec![1.0, 1.0, 1.0], // dominated by [1, 1, 0.5]
            vec![2.0, 2.0, 2.0], // dominated
            vec![0.5, 3.0, 1.0], // trade-off: kept
            vec![1.0, 1.0, 0.5], // kept
        ];
        let mut front = pareto_front(&pts);
        front.sort_unstable();
        assert_eq!(front, vec![2, 3]);
    }

    #[test]
    fn front_with_duplicates_keeps_all_copies() {
        let pts = vec![(1.0, 1.0), (1.0, 1.0), (2.0, 0.5)];
        let front = pareto_front_2d(&pts);
        assert_eq!(front.len(), 3);
    }

    #[test]
    fn front_of_single_point() {
        assert_eq!(pareto_front_2d(&[(3.0, 4.0)]), vec![0]);
        assert_eq!(pareto_front(&[]), Vec::<usize>::new());
    }

    #[test]
    fn front_all_on_a_line() {
        // Strictly decreasing y with increasing x: everything is optimal.
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, -(i as f64))).collect();
        assert_eq!(pareto_front_2d(&pts).len(), 10);
        // Strictly increasing y: only the first point survives.
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, i as f64)).collect();
        assert_eq!(pareto_front_2d(&pts), vec![0]);
    }

    #[test]
    fn hypervolume_single_point() {
        let hv = hypervolume_2d(&[(1.0, 1.0)], (3.0, 3.0));
        assert!((hv - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_two_points_staircase() {
        let hv = hypervolume_2d(&[(1.0, 2.0), (2.0, 1.0)], (3.0, 3.0));
        // (3-1)*(3-2) + (3-2)*(2-1) = 2 + 1 = 3
        assert!((hv - 3.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_ignores_out_of_box_and_dominated() {
        let hv1 = hypervolume_2d(&[(1.0, 1.0), (2.0, 2.0), (10.0, 0.0)], (3.0, 3.0));
        let hv2 = hypervolume_2d(&[(1.0, 1.0)], (3.0, 3.0));
        assert!((hv1 - hv2).abs() < 1e-12);
        assert_eq!(hypervolume_2d(&[], (1.0, 1.0)), 0.0);
    }

    #[test]
    fn hypervolume_monotone_under_improvement() {
        let base = hypervolume_2d(&[(2.0, 2.0)], (4.0, 4.0));
        let better = hypervolume_2d(&[(2.0, 2.0), (1.0, 3.0)], (4.0, 4.0));
        assert!(better > base);
    }

    #[test]
    fn hypervolume_ignores_non_finite_points() {
        let hv = hypervolume_2d(
            &[(1.0, 1.0), (f64::NEG_INFINITY, 0.5), (0.5, f64::NAN)],
            (3.0, 3.0),
        );
        assert!((hv - 4.0).abs() < 1e-12, "non-finite points must not contribute area");
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-finite hypervolume reference")]
    fn hypervolume_non_finite_reference_asserts_in_debug() {
        hypervolume_2d(&[(1.0, 1.0)], (f64::NAN, 3.0));
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn hypervolume_non_finite_reference_is_zero_in_release() {
        assert_eq!(hypervolume_2d(&[(1.0, 1.0)], (f64::INFINITY, 3.0)), 0.0);
        assert_eq!(hypervolume_2d(&[(1.0, 1.0)], (3.0, f64::NAN)), 0.0);
    }
}
