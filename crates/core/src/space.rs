//! Finite cartesian parameter spaces and configurations.

use crate::error::HmError;
use crate::param::{Domain, ParamDef};
use serde::{Deserialize, Serialize};

/// One point in a [`ParamSpace`]: a choice index per parameter, plus the
/// decoded numeric values so evaluators never need the space to read a
/// configuration.
///
/// Equality and hashing consider only the choice indices, which makes
/// de-duplication across active-learning iterations trivial.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Configuration {
    choices: Vec<u32>,
    values: Vec<f64>,
}

impl PartialEq for Configuration {
    fn eq(&self, other: &Self) -> bool {
        self.choices == other.choices
    }
}

impl Eq for Configuration {}

impl std::hash::Hash for Configuration {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.choices.hash(state);
    }
}

impl Configuration {
    /// Choice index of parameter `i`.
    #[inline]
    pub fn choice(&self, i: usize) -> usize {
        self.choices[i] as usize
    }

    /// All choice indices.
    pub fn choices(&self) -> &[u32] {
        &self.choices
    }

    /// Numeric value of parameter `i` (ordinal value, or choice index for
    /// categorical/boolean parameters).
    #[inline]
    pub fn value_f64(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// Numeric value rounded to the nearest integer — convenient for rate
    /// and resolution parameters.
    #[inline]
    pub fn value_usize(&self, i: usize) -> usize {
        self.values[i].round().max(0.0) as usize
    }

    /// Boolean flag value of parameter `i`.
    #[inline]
    pub fn value_bool(&self, i: usize) -> bool {
        self.choices[i] == 1
    }

    /// All decoded numeric values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// True for the (invalid) zero-parameter configuration.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }
}

/// A finite cartesian product of parameter domains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamSpace {
    params: Vec<ParamDef>,
}

/// Builder for [`ParamSpace`].
#[derive(Debug, Default)]
pub struct SpaceBuilder {
    params: Vec<ParamDef>,
}

impl SpaceBuilder {
    /// Add an ordered numeric parameter.
    pub fn ordinal<I: IntoIterator<Item = f64>>(mut self, name: &str, values: I) -> Self {
        self.params.push(ParamDef {
            name: name.to_string(),
            domain: Domain::Ordinal(values.into_iter().collect()),
            log_feature: false,
        });
        self
    }

    /// Add an ordered numeric parameter whose surrogate feature is
    /// `log10(value)` (for ranges spanning decades, e.g. the ICP threshold).
    pub fn ordinal_log<I: IntoIterator<Item = f64>>(mut self, name: &str, values: I) -> Self {
        self.params.push(ParamDef {
            name: name.to_string(),
            domain: Domain::Ordinal(values.into_iter().collect()),
            log_feature: true,
        });
        self
    }

    /// Add an unordered categorical parameter.
    pub fn categorical<I, S>(mut self, name: &str, labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.params.push(ParamDef {
            name: name.to_string(),
            domain: Domain::Categorical(labels.into_iter().map(Into::into).collect()),
            log_feature: false,
        });
        self
    }

    /// Add a boolean flag.
    pub fn boolean(mut self, name: &str) -> Self {
        self.params.push(ParamDef {
            name: name.to_string(),
            domain: Domain::Boolean,
            log_feature: false,
        });
        self
    }

    /// Validate and produce the space.
    pub fn build(self) -> Result<ParamSpace, HmError> {
        if self.params.is_empty() {
            return Err(HmError::EmptySpace);
        }
        let mut seen = std::collections::HashSet::new();
        for p in &self.params {
            if !seen.insert(p.name.clone()) {
                return Err(HmError::DuplicateParam(p.name.clone()));
            }
            if p.domain.cardinality() == 0 {
                return Err(HmError::EmptyDomain(p.name.clone()));
            }
            if let Domain::Ordinal(values) = &p.domain {
                if values.iter().any(|v| !v.is_finite()) {
                    return Err(HmError::NonFiniteValue(p.name.clone()));
                }
            }
        }
        Ok(ParamSpace { params: self.params })
    }
}

impl ParamSpace {
    /// Start building a space.
    pub fn builder() -> SpaceBuilder {
        SpaceBuilder::default()
    }

    /// The parameter definitions, in declaration order.
    pub fn params(&self) -> &[ParamDef] {
        &self.params
    }

    /// Number of parameters (= surrogate feature width).
    pub fn n_params(&self) -> usize {
        self.params.len()
    }

    /// Index of the parameter named `name`.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }

    /// Total number of configurations (saturating at `u64::MAX`).
    pub fn size(&self) -> u64 {
        self.params
            .iter()
            .fold(1u64, |acc, p| acc.saturating_mul(p.domain.cardinality() as u64))
    }

    /// The configuration at flat index `flat` under mixed-radix encoding
    /// (first declared parameter varies slowest).
    ///
    /// # Panics
    /// If `flat >= self.size()`.
    pub fn config_at(&self, flat: u64) -> Configuration {
        assert!(flat < self.size(), "flat index {flat} out of range");
        let mut rem = flat;
        let mut choices = vec![0u32; self.params.len()];
        for (i, p) in self.params.iter().enumerate().rev() {
            let card = p.domain.cardinality() as u64;
            choices[i] = (rem % card) as u32;
            rem /= card;
        }
        self.config_from_choices(choices)
    }

    /// Build a configuration from raw choice indices, decoding the numeric
    /// values.
    ///
    /// # Panics
    /// If the arity or any choice index is out of range.
    pub fn config_from_choices(&self, choices: Vec<u32>) -> Configuration {
        assert_eq!(choices.len(), self.params.len(), "choice count mismatch");
        let values = self
            .params
            .iter()
            .zip(&choices)
            .map(|(p, &c)| {
                assert!(
                    (c as usize) < p.domain.cardinality(),
                    "choice {c} out of range for `{}`",
                    p.name
                );
                p.domain.numeric_value(c as usize)
            })
            .collect();
        Configuration { choices, values }
    }

    /// Flat index of `config` (inverse of [`ParamSpace::config_at`]).
    pub fn flat_index(&self, config: &Configuration) -> u64 {
        debug_assert_eq!(config.len(), self.params.len());
        let mut flat = 0u64;
        for (i, p) in self.params.iter().enumerate() {
            flat = flat * p.domain.cardinality() as u64 + config.choices[i] as u64;
        }
        flat
    }

    /// Whether every choice index is within its domain.
    pub fn contains(&self, config: &Configuration) -> bool {
        config.len() == self.params.len()
            && config
                .choices
                .iter()
                .zip(&self.params)
                .all(|(&c, p)| (c as usize) < p.domain.cardinality())
    }

    /// Numeric value of parameter `i` in `config`.
    pub fn value_f64(&self, config: &Configuration, i: usize) -> f64 {
        self.params[i].domain.numeric_value(config.choice(i))
    }

    /// Boolean value of flag parameter `i` in `config`.
    pub fn value_bool(&self, config: &Configuration, i: usize) -> bool {
        config.choice(i) == 1
    }

    /// Numeric value of the parameter named `name`.
    pub fn value_by_name(&self, config: &Configuration, name: &str) -> Option<f64> {
        self.param_index(name).map(|i| self.value_f64(config, i))
    }

    /// Surrogate feature vector for `config` (one feature per parameter;
    /// ordinal → value or log10(value), categorical/bool → index).
    pub fn features(&self, config: &Configuration) -> Vec<f64> {
        self.params
            .iter()
            .enumerate()
            .map(|(i, p)| p.feature(config.choice(i)))
            .collect()
    }

    /// Write the feature vector into `out` (for batch buffers).
    pub fn write_features(&self, config: &Configuration, out: &mut Vec<f64>) {
        for (i, p) in self.params.iter().enumerate() {
            out.push(p.feature(config.choice(i)));
        }
    }

    /// Human-readable `name=value` listing.
    pub fn describe(&self, config: &Configuration) -> String {
        self.params
            .iter()
            .enumerate()
            .map(|(i, p)| format!("{}={}", p.name, p.domain.label(config.choice(i))))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// The configuration with every choice nearest to the given numeric
    /// values, e.g. to express a known default configuration.
    pub fn config_from_values(&self, values: &[f64]) -> Configuration {
        assert_eq!(values.len(), self.params.len(), "value count mismatch");
        let choices = self
            .params
            .iter()
            .zip(values)
            .map(|(p, &v)| p.domain.nearest_index(v) as u32)
            .collect();
        self.config_from_choices(choices)
    }

    /// Iterate over all configurations in flat-index order — only sensible
    /// for small spaces; use [`ParamSpace::stream`] with a predicate or
    /// sampling for the paper-scale spaces.
    pub fn iter_all(&self) -> impl Iterator<Item = Configuration> + '_ {
        self.stream()
    }

    /// Lazily stream every configuration in flat-index order without ever
    /// materializing the space: the iterator holds one mixed-radix odometer
    /// (`O(n_params)` memory) and works unchanged on u64-sized spaces.
    ///
    /// Yields exactly the [`ParamSpace::iter_all`] sequence —
    /// `config_at(0), config_at(1), …` — but advances by incrementing the
    /// odometer instead of re-dividing a flat index per step.
    pub fn stream(&self) -> ConfigStream<'_> {
        ConfigStream {
            space: self,
            choices: vec![0; self.params.len()],
            remaining: self.size(),
        }
    }

    /// Stream starting at flat index `start` (inclusive) — the sharding
    /// primitive for splitting a huge space across workers: worker `w` of
    /// `W` streams `stream_from(w * size / W)` and takes `size / W` items.
    ///
    /// # Panics
    /// If `start > self.size()` (`start == size` yields an empty stream).
    pub fn stream_from(&self, start: u64) -> ConfigStream<'_> {
        let size = self.size();
        assert!(start <= size, "stream start {start} out of range");
        let choices = if start == size {
            vec![0; self.params.len()]
        } else {
            self.config_at(start).choices
        };
        ConfigStream { space: self, choices, remaining: size - start }
    }

    /// Stream only the configurations satisfying `predicate` — constraint
    /// predicates over huge spaces without materializing anything. The
    /// predicate sees each candidate in flat-index order.
    pub fn stream_where<'a, F>(&'a self, mut predicate: F) -> impl Iterator<Item = Configuration> + 'a
    where
        F: FnMut(&Configuration) -> bool + 'a,
    {
        self.stream().filter(move |c| predicate(c))
    }
}

/// Lazy flat-order iterator over a [`ParamSpace`] (see
/// [`ParamSpace::stream`]): one odometer, no materialization, u64-scale
/// spaces welcome.
#[derive(Debug, Clone)]
pub struct ConfigStream<'a> {
    space: &'a ParamSpace,
    /// Mixed-radix odometer: the choice vector of the *next* configuration.
    choices: Vec<u32>,
    /// Configurations left to yield (drives `size_hint` and termination —
    /// a u64 count, so exhausting a full u64-sized space terminates
    /// correctly where a "did we wrap to zero" check would not).
    remaining: u64,
}

impl Iterator for ConfigStream<'_> {
    type Item = Configuration;

    fn next(&mut self) -> Option<Configuration> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let current = self.space.config_from_choices(self.choices.clone());
        // Increment the odometer: last declared parameter varies fastest,
        // matching `config_at`'s mixed-radix encoding.
        for (i, p) in self.space.params.iter().enumerate().rev() {
            self.choices[i] += 1;
            if (self.choices[i] as usize) < p.domain.cardinality() {
                break;
            }
            self.choices[i] = 0;
        }
        Some(current)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining).ok();
        (n.unwrap_or(usize::MAX), n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_space() -> ParamSpace {
        ParamSpace::builder()
            .ordinal("a", [1.0, 2.0, 3.0])
            .boolean("b")
            .categorical("c", ["x", "y", "z", "w"])
            .build()
            .unwrap()
    }

    #[test]
    fn size_is_product_of_cardinalities() {
        assert_eq!(small_space().size(), 3 * 2 * 4);
    }

    #[test]
    fn flat_index_roundtrip_all() {
        let s = small_space();
        for flat in 0..s.size() {
            let c = s.config_at(flat);
            assert!(s.contains(&c));
            assert_eq!(s.flat_index(&c), flat);
        }
    }

    #[test]
    fn iter_all_yields_distinct_configs() {
        let s = small_space();
        let all: std::collections::HashSet<_> = s.iter_all().collect();
        assert_eq!(all.len() as u64, s.size());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn config_at_out_of_range_panics() {
        let s = small_space();
        s.config_at(s.size());
    }

    #[test]
    fn values_and_describe() {
        let s = small_space();
        let c = s.config_from_choices(vec![2, 1, 0]);
        assert_eq!(s.value_f64(&c, 0), 3.0);
        assert!(s.value_bool(&c, 1));
        assert_eq!(c.value_f64(0), 3.0);
        assert!(c.value_bool(1));
        assert_eq!(c.value_usize(0), 3);
        assert_eq!(s.value_by_name(&c, "a"), Some(3.0));
        assert_eq!(s.value_by_name(&c, "missing"), None);
        let d = s.describe(&c);
        assert!(d.contains("a=3") && d.contains("b=true") && d.contains("c=x"), "{d}");
    }

    #[test]
    fn features_respect_log_hint() {
        let s = ParamSpace::builder()
            .ordinal_log("thr", [1e-4, 1e-2])
            .ordinal("lin", [10.0, 20.0])
            .build()
            .unwrap();
        let c = s.config_from_choices(vec![0, 1]);
        let f = s.features(&c);
        assert!((f[0] + 4.0).abs() < 1e-9);
        assert_eq!(f[1], 20.0);
        let mut buf = Vec::new();
        s.write_features(&c, &mut buf);
        assert_eq!(buf, f);
    }

    #[test]
    fn config_from_values_snaps_to_nearest() {
        let s = small_space();
        let c = s.config_from_values(&[2.4, 1.0, 2.0]);
        assert_eq!(c.choices(), &[1, 1, 2]);
    }

    #[test]
    fn builder_rejects_bad_spaces() {
        assert_eq!(ParamSpace::builder().build().unwrap_err(), HmError::EmptySpace);
        let dup = ParamSpace::builder()
            .ordinal("a", [1.0])
            .boolean("a")
            .build()
            .unwrap_err();
        assert_eq!(dup, HmError::DuplicateParam("a".into()));
        let empty = ParamSpace::builder().ordinal("v", []).build().unwrap_err();
        assert_eq!(empty, HmError::EmptyDomain("v".into()));
        let nan = ParamSpace::builder().ordinal("n", [f64::NAN]).build().unwrap_err();
        assert_eq!(nan, HmError::NonFiniteValue("n".into()));
    }

    #[test]
    fn contains_accepts_all_valid_configs() {
        let s = small_space();
        for c in s.iter_all() {
            assert!(s.contains(&c));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn config_from_choices_rejects_bad_index() {
        let s = small_space();
        s.config_from_choices(vec![3, 0, 0]); // a has only 3 choices
    }

    #[test]
    #[should_panic(expected = "choice count")]
    fn config_from_choices_rejects_bad_arity() {
        let s = small_space();
        s.config_from_choices(vec![0, 0]);
    }

    #[test]
    fn stream_matches_indexed_enumeration() {
        // `iter_all` is implemented over the odometer stream, so the parity
        // oracle here is per-index `config_at` — the mixed-radix decoder the
        // stream must reproduce configuration by configuration.
        let s = small_space();
        let streamed: Vec<Configuration> = s.stream().collect();
        let indexed: Vec<Configuration> = (0..s.size()).map(|i| s.config_at(i)).collect();
        assert_eq!(streamed, indexed);
        let (lo, hi) = s.stream().size_hint();
        assert_eq!((lo as u64, hi.map(|h| h as u64)), (s.size(), Some(s.size())));
    }

    #[test]
    fn stream_from_resumes_mid_space() {
        let s = small_space();
        for start in [0u64, 1, 7, 23, 24] {
            let streamed: Vec<Configuration> = s.stream_from(start).collect();
            let indexed: Vec<Configuration> = (start..s.size()).map(|i| s.config_at(i)).collect();
            assert_eq!(streamed, indexed, "start {start}");
        }
        // Sharding partition: consecutive shards reproduce the full stream.
        let shards: Vec<Configuration> = [(0, 9), (9, 17), (17, 24)]
            .iter()
            .flat_map(|&(a, b)| s.stream_from(a).take((b - a) as usize))
            .collect();
        assert_eq!(shards, s.stream().collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn stream_from_rejects_past_the_end() {
        let s = small_space();
        let _ = s.stream_from(s.size() + 1);
    }

    #[test]
    fn stream_where_filters_lazily() {
        let s = small_space();
        let constrained: Vec<Configuration> =
            s.stream_where(|c| c.value_bool(1) && c.choice(0) > 0).collect();
        assert!(!constrained.is_empty());
        for c in &constrained {
            assert!(c.value_bool(1) && c.choice(0) > 0);
        }
        let brute: Vec<Configuration> =
            s.iter_all().filter(|c| c.value_bool(1) && c.choice(0) > 0).collect();
        assert_eq!(constrained, brute);
    }

    /// A space whose size (2^63) overflows u32 and approaches u64::MAX:
    /// four 2^16-level parameters and one 2^15-level parameter.
    fn u64_scale_space() -> ParamSpace {
        ParamSpace::builder()
            .ordinal("a", (0..1u32 << 16).map(f64::from))
            .ordinal("b", (0..1u32 << 16).map(f64::from))
            .ordinal("c", (0..1u32 << 16).map(f64::from))
            .ordinal("d", (0..1u32 << 15).map(f64::from))
            .build()
            .unwrap()
    }

    #[test]
    fn flat_index_roundtrip_at_u64_boundary() {
        let s = u64_scale_space();
        assert_eq!(s.size(), 1u64 << 63);
        for flat in [
            0u64,
            1,
            (1 << 32) - 1,
            1 << 32,
            (1 << 32) + 1,
            (1 << 63) - 2,
            (1 << 63) - 1,
            0x7315_8241_9FA3_0C67, // arbitrary interior point
        ] {
            let c = s.config_at(flat);
            assert!(s.contains(&c));
            assert_eq!(s.flat_index(&c), flat, "flat {flat:#x}");
        }
        // The last configuration is the all-max odometer state.
        let last = s.config_at((1 << 63) - 1);
        assert_eq!(last.choices(), &[0xFFFF, 0xFFFF, 0xFFFF, 0x7FFF]);
    }

    #[test]
    fn stream_from_works_at_u64_boundary() {
        let s = u64_scale_space();
        // Stream a short window from deep inside the space: each yielded
        // configuration must equal its `config_at`, without materializing
        // anything (the stream holds only the odometer).
        let start = (1u64 << 63) - 3;
        let tail: Vec<Configuration> = s.stream_from(start).collect();
        assert_eq!(tail.len(), 3);
        for (k, c) in tail.iter().enumerate() {
            assert_eq!(c, &s.config_at(start + k as u64));
        }
        let window: Vec<Configuration> = s.stream_from(1 << 62).take(5).collect();
        for (k, c) in window.iter().enumerate() {
            assert_eq!(c, &s.config_at((1 << 62) + k as u64));
        }
    }

    #[test]
    fn size_saturates_past_u64() {
        // 5 × 2^16-level parameters → 2^80, saturating to u64::MAX.
        let s = ParamSpace::builder()
            .ordinal("a", (0..1u32 << 16).map(f64::from))
            .ordinal("b", (0..1u32 << 16).map(f64::from))
            .ordinal("c", (0..1u32 << 16).map(f64::from))
            .ordinal("d", (0..1u32 << 16).map(f64::from))
            .ordinal("e", (0..1u32 << 16).map(f64::from))
            .build()
            .unwrap();
        assert_eq!(s.size(), u64::MAX);
    }

    #[test]
    fn paper_scale_space_size() {
        // The KFusion-like product reaches 1.8M as in the paper.
        let s = ParamSpace::builder()
            .ordinal("volume", [64.0, 128.0, 256.0])
            .ordinal("mu", (0..6).map(|i| 0.0125 * 2f64.powi(i)))
            .ordinal("csr", [1.0, 2.0, 4.0, 8.0])
            .ordinal("tracking", (1..=5).map(f64::from))
            .ordinal_log("icp", (0..5).map(|i| 10f64.powi(-(i as i32) - 1)))
            .ordinal("integration", (1..=10).map(f64::from))
            .ordinal("pyr0", (1..=5).map(f64::from))
            .ordinal("pyr1", (0..=4).map(f64::from))
            .ordinal("pyr2", (0..=3).map(f64::from))
            .build()
            .unwrap();
        assert_eq!(s.size(), 1_800_000);
        // Round-trip a few scattered flat indices.
        for flat in [0u64, 1, 997, 123_456, 1_799_999] {
            assert_eq!(s.flat_index(&s.config_at(flat)), flat);
        }
    }
}
