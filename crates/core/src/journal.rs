//! Durable exploration: an append-only write-ahead journal with crash
//! recovery and bit-identical resume.
//!
//! Long DSE runs (250+ evaluations per platform on embedded boards, the
//! crowd-sourcing study's 83 unattended machines) die to power loss, OOM
//! kills, and SIGTERM. The journal makes the exploration's progress durable:
//! one checksummed record is appended per phase transition, per completed
//! evaluation (success *or* failure), and per iteration summary, plus
//! periodic full-state snapshot checkpoints at phase boundaries. A killed
//! run is resumed with [`crate::HyperMapper::resume`], which replays the log
//! and continues to a result **bit-identical** to an uninterrupted run.
//!
//! # Record format
//!
//! The journal is a line-oriented ASCII file. Every record is one line:
//!
//! ```text
//! <crc32-hex8> <body>\n
//! ```
//!
//! where the CRC-32 (IEEE polynomial) covers the body bytes. Floating-point
//! values are stored as 16-hex-digit raw `f64` bit patterns, so every value
//! round-trips bit-exactly (no decimal formatting anywhere on the resume
//! path). Free-form text (panic messages, divergence reasons) is
//! percent-escaped to keep records single-line and unambiguous.
//!
//! Record kinds, in the order a healthy run writes them:
//!
//! * `run` — header: seed, phase sizes, objective count, and a fingerprint
//!   of the forest config, failure policy, and parameter space. A resume
//!   against a journal whose header does not match the optimizer's current
//!   configuration fails with [`crate::HmError::JournalMismatch`] instead of
//!   silently mis-replaying.
//! * `phase` — a phase transition: the phase tag, the predicted-front size,
//!   and the ordered flat indices of every configuration the phase will
//!   evaluate. Recording the candidate list means resume can skip the forest
//!   fits and pool predictions of completed phases entirely.
//! * `eval` — one completed evaluation at its position within the current
//!   phase: the *raw* outcome (objective bit patterns, or a typed
//!   [`EvalError`] plus the attempt count and elapsed wall-clock of the
//!   failure). Raw means pre-validation: replay re-applies the same
//!   arity/finiteness validation the live path does.
//! * `iter` — an active-learning iteration's [`IterationStats`], bit-exact.
//! * `snap` — a full-state snapshot checkpoint (see below).
//! * `done` — the exploration completed; resume short-circuits to replay.
//! * `timing` — one serial re-measurement record from
//!   `slambench::remeasure_front_journaled`, making the timing pass
//!   resumable too.
//! * `wepoch` — a worker-epoch bump written by the multi-process service
//!   runner (`hm-service`) each time a coordinator incarnation opens the
//!   journal. Replies from workers spawned under an older epoch are fenced
//!   off after a coordinator crash, so a SIGKILL'd coordinator resumes
//!   bit-identically even if stale worker processes outlive it.
//! * `lease` — a lease-audit record (epoch, flat configuration index,
//!   attempt, worker id) appended by the service coordinator's sidecar
//!   journal. Audit-only: resume correctness never depends on it, but it
//!   makes post-mortem chaos analysis and reassignment accounting durable.
//!
//! # Torn writes and corruption
//!
//! [`Journal::open`] validates every record's CRC and structure in order. At
//! the first invalid record — a torn tail from a kill mid-write, a partial
//! final line, or a bit flip — the file is **truncated to the last valid
//! prefix** and the run resumes from there, re-evaluating whatever the lost
//! suffix covered. Corruption never aborts a resume and never silently
//! replays garbage: everything from the first bad byte onward is discarded.
//!
//! # Snapshots and RNG state: replay, don't serialize
//!
//! The exploration is deterministic given `OptimizerConfig::seed`, and its
//! only RNG draws are the bootstrap `sample_distinct` (over an empty exclude
//! set) and one `prediction_pool` per active iteration — both with draw
//! counts independent of evaluation outcomes. So the journal never
//! serializes `StdRng` internals (which would pin the rand version and
//! break the bit-identical guarantee across replays): a snapshot records
//! *how many* pool draws have happened, and resume re-derives the RNG
//! position by re-seeding and replaying those draws. Snapshots are taken at
//! phase boundaries (after the bootstrap and after each iteration's `iter`
//! record) once [`Journal::snapshot_every`] evaluations have accumulated;
//! they capture the full resumable state — samples, failure records,
//! iteration stats, and the draw count — so a reader never needs records
//! from before the latest snapshot (the file is still kept whole: if a
//! snapshot record is itself corrupted, the records before it remain
//! replayable).

// lint: zone(float-exact): every float in a journal record round-trips through to_bits hex; any lossy formatting or parsing breaks bit-identical resume
use crate::error::EvalError;
use crate::evaluate::FailedEvaluation;
use crate::optimizer::{IterationStats, Phase};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE), table-driven, std-only.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3 polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    !bytes
        .iter()
        .fold(!0u32, |c, &b| CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8))
}

// ---------------------------------------------------------------------------
// Field codecs: bit-exact floats, percent-escaped text.
// ---------------------------------------------------------------------------

fn enc_f64(v: f64, out: &mut String) {
    let _ = write!(out, "{:016x}", v.to_bits());
}

fn dec_f64(s: &str) -> Option<f64> {
    (s.len() == 16).then(|| u64::from_str_radix(s, 16).ok().map(f64::from_bits))?
}

fn enc_f64_list(vs: &[f64], out: &mut String) {
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        enc_f64(*v, out);
    }
}

fn dec_f64_list(s: &str) -> Option<Vec<f64>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split(',').map(dec_f64).collect()
}

/// Percent-escape arbitrary text to the single-token alphabet
/// `[A-Za-z0-9_.-]` (everything else becomes `%XX`).
fn enc_text(s: &str, out: &mut String) {
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'.' | b'-' => out.push(b as char),
            _ => {
                let _ = write!(out, "%{b:02x}");
            }
        }
    }
}

fn dec_text(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            let hex = std::str::from_utf8(hex).ok()?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

fn enc_phase(p: Phase, out: &mut String) {
    match p {
        Phase::Random => out.push('r'),
        Phase::Active(k) => {
            let _ = write!(out, "a{k}");
        }
    }
}

fn dec_phase(s: &str) -> Option<Phase> {
    if s == "r" {
        return Some(Phase::Random);
    }
    s.strip_prefix('a')?.parse().ok().map(Phase::Active)
}

fn enc_error(e: &EvalError, out: &mut String) {
    match e {
        EvalError::NonFinite { objective, bits } => {
            let _ = write!(out, "nf/{objective}/{bits:016x}");
        }
        EvalError::WrongArity { expected, got } => {
            let _ = write!(out, "arity/{expected}/{got}");
        }
        EvalError::Diverged { reason } => {
            out.push_str("div/");
            enc_text(reason, out);
        }
        EvalError::Panicked { message } => {
            out.push_str("panic/");
            enc_text(message, out);
        }
        EvalError::Timeout { elapsed_ms, deadline_ms } => {
            let _ = write!(out, "timeout/{elapsed_ms}/{deadline_ms}");
        }
        EvalError::Transient { reason } => {
            out.push_str("transient/");
            enc_text(reason, out);
        }
    }
}

fn dec_error(s: &str) -> Option<EvalError> {
    let (tag, rest) = s.split_once('/')?;
    match tag {
        "nf" => {
            let (obj, bits) = rest.split_once('/')?;
            Some(EvalError::NonFinite {
                objective: obj.parse().ok()?,
                bits: u64::from_str_radix(bits, 16).ok()?,
            })
        }
        "arity" => {
            let (e, g) = rest.split_once('/')?;
            Some(EvalError::WrongArity { expected: e.parse().ok()?, got: g.parse().ok()? })
        }
        "div" => Some(EvalError::Diverged { reason: dec_text(rest)? }),
        "panic" => Some(EvalError::Panicked { message: dec_text(rest)? }),
        "timeout" => {
            let (e, d) = rest.split_once('/')?;
            Some(EvalError::Timeout { elapsed_ms: e.parse().ok()?, deadline_ms: d.parse().ok()? })
        }
        "transient" => Some(EvalError::Transient { reason: dec_text(rest)? }),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Raw outcomes.
// ---------------------------------------------------------------------------

/// A raw, pre-validation evaluation outcome as journaled: either the
/// evaluator's objective vector exactly as returned (possibly non-finite or
/// wrong-arity — replay re-validates), or a typed error with its retry
/// story.
#[derive(Debug, Clone, PartialEq)]
pub enum RawOutcome {
    /// The evaluator returned objectives (not yet validated).
    Ok(Vec<f64>),
    /// The evaluation failed.
    Err {
        /// The failure classification.
        error: EvalError,
        /// Number of attempts made (retries included).
        attempts: u32,
        /// Wall-clock spent across all attempts, in milliseconds. This is
        /// measurement metadata, not resumable state: replay preserves the
        /// journaled value, but an independent rerun will record its own.
        elapsed_ms: u64,
    },
}

impl RawOutcome {
    /// Convert a detailed evaluation outcome into its journal form.
    pub fn from_detailed(outcome: Result<Vec<f64>, FailedEvaluation>) -> Self {
        match outcome {
            Ok(v) => RawOutcome::Ok(v),
            Err(f) => RawOutcome::Err {
                error: f.error,
                attempts: f.attempts,
                elapsed_ms: f.elapsed_ms,
            },
        }
    }

    /// View as a plain `Result`, dropping the retry metadata.
    pub fn as_result(&self) -> Result<Vec<f64>, EvalError> {
        match self {
            RawOutcome::Ok(v) => Ok(v.clone()),
            RawOutcome::Err { error, .. } => Err(error.clone()),
        }
    }

    /// Encode in the journal's single-token ASCII codec (bit-exact floats,
    /// percent-escaped text). The `hm-service` wire protocol ships outcomes
    /// in exactly this form so the coordinator journals a worker's reply
    /// byte-identically to a local evaluation.
    pub fn encode_wire(&self) -> String {
        let mut out = String::new();
        enc_outcome(self, &mut out);
        out
    }

    /// Decode an [`RawOutcome::encode_wire`] string; `None` on any
    /// malformation (the service treats that as a garbled frame).
    pub fn decode_wire(s: &str) -> Option<RawOutcome> {
        dec_outcome(s)
    }
}

fn enc_outcome(o: &RawOutcome, out: &mut String) {
    match o {
        RawOutcome::Ok(vs) => {
            out.push_str("ok/");
            enc_f64_list(vs, out);
        }
        RawOutcome::Err { error, attempts, elapsed_ms } => {
            let _ = write!(out, "err/{attempts}/{elapsed_ms}/");
            enc_error(error, out);
        }
    }
}

fn dec_outcome(s: &str) -> Option<RawOutcome> {
    let (tag, rest) = s.split_once('/')?;
    match tag {
        "ok" => Some(RawOutcome::Ok(dec_f64_list(rest)?)),
        "err" => {
            let mut it = rest.splitn(3, '/');
            let attempts = it.next()?.parse().ok()?;
            let elapsed_ms = it.next()?.parse().ok()?;
            let error = dec_error(it.next()?)?;
            Some(RawOutcome::Err { error, attempts, elapsed_ms })
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Iteration stats codec (used by `iter` records and snapshots).
// ---------------------------------------------------------------------------

fn enc_iter_stats(s: &IterationStats, out: &mut String) {
    let _ = write!(
        out,
        "{}:{}:{}:{}:",
        s.iteration, s.predicted_front_size, s.new_evaluations, s.failed_evaluations
    );
    enc_f64(s.hypervolume, out);
    out.push(':');
    for (i, o) in s.oob_rmse.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match o {
            Some(v) => enc_f64(*v, out),
            None => out.push('-'),
        }
    }
}

fn dec_iter_stats(s: &str) -> Option<IterationStats> {
    let mut it = s.splitn(6, ':');
    let iteration = it.next()?.parse().ok()?;
    let predicted_front_size = it.next()?.parse().ok()?;
    let new_evaluations = it.next()?.parse().ok()?;
    let failed_evaluations = it.next()?.parse().ok()?;
    let hypervolume = dec_f64(it.next()?)?;
    let oob = it.next()?;
    let oob_rmse = if oob.is_empty() {
        Vec::new()
    } else {
        oob.split(',')
            .map(|t| if t == "-" { Some(None) } else { dec_f64(t).map(Some) })
            .collect::<Option<Vec<_>>>()?
    };
    Some(IterationStats {
        iteration,
        predicted_front_size,
        new_evaluations,
        failed_evaluations,
        oob_rmse,
        hypervolume,
    })
}

// ---------------------------------------------------------------------------
// Records and replay state.
// ---------------------------------------------------------------------------

/// The `run` header a journal was recorded under. Resume refuses to replay
/// a journal whose header does not match the current optimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RunHeader {
    pub seed: u64,
    pub random_samples: usize,
    pub max_iterations: usize,
    pub max_evals_per_iteration: usize,
    pub pool_size: usize,
    pub n_objectives: usize,
    /// The evaluation worker topology (`OptimizerConfig::eval_workers`) the
    /// journal was recorded under. `None` for legacy `run v1` headers that
    /// predate topology tracking; resume rejects both a topology change and
    /// a legacy header with a field-specific error instead of silently
    /// replaying under a different worker layout.
    pub eval_workers: Option<usize>,
    /// CRC-32 fingerprint of the forest config, failure policy, and
    /// parameter space definition.
    pub sig: u32,
}

/// One journaled phase: its candidate list and however many outcomes were
/// durable before the run stopped.
#[derive(Debug, Clone)]
pub(crate) struct PhaseReplay {
    pub phase: Phase,
    pub predicted_front_size: usize,
    /// Flat indices of the phase's configurations, in evaluation order.
    pub flat: Vec<u64>,
    /// Journaled outcomes, a prefix of `flat` by position.
    pub outcomes: Vec<RawOutcome>,
    /// The iteration's stats record, if the run got that far.
    pub stats: Option<IterationStats>,
}

impl PhaseReplay {
    fn complete(&self) -> bool {
        self.outcomes.len() == self.flat.len()
    }

    fn boundary(&self) -> bool {
        self.complete() && (self.phase == Phase::Random || self.stats.is_some())
    }
}

/// Full resumable state at a phase boundary, as captured by `snap` records.
#[derive(Debug, Clone, Default)]
pub(crate) struct SnapshotState {
    /// Whether the bootstrap phase completed (and thus consumed its
    /// `sample_distinct` draw).
    pub boot_done: bool,
    /// Number of `prediction_pool` draws consumed so far — with `boot_done`
    /// and the seed, this *is* the RNG position.
    pub pools_drawn: usize,
    /// Successful samples in evaluation order: flat index, phase, raw
    /// objective values.
    pub samples: Vec<(u64, Phase, Vec<f64>)>,
    /// Failure records in evaluation order: flat index, phase, error,
    /// attempts, elapsed milliseconds.
    pub failures: Vec<(u64, Phase, EvalError, u32, u64)>,
    /// Completed iteration stats.
    pub iterations: Vec<IterationStats>,
}

/// Everything a resume needs, extracted from a parsed journal: the state at
/// the latest snapshot plus every phase recorded after it.
#[derive(Debug, Default)]
pub(crate) struct Replay {
    pub base: SnapshotState,
    pub phases: VecDeque<PhaseReplay>,
    pub done: bool,
}

impl Replay {
    /// Pop the next journaled phase, which must match `expected` (journals
    /// record phases in execution order; any deviation means the journal
    /// belongs to a different run shape).
    pub fn next_phase(&mut self, expected: Phase) -> Result<Option<PhaseReplay>, String> {
        match self.phases.front() {
            Some(p) if p.phase == expected => Ok(self.phases.pop_front()),
            Some(p) => Err(format!("journal phase {:?} where {:?} was expected", p.phase, expected)),
            None => Ok(None),
        }
    }
}

/// One durable lease-audit entry appended by the `hm-service` coordinator:
/// which worker held a lease on which configuration, at which attempt, under
/// which coordinator epoch. Audit metadata only — resume correctness never
/// reads it back, but reassignment history survives coordinator crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseRecord {
    /// Coordinator incarnation the lease was granted under.
    pub epoch: u64,
    /// Flat index of the leased configuration in its parameter space.
    pub flat: u64,
    /// 1-based attempt counter (bumps on every reassignment).
    pub attempt: u32,
    /// Coordinator-local id of the worker process holding the lease.
    pub worker: u32,
}

enum Record {
    Run(RunHeader),
    PhaseStart { phase: Phase, predicted_front_size: usize, flat: Vec<u64> },
    Eval { pos: usize, outcome: RawOutcome },
    Iter(IterationStats),
    Snap(SnapshotState),
    Done,
    Timing { pos: usize, flat: u64, outcome: RawOutcome },
    WorkerEpoch { epoch: u64 },
    Lease { epoch: u64, flat: u64, attempt: u32, worker: u32 },
}

fn enc_record(r: &Record) -> String {
    let mut b = String::new();
    match r {
        Record::Run(h) => {
            // Freshly written headers are always `v2` (topology-carrying);
            // `None` only ever arises from decoding a legacy `v1` file.
            let _ = write!(
                b,
                "run v2 {} {} {} {} {} {} {} {:08x}",
                h.seed,
                h.random_samples,
                h.max_iterations,
                h.max_evals_per_iteration,
                h.pool_size,
                h.n_objectives,
                h.eval_workers.unwrap_or(0),
                h.sig
            );
        }
        Record::PhaseStart { phase, predicted_front_size, flat } => {
            b.push_str("phase ");
            enc_phase(*phase, &mut b);
            let _ = write!(b, " {predicted_front_size} ");
            if flat.is_empty() {
                b.push('-');
            }
            for (i, f) in flat.iter().enumerate() {
                if i > 0 {
                    b.push(',');
                }
                let _ = write!(b, "{f}");
            }
        }
        Record::Eval { pos, outcome } => {
            let _ = write!(b, "eval {pos} ");
            enc_outcome(outcome, &mut b);
        }
        Record::Iter(s) => {
            b.push_str("iter ");
            enc_iter_stats(s, &mut b);
        }
        Record::Snap(s) => {
            let _ = write!(b, "snap {} {} ", s.boot_done as u8, s.pools_drawn);
            if s.samples.is_empty() {
                b.push('-');
            }
            for (i, (flat, phase, objs)) in s.samples.iter().enumerate() {
                if i > 0 {
                    b.push(';');
                }
                let _ = write!(b, "{flat}:");
                enc_phase(*phase, &mut b);
                b.push(':');
                enc_f64_list(objs, &mut b);
            }
            b.push(' ');
            if s.failures.is_empty() {
                b.push('-');
            }
            for (i, (flat, phase, error, attempts, elapsed)) in s.failures.iter().enumerate() {
                if i > 0 {
                    b.push(';');
                }
                let _ = write!(b, "{flat}:");
                enc_phase(*phase, &mut b);
                let _ = write!(b, ":{attempts}:{elapsed}:");
                enc_error(error, &mut b);
            }
            b.push(' ');
            if s.iterations.is_empty() {
                b.push('-');
            }
            for (i, it) in s.iterations.iter().enumerate() {
                if i > 0 {
                    b.push(';');
                }
                enc_iter_stats(it, &mut b);
            }
        }
        Record::Done => b.push_str("done"),
        Record::Timing { pos, flat, outcome } => {
            let _ = write!(b, "timing {pos} {flat} ");
            enc_outcome(outcome, &mut b);
        }
        Record::WorkerEpoch { epoch } => {
            let _ = write!(b, "wepoch {epoch}");
        }
        Record::Lease { epoch, flat, attempt, worker } => {
            let _ = write!(b, "lease {epoch} {flat} {attempt} {worker}");
        }
    }
    b
}

fn dec_record(body: &str) -> Option<Record> {
    let (tag, rest) = body.split_once(' ').unwrap_or((body, ""));
    match tag {
        "run" => {
            let mut it = rest.split(' ');
            let version = it.next()?;
            if version != "v1" && version != "v2" {
                return None;
            }
            let seed = it.next()?.parse().ok()?;
            let random_samples = it.next()?.parse().ok()?;
            let max_iterations = it.next()?.parse().ok()?;
            let max_evals_per_iteration = it.next()?.parse().ok()?;
            let pool_size = it.next()?.parse().ok()?;
            let n_objectives = it.next()?.parse().ok()?;
            // `v2` headers carry the worker topology; legacy `v1` files
            // decode to `None` so resume can reject them with a clear
            // topology error rather than truncating them away as garbage.
            let eval_workers = if version == "v2" { Some(it.next()?.parse().ok()?) } else { None };
            Some(Record::Run(RunHeader {
                seed,
                random_samples,
                max_iterations,
                max_evals_per_iteration,
                pool_size,
                n_objectives,
                eval_workers,
                sig: u32::from_str_radix(it.next()?, 16).ok()?,
            }))
        }
        "phase" => {
            let mut it = rest.splitn(3, ' ');
            let phase = dec_phase(it.next()?)?;
            let predicted_front_size = it.next()?.parse().ok()?;
            let flat_s = it.next()?;
            let flat = if flat_s == "-" {
                Vec::new()
            } else {
                flat_s.split(',').map(|t| t.parse().ok()).collect::<Option<Vec<u64>>>()?
            };
            Some(Record::PhaseStart { phase, predicted_front_size, flat })
        }
        "eval" => {
            let (pos, outcome) = rest.split_once(' ')?;
            Some(Record::Eval { pos: pos.parse().ok()?, outcome: dec_outcome(outcome)? })
        }
        "iter" => Some(Record::Iter(dec_iter_stats(rest)?)),
        "snap" => {
            let mut it = rest.splitn(5, ' ');
            let boot_done = match it.next()? {
                "0" => false,
                "1" => true,
                _ => return None,
            };
            let pools_drawn = it.next()?.parse().ok()?;
            let samples_s = it.next()?;
            let failures_s = it.next()?;
            let iters_s = it.next()?;
            let mut samples = Vec::new();
            if samples_s != "-" {
                for item in samples_s.split(';') {
                    let mut f = item.splitn(3, ':');
                    samples.push((
                        f.next()?.parse().ok()?,
                        dec_phase(f.next()?)?,
                        dec_f64_list(f.next()?)?,
                    ));
                }
            }
            let mut failures = Vec::new();
            if failures_s != "-" {
                for item in failures_s.split(';') {
                    let mut f = item.splitn(5, ':');
                    let flat = f.next()?.parse().ok()?;
                    let phase = dec_phase(f.next()?)?;
                    let attempts = f.next()?.parse().ok()?;
                    let elapsed = f.next()?.parse().ok()?;
                    let error = dec_error(f.next()?)?;
                    failures.push((flat, phase, error, attempts, elapsed));
                }
            }
            let iterations = if iters_s == "-" {
                Vec::new()
            } else {
                iters_s.split(';').map(dec_iter_stats).collect::<Option<Vec<_>>>()?
            };
            Some(Record::Snap(SnapshotState { boot_done, pools_drawn, samples, failures, iterations }))
        }
        "done" => rest.is_empty().then_some(Record::Done),
        "timing" => {
            let mut it = rest.splitn(3, ' ');
            Some(Record::Timing {
                pos: it.next()?.parse().ok()?,
                flat: it.next()?.parse().ok()?,
                outcome: dec_outcome(it.next()?)?,
            })
        }
        "wepoch" => Some(Record::WorkerEpoch { epoch: rest.parse().ok()? }),
        "lease" => {
            let mut it = rest.split(' ');
            let r = Record::Lease {
                epoch: it.next()?.parse().ok()?,
                flat: it.next()?.parse().ok()?,
                attempt: it.next()?.parse().ok()?,
                worker: it.next()?.parse().ok()?,
            };
            it.next().is_none().then_some(r)
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Sequential parser: validates record order, folds snapshots.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Parser {
    header: Option<RunHeader>,
    base: SnapshotState,
    phases: Vec<PhaseReplay>,
    done: bool,
    timing: Vec<(usize, u64, RawOutcome)>,
    worker_epoch: u64,
    leases: Vec<LeaseRecord>,
}

impl Parser {
    fn expected_active(&self) -> usize {
        self.base.iterations.len()
            + self.phases.iter().filter(|p| matches!(p.phase, Phase::Active(_))).count()
            + 1
    }

    fn at_boundary(&self) -> bool {
        self.phases.last().map_or(true, PhaseReplay::boundary)
    }

    /// Apply one record; `Err` marks the journal invalid from this record
    /// onward (the caller truncates).
    fn apply(&mut self, record: Record) -> Result<(), &'static str> {
        // Timing, worker-epoch, and lease records are exempt from the
        // header-first rule: a serial re-measurement pass or a service
        // coordinator's sidecar may journal into a standalone file with no
        // exploration header, and each such record self-validates (timing by
        // front position + flat index, epochs by monotonicity, leases by
        // their checksum alone).
        if self.header.is_none()
            && !matches!(
                record,
                Record::Run(_) | Record::Timing { .. } | Record::WorkerEpoch { .. } | Record::Lease { .. }
            )
        {
            return Err("record before run header");
        }
        match record {
            Record::Run(h) => {
                if self.header.is_some() {
                    return Err("duplicate run header");
                }
                self.header = Some(h);
            }
            Record::PhaseStart { phase, predicted_front_size, flat } => {
                if self.done || !self.at_boundary() {
                    return Err("phase start out of order");
                }
                let valid = match phase {
                    Phase::Random => !self.base.boot_done && self.phases.is_empty(),
                    Phase::Active(k) => {
                        (self.base.boot_done || !self.phases.is_empty())
                            && k == self.expected_active()
                    }
                };
                if !valid {
                    return Err("phase tag out of sequence");
                }
                self.phases.push(PhaseReplay {
                    phase,
                    predicted_front_size,
                    flat,
                    outcomes: Vec::new(),
                    stats: None,
                });
            }
            Record::Eval { pos, outcome } => {
                let Some(cur) = self.phases.last_mut() else {
                    return Err("eval without open phase");
                };
                if cur.complete() || pos != cur.outcomes.len() {
                    return Err("eval position out of order");
                }
                cur.outcomes.push(outcome);
            }
            Record::Iter(stats) => {
                let Some(cur) = self.phases.last_mut() else {
                    return Err("iter without phase");
                };
                if !cur.complete() || cur.stats.is_some() || cur.phase != Phase::Active(stats.iteration)
                {
                    return Err("iter stats out of order");
                }
                cur.stats = Some(stats);
            }
            Record::Snap(s) => {
                if !self.at_boundary() {
                    return Err("snapshot not at phase boundary");
                }
                self.base = s;
                self.phases.clear();
            }
            Record::Done => {
                if self.done || !self.at_boundary() {
                    return Err("done out of order");
                }
                self.done = true;
            }
            Record::Timing { pos, flat, outcome } => {
                if pos != self.timing.len() {
                    return Err("timing position out of order");
                }
                self.timing.push((pos, flat, outcome));
            }
            Record::WorkerEpoch { epoch } => {
                // Each coordinator incarnation bumps the epoch by at least
                // one; a non-increasing epoch means records were reordered.
                if epoch <= self.worker_epoch {
                    return Err("worker epoch not increasing");
                }
                self.worker_epoch = epoch;
            }
            Record::Lease { epoch, flat, attempt, worker } => {
                self.leases.push(LeaseRecord { epoch, flat, attempt, worker });
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The journal itself.
// ---------------------------------------------------------------------------

/// When appended records are fsync'd to disk.
///
/// Plain `write` already survives a SIGKILL of the *process* (the data is in
/// the kernel page cache); fsync is what survives power loss. The default
/// syncs once per evaluation chunk, which keeps journal overhead low (the
/// `journal_overhead_*` bench series gates it at <5 %) while bounding
/// power-loss exposure to one chunk of evaluations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every record — maximum durability, one fsync per
    /// evaluation.
    PerRecord,
    /// fsync at chunk/phase boundaries, when the optimizer calls
    /// [`Journal::sync`] (the default).
    PerBatch,
}

/// An append-only, checksummed write-ahead journal for explorations.
///
/// Create a fresh journal with [`Journal::create`], reopen an existing one
/// (validating checksums and truncating any torn tail) with
/// [`Journal::open`], and pass it to `HyperMapper::try_run_journaled` /
/// `HyperMapper::resume`. See the module docs for the record format.
pub struct Journal {
    file: File,
    path: PathBuf,
    header: Option<RunHeader>,
    replay: Option<Replay>,
    timing: Vec<(usize, u64, RawOutcome)>,
    timing_appended: usize,
    worker_epoch: u64,
    leases: Vec<LeaseRecord>,
    records: usize,
    truncated_bytes: u64,
    sync_policy: SyncPolicy,
    snapshot_every: usize,
    evals_since_snapshot: usize,
    needs_sync: bool,
    done: bool,
}

impl Journal {
    /// Create a fresh, empty journal at `path`, truncating any existing
    /// file.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(Journal::from_parts(file, path, Parser::default(), 0, 0))
    }

    /// Open an existing journal, validating every record's checksum and
    /// structure. The first torn, corrupt, or out-of-order record — and
    /// everything after it — is truncated away, and the journal resumes
    /// from the last valid prefix. Fails only on real I/O errors or if the
    /// file does not exist.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut parser = Parser::default();
        let mut records = 0usize;
        let mut valid_len = 0usize;
        let mut offset = 0usize;
        while offset < bytes.len() {
            let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
                break; // torn tail: no terminating newline
            };
            let line = &bytes[offset..offset + nl];
            let Some(record) = parse_line(line) else {
                break; // bad checksum or undecodable body
            };
            if parser.apply(record).is_err() {
                break; // structurally out of order
            }
            records += 1;
            offset += nl + 1;
            valid_len = offset;
        }
        let truncated = (bytes.len() - valid_len) as u64;
        if truncated > 0 {
            file.set_len(valid_len as u64)?;
        }
        file.seek(SeekFrom::Start(valid_len as u64))?;
        Ok(Journal::from_parts(file, path, parser, records, truncated))
    }

    /// [`Journal::open`] if `path` exists, else [`Journal::create`].
    pub fn open_or_create<P: AsRef<Path>>(path: P) -> io::Result<Journal> {
        if path.as_ref().exists() {
            Journal::open(path)
        } else {
            Journal::create(path)
        }
    }

    fn from_parts(
        file: File,
        path: PathBuf,
        parser: Parser,
        records: usize,
        truncated_bytes: u64,
    ) -> Journal {
        let evals_since_snapshot = parser.phases.iter().map(|p| p.outcomes.len()).sum();
        let done = parser.done;
        Journal {
            file,
            path,
            header: parser.header.clone(),
            replay: Some(Replay { base: parser.base, phases: parser.phases.into(), done: parser.done }),
            timing: parser.timing,
            timing_appended: 0,
            worker_epoch: parser.worker_epoch,
            leases: parser.leases,
            records,
            truncated_bytes,
            sync_policy: SyncPolicy::PerBatch,
            snapshot_every: 256,
            evals_since_snapshot,
            needs_sync: false,
            done,
        }
    }

    /// Set the fsync policy (default [`SyncPolicy::PerBatch`]).
    pub fn with_sync_policy(mut self, policy: SyncPolicy) -> Self {
        self.sync_policy = policy;
        self
    }

    /// Set how many evaluations accumulate between snapshot checkpoints
    /// (default 256; `0` disables snapshots — the full record log still
    /// resumes exactly).
    pub fn with_snapshot_every(mut self, every: usize) -> Self {
        self.snapshot_every = every;
        self
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of valid records currently in the journal.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Bytes discarded by torn-tail/corruption truncation at open time.
    pub fn truncated_bytes(&self) -> u64 {
        self.truncated_bytes
    }

    /// Whether the journaled exploration ran to completion.
    pub fn is_done(&self) -> bool {
        self.done
    }

    pub(crate) fn header(&self) -> Option<&RunHeader> {
        self.header.as_ref()
    }

    /// Extract the replay state (the optimizer consumes it once per run).
    pub(crate) fn take_replay(&mut self) -> Replay {
        self.replay.take().unwrap_or_default()
    }

    fn append(&mut self, record: &Record) -> io::Result<()> {
        let body = enc_record(record);
        let line = format!("{:08x} {}\n", crc32(body.as_bytes()), body);
        self.file.write_all(line.as_bytes())?;
        self.records += 1;
        if self.sync_policy == SyncPolicy::PerRecord {
            self.file.sync_data()?;
        } else {
            self.needs_sync = true;
        }
        Ok(())
    }

    /// Flush buffered records to stable storage (no-op when nothing is
    /// pending).
    pub fn sync(&mut self) -> io::Result<()> {
        if self.needs_sync {
            self.file.sync_data()?;
            self.needs_sync = false;
        }
        Ok(())
    }

    pub(crate) fn append_header(&mut self, h: &RunHeader) -> io::Result<()> {
        self.header = Some(h.clone());
        self.append(&Record::Run(h.clone()))
    }

    pub(crate) fn append_phase_start(
        &mut self,
        phase: Phase,
        predicted_front_size: usize,
        flat: Vec<u64>,
    ) -> io::Result<()> {
        self.append(&Record::PhaseStart { phase, predicted_front_size, flat })
    }

    pub(crate) fn append_eval(&mut self, pos: usize, outcome: &RawOutcome) -> io::Result<()> {
        self.evals_since_snapshot += 1;
        self.append(&Record::Eval { pos, outcome: outcome.clone() })
    }

    pub(crate) fn append_iter(&mut self, stats: &IterationStats) -> io::Result<()> {
        self.append(&Record::Iter(stats.clone()))
    }

    /// Write a snapshot checkpoint if enough evaluations accumulated since
    /// the last one. Only called at phase boundaries.
    pub(crate) fn maybe_snapshot(&mut self, state: &SnapshotState) -> io::Result<()> {
        if self.snapshot_every == 0 || self.evals_since_snapshot < self.snapshot_every {
            return Ok(());
        }
        self.append(&Record::Snap(state.clone()))?;
        self.evals_since_snapshot = 0;
        self.sync()
    }

    pub(crate) fn append_done(&mut self) -> io::Result<()> {
        self.append(&Record::Done)?;
        self.done = true;
        self.sync()
    }

    // -- timing records (slambench serial re-measurement) ------------------

    /// The journaled re-measurement outcome at front position `pos`, if it
    /// was recorded for the same configuration (`flat`).
    pub fn replayed_timing(&self, pos: usize, flat: u64) -> Option<&RawOutcome> {
        self.timing
            .get(pos)
            .filter(|(p, f, _)| *p == pos && *f == flat)
            .map(|(_, _, o)| o)
    }

    /// Number of journaled timing records.
    pub fn timing_records(&self) -> usize {
        self.timing.len()
    }

    /// Append one serial re-measurement record. Timing records are
    /// positional (front order) and fsync'd immediately — the pass is
    /// serial, so durability cannot perturb a concurrent measurement.
    pub fn append_timing(&mut self, pos: usize, flat: u64, outcome: &RawOutcome) -> io::Result<()> {
        self.timing_appended += 1;
        self.append(&Record::Timing { pos, flat, outcome: outcome.clone() })?;
        self.file.sync_data()?;
        self.needs_sync = false;
        Ok(())
    }

    // -- service records (hm-service coordinator epochs and lease audit) ----

    /// The highest worker epoch recorded in the journal (`0` if none). Each
    /// `hm-service` coordinator incarnation reads this, bumps it with
    /// [`Journal::append_worker_epoch`], and tags every worker it spawns, so
    /// replies from processes that survived a coordinator crash are fenced
    /// off by epoch comparison.
    pub fn worker_epoch(&self) -> u64 {
        self.worker_epoch
    }

    /// Durably record a new worker epoch. The epoch must be strictly greater
    /// than [`Journal::worker_epoch`]; it is fsync'd immediately — an epoch
    /// that is not durable before workers spawn cannot fence their replies
    /// after a crash.
    pub fn append_worker_epoch(&mut self, epoch: u64) -> io::Result<()> {
        if epoch <= self.worker_epoch {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("worker epoch {epoch} not greater than recorded {}", self.worker_epoch),
            ));
        }
        self.append(&Record::WorkerEpoch { epoch })?;
        self.worker_epoch = epoch;
        self.file.sync_data()?;
        self.needs_sync = false;
        Ok(())
    }

    /// Lease-audit records replayed from the file, in append order.
    pub fn lease_records(&self) -> &[LeaseRecord] {
        &self.leases
    }

    /// Append one lease-audit record (grant or reassignment). Synced under
    /// the journal's [`SyncPolicy`] like eval records — leases are audit
    /// metadata, not resumable state, so batched durability is enough.
    pub fn append_lease(&mut self, lease: &LeaseRecord) -> io::Result<()> {
        self.append(&Record::Lease {
            epoch: lease.epoch,
            flat: lease.flat,
            attempt: lease.attempt,
            worker: lease.worker,
        })?;
        self.leases.push(*lease);
        Ok(())
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        // Best-effort durability on teardown; errors have nowhere to go.
        let _ = self.sync();
    }
}

fn parse_line(line: &[u8]) -> Option<Record> {
    let line = std::str::from_utf8(line).ok()?;
    let (crc_s, body) = line.split_once(' ')?;
    let crc = u32::from_str_radix(crc_s, 16).ok()?;
    if crc_s.len() != 8 || crc != crc32(body.as_bytes()) {
        return None;
    }
    dec_record(body)
}

// ---------------------------------------------------------------------------
// Slot-ordered mid-batch journaling.
// ---------------------------------------------------------------------------

/// Bridges parallel batch completion (any order) to the journal's
/// slot-ordered `eval` records: out-of-order completions are buffered and
/// the contiguous prefix is flushed as it forms, so the journal always holds
/// positions `base_pos..base_pos+k` with no gaps — exactly the prefix a
/// resume can replay.
pub(crate) struct JournalSink<'a> {
    inner: Mutex<SinkInner<'a>>,
}

struct SinkInner<'a> {
    journal: &'a mut Journal,
    base_pos: usize,
    next: usize,
    pending: BTreeMap<usize, RawOutcome>,
    error: Option<io::Error>,
}

impl<'a> JournalSink<'a> {
    pub(crate) fn new(journal: &'a mut Journal, base_pos: usize) -> Self {
        JournalSink {
            inner: Mutex::new(SinkInner {
                journal,
                base_pos,
                next: 0,
                pending: BTreeMap::new(),
                error: None,
            }),
        }
    }

    /// Record the completion of chunk-local slot `i` (called from worker
    /// threads, in completion order).
    pub(crate) fn observe(&self, i: usize, outcome: &Result<Vec<f64>, FailedEvaluation>) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        g.pending.insert(i, RawOutcome::from_detailed(outcome.clone()));
        while g.error.is_none() {
            let next = g.next;
            let Some(o) = g.pending.remove(&next) else { break };
            let pos = g.base_pos + next;
            if let Err(e) = g.journal.append_eval(pos, &o) {
                g.error = Some(e);
            }
            g.next += 1;
        }
    }

    /// Surface any write error once the batch has drained.
    pub(crate) fn finish(self) -> io::Result<()> {
        let inner = self.inner.into_inner().unwrap_or_else(|e| e.into_inner());
        match inner.error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hm-journal-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn text_roundtrip() {
        for s in ["", "plain", "with space", "p%c: \n\t%%/;:,\u{00e9}"] {
            let mut enc = String::new();
            enc_text(s, &mut enc);
            assert!(!enc.contains(' ') && !enc.contains('\n'));
            assert_eq!(dec_text(&enc).as_deref(), Some(s));
        }
    }

    #[test]
    fn f64_roundtrip_is_bit_exact() {
        for v in [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, -1e-308, std::f64::consts::PI] {
            let mut enc = String::new();
            enc_f64(v, &mut enc);
            let back = dec_f64(&enc).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn outcome_roundtrip() {
        let cases = [
            RawOutcome::Ok(vec![1.25, f64::NAN]),
            RawOutcome::Ok(vec![]),
            RawOutcome::Err {
                error: EvalError::Panicked { message: "boom / with : fields".into() },
                attempts: 3,
                elapsed_ms: 17,
            },
            RawOutcome::Err {
                error: EvalError::NonFinite { objective: 1, bits: f64::NAN.to_bits() },
                attempts: 1,
                elapsed_ms: 0,
            },
            RawOutcome::Err {
                error: EvalError::Timeout { elapsed_ms: 100, deadline_ms: 50 },
                attempts: 2,
                elapsed_ms: 101,
            },
        ];
        for o in &cases {
            let mut enc = String::new();
            enc_outcome(o, &mut enc);
            // NaN breaks derived equality; re-encoding the decoded value
            // proves the round-trip is bit-exact for every payload.
            let back = dec_outcome(&enc).unwrap();
            let mut re = String::new();
            enc_outcome(&back, &mut re);
            assert_eq!(re, enc);
        }
    }

    fn stats(iteration: usize) -> IterationStats {
        IterationStats {
            iteration,
            predicted_front_size: 12,
            new_evaluations: 5,
            failed_evaluations: 1,
            oob_rmse: vec![Some(0.25), None],
            hypervolume: 3.75,
        }
    }

    #[test]
    fn record_roundtrip_through_file() {
        let path = tmp("roundtrip");
        let header = RunHeader {
            seed: 42,
            random_samples: 10,
            max_iterations: 3,
            max_evals_per_iteration: 5,
            pool_size: 100,
            n_objectives: 2,
            eval_workers: Some(3),
            sig: 0xDEAD_BEEF,
        };
        {
            let mut j = Journal::create(&path).unwrap();
            j.append_header(&header).unwrap();
            j.append_phase_start(Phase::Random, 0, vec![3, 1, 4]).unwrap();
            j.append_eval(0, &RawOutcome::Ok(vec![1.0, 2.0])).unwrap();
            j.append_eval(
                1,
                &RawOutcome::Err {
                    error: EvalError::Diverged { reason: "lost tracking".into() },
                    attempts: 1,
                    elapsed_ms: 9,
                },
            )
            .unwrap();
            j.sync().unwrap();
        }
        let mut j = Journal::open(&path).unwrap();
        assert_eq!(j.records(), 4);
        assert_eq!(j.truncated_bytes(), 0);
        assert_eq!(j.header(), Some(&header));
        let mut replay = j.take_replay();
        assert!(!replay.done);
        let p = replay.next_phase(Phase::Random).unwrap().unwrap();
        assert_eq!(p.flat, vec![3, 1, 4]);
        assert_eq!(p.outcomes.len(), 2);
        assert_eq!(p.outcomes[0], RawOutcome::Ok(vec![1.0, 2.0]));
        assert!(!p.complete());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = tmp("torn");
        {
            let mut j = Journal::create(&path).unwrap();
            j.append_header(&RunHeader {
                seed: 1,
                random_samples: 2,
                max_iterations: 1,
                max_evals_per_iteration: 0,
                pool_size: 10,
                n_objectives: 1,
                eval_workers: Some(0),
                sig: 0,
            })
            .unwrap();
            j.append_phase_start(Phase::Random, 0, vec![0, 1]).unwrap();
            j.append_eval(0, &RawOutcome::Ok(vec![5.0])).unwrap();
            j.sync().unwrap();
        }
        // Simulate a kill mid-write: append half a record, no newline.
        let valid_len = std::fs::metadata(&path).unwrap().len();
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"0badc0de eval 1 ok/3ff00000000").unwrap();
        }
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.records(), 3);
        assert!(j.truncated_bytes() > 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), valid_len, "file truncated back");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_flip_truncates_from_corruption() {
        let path = tmp("bitflip");
        {
            let mut j = Journal::create(&path).unwrap();
            j.append_header(&RunHeader {
                seed: 1,
                random_samples: 2,
                max_iterations: 1,
                max_evals_per_iteration: 0,
                pool_size: 10,
                n_objectives: 1,
                eval_workers: Some(0),
                sig: 0,
            })
            .unwrap();
            j.append_phase_start(Phase::Random, 0, vec![0, 1]).unwrap();
            j.append_eval(0, &RawOutcome::Ok(vec![5.0])).unwrap();
            j.append_eval(1, &RawOutcome::Ok(vec![6.0])).unwrap();
            j.sync().unwrap();
        }
        // Flip a bit in the last record's body.
        let mut bytes = std::fs::read(&path).unwrap();
        let len = bytes.len();
        bytes[len - 5] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let mut j = Journal::open(&path).unwrap();
        assert_eq!(j.records(), 3, "corrupted final record dropped");
        assert!(j.truncated_bytes() > 0);
        let mut replay = j.take_replay();
        let p = replay.next_phase(Phase::Random).unwrap().unwrap();
        assert_eq!(p.outcomes.len(), 1, "resumes from last valid eval");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_folds_prior_records() {
        let path = tmp("snap");
        let snap = SnapshotState {
            boot_done: true,
            pools_drawn: 2,
            samples: vec![(7, Phase::Random, vec![1.0, 2.0]), (9, Phase::Active(1), vec![3.0, 4.5])],
            failures: vec![(
                11,
                Phase::Active(2),
                EvalError::Transient { reason: "flaky;link:down".into() },
                3,
                42,
            )],
            iterations: vec![stats(1), stats(2)],
        };
        {
            let mut j = Journal::create(&path).unwrap();
            j.append_header(&RunHeader {
                seed: 5,
                random_samples: 1,
                max_iterations: 4,
                max_evals_per_iteration: 0,
                pool_size: 10,
                n_objectives: 2,
                eval_workers: Some(0),
                sig: 1,
            })
            .unwrap();
            j.append_phase_start(Phase::Random, 0, vec![7]).unwrap();
            j.append_eval(0, &RawOutcome::Ok(vec![1.0, 2.0])).unwrap();
            j.append(&Record::Snap(snap.clone())).unwrap();
            j.append_phase_start(Phase::Active(3), 6, vec![13]).unwrap();
            j.sync().unwrap();
        }
        let mut j = Journal::open(&path).unwrap();
        let mut replay = j.take_replay();
        assert!(replay.base.boot_done);
        assert_eq!(replay.base.pools_drawn, 2);
        assert_eq!(replay.base.samples, snap.samples);
        assert_eq!(replay.base.failures.len(), 1);
        assert_eq!(replay.base.failures[0].2, snap.failures[0].2);
        assert_eq!(replay.base.iterations.len(), 2);
        let p = replay.next_phase(Phase::Active(3)).unwrap().unwrap();
        assert_eq!(p.flat, vec![13]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn out_of_order_records_truncate() {
        let path = tmp("order");
        {
            let mut j = Journal::create(&path).unwrap();
            j.append_header(&RunHeader {
                seed: 1,
                random_samples: 2,
                max_iterations: 1,
                max_evals_per_iteration: 0,
                pool_size: 10,
                n_objectives: 1,
                eval_workers: Some(0),
                sig: 0,
            })
            .unwrap();
            // eval with no open phase: CRC-valid but structurally invalid.
            j.append(&Record::Eval { pos: 0, outcome: RawOutcome::Ok(vec![1.0]) }).unwrap();
            j.sync().unwrap();
        }
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.records(), 1, "only the header survives");
        assert!(j.truncated_bytes() > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn timing_records_roundtrip_and_match_by_flat() {
        let path = tmp("timing");
        {
            let mut j = Journal::create(&path).unwrap();
            j.append_header(&RunHeader {
                seed: 1,
                random_samples: 1,
                max_iterations: 0,
                max_evals_per_iteration: 0,
                pool_size: 10,
                n_objectives: 1,
                eval_workers: Some(0),
                sig: 0,
            })
            .unwrap();
            j.append_timing(0, 5, &RawOutcome::Ok(vec![2.5])).unwrap();
            j.append_timing(
                1,
                9,
                &RawOutcome::Err {
                    error: EvalError::Diverged { reason: "re-run diverged".into() },
                    attempts: 1,
                    elapsed_ms: 3,
                },
            )
            .unwrap();
        }
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.timing_records(), 2);
        assert_eq!(j.replayed_timing(0, 5), Some(&RawOutcome::Ok(vec![2.5])));
        assert!(j.replayed_timing(0, 6).is_none(), "flat mismatch is not served");
        assert!(matches!(j.replayed_timing(1, 9), Some(RawOutcome::Err { .. })));
        assert!(j.replayed_timing(2, 0).is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sink_writes_out_of_order_completions_in_slot_order() {
        let path = tmp("sink");
        {
            let mut j = Journal::create(&path).unwrap();
            j.append_header(&RunHeader {
                seed: 1,
                random_samples: 4,
                max_iterations: 0,
                max_evals_per_iteration: 0,
                pool_size: 10,
                n_objectives: 1,
                eval_workers: Some(0),
                sig: 0,
            })
            .unwrap();
            j.append_phase_start(Phase::Random, 0, vec![0, 1, 2, 3]).unwrap();
            let sink = JournalSink::new(&mut j, 0);
            // Completion order 2, 0, 3, 1 — journal order must be 0, 1, 2, 3.
            sink.observe(2, &Ok(vec![2.0]));
            sink.observe(0, &Ok(vec![0.0]));
            sink.observe(3, &Ok(vec![3.0]));
            sink.observe(1, &Ok(vec![1.0]));
            sink.finish().unwrap();
            j.sync().unwrap();
        }
        let mut j = Journal::open(&path).unwrap();
        let mut replay = j.take_replay();
        let p = replay.next_phase(Phase::Random).unwrap().unwrap();
        let got: Vec<RawOutcome> = p.outcomes;
        assert_eq!(
            got,
            (0..4).map(|i| RawOutcome::Ok(vec![i as f64])).collect::<Vec<_>>(),
            "slot order regardless of completion order"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn worker_epoch_and_lease_records_roundtrip() {
        let path = tmp("wepoch");
        let lease = LeaseRecord { epoch: 2, flat: 17, attempt: 3, worker: 1 };
        {
            // No run header: service sidecar journals are standalone files.
            let mut j = Journal::create(&path).unwrap();
            assert_eq!(j.worker_epoch(), 0);
            j.append_worker_epoch(1).unwrap();
            j.append_worker_epoch(2).unwrap();
            j.append_lease(&LeaseRecord { epoch: 1, flat: 4, attempt: 1, worker: 0 }).unwrap();
            j.append_lease(&lease).unwrap();
            j.sync().unwrap();
        }
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.worker_epoch(), 2);
        assert_eq!(j.truncated_bytes(), 0);
        assert_eq!(j.lease_records().len(), 2);
        assert_eq!(j.lease_records()[1], lease);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_increasing_worker_epoch_is_rejected_and_truncated() {
        let path = tmp("wepoch-order");
        {
            let mut j = Journal::create(&path).unwrap();
            j.append_worker_epoch(3).unwrap();
            let err = j.append_worker_epoch(3).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
            // Simulate a buggy/forged writer: a CRC-valid but non-increasing
            // epoch record on disk must be dropped at open time.
            j.append(&Record::WorkerEpoch { epoch: 2 }).unwrap();
            j.sync().unwrap();
        }
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.worker_epoch(), 3);
        assert!(j.truncated_bytes() > 0, "stale epoch record truncated");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn legacy_v1_header_decodes_with_unknown_topology() {
        let path = tmp("v1-header");
        let body = "run v1 7 2 1 0 10 1 0000002a";
        std::fs::write(&path, format!("{:08x} {}\n", crc32(body.as_bytes()), body)).unwrap();
        let j = Journal::open(&path).unwrap();
        let h = j.header().expect("v1 header still parses");
        assert_eq!(h.seed, 7);
        assert_eq!(h.sig, 0x2A);
        assert_eq!(h.eval_workers, None, "legacy header carries no topology");
        assert_eq!(j.truncated_bytes(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn outcome_wire_codec_roundtrips() {
        let cases = [
            RawOutcome::Ok(vec![1.25, f64::NAN, -0.0]),
            RawOutcome::Err {
                error: EvalError::Transient { reason: "worker lost".into() },
                attempts: 2,
                elapsed_ms: 11,
            },
        ];
        for o in &cases {
            let wire = o.encode_wire();
            let back = RawOutcome::decode_wire(&wire).unwrap();
            assert_eq!(back.encode_wire(), wire, "bit-exact through the wire");
        }
        assert!(RawOutcome::decode_wire("ok/not-hex").is_none());
        assert!(RawOutcome::decode_wire("garbage").is_none());
    }
}
