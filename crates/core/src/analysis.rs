//! Post-exploration analysis: correlations and parameter importance.
//!
//! The paper reports (a) the correlation between the feature space and each
//! objective (ref. \[40\], §IV-C) and (b) cross-machine Pearson/Spearman
//! correlations that justify the zero-shot transfer used by the
//! crowd-sourcing experiment (ref. \[43\], §IV-D).

use crate::optimizer::Sample;
use crate::space::ParamSpace;
use randforest::{Dataset, ForestConfig, RandomForest};

/// Pearson linear correlation coefficient of two equal-length series.
/// Returns 0 for degenerate inputs (length < 2 or zero variance).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series length mismatch");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..n {
        let da = a[i] - ma;
        let db = b[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Spearman rank correlation: Pearson correlation of the rank vectors, with
/// average ranks for ties.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series length mismatch");
    pearson(&ranks(a), &ranks(b))
}

/// Average-rank transform (1-based; ties share the mean of their ranks).
fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| xs[i].total_cmp(&xs[j]));
    let mut r = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        // Positions i..=j tie; average their 1-based ranks.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            r[order[k]] = avg;
        }
        i = j + 1;
    }
    r
}

/// Importance of each tunable parameter for one objective, estimated from a
/// forest fitted to exploration samples.
#[derive(Debug, Clone)]
pub struct ParamImportance {
    /// Parameter names, in space order.
    pub names: Vec<String>,
    /// Normalized impurity importance (sums to 1 unless all zero).
    pub impurity: Vec<f64>,
    /// Pearson correlation of each (encoded) parameter feature with the
    /// objective over the samples.
    pub correlation: Vec<f64>,
}

impl ParamImportance {
    /// Fit a fresh forest on `samples` for objective `k` and report
    /// importances and per-parameter correlations.
    pub fn from_samples(
        space: &ParamSpace,
        samples: &[Sample],
        k: usize,
        forest_config: &ForestConfig,
    ) -> ParamImportance {
        let mut data = Dataset::with_capacity(space.n_params(), samples.len());
        let mut feat = Vec::with_capacity(space.n_params());
        for s in samples {
            feat.clear();
            space.write_features(&s.config, &mut feat);
            data.push_row(&feat, s.objectives[k]);
        }
        let forest = RandomForest::fit(&data, forest_config);
        let impurity = forest.feature_importance();

        let target: Vec<f64> = samples.iter().map(|s| s.objectives[k]).collect();
        let correlation = (0..space.n_params())
            .map(|f| {
                let col: Vec<f64> = (0..data.len()).map(|i| data.feature(i, f)).collect();
                pearson(&col, &target)
            })
            .collect();

        ParamImportance {
            names: space.params().iter().map(|p| p.name.clone()).collect(),
            impurity,
            correlation,
        }
    }

    /// Parameters sorted by descending impurity importance.
    pub fn ranked(&self) -> Vec<(&str, f64)> {
        let mut idx: Vec<usize> = (0..self.names.len()).collect();
        idx.sort_by(|&a, &b| self.impurity[b].total_cmp(&self.impurity[a]));
        idx.into_iter().map(|i| (self.names[i].as_str(), self.impurity[i])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::{Evaluator, FnEvaluator};
    use crate::optimizer::{HyperMapper, OptimizerConfig};

    #[test]
    fn pearson_perfect_correlations() {
        let a: Vec<f64> = (0..20).map(f64::from).collect();
        let b: Vec<f64> = a.iter().map(|x| 3.0 * x + 1.0).collect();
        let c: Vec<f64> = a.iter().map(|x| -2.0 * x).collect();
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_uncorrelated_near_zero() {
        // Orthogonal-ish periodic signals.
        let a: Vec<f64> = (0..400).map(|i| (i as f64 * 0.7).sin()).collect();
        let b: Vec<f64> = (0..400).map(|i| (i as f64 * 1.9 + 2.0).cos()).collect();
        assert!(pearson(&a, &b).abs() < 0.15);
    }

    #[test]
    fn pearson_degenerate_inputs() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let a: Vec<f64> = (1..30).map(f64::from).collect();
        let b: Vec<f64> = a.iter().map(|x| x.powi(3)).collect(); // monotone
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        let c: Vec<f64> = a.iter().map(|x| 1.0 / x).collect(); // anti-monotone
        assert!((spearman(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 2.0, 2.0, 3.0];
        let b = [10.0, 20.0, 20.0, 30.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 5.0]), vec![2.0, 3.5, 3.5, 1.0]);
    }

    #[test]
    fn importance_identifies_dominant_parameter() {
        let space = crate::space::ParamSpace::builder()
            .ordinal("noise", (0..10).map(f64::from))
            .ordinal("signal", (0..10).map(f64::from))
            .build()
            .unwrap();
        let eval = FnEvaluator::new(1, |c| vec![c.value_f64(1) * 10.0 + c.value_f64(0) * 0.01]);
        let res = HyperMapper::new(
            space.clone(),
            OptimizerConfig { random_samples: 80, max_iterations: 0, seed: 1, ..Default::default() },
        )
        .run(&eval);
        let imp = ParamImportance::from_samples(
            &space,
            &res.samples,
            0,
            &ForestConfig { n_trees: 30, seed: 3, ..Default::default() },
        );
        let ranked = imp.ranked();
        assert_eq!(ranked[0].0, "signal");
        assert!(imp.correlation[1] > 0.9, "correlation {:?}", imp.correlation);
        let _ = eval.n_objectives();
    }
}
