//! End-to-end DSE over spaces far too large to materialize.
//!
//! The paper's KFusion space already holds ~3×10^5 configurations; real DSE
//! spaces grow combinatorially, so the optimizer must never enumerate the
//! space — bootstrap sampling, pool drawing, and space iteration all have to
//! work from flat indices. These tests run the *full* active-learning loop
//! over a >10^9-configuration space (and sample from a 2^63-sized one) in
//! test-suite time, which is only possible if nothing ever materializes the
//! space.

use hypermapper::{
    sample_distinct, Configuration, FnEvaluator, HyperMapper, OptimizerConfig, ParamSpace, Phase,
};
use rand::rngs::StdRng;
use randforest::ForestConfig;
use rand::SeedableRng;
use std::collections::HashSet;

/// Ten 8-level ordinals: 8^10 = 2^30 ≈ 1.07×10^9 configurations.
fn billion_space() -> ParamSpace {
    let mut b = ParamSpace::builder();
    for p in 0..10 {
        b = b.ordinal(&format!("p{p}"), (0..8).map(|i| i as f64));
    }
    b.build().unwrap()
}

#[test]
fn full_exploration_over_a_billion_config_space() {
    let space = billion_space();
    assert!(space.size() > 1_000_000_000, "space size {}", space.size());
    // Separable bi-objective problem: cheap to evaluate, non-trivial front.
    let eval = FnEvaluator::new(2, |c: &Configuration| {
        let s: f64 = (0..10).map(|i| c.value_f64(i)).sum();
        let alt: f64 = (0..10).map(|i| (7.0 - c.value_f64(i)) * (i as f64 + 1.0) * 0.1).sum();
        vec![s, alt]
    });
    let config = OptimizerConfig {
        random_samples: 40,
        max_iterations: 3,
        max_evals_per_iteration: 30,
        pool_size: 1500,
        forest: ForestConfig { n_trees: 10, ..Default::default() },
        seed: 5,
        ..Default::default()
    };
    let res = HyperMapper::new(space, config).run(&eval);
    assert_eq!(res.samples.iter().filter(|s| s.phase == Phase::Random).count(), 40);
    assert!(!res.iterations.is_empty(), "active learning must actually run");
    assert!(res.samples.len() > 40, "active learning must add evaluations");
    assert!(!res.pareto_indices.is_empty());
    // Everything evaluated must be a genuine member of the space.
    let space = billion_space();
    for s in &res.samples {
        let flat = space.flat_index(&s.config);
        assert_eq!(space.config_at(flat), s.config);
    }
}

#[test]
fn bootstrap_sampling_from_a_u64_scale_space() {
    // 3 × 2^16-level + 1 × 2^15-level parameters: exactly 2^63
    // configurations. Distinct sampling must come back instantly — any
    // enumeration or materialization path would run for years.
    let mut b = ParamSpace::builder();
    for p in 0..3 {
        b = b.ordinal(&format!("w{p}"), (0..1u32 << 16).map(|i| i as f64));
    }
    let space = b.ordinal("h", (0..1u32 << 15).map(|i| i as f64)).build().unwrap();
    assert_eq!(space.size(), 1u64 << 63);
    let mut rng = StdRng::seed_from_u64(17);
    let drawn = sample_distinct(&space, 500, &HashSet::new(), &mut rng).unwrap();
    assert_eq!(drawn.len(), 500);
    let distinct: HashSet<u64> = drawn.iter().map(|c| space.flat_index(c)).collect();
    assert_eq!(distinct.len(), 500);
}
