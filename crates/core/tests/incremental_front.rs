//! Property test: [`IncrementalFront`] is bit-identical to the batch
//! `pareto_front` recompute — membership, duplicate handling, non-finite
//! exclusion, and output ordering — on seeded 200 000+ point pools, for
//! both the 2-objective sweep regime and the k-objective archive regime.
//! This is the guarantee that lets the optimizer replace its per-iteration
//! full recomputes with incremental maintenance.

use hypermapper::{hypervolume_2d, pareto_front, IncrementalFront};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deliberately nasty point cloud: quantized coordinates (lots of exact
/// duplicates and shared coordinates), signed zeros, a salting of
/// non-finite values, and a dense band near the front.
fn pool(seed: u64, n: usize, n_obj: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (0..n_obj)
                .map(|_| match rng.gen_range(0..100u32) {
                    0 => -0.0,
                    1 => 0.0,
                    2 => f64::NAN,
                    3 => f64::INFINITY,
                    4 => f64::NEG_INFINITY,
                    // Coarse grid: collisions and duplicates are common.
                    5..=40 => rng.gen_range(0..50u32) as f64 * 0.25,
                    // Fine grid: a deeper, denser staircase.
                    _ => rng.gen_range(0..5000u32) as f64 * 0.01,
                })
                .collect()
        })
        .collect()
}

#[test]
fn bit_identical_to_batch_on_200k_2d_pool() {
    for seed in [1u64, 42, 1234] {
        let pts = pool(seed, 200_000, 2);
        let mut inc = IncrementalFront::new(2);
        for p in &pts {
            inc.push(p);
        }
        let batch = pareto_front(&pts);
        assert_eq!(inc.front_indices(), batch, "seed {seed}");
        // The maintained front's points are the batch front's points, bit
        // for bit.
        let batch_pts: Vec<Vec<f64>> = batch.iter().map(|&i| pts[i].clone()).collect();
        let inc_pts = inc.front_points();
        assert_eq!(inc_pts.len(), batch_pts.len());
        for (a, b) in inc_pts.iter().zip(&batch_pts) {
            let ab: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(ab, bb, "seed {seed}");
        }
    }
}

#[test]
fn bit_identical_to_batch_at_every_prefix() {
    // Not just the final answer: after *every* push, the maintained front
    // equals the batch front of the prefix. Checked on a smaller pool
    // (the quadratic check cost dominates) with periodic deep checks on a
    // 200k pool via stride.
    let pts = pool(7, 4000, 2);
    let mut inc = IncrementalFront::new(2);
    for (i, p) in pts.iter().enumerate() {
        inc.push(p);
        if i % 37 == 0 || i + 1 == pts.len() {
            assert_eq!(inc.front_indices(), pareto_front(&pts[..=i]), "prefix {}", i + 1);
        }
    }
}

#[test]
fn bit_identical_to_batch_on_200k_3d_pool() {
    let pts = pool(9, 200_000, 3);
    let mut inc = IncrementalFront::new(3);
    for p in &pts {
        inc.push(p);
    }
    assert_eq!(inc.front_indices(), pareto_front(&pts));
}

#[test]
fn incremental_hypervolume_matches_batch_on_200k_pool() {
    let pts = pool(11, 200_000, 2);
    let mut inc = IncrementalFront::new(2);
    // The optimizer's reference point: the nadir over all finite samples
    // (its samples are always finite; filter here because the pool salts
    // non-finite values in).
    let finite: Vec<(f64, f64)> = pts
        .iter()
        .filter(|p| p.iter().all(|v| v.is_finite()))
        .map(|p| (p[0], p[1]))
        .collect();
    let reference = finite.iter().fold((f64::NEG_INFINITY, f64::NEG_INFINITY), |acc, p| {
        (acc.0.max(p.0), acc.1.max(p.1))
    });
    for p in &pts {
        inc.push(p);
    }
    let batch = hypervolume_2d(&finite, reference);
    assert_eq!(inc.hypervolume(reference).to_bits(), batch.to_bits());
}
