//! Parity tests for the parallel batch scheduler: fanning a batch across
//! workers must be **bit-identical** — values AND order — to evaluating it
//! sequentially, including under heavy fault injection and when composed
//! with the caching/retry layers, and `HyperMapper::try_run` must produce
//! the same exploration with parallel evaluation on and off.

use hypermapper::{
    sample_distinct, silence_injected_panics, CachedEvaluator, Configuration, EvalError,
    Evaluator, ExplorationResult, FaultInjectingEvaluator, FaultPlan, FnEvaluator, HyperMapper,
    OptimizerConfig, ParallelBatchEvaluator, ParamSpace, ResilientEvaluator, RetryPolicy,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn space() -> ParamSpace {
    ParamSpace::builder()
        .ordinal("x", (0..25).map(f64::from))
        .ordinal("y", (0..20).map(f64::from))
        .build()
        .unwrap()
}

fn clean_evaluator() -> FnEvaluator<impl Fn(&Configuration) -> Vec<f64> + Sync> {
    FnEvaluator::new(2, |c| {
        let x = c.value_f64(0);
        let y = c.value_f64(1);
        vec![x + 0.25 * y, (25.0 - x) * 0.5 + y * y * 0.01]
    })
}

/// ISSUE-mandated 19% fault mix (no delays: parity, not latency, is under
/// test here). Transient faults recover on the second attempt, so they are
/// attempt-order dependent — every batch below therefore uses *distinct*
/// configurations, and sequential/parallel runs get fresh injectors.
fn fault_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        panic_rate: 0.07,
        nan_rate: 0.06,
        delay_rate: 0.0,
        transient_rate: 0.06,
        delay: Duration::ZERO,
        transient_attempts: 1,
        seed,
    }
}

/// Distinct configurations drawn deterministically from `seed`.
fn distinct_batch(s: &ParamSpace, n: usize, seed: u64) -> Vec<Configuration> {
    let mut rng = StdRng::seed_from_u64(seed);
    sample_distinct(s, n, &HashSet::new(), &mut rng).unwrap()
}

/// Exact equality for batch outcomes, treating NaN payloads bit-for-bit
/// (a plain `==` would reject `Ok([NaN]) == Ok([NaN])`).
fn assert_outcomes_bit_identical(
    seq: &[Result<Vec<f64>, EvalError>],
    par: &[Result<Vec<f64>, EvalError>],
) {
    assert_eq!(seq.len(), par.len(), "batch length changed");
    for (i, (a, b)) in seq.iter().zip(par).enumerate() {
        match (a, b) {
            (Ok(va), Ok(vb)) => {
                let bits_a: Vec<u64> = va.iter().map(|v| v.to_bits()).collect();
                let bits_b: Vec<u64> = vb.iter().map(|v| v.to_bits()).collect();
                assert_eq!(bits_a, bits_b, "slot {i}: objective bits diverged");
            }
            (Err(ea), Err(eb)) => assert_eq!(ea, eb, "slot {i}: errors diverged"),
            _ => panic!("slot {i}: outcome kind diverged: {a:?} vs {b:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fallible batches under the 19% fault mix: parallel == sequential,
    /// values and order, for arbitrary worker counts and batch sizes.
    #[test]
    fn faulty_batches_are_bit_identical(
        seed in 0u64..400,
        workers in 1usize..10,
        n in 1usize..40,
    ) {
        silence_injected_panics();
        let s = space();
        let configs = distinct_batch(&s, n, seed);
        let inner = clean_evaluator();

        let seq_inj = FaultInjectingEvaluator::new(&inner, fault_plan(seed));
        let seq = seq_inj.try_evaluate_batch(&configs);

        let par_inj = FaultInjectingEvaluator::new(&inner, fault_plan(seed));
        let par = ParallelBatchEvaluator::with_workers(&par_inj, workers)
            .try_evaluate_batch(&configs);

        assert_outcomes_bit_identical(&seq, &par);
        prop_assert_eq!(seq_inj.counts(), par_inj.counts());
    }

    /// Infallible batches on a clean evaluator: parallel == sequential.
    #[test]
    fn clean_batches_are_bit_identical(
        seed in 0u64..400,
        workers in 1usize..10,
        n in 1usize..40,
    ) {
        let s = space();
        let configs = distinct_batch(&s, n, seed);
        let inner = clean_evaluator();
        let seq = inner.evaluate_batch(&configs);
        let par = ParallelBatchEvaluator::with_workers(&inner, workers)
            .evaluate_batch(&configs);
        prop_assert_eq!(seq, par);
    }
}

/// Retry layer *inside* the scheduler: transient faults recover identically
/// whether the batch runs serially or fanned out, because the retry loop is
/// per-configuration state inside a single `try_evaluate` call.
#[test]
fn resilient_composition_is_bit_identical() {
    silence_injected_panics();
    let s = space();
    let inner = clean_evaluator();
    let policy = RetryPolicy {
        max_retries: 2,
        backoff_base: Duration::ZERO,
        ..Default::default()
    };
    for seed in [3u64, 17, 91] {
        let configs = distinct_batch(&s, 32, seed);

        let seq_inj = FaultInjectingEvaluator::new(&inner, fault_plan(seed));
        let seq_res = ResilientEvaluator::new(&seq_inj, policy.clone());
        let seq = seq_res.try_evaluate_batch(&configs);

        let par_inj = FaultInjectingEvaluator::new(&inner, fault_plan(seed));
        let par_res = ResilientEvaluator::new(&par_inj, policy.clone());
        let par = ParallelBatchEvaluator::with_workers(&par_res, 6).try_evaluate_batch(&configs);

        assert_outcomes_bit_identical(&seq, &par);
        // With retries available, every transient configuration recovered:
        // no Transient error survives in either run.
        for outcome in &seq {
            assert!(!matches!(outcome, Err(EvalError::Transient { .. })));
        }
    }
}

/// Cache layer inside the scheduler: a batch full of duplicates still costs
/// one inner evaluation per distinct configuration, and parallel equals
/// sequential.
#[test]
fn cached_composition_deduplicates_under_parallel_fanout() {
    let s = space();
    let calls = AtomicUsize::new(0);
    let counted = FnEvaluator::new(2, |c| {
        calls.fetch_add(1, Ordering::Relaxed);
        vec![c.value_f64(0), c.value_f64(1)]
    });
    let distinct = distinct_batch(&s, 5, 77);
    // 40-config batch cycling over 5 distinct configurations.
    let configs: Vec<Configuration> =
        (0..40).map(|i| distinct[i % distinct.len()].clone()).collect();

    let cached = CachedEvaluator::new(&counted);
    let par = ParallelBatchEvaluator::with_workers(&cached, 8).try_evaluate_batch(&configs);
    assert_eq!(calls.load(Ordering::Relaxed), distinct.len(), "in-flight dedup failed");

    let seq: Vec<_> = configs.iter().map(|c| cached.try_evaluate(c)).collect();
    assert_outcomes_bit_identical(&seq, &par);
}

fn exploration_config(eval_workers: usize) -> OptimizerConfig {
    OptimizerConfig {
        random_samples: 60,
        max_iterations: 3,
        pool_size: 400,
        seed: 21,
        eval_workers,
        ..Default::default()
    }
}

fn assert_explorations_identical(a: &ExplorationResult, b: &ExplorationResult) {
    assert_eq!(a.samples.len(), b.samples.len(), "sample count diverged");
    for (sa, sb) in a.samples.iter().zip(&b.samples) {
        assert_eq!(sa.config, sb.config);
        assert_eq!(sa.phase, sb.phase);
        let bits_a: Vec<u64> = sa.objectives.iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u64> = sb.objectives.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "objective bits diverged");
    }
    assert_eq!(a.pareto_indices, b.pareto_indices);
    assert_eq!(a.failures.len(), b.failures.len(), "failure count diverged");
    for (fa, fb) in a.failures.iter().zip(&b.failures) {
        assert_eq!(fa.config, fb.config);
        assert_eq!(fa.error, fb.error);
        assert_eq!(fa.phase, fb.phase);
    }
    assert_eq!(a.iterations.len(), b.iterations.len());
    for (ia, ib) in a.iterations.iter().zip(&b.iterations) {
        assert_eq!(ia.iteration, ib.iteration);
        assert_eq!(ia.predicted_front_size, ib.predicted_front_size);
        assert_eq!(ia.new_evaluations, ib.new_evaluations);
        assert_eq!(ia.failed_evaluations, ib.failed_evaluations);
    }
}

/// The acceptance-criterion parity: a same-seed `HyperMapper::try_run` is
/// bit-identical with parallel evaluation on (`eval_workers = 4`) and off
/// (`eval_workers = 0`), even with 19% of configurations faulting.
#[test]
fn exploration_is_bit_identical_with_and_without_parallel_eval() {
    silence_injected_panics();
    let s = space();
    let inner = clean_evaluator();

    // Fresh injector per run: the optimizer evaluates each configuration at
    // most once, so per-config transient attempt counters line up.
    let seq_inj = FaultInjectingEvaluator::new(&inner, fault_plan(5));
    let sequential = HyperMapper::new(s.clone(), exploration_config(0))
        .try_run(&seq_inj)
        .expect("sequential exploration succeeds");

    let par_inj = FaultInjectingEvaluator::new(&inner, fault_plan(5));
    let parallel = HyperMapper::new(s, exploration_config(4))
        .try_run(&par_inj)
        .expect("parallel exploration succeeds");

    assert!(!sequential.failures.is_empty(), "fault mix must actually bite");
    assert!(!sequential.pareto_indices.is_empty());
    assert_explorations_identical(&sequential, &parallel);
}
