//! Kill → resume bit-identity: for multiple seeds and kill points (including
//! mid-batch and mid-phase-transition), a journaled run that is killed and
//! resumed must produce an `ExplorationResult` bit-identical — samples,
//! order, fronts, iteration stats, failure records — to the uninterrupted
//! run. Kills are simulated by truncating the journal file at (and inside)
//! record boundaries, exactly what a SIGKILL mid-write leaves behind.

use hypermapper::journal::SyncPolicy;
use hypermapper::{
    silence_injected_panics, EvalError, ExplorationResult, FnEvaluator, HmError, HyperMapper,
    Journal, OptimizerConfig, ParamSpace,
};
use randforest::ForestConfig;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hm-resume-test-{}-{name}.journal", std::process::id()));
    p
}

fn space() -> ParamSpace {
    ParamSpace::builder()
        .ordinal("x", (0..30).map(f64::from))
        .ordinal("y", (0..30).map(f64::from))
        .build()
        .unwrap()
}

/// Deterministic bi-objective toy problem with injected per-configuration
/// failures (a panic stripe and a NaN stripe), so resume must reproduce
/// failure records too, not just samples.
fn evaluator() -> FnEvaluator<impl Fn(&hypermapper::Configuration) -> Vec<f64> + Sync> {
    FnEvaluator::new(2, |c| {
        let x = c.value_f64(0);
        let y = c.value_f64(1);
        let (xi, yi) = (x as usize, y as usize);
        if (xi * 7 + yi) % 31 == 4 {
            panic!("injected panic: crash stripe");
        }
        if (xi + yi * 3) % 29 == 7 {
            return vec![f64::NAN, y];
        }
        let runtime = 0.5 + x * 0.8 + (y * 1.3).sin().abs();
        let error = 9.0 - x * 0.25 + (y - 11.0).abs() * 0.2;
        vec![runtime, error]
    })
}

fn config(seed: u64, eval_workers: usize, pool_size: usize) -> OptimizerConfig {
    OptimizerConfig {
        random_samples: 24,
        max_iterations: 3,
        max_evals_per_iteration: 20,
        pool_size,
        forest: ForestConfig { n_trees: 8, ..Default::default() },
        seed,
        eval_workers,
        ..Default::default()
    }
}

/// Bit-exact result comparison. `elapsed_ms` on failure records is the one
/// deliberate exception: it is wall-clock measurement metadata, not
/// resumable state.
fn assert_bit_identical(a: &ExplorationResult, b: &ExplorationResult) {
    assert_eq!(a.samples.len(), b.samples.len(), "sample count");
    for (i, (x, y)) in a.samples.iter().zip(&b.samples).enumerate() {
        assert_eq!(x.config.choices(), y.config.choices(), "sample {i} config");
        assert_eq!(x.phase, y.phase, "sample {i} phase");
        let xb: Vec<u64> = x.objectives.iter().map(|v| v.to_bits()).collect();
        let yb: Vec<u64> = y.objectives.iter().map(|v| v.to_bits()).collect();
        assert_eq!(xb, yb, "sample {i} objectives");
    }
    assert_eq!(a.pareto_indices, b.pareto_indices, "pareto front");
    assert_eq!(a.iterations.len(), b.iterations.len(), "iteration count");
    for (i, (x, y)) in a.iterations.iter().zip(&b.iterations).enumerate() {
        assert_eq!(x.iteration, y.iteration, "iter {i}");
        assert_eq!(x.predicted_front_size, y.predicted_front_size, "iter {i} pfs");
        assert_eq!(x.new_evaluations, y.new_evaluations, "iter {i} new");
        assert_eq!(x.failed_evaluations, y.failed_evaluations, "iter {i} failed");
        assert_eq!(x.hypervolume.to_bits(), y.hypervolume.to_bits(), "iter {i} hv");
        let xo: Vec<Option<u64>> = x.oob_rmse.iter().map(|o| o.map(f64::to_bits)).collect();
        let yo: Vec<Option<u64>> = y.oob_rmse.iter().map(|o| o.map(f64::to_bits)).collect();
        assert_eq!(xo, yo, "iter {i} oob");
    }
    assert_eq!(a.failures.len(), b.failures.len(), "failure count");
    for (i, (x, y)) in a.failures.iter().zip(&b.failures).enumerate() {
        assert_eq!(x.config.choices(), y.config.choices(), "failure {i} config");
        assert_eq!(x.phase, y.phase, "failure {i} phase");
        assert_eq!(x.error, y.error, "failure {i} error");
        assert_eq!(x.attempts, y.attempts, "failure {i} attempts");
    }
    assert_eq!(a.objective_names, b.objective_names);
}

/// Record-boundary byte offsets of a journal file (prefix lengths ending on
/// a newline), plus offset 0.
fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut out = vec![0];
    out.extend(
        bytes
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == b'\n')
            .map(|(i, _)| i + 1),
    );
    out
}

/// Truncate-at-`len` → resume → must equal `reference`.
fn resume_from_prefix(
    tag: &str,
    full: &[u8],
    len: usize,
    hm: &HyperMapper,
    reference: &ExplorationResult,
) {
    let path = tmp(tag);
    std::fs::write(&path, &full[..len]).unwrap();
    let mut journal = Journal::open(&path).unwrap();
    let eval = evaluator();
    let resumed = hm.resume(&mut journal, &eval).unwrap();
    assert!(!resumed.interrupted);
    assert_bit_identical(&resumed, reference);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn kill_and_resume_is_bit_identical_across_seeds_and_kill_points() {
    silence_injected_panics();
    for (si, seed) in [3u64, 8, 21].into_iter().enumerate() {
        // pool_size 400 < |space| = 900 exercises pool RNG draws; 2000 > 900
        // exercises the draw-free whole-space path.
        let pool_size = if seed % 2 == 1 { 400 } else { 2000 };
        let hm = HyperMapper::new(space(), config(seed, 0, pool_size));
        let eval = evaluator();
        let reference = hm.try_run(&eval).unwrap();

        // Uninterrupted journaled run: must match the plain run bit-for-bit
        // and leave a complete journal behind.
        let path = tmp(&format!("full-{seed}"));
        let full = {
            let mut journal = Journal::create(&path).unwrap();
            let journaled = hm.try_run_journaled(&eval, &mut journal).unwrap();
            assert_bit_identical(&journaled, &reference);
            assert!(journal.is_done());
            std::fs::read(&path).unwrap()
        };
        let _ = std::fs::remove_file(&path);

        // Kill at record boundaries: every boundary for the first seed
        // (covers mid-bootstrap, mid-batch, between `phase` and its first
        // `eval` = mid-phase-transition, between `iter` and the next
        // `phase`), sparser for the rest.
        let boundaries = record_boundaries(&full);
        let step = if si == 0 { 1 } else { 5 };
        for (k, &len) in boundaries.iter().enumerate() {
            if k % step != 0 && k + 1 != boundaries.len() {
                continue;
            }
            resume_from_prefix(&format!("kill-{seed}-{k}"), &full, len, &hm, &reference);
        }

        // Torn tail: kill mid-write (truncation inside a record, no final
        // newline). The partial record must be discarded, not parsed.
        for cut in [3usize, 17, 40] {
            let len = full.len().saturating_sub(cut);
            resume_from_prefix(&format!("torn-{seed}-{cut}"), &full, len, &hm, &reference);
        }
    }
}

#[test]
fn mid_batch_kill_with_parallel_workers_resumes_bit_identical() {
    silence_injected_panics();
    let hm = HyperMapper::new(space(), config(5, 3, 500));
    let eval = evaluator();
    let reference = hm.try_run(&eval).unwrap();

    let path = tmp("parallel-full");
    let mut journal = Journal::create(&path).unwrap();
    let journaled = hm.try_run_journaled(&eval, &mut journal).unwrap();
    assert_bit_identical(&journaled, &reference);
    drop(journal);
    let full = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    // The parallel scheduler journals slot-ordered eval records mid-batch;
    // cutting between any two of them is a mid-batch kill.
    let boundaries = record_boundaries(&full);
    for (k, &len) in boundaries.iter().enumerate() {
        if k % 3 != 0 {
            continue;
        }
        resume_from_prefix(&format!("parallel-kill-{k}"), &full, len, &hm, &reference);
    }
}

#[test]
fn corrupt_tail_bit_flip_resumes_from_last_valid_record() {
    silence_injected_panics();
    let hm = HyperMapper::new(space(), config(11, 0, 400));
    let eval = evaluator();
    let reference = hm.try_run(&eval).unwrap();

    let path = tmp("bitflip-full");
    let mut journal = Journal::create(&path).unwrap();
    let _ = hm.try_run_journaled(&eval, &mut journal).unwrap();
    drop(journal);
    let mut bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    // Flip one bit inside the tail record's body.
    let len = bytes.len();
    bytes[len - 6] ^= 0x04;
    let path = tmp("bitflip");
    std::fs::write(&path, &bytes).unwrap();
    let mut journal = Journal::open(&path).unwrap();
    assert!(journal.truncated_bytes() > 0, "corruption must be detected and truncated");
    let resumed = hm.resume(&mut journal, &eval).unwrap();
    assert_bit_identical(&resumed, &reference);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn snapshots_checkpoint_and_resume_bit_identical() {
    silence_injected_panics();
    let hm = HyperMapper::new(space(), config(13, 0, 400));
    let eval = evaluator();
    let reference = hm.try_run(&eval).unwrap();

    let path = tmp("snap-full");
    let mut journal = Journal::create(&path)
        .unwrap()
        .with_snapshot_every(8)
        .with_sync_policy(SyncPolicy::PerRecord);
    let journaled = hm.try_run_journaled(&eval, &mut journal).unwrap();
    assert_bit_identical(&journaled, &reference);
    drop(journal);
    let full = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let text = String::from_utf8_lossy(&full);
    assert!(text.contains(" snap "), "snapshot records must be present");

    // Kill after the last snapshot: resume restores state from the snapshot
    // (replaying the recorded RNG draw count) instead of the full log.
    let boundaries = record_boundaries(&full);
    for (k, &len) in boundaries.iter().enumerate() {
        if k % 4 != 0 {
            continue;
        }
        resume_from_prefix(&format!("snap-kill-{k}"), &full, len, &hm, &reference);
    }
}

#[test]
fn graceful_stop_yields_partial_result_then_resume_completes() {
    silence_injected_panics();
    let hm = HyperMapper::new(space(), config(17, 0, 400));
    let eval = evaluator();
    let reference = hm.try_run(&eval).unwrap();

    // Trip the stop flag from inside the evaluator after 30 completions —
    // mid-way through the first active iteration.
    let stop = AtomicBool::new(false);
    let calls = AtomicUsize::new(0);
    let inner = evaluator();
    let stopping = FnEvaluator::new(2, |c: &hypermapper::Configuration| {
        if calls.fetch_add(1, Ordering::Relaxed) + 1 >= 30 {
            stop.store(true, Ordering::Relaxed);
        }
        hypermapper::Evaluator::evaluate(&inner, c)
    });

    let path = tmp("graceful");
    let mut journal = Journal::create(&path).unwrap();
    let partial = hm
        .try_run_controlled(&stopping, Some(&mut journal), Some(&stop))
        .unwrap();
    assert!(partial.interrupted, "stop flag must mark the result interrupted");
    assert!(
        partial.samples.len() + partial.failures.len() < reference.samples.len() + reference.failures.len(),
        "partial run must have stopped early"
    );
    assert!(!journal.is_done());
    drop(journal);

    // Resume from the flushed journal: completes to the uninterrupted result.
    let mut journal = Journal::open(&path).unwrap();
    let resumed = hm.resume(&mut journal, &eval).unwrap();
    assert_bit_identical(&resumed, &reference);
    assert!(journal.is_done());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_of_a_completed_journal_replays_without_reevaluating() {
    silence_injected_panics();
    let hm = HyperMapper::new(space(), config(19, 0, 400));
    let eval = evaluator();
    let path = tmp("replay-only");
    let mut journal = Journal::create(&path).unwrap();
    let reference = hm.try_run_journaled(&eval, &mut journal).unwrap();
    drop(journal);

    let calls = AtomicUsize::new(0);
    let counting = FnEvaluator::new(2, |_: &hypermapper::Configuration| {
        calls.fetch_add(1, Ordering::Relaxed);
        vec![0.0, 0.0]
    });
    let mut journal = Journal::open(&path).unwrap();
    let replayed = hm.resume(&mut journal, &counting).unwrap();
    assert_eq!(calls.load(Ordering::Relaxed), 0, "completed journal needs no evaluations");
    assert_bit_identical(&replayed, &reference);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn journal_from_a_different_run_is_rejected() {
    silence_injected_panics();
    let eval = evaluator();
    let path = tmp("mismatch");
    let mut journal = Journal::create(&path).unwrap();
    let _ = HyperMapper::new(space(), config(23, 0, 400))
        .try_run_journaled(&eval, &mut journal)
        .unwrap();
    drop(journal);

    // Different seed → different header → refuse to replay.
    let mut journal = Journal::open(&path).unwrap();
    let err = HyperMapper::new(space(), config(24, 0, 400)).resume(&mut journal, &eval);
    assert!(matches!(err, Err(HmError::JournalMismatch(_))), "got {err:?}");

    // Different space → same refusal.
    let other_space = ParamSpace::builder()
        .ordinal("x", (0..30).map(f64::from))
        .ordinal("y", (0..31).map(f64::from))
        .build()
        .unwrap();
    let mut journal = Journal::open(&path).unwrap();
    let err = HyperMapper::new(other_space, config(23, 0, 400)).resume(&mut journal, &eval);
    assert!(matches!(err, Err(HmError::JournalMismatch(_))), "got {err:?}");

    // Different worker topology → refused with a field-specific message:
    // eval_workers is part of the run signature even though it cannot
    // change evaluated values (resuming a service run under a different
    // deployment must be loud, not silent).
    let mut journal = Journal::open(&path).unwrap();
    let err = HyperMapper::new(space(), config(23, 3, 400)).resume(&mut journal, &eval);
    match err {
        Err(HmError::JournalMismatch(msg)) => {
            assert!(
                msg.contains("eval_workers=0") && msg.contains("eval_workers=3"),
                "topology mismatch must name both topologies, got: {msg}"
            );
        }
        other => panic!("expected JournalMismatch, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn failure_records_survive_the_journal_round_trip() {
    silence_injected_panics();
    let hm = HyperMapper::new(space(), config(31, 0, 400));
    let eval = evaluator();
    let reference = hm.try_run(&eval).unwrap();
    assert!(
        !reference.failures.is_empty(),
        "toy problem must exercise the failure path for this test to mean anything"
    );
    assert!(reference.failures.iter().any(|f| matches!(f.error, EvalError::Panicked { .. })));
    assert!(reference.failures.iter().any(|f| matches!(f.error, EvalError::NonFinite { .. })));

    let path = tmp("failures");
    let full = {
        let mut journal = Journal::create(&path).unwrap();
        let _ = hm.try_run_journaled(&eval, &mut journal).unwrap();
        std::fs::read(&path).unwrap()
    };
    let _ = std::fs::remove_file(&path);

    // Resume from half-way: replayed failure records must be bit-identical
    // to live ones (error payloads included).
    let boundaries = record_boundaries(&full);
    let mid = boundaries[boundaries.len() / 2];
    resume_from_prefix("failures-mid", &full, mid, &hm, &reference);
}
