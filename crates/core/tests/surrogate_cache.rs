//! The lossy prediction cache must be **invisible** in results: an
//! exploration run with caching disabled, with a pathologically tiny
//! (all-collisions) cache, and with the default cache must produce
//! bit-identical `ExplorationResult`s — samples, order, Pareto indices,
//! and per-iteration statistics. Only re-prediction work may change.
//!
//! This is the contract `OptimizerConfig::pred_cache_slots` documents, and
//! the reason the knob is excluded from the journal run header (like
//! `eval_workers`).

use hypermapper::{
    Configuration, Evaluator, ExplorationResult, HyperMapper, OptimizerConfig, ParamSpace,
};

fn space() -> ParamSpace {
    ParamSpace::builder()
        .ordinal("x", (0..40).map(f64::from))
        .ordinal("y", (0..30).map(f64::from))
        .ordinal("z", [0.0, 0.5, 1.0, 2.0])
        .build()
        .unwrap()
}

/// Deterministic bi-objective toy problem with a genuine trade-off so the
/// active-learning loop does real work (several iterations, non-trivial
/// predicted fronts).
struct Toy;

impl Evaluator for Toy {
    fn n_objectives(&self) -> usize {
        2
    }
    fn evaluate(&self, c: &Configuration) -> Vec<f64> {
        let x = c.value_f64(0);
        let y = c.value_f64(1);
        let z = c.value_f64(2);
        vec![
            x * x * 0.05 + y + z * 3.0,
            (40.0 - x) * 0.8 + (y - 15.0) * (y - 15.0) * 0.1 + 1.0 / (z + 0.5),
        ]
    }
}

fn explore(pred_cache_slots: usize) -> ExplorationResult {
    let config = OptimizerConfig {
        random_samples: 60,
        max_iterations: 4,
        pool_size: 2_000,
        seed: 0xC0FFEE,
        pred_cache_slots,
        ..Default::default()
    };
    HyperMapper::new(space(), config).run(&Toy)
}

/// Exact structural fingerprint of a result. Derived `Debug` reaches every
/// field (configs, objective values, per-iteration stats), and Rust's f64
/// formatting is shortest-roundtrip, so two finite results format equal iff
/// they are value-identical; the bit-level spot checks below close the
/// remaining NaN/−0.0 gap.
fn fingerprint(r: &ExplorationResult) -> String {
    format!("{r:?}")
}

#[test]
fn fronts_are_bit_identical_with_cache_on_off_and_degenerate() {
    let uncached = explore(0);
    // One slot: every key collides, the cache is pure overwrite churn.
    let degenerate = explore(1);
    // Default-sized cache.
    let cached = explore(1 << 15);

    assert!(!uncached.samples.is_empty());
    assert!(!uncached.pareto_indices.is_empty());

    let want = fingerprint(&uncached);
    assert_eq!(fingerprint(&degenerate), want, "1-slot cache changed the exploration");
    assert_eq!(fingerprint(&cached), want, "default cache changed the exploration");

    // Spot-check the interesting fields directly too, so a serializer quirk
    // could never mask a real divergence.
    assert_eq!(uncached.pareto_indices, cached.pareto_indices);
    assert_eq!(uncached.samples.len(), cached.samples.len());
    for (a, b) in uncached.samples.iter().zip(&cached.samples) {
        assert_eq!(a.config, b.config);
        assert!(
            a.objectives.iter().zip(&b.objectives).all(|(x, y)| x.to_bits() == y.to_bits()),
            "objective bits diverged"
        );
    }
    assert_eq!(uncached.iterations.len(), cached.iterations.len());
}

#[test]
fn surrogate_compiles_to_the_quantized_engine_on_exploration_data() {
    // The exploration trains forests on evaluator outputs over ordinal
    // grids — tiny per-feature cut tables — so the quantized engine must
    // always be selected (the `CompiledForest` path is fallback-only).
    use hypermapper::CompiledSurrogate;
    use randforest::{Dataset, ForestConfig, RandomForest};

    let s = space();
    let toy = Toy;
    let mut data = Dataset::new(3);
    for c in s.iter_all() {
        let row = [c.value_f64(0), c.value_f64(1), c.value_f64(2)];
        data.push_row(&row, toy.evaluate(&c)[0]);
    }
    let forest =
        RandomForest::fit(&data, &ForestConfig { n_trees: 20, seed: 7, ..Default::default() });
    let surrogate = CompiledSurrogate::compile(&forest);
    assert!(surrogate.is_quantized(), "ordinal-grid surrogate fell back to CompiledForest");
}
