//! Property-based tests for spaces, Pareto machinery and the optimizer.

use hypermapper::{
    dominates, hypervolume_2d, pareto_front, pareto_front_2d, sample_distinct, Configuration,
    Evaluator, FnEvaluator, HyperMapper, OptimizerConfig, ParamSpace,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

fn points_2d() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No point on the front is dominated by any sampled point.
    #[test]
    fn front_points_are_nondominated(pts in points_2d()) {
        let front = pareto_front_2d(&pts);
        for &i in &front {
            for (j, q) in pts.iter().enumerate() {
                if i != j {
                    prop_assert!(
                        !dominates(&[q.0, q.1], &[pts[i].0, pts[i].1]),
                        "front point {:?} dominated by {:?}", pts[i], q
                    );
                }
            }
        }
    }

    /// Every non-front point is dominated by some front point (or is a
    /// duplicate of one).
    #[test]
    fn non_front_points_are_dominated(pts in points_2d()) {
        let front: HashSet<usize> = pareto_front_2d(&pts).into_iter().collect();
        for (j, q) in pts.iter().enumerate() {
            if front.contains(&j) {
                continue;
            }
            let covered = front.iter().any(|&i| {
                dominates(&[pts[i].0, pts[i].1], &[q.0, q.1]) || pts[i] == *q
            });
            prop_assert!(covered, "point {:?} neither on front nor dominated", q);
        }
    }

    /// The 2D fast path agrees with the general N-D routine.
    #[test]
    fn fast_path_matches_general(pts in points_2d()) {
        let as_vec: Vec<Vec<f64>> = pts.iter().map(|&(x, y)| vec![x, y]).collect();
        let mut a = pareto_front_2d(&pts);
        let mut b = pareto_front(&as_vec);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Hypervolume is monotone: adding points never shrinks it.
    #[test]
    fn hypervolume_monotone(pts in points_2d(), extra in (0.0f64..100.0, 0.0f64..100.0)) {
        let reference = (150.0, 150.0);
        let hv1 = hypervolume_2d(&pts, reference);
        let mut pts2 = pts.clone();
        pts2.push(extra);
        let hv2 = hypervolume_2d(&pts2, reference);
        prop_assert!(hv2 + 1e-9 >= hv1);
        // And bounded by the reference box.
        prop_assert!(hv2 <= 150.0 * 150.0 + 1e-9);
    }

    /// Flat-index round trip for arbitrary (small) spaces.
    #[test]
    fn space_roundtrip(card in prop::collection::vec(1usize..6, 1..6), probe in 0u64..10_000) {
        let mut b = ParamSpace::builder();
        for (i, &c) in card.iter().enumerate() {
            b = b.ordinal(&format!("p{i}"), (0..c).map(|v| v as f64));
        }
        let space = b.build().unwrap();
        let flat = probe % space.size();
        let config = space.config_at(flat);
        prop_assert_eq!(space.flat_index(&config), flat);
        prop_assert!(space.contains(&config));
    }

    /// Distinct sampling returns the requested count of unique configs.
    #[test]
    fn distinct_sampling(seed in 0u64..500, n in 1usize..40) {
        let space = ParamSpace::builder()
            .ordinal("a", (0..8).map(f64::from))
            .ordinal("b", (0..8).map(f64::from))
            .build()
            .unwrap();
        let n = n.min(space.size() as usize);
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = sample_distinct(&space, n, &HashSet::new(), &mut rng).unwrap();
        let unique: HashSet<u64> = samples.iter().map(|c| space.flat_index(c)).collect();
        prop_assert_eq!(unique.len(), n);
    }
}

/// The measured Pareto front of a full exploration dominates-or-equals the
/// front from the random phase alone (same seed ⇒ same random phase).
#[test]
fn active_learning_never_hurts_front() {
    let space = ParamSpace::builder()
        .ordinal("x", (0..30).map(|i| i as f64 * 0.3))
        .ordinal("y", (0..30).map(|i| i as f64 * 0.3))
        .build()
        .unwrap();
    let eval = FnEvaluator::new(2, |c: &Configuration| {
        let x = c.value_f64(0);
        let y = c.value_f64(1);
        vec![x + (y * 2.0).sin().abs(), 9.0 - x + (y - 4.0).abs() * 0.5]
    });
    for seed in [1u64, 5, 9] {
        let cfg = OptimizerConfig {
            random_samples: 40,
            max_iterations: 3,
            pool_size: 900,
            seed,
            ..Default::default()
        };
        let res = HyperMapper::new(space.clone(), cfg).run(&eval);
        let full: Vec<(f64, f64)> = res
            .pareto_samples()
            .iter()
            .map(|s| (s.objectives[0], s.objectives[1]))
            .collect();
        let rand_front: Vec<(f64, f64)> = res
            .random_phase_front()
            .iter()
            .map(|s| (s.objectives[0], s.objectives[1]))
            .collect();
        let reference = (50.0, 50.0);
        assert!(
            hypervolume_2d(&full, reference) + 1e-9 >= hypervolume_2d(&rand_front, reference),
            "seed {seed}"
        );
    }
    let _ = eval.n_objectives();
}
