//! Fault-tolerance properties of the full active-learning loop.
//!
//! Before the fallible-evaluation rework, the optimizer drove evaluators
//! through the infallible `evaluate_batch` path and `assert!`ed every
//! objective finite: a single panicking configuration unwound the whole
//! exploration through Rayon, and a single NaN objective aborted it with a
//! `non-finite objective` panic — hours of evaluation lost to one bad
//! configuration. These tests pin the new contract: the loop completes
//! under a heavy injected fault load, records every failure, trains on none
//! of them, and stays bit-identical across same-seed runs.

use hypermapper::{
    silence_injected_panics, EvalError, FailurePolicy, FaultInjectingEvaluator, FaultPlan,
    FnEvaluator, HmError, HyperMapper, OptimizerConfig, ParamSpace, ResilientEvaluator,
    RetryPolicy,
};
use randforest::ForestConfig;
use std::time::Duration;

fn space() -> ParamSpace {
    ParamSpace::builder()
        .ordinal("x", (0..16).map(|i| i as f64 * 0.5))
        .ordinal("y", (0..16).map(|i| i as f64 * 0.5))
        .ordinal("z", (0..8).map(f64::from))
        .build()
        .unwrap()
}

fn toy_evaluator() -> FnEvaluator<impl Fn(&hypermapper::Configuration) -> Vec<f64> + Sync> {
    FnEvaluator::new(2, |c| {
        let x = c.value_f64(0);
        let y = c.value_f64(1);
        let z = c.value_f64(2);
        vec![
            0.5 + x + (y * 1.3).sin().abs() + z * 0.2,
            9.0 - x * 0.8 + (y - 3.0).abs() * 0.4 + (z - 4.0).abs() * 0.3,
        ]
    })
    .with_names(["runtime", "error"])
}

fn optimizer_config(seed: u64, policy: FailurePolicy) -> OptimizerConfig {
    OptimizerConfig {
        random_samples: 60,
        max_iterations: 3,
        max_evals_per_iteration: 40,
        pool_size: 1500,
        forest: ForestConfig { n_trees: 15, ..Default::default() },
        seed,
        failure_policy: policy,
        ..Default::default()
    }
}

/// ≥ 10% of configurations fail: 6% panic, 6% return NaN, 3% stall past
/// the deadline (surfacing as timeouts), 4% fail transiently (and recover
/// under retry).
fn heavy_plan() -> FaultPlan {
    FaultPlan {
        panic_rate: 0.06,
        nan_rate: 0.06,
        delay_rate: 0.03,
        transient_rate: 0.04,
        delay: Duration::from_millis(300),
        transient_attempts: 1,
        seed: 9,
    }
}

/// A fingerprint of everything that must be reproducible: per-sample
/// configuration + exact objective bits, per-failure configuration + error
/// kind (timeout latencies vary between runs; their classification must
/// not), and the per-iteration bookkeeping.
#[allow(clippy::type_complexity)]
fn fingerprint(
    res: &hypermapper::ExplorationResult,
) -> (
    Vec<(Vec<u32>, Vec<u64>)>,
    Vec<(Vec<u32>, &'static str)>,
    Vec<(usize, usize, usize)>,
    Vec<usize>,
) {
    (
        res.samples
            .iter()
            .map(|s| {
                (
                    s.config.choices().to_vec(),
                    s.objectives.iter().map(|v| v.to_bits()).collect(),
                )
            })
            .collect(),
        res.failures
            .iter()
            .map(|f| (f.config.choices().to_vec(), f.error.kind()))
            .collect(),
        res.iterations
            .iter()
            .map(|it| (it.predicted_front_size, it.new_evaluations, it.failed_evaluations))
            .collect(),
        res.pareto_indices.clone(),
    )
}

fn run_with_faults(seed: u64, policy: FailurePolicy) -> hypermapper::ExplorationResult {
    let inner = toy_evaluator();
    let injected = FaultInjectingEvaluator::new(&inner, heavy_plan());
    let resilient = ResilientEvaluator::new(
        &injected,
        RetryPolicy {
            max_retries: 2,
            backoff_base: Duration::from_micros(50),
            deadline: Some(Duration::from_millis(250)),
            ..Default::default()
        },
    );
    HyperMapper::new(space(), optimizer_config(seed, policy)).run(&resilient)
}

#[test]
fn exploration_survives_heavy_fault_load() {
    silence_injected_panics();
    let res = run_with_faults(42, FailurePolicy::Exclude);

    // The loop completed and still found a front.
    assert!(!res.pareto_indices.is_empty());
    assert!(!res.samples.is_empty());
    assert!(!res.iterations.is_empty());

    // Failures were recorded, classified, and span the injected classes.
    assert!(!res.failures.is_empty(), "fault plan must actually fire");
    let kinds = res.failure_kinds();
    let kind = |k: &str| kinds.iter().find(|(n, _)| *n == k).map_or(0, |(_, n)| *n);
    assert!(kind("panicked") > 0, "kinds: {kinds:?}");
    assert!(kind("non-finite") > 0, "kinds: {kinds:?}");
    assert!(kind("timeout") > 0, "kinds: {kinds:?}");

    // Per-iteration failure counts reconcile with the global failure log.
    let iter_failures: usize = res.iterations.iter().map(|it| it.failed_evaluations).sum();
    assert_eq!(res.bootstrap_failures() + iter_failures, res.failures.len());
    for it in &res.iterations {
        assert!(it.failed_evaluations <= it.new_evaluations);
    }

    // Failed configurations never become training samples.
    let failed: std::collections::HashSet<Vec<u32>> =
        res.failures.iter().map(|f| f.config.choices().to_vec()).collect();
    for s in &res.samples {
        assert!(
            !failed.contains(&s.config.choices().to_vec()),
            "failed configuration leaked into the sample set"
        );
        assert!(s.objectives.iter().all(|v| v.is_finite()));
    }
}

#[test]
fn faulty_exploration_is_deterministic() {
    silence_injected_panics();
    // Two fresh stacks, same seeds everywhere: the exploration must be
    // bit-identical, including which configurations failed and how the
    // failures were classified.
    let a = run_with_faults(7, FailurePolicy::Exclude);
    let b = run_with_faults(7, FailurePolicy::Exclude);
    assert!(!a.failures.is_empty());
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn penalty_imputation_trains_without_polluting_results() {
    silence_injected_panics();
    let res = run_with_faults(11, FailurePolicy::ImputePenalty { factor: 1.0 });
    assert!(!res.failures.is_empty());
    assert!(!res.pareto_indices.is_empty());
    // Imputed rows feed the forests only: the reported samples, front, and
    // hypervolume never contain a penalty vector.
    for s in &res.samples {
        assert!(s.objectives.iter().all(|v| v.is_finite()));
    }
    let failed: std::collections::HashSet<Vec<u32>> =
        res.failures.iter().map(|f| f.config.choices().to_vec()).collect();
    for &i in &res.pareto_indices {
        assert!(!failed.contains(&res.samples[i].config.choices().to_vec()));
    }
}

#[test]
fn total_failure_is_an_error_not_a_hang() {
    let space = space();
    let always_panics = FnEvaluator::new(2, |_| panic!("injected panic: every configuration fails"));
    silence_injected_panics();
    let hm = HyperMapper::new(space, optimizer_config(3, FailurePolicy::Exclude));
    match hm.try_run(&always_panics) {
        Err(HmError::NoSuccessfulEvaluations { iteration: None, attempted }) => {
            assert!(attempted > 0);
        }
        other => panic!("expected NoSuccessfulEvaluations, got {other:?}"),
    }
}

#[test]
fn infallible_evaluators_opt_in_unchanged() {
    // The pre-existing infallible implementors compile and run with no
    // changes: the default `try_evaluate` bridges them, and a clean run
    // records zero failures.
    let res = HyperMapper::new(space(), optimizer_config(5, FailurePolicy::Exclude))
        .run(&toy_evaluator());
    assert!(res.failures.is_empty());
    assert!(res.iterations.iter().all(|it| it.failed_evaluations == 0));
    assert!(!res.pareto_indices.is_empty());
}

#[test]
fn transient_faults_recover_under_retry() {
    silence_injected_panics();
    let res = run_with_faults(13, FailurePolicy::Exclude);
    // Transients recover on the retry, so they never reach the failure
    // log as transient errors.
    assert!(
        res.failures.iter().all(|f| !matches!(f.error, EvalError::Transient { .. })),
        "transient failures should have been retried away: {:?}",
        res.failure_kinds()
    );
}
