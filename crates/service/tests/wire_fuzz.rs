//! Deterministic fuzz/property tests for the wire codec and [`FrameReader`].
//!
//! The claim under test (DESIGN §13/§15): **every** corruption of a byte
//! stream — truncation, single-bit flips, mid-frame EOF, random garbage —
//! surfaces as a *checked* frame error ([`Framed::Bad`]) or a clean EOF,
//! never a panic and never a silently mis-decoded or skipped frame. The
//! reader is transport-agnostic (the same `FrameReader` runs over stdio
//! pipes and TCP sockets); what differs between transports is byte
//! *delivery* — fragmentation and read timeouts — so every property here is
//! exercised both on whole-buffer streams (pipe-like) and on 1-byte
//! fragmented streams with interleaved timeouts (socket-like).
//!
//! All randomness is a fixed-seed splitmix64 walk: failures reproduce.

use hm_service::wire::{decode_frame, encode_frame, is_timeout, FrameReader, Framed, Msg};
use hypermapper::journal::RawOutcome;
use hypermapper::EvalError;
use std::io::{self, Read};

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A corpus covering every message kind with boundary-ish field values.
fn corpus(seed: u64) -> Vec<Msg> {
    let mut msgs = vec![Msg::Shutdown];
    for i in 0..8u64 {
        let r = splitmix64(seed.wrapping_add(i));
        let worker = (r % 7) as u32;
        let epoch = r >> 3;
        msgs.push(Msg::Hello { worker, epoch, pid: r as u32 });
        msgs.push(Msg::Heartbeat { worker, epoch, seq: r.rotate_left(17) });
        msgs.push(Msg::Lease { lease_id: r, epoch, flat: r >> 7, attempt: (r % 31) as u32 + 1 });
        msgs.push(Msg::HelloSocket { worker, epoch, pid: r as u32, token: r ^ 0xdead_beef });
        msgs.push(Msg::Welcome { worker, epoch, token: r | 1 });
        let outcome = if r % 3 == 0 {
            RawOutcome::Err {
                error: EvalError::Transient { reason: format!("fuzz-{i}") },
                attempts: (r % 5) as u32 + 1,
                elapsed_ms: r % 10_000,
            }
        } else {
            // Bit-exact float round-tripping is part of the codec contract;
            // feed it awkward values.
            RawOutcome::Ok(vec![
                f64::from_bits(r),
                -0.0,
                f64::MIN_POSITIVE * ((r % 9) as f64),
            ])
        };
        msgs.push(Msg::Result { worker, lease_id: r, epoch, flat: r >> 9, outcome });
    }
    msgs
}

/// Feed `bytes` through a `FrameReader` and collect everything until EOF,
/// panicking (test failure) if the reader spins without terminating.
fn drain(bytes: &[u8]) -> Vec<Framed> {
    let mut reader = FrameReader::new(bytes);
    let mut out = Vec::new();
    for _ in 0..10_000 {
        match reader.next_frame().expect("in-memory reads cannot fail") {
            Framed::Eof => return out,
            item => out.push(item),
        }
    }
    panic!("FrameReader failed to reach EOF on a {}-byte stream", bytes.len());
}

/// Socket-shaped delivery: one byte per read, with a `WouldBlock` timeout
/// error before every data byte, the way a TCP stream under a read deadline
/// behaves when the peer dribbles.
struct Dribble {
    bytes: Vec<u8>,
    pos: usize,
    timeout_next: bool,
}

impl Read for Dribble {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos >= self.bytes.len() {
            return Ok(0);
        }
        if self.timeout_next {
            self.timeout_next = false;
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "deadline"));
        }
        self.timeout_next = true;
        buf[0] = self.bytes[self.pos];
        self.pos += 1;
        Ok(1)
    }
}

/// Drain a dribbled (1-byte fragments + timeouts) stream.
fn drain_dribbled(bytes: &[u8]) -> Vec<Framed> {
    let mut reader =
        FrameReader::new(Dribble { bytes: bytes.to_vec(), pos: 0, timeout_next: false });
    let mut out = Vec::new();
    for _ in 0..10 * bytes.len() + 10_000 {
        match reader.next_frame() {
            Ok(Framed::Eof) => return out,
            Ok(item) => out.push(item),
            Err(e) if is_timeout(&e) => continue,
            Err(e) => panic!("unexpected io error from dribbled stream: {e}"),
        }
    }
    panic!("FrameReader failed to reach EOF on a dribbled {}-byte stream", bytes.len());
}

#[test]
fn every_truncation_decodes_as_a_checked_error() {
    for msg in corpus(1) {
        let frame = encode_frame(&msg);
        assert_eq!(decode_frame(&frame), Ok(msg.clone()), "full frame must round-trip");
        // Frames are ASCII, so every byte boundary is a char boundary.
        for cut in 0..frame.len().saturating_sub(1) {
            let prefix = &frame[..cut];
            match decode_frame(prefix) {
                Err(_) => {}
                Ok(got) => panic!(
                    "truncation to {cut}/{} bytes decoded as {:?} (frame {frame:?})",
                    frame.len(),
                    got
                ),
            }
        }
    }
}

#[test]
fn mid_frame_eof_is_a_checked_error_on_both_delivery_shapes() {
    for msg in corpus(2) {
        let frame = encode_frame(&msg);
        for cut in 1..frame.len().saturating_sub(1) {
            let bytes = &frame.as_bytes()[..cut];
            for items in [drain(bytes), drain_dribbled(bytes)] {
                assert_eq!(items.len(), 1, "cut at {cut} of {frame:?} yielded {items:?}");
                assert!(
                    matches!(items[0], Framed::Bad(_)),
                    "cut at {cut} of {frame:?} yielded {items:?}, want a checked error"
                );
            }
        }
        // Losing only the trailing newline before EOF still leaves a
        // complete, verifiable line: the tail decodes.
        let no_newline = &frame.as_bytes()[..frame.len() - 1];
        assert_eq!(drain(no_newline), vec![Framed::Msg(msg.clone())]);
        assert_eq!(drain_dribbled(no_newline), vec![Framed::Msg(msg)]);
    }
}

#[test]
fn every_single_bit_flip_is_caught() {
    for msg in corpus(3) {
        let frame = encode_frame(&msg).into_bytes();
        // Skip the newline terminator: flipping it is the mid-frame-EOF
        // case, covered above.
        for byte in 0..frame.len() - 1 {
            for bit in 0..8 {
                let mut corrupt = frame.clone();
                corrupt[byte] ^= 1 << bit;
                let items = drain(&corrupt);
                // The safety property is "never a *wrong* message": CRC-32
                // catches all single-bit body errors, the length/checksum
                // headers self-mismatch, non-UTF-8 is malformed, and a flip
                // that *creates* a newline splits the line into checked
                // errors. One benign alias exists — flipping 0x20 on a hex
                // digit of the header changes its case, which
                // `from_str_radix` reads as the same value, re-decoding the
                // identical message. That is allowed; anything else is not.
                assert!(!items.is_empty(), "flip swallowed the frame entirely");
                for f in &items {
                    match f {
                        Framed::Bad(_) => {}
                        Framed::Msg(m) => assert_eq!(
                            m,
                            &msg,
                            "bit {bit} of byte {byte} in {:?} mis-decoded: {items:?}",
                            String::from_utf8_lossy(&frame)
                        ),
                        Framed::Eof => unreachable!("drain strips Eof"),
                    }
                }
            }
        }
    }
}

#[test]
fn corruption_never_desyncs_the_stream_from_later_good_frames() {
    // Interleave good frames with an adversarial walk of corruptions; every
    // good frame must still arrive, in order, regardless of what garbage
    // sits between them — on both delivery shapes.
    let msgs = corpus(4);
    let mut stream: Vec<u8> = Vec::new();
    let mut expected = Vec::new();
    for (i, msg) in msgs.iter().enumerate() {
        let r = splitmix64(0xfeed ^ i as u64);
        let frame = encode_frame(msg);
        match r % 4 {
            0 => {
                // Truncated copy of this frame first (mid-frame newline cut),
                // then the real thing.
                let cut = 1 + (r as usize >> 3) % (frame.len() - 2);
                stream.extend_from_slice(&frame.as_bytes()[..cut]);
                stream.push(b'\n');
            }
            1 => {
                // A burst of random garbage bytes (newline-terminated so it
                // reads as one or more bad lines).
                let mut x = r;
                for _ in 0..(r % 40) + 1 {
                    x = splitmix64(x);
                    let b = (x >> 13) as u8;
                    stream.push(if b == b'\n' { b'*' } else { b });
                }
                stream.push(b'\n');
            }
            2 => {
                // A bit-flipped copy of the previous frame (dup + corrupt).
                let mut bad = frame.clone().into_bytes();
                let pos = (r as usize >> 7) % (bad.len() - 1);
                bad[pos] ^= 0x04;
                stream.extend_from_slice(&bad);
            }
            _ => {}
        }
        stream.extend_from_slice(frame.as_bytes());
        expected.push(msg.clone());
    }
    for items in [drain(&stream), drain_dribbled(&stream)] {
        let good: Vec<&Msg> = items
            .iter()
            .filter_map(|f| match f {
                Framed::Msg(m) => Some(m),
                Framed::Bad(_) => None,
                Framed::Eof => None,
            })
            .collect();
        // Bit-flipped duplicates are CRC-caught, so *exactly* the genuine
        // frames survive — nothing lost, nothing invented.
        assert_eq!(good.len(), expected.len(), "items: {items:?}");
        for (got, want) in good.iter().zip(expected.iter()) {
            assert_eq!(*got, want);
        }
    }
}

#[test]
fn random_garbage_streams_never_panic_and_always_terminate() {
    for round in 0..64u64 {
        let mut x = splitmix64(0xbad5_eed ^ round);
        let len = (x % 4_000) as usize;
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            x = splitmix64(x);
            bytes.push((x >> 23) as u8);
        }
        // Whole-buffer shape only: dribbling 4k random bytes at 2 reads per
        // byte adds nothing but runtime here, and the fragmentation
        // property is covered by the structured tests above.
        for f in drain(&bytes) {
            match f {
                Framed::Bad(_) => {}
                Framed::Msg(m) => panic!(
                    "random garbage (round {round}) decoded as {m:?} — \
                     a 1-in-2^32 CRC collision or a codec hole; investigate"
                ),
                Framed::Eof => unreachable!("drain strips Eof"),
            }
        }
    }
}
