//! The kill-anywhere chaos gate, in-process edition: every fault class the
//! service defends against is injected via a seeded [`ChaosPlan`], and the
//! merged results must be **bit-identical** to a plain sequential
//! evaluation of the same configurations — same floats, same error records,
//! same order.
//!
//! `harness = false`: this binary doubles as the *worker executable* (the
//! coordinator re-execs `current_exe()`), so `main` must route into
//! [`worker_entry`] before any test machinery runs.

use hm_service::{worker_entry, ChaosPlan, ServiceConfig, ServicePool};
use hypermapper::journal::RawOutcome;
use hypermapper::{
    Configuration, Evaluator, ExplorationResult, HyperMapper, OptimizerConfig, ParamSpace,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn space() -> ParamSpace {
    ParamSpace::builder()
        .ordinal("x", (0..40).map(f64::from))
        .ordinal("y", (0..30).map(f64::from))
        .ordinal("z", [0.0, 0.5, 1.0, 2.0])
        .build()
        .unwrap()
}

/// Deterministic bi-objective toy with a trade-off, plus one deterministic
/// panic stripe (x = 37, y = 29, z = 2.0) so error transport is exercised:
/// a worker must ship the panic back as the *same* `Panicked` record a
/// local catch produces.
struct Toy;

impl Evaluator for Toy {
    fn n_objectives(&self) -> usize {
        2
    }
    fn objective_names(&self) -> Vec<String> {
        vec!["time".into(), "error".into()]
    }
    fn evaluate(&self, c: &Configuration) -> Vec<f64> {
        let x = c.value_f64(0);
        let y = c.value_f64(1);
        let z = c.value_f64(2);
        if x == 37.0 && y == 29.0 && z == 2.0 {
            panic!("injected evaluator panic");
        }
        vec![
            x * x * 0.05 + y + z * 3.0,
            (40.0 - x) * 0.8 + (y - 15.0) * (y - 15.0) * 0.1 + 1.0 / (z + 0.5),
        ]
    }
}

/// A batch of `n` distinct configurations, spread across the space with a
/// fixed stride so consecutive slots land in unrelated chaos bands.
fn batch(n: u64) -> Vec<Configuration> {
    let s = space();
    let size = s.size();
    let stride = 97u64; // coprime with the 4800-config space
    (0..n).map(|i| s.config_at((i * stride) % size)).collect()
}

/// One slot's outcome in the journal's bit-exact wire form, with failure
/// wall-clock (pure measurement metadata) zeroed so local and cross-process
/// records compare equal.
fn normalize(r: Result<Vec<f64>, hypermapper::FailedEvaluation>) -> String {
    let outcome = match r {
        Ok(v) => RawOutcome::Ok(v),
        Err(f) => RawOutcome::Err { error: f.error, attempts: 1, elapsed_ms: 0 },
    };
    outcome.encode_wire()
}

/// The sequential ground truth the service must reproduce bit-for-bit.
fn sequential_reference(configs: &[Configuration]) -> Vec<String> {
    configs
        .iter()
        .map(|c| normalize(Toy.try_evaluate_detailed(c)))
        .collect()
}

fn pool(workers: usize, chaos: ChaosPlan, lease_ms: u64) -> ServicePool {
    let cfg = ServiceConfig {
        workers,
        lease_ms,
        heartbeat_ms: 25,
        heartbeat_grace: 8,
        chaos,
        ..ServiceConfig::default()
    };
    ServicePool::launch(space(), 2, vec!["time".into(), "error".into()], cfg)
        .expect("launch worker pool")
}

fn assert_service_matches_sequential(p: &ServicePool, configs: &[Configuration]) {
    let want = sequential_reference(configs);
    let got: Vec<String> =
        p.evaluate_batch(configs).into_iter().map(normalize).collect();
    assert_eq!(got, want, "service results must be bit-identical to sequential");
}

fn parity_without_chaos() {
    let configs = batch(40);
    let p = pool(4, ChaosPlan::quiet(), 2_000);
    assert_service_matches_sequential(&p, &configs);
    let stats = p.stats();
    assert_eq!(stats.accepted, 40);
    assert_eq!(stats.leases_granted, 40, "quiet run needs no re-grants");
    assert_eq!(stats.worker_deaths, 0);
    assert_eq!(stats.garbled_frames, 0);
}

fn panic_stripe_crosses_the_wire() {
    let s = space();
    // The stripe config plus neighbours, so the batch mixes Ok and Err.
    let stripe = (0..s.size())
        .find(|&f| {
            let c = s.config_at(f);
            c.value_f64(0) == 37.0 && c.value_f64(1) == 29.0 && c.value_f64(2) == 2.0
        })
        .expect("panic stripe exists in the space");
    let configs: Vec<Configuration> =
        [stripe, 0, 1, stripe, 100].iter().map(|&f| s.config_at(f)).collect();
    let p = pool(2, ChaosPlan::quiet(), 2_000);
    let want = sequential_reference(&configs);
    let got: Vec<String> =
        p.evaluate_batch(&configs).into_iter().map(normalize).collect();
    assert_eq!(got, want);
    assert!(want[0].starts_with("err/"), "stripe must actually fail: {}", want[0]);
}

fn storm_is_bit_identical() {
    let configs = batch(60);
    for seed in [11u64, 42] {
        let p = pool(4, ChaosPlan::storm(seed), 200);
        assert_service_matches_sequential(&p, &configs);
        let stats = p.stats();
        assert_eq!(stats.accepted, 60, "storm seed {seed}: every slot must complete");
        assert!(
            stats.leases_granted >= 60,
            "storm seed {seed}: grants can never undercut slots"
        );
    }
}

fn kills_and_stalls_are_reassigned() {
    let chaos = ChaosPlan {
        seed: 7,
        kill_permille: 250,
        stall_permille: 250,
        stall_ms: 300,
        ..ChaosPlan::quiet()
    };
    let configs = batch(40);
    let p = pool(4, chaos, 150);
    assert_service_matches_sequential(&p, &configs);
    let stats = p.stats();
    assert!(stats.worker_deaths > 0, "kill faults must register as deaths: {stats:?}");
    assert!(stats.respawns > 0, "dead workers must be respawned: {stats:?}");
    assert!(stats.lease_expiries > 0, "stalls must expire leases: {stats:?}");
    assert!(stats.leases_granted > 40, "reassignment implies re-grants: {stats:?}");
}

fn duplicate_late_and_stale_epoch_replies_are_dropped() {
    // Satellite: duplicate and late lease replies are idempotently dropped,
    // property-tested across seeds of the chaos plan.
    let configs = batch(50);
    let mut total = hm_service::StatsSnapshot::default();
    for seed in [3u64, 17, 29] {
        let chaos = ChaosPlan {
            seed,
            kill_permille: 0,
            stall_permille: 0,
            freeze_permille: 0,
            garble_permille: 0,
            duplicate_permille: 300,
            late_permille: 300,
            stale_epoch_permille: 200,
            stall_ms: 0,
            late_ms: 250,
        };
        let p = pool(3, chaos, 150);
        assert_service_matches_sequential(&p, &configs);
        let s = p.stats();
        assert_eq!(s.accepted, 50, "seed {seed}: exactly one accept per slot");
        total.duplicates_dropped += s.duplicates_dropped;
        total.stale_dropped += s.stale_dropped;
        total.wrong_epoch_dropped += s.wrong_epoch_dropped;
    }
    assert!(total.duplicates_dropped > 0, "duplicate replies must be observed: {total:?}");
    assert!(total.stale_dropped > 0, "late replies must be observed as stale: {total:?}");
    assert!(total.wrong_epoch_dropped > 0, "stale-epoch replies must be fenced: {total:?}");
}

fn garbled_frames_revoke_and_regrant() {
    let chaos = ChaosPlan {
        seed: 5,
        garble_permille: 400,
        ..ChaosPlan::quiet()
    };
    let configs = batch(30);
    let p = pool(3, chaos, 400);
    assert_service_matches_sequential(&p, &configs);
    let stats = p.stats();
    assert!(stats.garbled_frames > 0, "garble faults must be detected: {stats:?}");
    assert!(stats.leases_granted > 30, "garbled replies force re-grants: {stats:?}");
}

fn frozen_workers_die_by_heartbeat_grace() {
    let chaos = ChaosPlan {
        seed: 13,
        freeze_permille: 350,
        stall_ms: 150,
        ..ChaosPlan::quiet()
    };
    let configs = batch(24);
    let p = pool(3, chaos, 100);
    assert_service_matches_sequential(&p, &configs);
    let stats = p.stats();
    assert!(
        stats.worker_deaths > 0,
        "frozen workers must be reclaimed by heartbeat grace: {stats:?}"
    );
    assert!(stats.respawns > 0, "reclaimed workers must be replaced: {stats:?}");
}

fn stalls_straddling_batch_boundaries_never_cross_attribute() {
    // Regression: lease ids must be unique across the pool's *lifetime*,
    // not just within one batch. A worker stalled past its deadline in
    // batch N replies after batch N+1 has begun; with a per-batch id
    // counter that stale id could collide with a live lease in the new
    // batch and its outcome would be accepted for the wrong slot. Heavy
    // stalls longer than the lease make such straddlers near-certain.
    let chaos = ChaosPlan {
        seed: 41,
        stall_permille: 400,
        stall_ms: 300,
        ..ChaosPlan::quiet()
    };
    let p = pool(4, chaos, 60);
    let all = batch(72);
    for chunk in all.chunks(12) {
        assert_service_matches_sequential(&p, chunk);
    }
    let stats = p.stats();
    assert_eq!(stats.accepted, 72, "exactly one accept per slot across batches");
    assert!(stats.lease_expiries > 0, "stalls must outlive leases: {stats:?}");
    assert!(stats.stale_dropped > 0, "straddling replies must be dropped: {stats:?}");
}

/// Debug-free structural fingerprint of an exploration (flat indices, phase,
/// objective bits, failure kinds, Pareto indices) — wall-clock metadata
/// excluded, NaN bits included.
fn dse_fingerprint(space: &ParamSpace, r: &ExplorationResult) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for smp in &r.samples {
        let _ = write!(s, "s {} {:?}", space.flat_index(&smp.config), smp.phase);
        for v in &smp.objectives {
            let _ = write!(s, " {:016x}", v.to_bits());
        }
        s.push('\n');
    }
    for f in &r.failures {
        let _ = writeln!(s, "f {} {:?} {}", space.flat_index(&f.config), f.phase, f.error);
    }
    let _ = writeln!(s, "p {:?}", r.pareto_indices);
    s
}

fn full_dse_through_the_service_is_bit_identical() {
    let cfg = OptimizerConfig {
        random_samples: 30,
        max_iterations: 2,
        max_evals_per_iteration: 15,
        pool_size: 1_500,
        seed: 0xD5E,
        ..Default::default()
    };
    let s = space();
    let want = HyperMapper::new(s.clone(), cfg.clone()).run(&Toy);
    let p = pool(4, ChaosPlan::storm(23), 200);
    let got = HyperMapper::new(s.clone(), cfg).run(&p);
    assert_eq!(
        dse_fingerprint(&s, &got),
        dse_fingerprint(&s, &want),
        "a chaos-ridden multi-process DSE must reproduce the sequential run bit-for-bit"
    );
    assert!(p.stats().accepted > 0);
}

fn main() {
    // Children spawned by ServicePool::launch route into the serve loop
    // here and never reach the test list below.
    worker_entry(|| (space(), Toy));

    let tests: &[(&str, fn())] = &[
        ("parity_without_chaos", parity_without_chaos),
        ("panic_stripe_crosses_the_wire", panic_stripe_crosses_the_wire),
        ("storm_is_bit_identical", storm_is_bit_identical),
        ("kills_and_stalls_are_reassigned", kills_and_stalls_are_reassigned),
        (
            "duplicate_late_and_stale_epoch_replies_are_dropped",
            duplicate_late_and_stale_epoch_replies_are_dropped,
        ),
        ("garbled_frames_revoke_and_regrant", garbled_frames_revoke_and_regrant),
        (
            "stalls_straddling_batch_boundaries_never_cross_attribute",
            stalls_straddling_batch_boundaries_never_cross_attribute,
        ),
        ("frozen_workers_die_by_heartbeat_grace", frozen_workers_die_by_heartbeat_grace),
        (
            "full_dse_through_the_service_is_bit_identical",
            full_dse_through_the_service_is_bit_identical,
        ),
    ];
    let mut failed = 0usize;
    for (name, test) in tests {
        match catch_unwind(AssertUnwindSafe(test)) {
            Ok(()) => println!("test {name} ... ok"),
            Err(_) => {
                println!("test {name} ... FAILED");
                failed += 1;
            }
        }
    }
    if failed > 0 {
        println!("{failed} of {} service chaos tests failed", tests.len());
        std::process::exit(1);
    }
    println!("all {} service chaos tests passed", tests.len());
}
