//! The kill-anywhere chaos gate, in-process edition: every fault class the
//! service defends against is injected via a seeded [`ChaosPlan`], and the
//! merged results must be **bit-identical** to a plain sequential
//! evaluation of the same configurations — same floats, same error records,
//! same order.
//!
//! `harness = false`: this binary doubles as the *worker executable* (the
//! coordinator re-execs `current_exe()`), so `main` must route into
//! [`worker_entry`] before any test machinery runs.

use hm_service::{
    worker_entry, ChaosPlan, NetChaosPlan, ServiceConfig, ServicePool, TransportMode,
};
use hypermapper::journal::RawOutcome;
use hypermapper::{
    Configuration, Evaluator, ExplorationResult, HyperMapper, OptimizerConfig, ParamSpace,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn space() -> ParamSpace {
    ParamSpace::builder()
        .ordinal("x", (0..40).map(f64::from))
        .ordinal("y", (0..30).map(f64::from))
        .ordinal("z", [0.0, 0.5, 1.0, 2.0])
        .build()
        .unwrap()
}

/// Deterministic bi-objective toy with a trade-off, plus one deterministic
/// panic stripe (x = 37, y = 29, z = 2.0) so error transport is exercised:
/// a worker must ship the panic back as the *same* `Panicked` record a
/// local catch produces.
struct Toy;

impl Evaluator for Toy {
    fn n_objectives(&self) -> usize {
        2
    }
    fn objective_names(&self) -> Vec<String> {
        vec!["time".into(), "error".into()]
    }
    fn evaluate(&self, c: &Configuration) -> Vec<f64> {
        let x = c.value_f64(0);
        let y = c.value_f64(1);
        let z = c.value_f64(2);
        if x == 37.0 && y == 29.0 && z == 2.0 {
            panic!("injected evaluator panic");
        }
        vec![
            x * x * 0.05 + y + z * 3.0,
            (40.0 - x) * 0.8 + (y - 15.0) * (y - 15.0) * 0.1 + 1.0 / (z + 0.5),
        ]
    }
}

/// A batch of `n` distinct configurations, spread across the space with a
/// fixed stride so consecutive slots land in unrelated chaos bands.
fn batch(n: u64) -> Vec<Configuration> {
    let s = space();
    let size = s.size();
    let stride = 97u64; // coprime with the 4800-config space
    (0..n).map(|i| s.config_at((i * stride) % size)).collect()
}

/// One slot's outcome in the journal's bit-exact wire form, with failure
/// wall-clock (pure measurement metadata) zeroed so local and cross-process
/// records compare equal.
fn normalize(r: Result<Vec<f64>, hypermapper::FailedEvaluation>) -> String {
    let outcome = match r {
        Ok(v) => RawOutcome::Ok(v),
        Err(f) => RawOutcome::Err { error: f.error, attempts: 1, elapsed_ms: 0 },
    };
    outcome.encode_wire()
}

/// The sequential ground truth the service must reproduce bit-for-bit.
fn sequential_reference(configs: &[Configuration]) -> Vec<String> {
    configs
        .iter()
        .map(|c| normalize(Toy.try_evaluate_detailed(c)))
        .collect()
}

fn pool(workers: usize, chaos: ChaosPlan, lease_ms: u64) -> ServicePool {
    let cfg = ServiceConfig {
        workers,
        lease_ms,
        heartbeat_ms: 25,
        heartbeat_grace: 8,
        chaos,
        ..ServiceConfig::default()
    };
    ServicePool::launch(space(), 2, vec!["time".into(), "error".into()], cfg)
        .expect("launch worker pool")
}

/// A pool on the socket transport: listens on an ephemeral loopback port
/// and spawns children that dial back in. The heartbeat grace is looser
/// than the stdio pools' so simulated partitions can heal by session
/// resume instead of always tripping the reaper.
fn socket_pool(
    workers: usize,
    chaos: ChaosPlan,
    net: NetChaosPlan,
    lease_ms: u64,
) -> ServicePool {
    let cfg = ServiceConfig {
        workers,
        lease_ms,
        heartbeat_ms: 25,
        heartbeat_grace: 40,
        chaos,
        net_chaos: net,
        transport: TransportMode::Socket { listen: "127.0.0.1:0".into() },
        reconnect_grace_ms: 400,
        ..ServiceConfig::default()
    };
    ServicePool::launch(space(), 2, vec!["time".into(), "error".into()], cfg)
        .expect("launch socket worker pool")
}

fn assert_service_matches_sequential(p: &ServicePool, configs: &[Configuration]) {
    let want = sequential_reference(configs);
    let got: Vec<String> =
        p.evaluate_batch(configs).into_iter().map(normalize).collect();
    assert_eq!(got, want, "service results must be bit-identical to sequential");
}

fn parity_without_chaos() {
    let configs = batch(40);
    let p = pool(4, ChaosPlan::quiet(), 2_000);
    assert_service_matches_sequential(&p, &configs);
    let stats = p.stats();
    assert_eq!(stats.accepted, 40);
    assert_eq!(stats.leases_granted, 40, "quiet run needs no re-grants");
    assert_eq!(stats.worker_deaths, 0);
    assert_eq!(stats.garbled_frames, 0);
}

fn panic_stripe_crosses_the_wire() {
    let s = space();
    // The stripe config plus neighbours, so the batch mixes Ok and Err.
    let stripe = (0..s.size())
        .find(|&f| {
            let c = s.config_at(f);
            c.value_f64(0) == 37.0 && c.value_f64(1) == 29.0 && c.value_f64(2) == 2.0
        })
        .expect("panic stripe exists in the space");
    let configs: Vec<Configuration> =
        [stripe, 0, 1, stripe, 100].iter().map(|&f| s.config_at(f)).collect();
    let p = pool(2, ChaosPlan::quiet(), 2_000);
    let want = sequential_reference(&configs);
    let got: Vec<String> =
        p.evaluate_batch(&configs).into_iter().map(normalize).collect();
    assert_eq!(got, want);
    assert!(want[0].starts_with("err/"), "stripe must actually fail: {}", want[0]);
}

fn storm_is_bit_identical() {
    let configs = batch(60);
    for seed in [11u64, 42] {
        let p = pool(4, ChaosPlan::storm(seed), 200);
        assert_service_matches_sequential(&p, &configs);
        let stats = p.stats();
        assert_eq!(stats.accepted, 60, "storm seed {seed}: every slot must complete");
        assert!(
            stats.leases_granted >= 60,
            "storm seed {seed}: grants can never undercut slots"
        );
    }
}

fn kills_and_stalls_are_reassigned() {
    let chaos = ChaosPlan {
        seed: 7,
        kill_permille: 250,
        stall_permille: 250,
        stall_ms: 300,
        ..ChaosPlan::quiet()
    };
    let configs = batch(40);
    let p = pool(4, chaos, 150);
    assert_service_matches_sequential(&p, &configs);
    let stats = p.stats();
    assert!(stats.worker_deaths > 0, "kill faults must register as deaths: {stats:?}");
    assert!(stats.respawns > 0, "dead workers must be respawned: {stats:?}");
    assert!(stats.lease_expiries > 0, "stalls must expire leases: {stats:?}");
    assert!(stats.leases_granted > 40, "reassignment implies re-grants: {stats:?}");
}

fn duplicate_late_and_stale_epoch_replies_are_dropped() {
    // Satellite: duplicate and late lease replies are idempotently dropped,
    // property-tested across seeds of the chaos plan.
    let configs = batch(50);
    let mut total = hm_service::StatsSnapshot::default();
    for seed in [3u64, 17, 29] {
        let chaos = ChaosPlan {
            seed,
            kill_permille: 0,
            stall_permille: 0,
            freeze_permille: 0,
            garble_permille: 0,
            duplicate_permille: 300,
            late_permille: 300,
            stale_epoch_permille: 200,
            stall_ms: 0,
            late_ms: 250,
        };
        let p = pool(3, chaos, 150);
        assert_service_matches_sequential(&p, &configs);
        let s = p.stats();
        assert_eq!(s.accepted, 50, "seed {seed}: exactly one accept per slot");
        total.duplicates_dropped += s.duplicates_dropped;
        total.stale_dropped += s.stale_dropped;
        total.wrong_epoch_dropped += s.wrong_epoch_dropped;
    }
    assert!(total.duplicates_dropped > 0, "duplicate replies must be observed: {total:?}");
    assert!(total.stale_dropped > 0, "late replies must be observed as stale: {total:?}");
    assert!(total.wrong_epoch_dropped > 0, "stale-epoch replies must be fenced: {total:?}");
}

fn garbled_frames_revoke_and_regrant() {
    let chaos = ChaosPlan {
        seed: 5,
        garble_permille: 400,
        ..ChaosPlan::quiet()
    };
    let configs = batch(30);
    let p = pool(3, chaos, 400);
    assert_service_matches_sequential(&p, &configs);
    let stats = p.stats();
    assert!(stats.garbled_frames > 0, "garble faults must be detected: {stats:?}");
    assert!(stats.leases_granted > 30, "garbled replies force re-grants: {stats:?}");
}

fn frozen_workers_die_by_heartbeat_grace() {
    let chaos = ChaosPlan {
        seed: 13,
        freeze_permille: 350,
        stall_ms: 150,
        ..ChaosPlan::quiet()
    };
    let configs = batch(24);
    let p = pool(3, chaos, 100);
    assert_service_matches_sequential(&p, &configs);
    let stats = p.stats();
    assert!(
        stats.worker_deaths > 0,
        "frozen workers must be reclaimed by heartbeat grace: {stats:?}"
    );
    assert!(stats.respawns > 0, "reclaimed workers must be replaced: {stats:?}");
}

fn stalls_straddling_batch_boundaries_never_cross_attribute() {
    // Regression: lease ids must be unique across the pool's *lifetime*,
    // not just within one batch. A worker stalled past its deadline in
    // batch N replies after batch N+1 has begun; with a per-batch id
    // counter that stale id could collide with a live lease in the new
    // batch and its outcome would be accepted for the wrong slot. Heavy
    // stalls longer than the lease make such straddlers near-certain.
    let chaos = ChaosPlan {
        seed: 41,
        stall_permille: 400,
        stall_ms: 300,
        ..ChaosPlan::quiet()
    };
    let p = pool(4, chaos, 60);
    let all = batch(72);
    for chunk in all.chunks(12) {
        assert_service_matches_sequential(&p, chunk);
    }
    let stats = p.stats();
    assert_eq!(stats.accepted, 72, "exactly one accept per slot across batches");
    assert!(stats.lease_expiries > 0, "stalls must outlive leases: {stats:?}");
    assert!(stats.stale_dropped > 0, "straddling replies must be dropped: {stats:?}");
}

fn socket_parity_matches_stdio_and_sequential() {
    // The transport is invisible to results: a quiet socket pool produces
    // the same bytes as the stdio pools and the sequential reference.
    let configs = batch(40);
    let p = socket_pool(4, ChaosPlan::quiet(), NetChaosPlan::quiet(), 2_000);
    assert!(p.listen_addr().is_some(), "socket pool must expose its bound address");
    assert_service_matches_sequential(&p, &configs);
    let stats = p.stats();
    assert_eq!(stats.accepted, 40);
    assert_eq!(stats.worker_deaths, 0, "quiet socket run: {stats:?}");
    assert_eq!(stats.garbled_frames, 0, "quiet socket run: {stats:?}");
}

fn socket_storm_with_network_faults_is_bit_identical() {
    // The tentpole gate in-process: process chaos AND network chaos at
    // once — drops, delays, reorders, retransmits, truncated frames,
    // partitions, reconnect storms on top of kills and stalls — and the
    // merged bytes still cannot move.
    let configs = batch(50);
    let p = socket_pool(4, ChaosPlan::storm(23), NetChaosPlan::storm(11), 300);
    assert_service_matches_sequential(&p, &configs);
    let stats = p.stats();
    assert_eq!(stats.accepted, 50, "every slot must complete: {stats:?}");
    assert!(
        stats.reconnects > 0,
        "a net storm must exercise session resume: {stats:?}"
    );
    assert!(
        stats.disconnects + stats.worker_deaths > 0,
        "a net storm must sever links: {stats:?}"
    );
}

fn duplicate_retransmit_after_reconnect_counts_as_duplicate() {
    // Satellite regression: a worker delivers a result, loses the link
    // before any ack could arrive, reconnects (resuming its session), and
    // retransmits. The copy that loses the race must land under the
    // existing `Duplicate` verdict — tagged as transport-level — and must
    // not perturb accounting or results.
    let net = NetChaosPlan { dup_permille: 1000, ..NetChaosPlan::quiet() };
    let configs = batch(50);
    let p = socket_pool(3, ChaosPlan::quiet(), net, 500);
    assert_service_matches_sequential(&p, &configs);
    let stats = p.stats();
    assert_eq!(stats.accepted, 50, "exactly one accept per slot: {stats:?}");
    assert!(stats.reconnects > 0, "retransmit implies reconnect: {stats:?}");
    assert!(
        stats.duplicates_after_reconnect > 0,
        "cross-link retransmits of the winning reply must be tagged: {stats:?}"
    );
    assert!(
        stats.duplicates_dropped >= stats.duplicates_after_reconnect,
        "the transport tag is a subset of the duplicate verdict: {stats:?}"
    );
}

fn frozen_socket_peer_is_reaped_on_heartbeat_deadline() {
    // Satellite: a frozen worker keeps its TCP connection open while
    // sending nothing — the half-open shape. Liveness must come from the
    // heartbeat clock, not from waiting for a socket read to fail; the
    // batch completes because the reaper severs the stream and re-grants.
    let chaos = ChaosPlan {
        seed: 13,
        freeze_permille: 350,
        stall_ms: 400,
        ..ChaosPlan::quiet()
    };
    let cfg = ServiceConfig {
        workers: 3,
        lease_ms: 100,
        heartbeat_ms: 25,
        heartbeat_grace: 8, // 200 ms — far below the 1.6 s freeze
        chaos,
        transport: TransportMode::Socket { listen: "127.0.0.1:0".into() },
        reconnect_grace_ms: 400,
        ..ServiceConfig::default()
    };
    let p = ServicePool::launch(space(), 2, vec!["time".into(), "error".into()], cfg)
        .expect("launch socket worker pool");
    assert_service_matches_sequential(&p, &batch(24));
    let stats = p.stats();
    assert!(
        stats.worker_deaths > 0,
        "frozen-but-connected peers must die by heartbeat grace: {stats:?}"
    );
    assert!(stats.respawns > 0, "reaped workers must be replaced: {stats:?}");
}

fn dropped_result_frames_do_not_starve_workers() {
    // Regression for the lease/busy interaction under pure frame loss: a
    // dropped result leaves the worker healthy and idle but its lease
    // unanswered. Expiry must free the *worker* too, or with every worker
    // in that state the batch deadlocks.
    let net = NetChaosPlan { drop_permille: 700, ..NetChaosPlan::quiet() };
    let configs = batch(30);
    let p = socket_pool(3, ChaosPlan::quiet(), net, 150);
    assert_service_matches_sequential(&p, &configs);
    let stats = p.stats();
    assert_eq!(stats.accepted, 30, "{stats:?}");
    assert!(stats.lease_expiries > 0, "drops must surface as expiries: {stats:?}");
}

fn losing_every_worker_degrades_to_local_fallback() {
    // Tentpole degradation path: every worker dies, nothing can respawn,
    // and after the reconnect grace the pool evaluates the remaining slots
    // in-process — bit-identically (the evaluator is deterministic) — with
    // the transport event log recording what happened, instead of hanging.
    let chaos = ChaosPlan { seed: 3, kill_permille: 1000, ..ChaosPlan::quiet() };
    let cfg = ServiceConfig {
        workers: 2,
        lease_ms: 300,
        heartbeat_ms: 25,
        heartbeat_grace: 8,
        respawn_budget: 0,
        chaos,
        transport: TransportMode::Socket { listen: "127.0.0.1:0".into() },
        reconnect_grace_ms: 250,
        ..ServiceConfig::default()
    };
    let p = ServicePool::launch(space(), 2, vec!["time".into(), "error".into()], cfg)
        .expect("launch socket worker pool")
        .with_local_fallback(Box::new(Toy));
    let configs = batch(12);
    assert_service_matches_sequential(&p, &configs);
    let stats = p.stats();
    assert_eq!(stats.accepted, 0, "kill-everything chaos accepts nothing: {stats:?}");
    assert_eq!(
        stats.local_fallback_evals, 12,
        "every slot must come from the fallback: {stats:?}"
    );
    let log = p.transport_events();
    assert!(
        log.iter().any(|l| l.contains("lost all workers")),
        "the degradation must be visible in the transport log: {log:?}"
    );
}

/// Debug-free structural fingerprint of an exploration (flat indices, phase,
/// objective bits, failure kinds, Pareto indices) — wall-clock metadata
/// excluded, NaN bits included.
fn dse_fingerprint(space: &ParamSpace, r: &ExplorationResult) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for smp in &r.samples {
        let _ = write!(s, "s {} {:?}", space.flat_index(&smp.config), smp.phase);
        for v in &smp.objectives {
            let _ = write!(s, " {:016x}", v.to_bits());
        }
        s.push('\n');
    }
    for f in &r.failures {
        let _ = writeln!(s, "f {} {:?} {}", space.flat_index(&f.config), f.phase, f.error);
    }
    let _ = writeln!(s, "p {:?}", r.pareto_indices);
    s
}

fn full_dse_through_the_service_is_bit_identical() {
    let cfg = OptimizerConfig {
        random_samples: 30,
        max_iterations: 2,
        max_evals_per_iteration: 15,
        pool_size: 1_500,
        seed: 0xD5E,
        ..Default::default()
    };
    let s = space();
    let want = HyperMapper::new(s.clone(), cfg.clone()).run(&Toy);
    let p = pool(4, ChaosPlan::storm(23), 200);
    let got = HyperMapper::new(s.clone(), cfg).run(&p);
    assert_eq!(
        dse_fingerprint(&s, &got),
        dse_fingerprint(&s, &want),
        "a chaos-ridden multi-process DSE must reproduce the sequential run bit-for-bit"
    );
    assert!(p.stats().accepted > 0);
}

fn main() {
    // Children spawned by ServicePool::launch route into the serve loop
    // here and never reach the test list below.
    worker_entry(|| (space(), Toy));

    let tests: &[(&str, fn())] = &[
        ("parity_without_chaos", parity_without_chaos),
        ("panic_stripe_crosses_the_wire", panic_stripe_crosses_the_wire),
        ("storm_is_bit_identical", storm_is_bit_identical),
        ("kills_and_stalls_are_reassigned", kills_and_stalls_are_reassigned),
        (
            "duplicate_late_and_stale_epoch_replies_are_dropped",
            duplicate_late_and_stale_epoch_replies_are_dropped,
        ),
        ("garbled_frames_revoke_and_regrant", garbled_frames_revoke_and_regrant),
        (
            "stalls_straddling_batch_boundaries_never_cross_attribute",
            stalls_straddling_batch_boundaries_never_cross_attribute,
        ),
        ("frozen_workers_die_by_heartbeat_grace", frozen_workers_die_by_heartbeat_grace),
        (
            "socket_parity_matches_stdio_and_sequential",
            socket_parity_matches_stdio_and_sequential,
        ),
        (
            "socket_storm_with_network_faults_is_bit_identical",
            socket_storm_with_network_faults_is_bit_identical,
        ),
        (
            "duplicate_retransmit_after_reconnect_counts_as_duplicate",
            duplicate_retransmit_after_reconnect_counts_as_duplicate,
        ),
        (
            "frozen_socket_peer_is_reaped_on_heartbeat_deadline",
            frozen_socket_peer_is_reaped_on_heartbeat_deadline,
        ),
        (
            "dropped_result_frames_do_not_starve_workers",
            dropped_result_frames_do_not_starve_workers,
        ),
        (
            "losing_every_worker_degrades_to_local_fallback",
            losing_every_worker_degrades_to_local_fallback,
        ),
        (
            "full_dse_through_the_service_is_bit_identical",
            full_dse_through_the_service_is_bit_identical,
        ),
    ];
    let mut failed = 0usize;
    for (name, test) in tests {
        match catch_unwind(AssertUnwindSafe(test)) {
            Ok(()) => println!("test {name} ... ok"),
            Err(_) => {
                println!("test {name} ... FAILED");
                failed += 1;
            }
        }
    }
    if failed > 0 {
        println!("{failed} of {} service chaos tests failed", tests.len());
        std::process::exit(1);
    }
    println!("all {} service chaos tests passed", tests.len());
}
