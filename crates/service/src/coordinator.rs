//! The coordinator: lease scheduling, heartbeat tracking, and the
//! slot-ordered merge that makes multi-process exploration bit-identical to
//! a sequential run.
//!
//! [`ServicePool`] owns a pool of spawned worker processes and implements
//! [`Evaluator`], so a `HyperMapper` run with `eval_workers = 0` (the
//! sequential in-process path) transparently shards each batch across
//! processes: the optimizer calls `try_evaluate_batch_detailed`, the pool
//! drives the lease protocol until every slot is `Done`, and returns results
//! in slot order.
//!
//! # Why the front is bit-identical
//!
//! 1. Workers evaluate a *flat configuration index* with a deterministic
//!    evaluator, so every reply for slot `i` — whichever worker, attempt, or
//!    delivery produced it — carries the same bytes ([`RawOutcome`] wire
//!    codec is bit-exact for floats).
//! 2. The lease table accepts at most one reply per slot; duplicates, late
//!    replies quoting revoked leases, and replies fenced by worker epoch are
//!    dropped without side effects.
//! 3. Results are returned indexed by slot, so arrival order is irrelevant.
//!
//! Scheduling, timing, worker count, and fault injection therefore cannot
//! change the merged objective vectors — only how long they take to arrive.

use crate::chaos::ChaosPlan;
use crate::clock::ServiceClock;
use crate::lease::{regrant_backoff_ms, LeaseTable, ReplyVerdict, SlotState};
use crate::wire::{decode_frame, encode_frame, FrameError, Msg};
use crate::worker::{ENV_CHAOS, ENV_EPOCH, ENV_HEARTBEAT_MS, ENV_ROLE, ENV_WORKER_ID, ROLE_WORKER};
use hypermapper::evaluate::{Evaluator, FailedEvaluation};
use hypermapper::journal::{Journal, LeaseRecord, RawOutcome};
use hypermapper::space::{Configuration, ParamSpace};
use hypermapper::EvalError;
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Mutex;
use std::time::Duration;

/// Tuning knobs for a [`ServicePool`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker processes to keep alive. Must be ≥ 1.
    pub workers: usize,
    /// Lease deadline: a grant unanswered for this long is revoked and
    /// re-granted elsewhere.
    pub lease_ms: u64,
    /// Worker heartbeat period.
    pub heartbeat_ms: u64,
    /// Consecutive missed heartbeats before a silent worker is declared
    /// dead, its process killed, and its leases revoked.
    pub heartbeat_grace: u32,
    /// Grants per configuration before the coordinator gives up and records
    /// a transient failure for the slot.
    pub max_attempts: u32,
    /// Worker processes the pool may respawn over its lifetime. Generous by
    /// default: under chaos, respawns are routine.
    pub respawn_budget: u32,
    /// Base of the deterministic re-grant backoff (doubles per attempt).
    pub backoff_base_ms: u64,
    /// Cap on the re-grant backoff.
    pub backoff_cap_ms: u64,
    /// Fault-injection plan shipped to workers. [`ChaosPlan::quiet`] for
    /// production.
    pub chaos: ChaosPlan,
    /// Worker epoch stamped on every frame; replies from other epochs are
    /// dropped. Bump it on every coordinator incarnation (see
    /// `Journal::append_worker_epoch`).
    pub epoch: u64,
    /// Optional sidecar journal path recording the lease grant history
    /// (`wepoch` + `lease` records) for post-mortem and resume audits.
    pub sidecar: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            lease_ms: 2_000,
            heartbeat_ms: 100,
            heartbeat_grace: 30,
            max_attempts: 32,
            respawn_budget: 256,
            backoff_base_ms: 10,
            backoff_cap_ms: 500,
            chaos: ChaosPlan::quiet(),
            epoch: 1,
            sidecar: None,
        }
    }
}

/// Monotonic counters describing everything the coordinator observed.
/// Readable at any time via [`ServicePool::stats`].
#[derive(Debug, Default)]
pub struct ServiceStats {
    leases_granted: AtomicU64,
    accepted: AtomicU64,
    duplicates_dropped: AtomicU64,
    stale_dropped: AtomicU64,
    wrong_epoch_dropped: AtomicU64,
    garbled_frames: AtomicU64,
    worker_deaths: AtomicU64,
    lease_expiries: AtomicU64,
    respawns: AtomicU64,
    exhausted: AtomicU64,
}

/// A plain-number snapshot of [`ServiceStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Leases granted, re-grants included.
    pub leases_granted: u64,
    /// Replies accepted (exactly one per completed slot).
    pub accepted: u64,
    /// Re-deliveries of an already-accepted lease, dropped.
    pub duplicates_dropped: u64,
    /// Replies quoting a revoked or unknown lease, dropped.
    pub stale_dropped: u64,
    /// Replies fenced off by worker-epoch mismatch, dropped.
    pub wrong_epoch_dropped: u64,
    /// Frames that failed length/checksum/body validation.
    pub garbled_frames: u64,
    /// Workers declared dead (EOF or heartbeat-grace expiry).
    pub worker_deaths: u64,
    /// Leases revoked because their deadline passed.
    pub lease_expiries: u64,
    /// Worker processes respawned.
    pub respawns: u64,
    /// Slots abandoned after `max_attempts` grants.
    pub exhausted: u64,
}

impl ServiceStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            leases_granted: self.leases_granted.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            duplicates_dropped: self.duplicates_dropped.load(Ordering::Relaxed),
            stale_dropped: self.stale_dropped.load(Ordering::Relaxed),
            wrong_epoch_dropped: self.wrong_epoch_dropped.load(Ordering::Relaxed),
            garbled_frames: self.garbled_frames.load(Ordering::Relaxed),
            worker_deaths: self.worker_deaths.load(Ordering::Relaxed),
            lease_expiries: self.lease_expiries.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
        }
    }
}

/// What a reader thread forwards to the coordinator loop. Every event
/// carries the *spawn generation* of the child it came from: after a
/// respawn, the worker index points at a new process, and events still
/// draining from the old child's reader thread (late frames, its final
/// EOF) must not be attributed to the new one — waiting on a live
/// respawned child because its predecessor EOF'd is a deadlock.
enum Event {
    /// A validated frame from worker `i`.
    Frame(u32, u64, Msg),
    /// A frame that failed validation (the error names how).
    Garbled(u32, u64, FrameError),
    /// Worker `i`'s stdout reached EOF: the process exited or was killed.
    Closed(u32, u64),
}

struct WorkerHandle {
    child: Child,
    stdin: Option<ChildStdin>,
    /// Spawn generation, unique across the pool's lifetime. Events tagged
    /// with an older generation are from a dead predecessor.
    generation: u64,
    alive: bool,
    last_seen_ms: u64,
    /// The lease id this worker is currently servicing, if any. Throttles
    /// grants to one outstanding lease per worker.
    busy: Option<u64>,
}

struct Inner {
    workers: Vec<WorkerHandle>,
    tx: Sender<Event>,
    rx: Receiver<Event>,
    clock: ServiceClock,
    next_generation: u64,
    /// First lease id for the next batch's table. Threaded through so ids
    /// are unique across the pool's lifetime: a worker stalled in batch N
    /// may reply after batch N+1 has begun, and a restarted counter would
    /// let its stale id collide with a live lease and be accepted for the
    /// wrong slot.
    next_lease_id: u64,
    respawns_left: u32,
    sidecar: Option<Journal>,
}

/// A pool of worker processes behind the [`Evaluator`] interface.
pub struct ServicePool {
    space: ParamSpace,
    n_objectives: usize,
    objective_names: Vec<String>,
    cfg: ServiceConfig,
    inner: Mutex<Inner>,
    stats: ServiceStats,
}

impl ServicePool {
    /// Spawn `cfg.workers` worker processes (re-executing the current
    /// binary, which must call [`crate::worker_entry`] first thing in
    /// `main`) and return the pool. The `space` must be the same space the
    /// workers' factory builds — flat indices are the shared vocabulary.
    pub fn launch(
        space: ParamSpace,
        n_objectives: usize,
        objective_names: Vec<String>,
        cfg: ServiceConfig,
    ) -> io::Result<ServicePool> {
        if cfg.workers == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "workers must be ≥ 1"));
        }
        let (tx, rx) = channel();
        let mut sidecar = match &cfg.sidecar {
            Some(path) => Some(Journal::open_or_create(path)?),
            None => None,
        };
        if let Some(j) = sidecar.as_mut() {
            if cfg.epoch > j.worker_epoch() {
                j.append_worker_epoch(cfg.epoch)?;
            }
        }
        let mut inner = Inner {
            workers: Vec::with_capacity(cfg.workers),
            tx,
            rx,
            clock: ServiceClock::start(),
            next_generation: 0,
            next_lease_id: 1,
            respawns_left: cfg.respawn_budget,
            sidecar,
        };
        for i in 0..cfg.workers {
            let now = inner.clock.now_ms();
            let generation = inner.next_generation;
            inner.next_generation += 1;
            let handle = spawn_worker(&cfg, i as u32, generation, &inner.tx, now)?;
            inner.workers.push(handle);
        }
        Ok(ServicePool {
            space,
            n_objectives,
            objective_names,
            cfg,
            inner: Mutex::new(inner),
            stats: ServiceStats::default(),
        })
    }

    /// Counters observed so far.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Evaluate a batch by leasing each configuration to the worker pool.
    /// Returns one result per input, in input (slot) order, regardless of
    /// which workers answered or in what order.
    pub fn evaluate_batch(
        &self,
        configs: &[Configuration],
    ) -> Vec<Result<Vec<f64>, FailedEvaluation>> {
        if configs.is_empty() {
            return Vec::new();
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        self.drive(&mut inner, configs)
    }

    /// The coordinator loop for one batch.
    fn drive(
        &self,
        inner: &mut Inner,
        configs: &[Configuration],
    ) -> Vec<Result<Vec<f64>, FailedEvaluation>> {
        let n = configs.len();
        let flats: Vec<u64> = configs.iter().map(|c| self.space.flat_index(c)).collect();
        let mut table = LeaseTable::with_base(n, inner.next_lease_id);
        let mut lease_to_slot: BTreeMap<u64, usize> = BTreeMap::new();
        let mut results: Vec<Option<Result<Vec<f64>, FailedEvaluation>>> = vec![None; n];

        while !table.all_done() {
            let now = inner.clock.now_ms();
            self.sweep_heartbeats(inner, &mut table, now);
            self.sweep_expired(&mut table, now);
            self.respawn_dead(inner, &table);

            if inner.workers.iter().all(|w| !w.alive) && inner.respawns_left == 0 {
                // Nothing can ever answer again; fail the remaining slots.
                for slot in 0..n {
                    if table.state(slot) != SlotState::Done {
                        table.give_up(slot);
                        results[slot] = Some(Err(FailedEvaluation::single(EvalError::Transient {
                            reason: "service pool lost all workers and its respawn budget"
                                .to_string(),
                        })));
                    }
                }
                break;
            }

            self.grant_leases(inner, &mut table, &mut lease_to_slot, &flats, &mut results, now);
            self.pump_events(inner, &mut table, &lease_to_slot, &flats, &mut results, now);
        }
        inner.next_lease_id = table.next_lease_id();

        results
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|| {
                    // Unreachable by construction (every Done slot stores a
                    // result), but a logic bug should surface as a failure
                    // record, not a panic in the optimizer.
                    Err(FailedEvaluation::single(EvalError::Transient {
                        reason: "coordinator finished a slot without a result".to_string(),
                    }))
                })
            })
            .collect()
    }

    /// Kill and revoke workers whose heartbeats stopped for longer than the
    /// grace window (wedged or frozen processes that cannot EOF).
    fn sweep_heartbeats(&self, inner: &mut Inner, table: &mut LeaseTable, now: u64) {
        let grace = self.cfg.heartbeat_ms.saturating_mul(self.cfg.heartbeat_grace as u64);
        for i in 0..inner.workers.len() {
            let w = &mut inner.workers[i];
            if w.alive && now.saturating_sub(w.last_seen_ms) > grace {
                let _ = w.child.kill();
                let _ = w.child.wait();
                w.alive = false;
                w.busy = None;
                ServiceStats::bump(&self.stats.worker_deaths);
                self.revoke_all(table, i as u32, now);
            }
        }
    }

    /// Revoke leases whose deadline passed. The holder may still be alive
    /// and chewing (a stall); it keeps its `busy` flag so it gets no new
    /// grants until it answers or dies, but the slot moves on.
    fn sweep_expired(&self, table: &mut LeaseTable, now: u64) {
        for (slot, _worker) in table.expired(now) {
            ServiceStats::bump(&self.stats.lease_expiries);
            let backoff = regrant_backoff_ms(
                self.cfg.backoff_base_ms,
                table.attempts(slot),
                self.cfg.backoff_cap_ms,
            );
            table.revoke(slot, now, backoff);
        }
    }

    /// Revoke every lease held by `worker`, with per-slot backoff.
    fn revoke_all(&self, table: &mut LeaseTable, worker: u32, now: u64) {
        for slot in 0..table.len() {
            if matches!(table.state(slot), SlotState::Leased { worker: w, .. } if w == worker) {
                let backoff = regrant_backoff_ms(
                    self.cfg.backoff_base_ms,
                    table.attempts(slot),
                    self.cfg.backoff_cap_ms,
                );
                table.revoke(slot, now, backoff);
            }
        }
    }

    /// Respawn dead workers while work remains and the budget allows.
    fn respawn_dead(&self, inner: &mut Inner, table: &LeaseTable) {
        if table.all_done() {
            return;
        }
        for i in 0..inner.workers.len() {
            if inner.workers[i].alive || inner.respawns_left == 0 {
                continue;
            }
            let now = inner.clock.now_ms();
            let generation = inner.next_generation;
            match spawn_worker(&self.cfg, i as u32, generation, &inner.tx, now) {
                Ok(handle) => {
                    inner.next_generation += 1;
                    // Reap the corpse before dropping its handle.
                    let _ = inner.workers[i].child.kill();
                    let _ = inner.workers[i].child.wait();
                    inner.workers[i] = handle;
                    inner.respawns_left -= 1;
                    ServiceStats::bump(&self.stats.respawns);
                }
                Err(_) => {
                    // Spawn failures (fd pressure, fork limits) are retried
                    // on the next loop iteration; the budget is untouched.
                }
            }
        }
    }

    /// Grant claimable slots to idle workers, one outstanding lease each.
    fn grant_leases(
        &self,
        inner: &mut Inner,
        table: &mut LeaseTable,
        lease_to_slot: &mut BTreeMap<u64, usize>,
        flats: &[u64],
        results: &mut [Option<Result<Vec<f64>, FailedEvaluation>>],
        now: u64,
    ) {
        for i in 0..inner.workers.len() {
            if !inner.workers[i].alive || inner.workers[i].busy.is_some() {
                continue;
            }
            let Some(slot) = table.claimable(now) else { break };
            if table.attempts(slot) >= self.cfg.max_attempts {
                table.give_up(slot);
                ServiceStats::bump(&self.stats.exhausted);
                results[slot] = Some(Err(FailedEvaluation {
                    error: EvalError::Transient {
                        reason: format!(
                            "lease attempt budget exhausted after {} grants",
                            table.attempts(slot)
                        ),
                    },
                    attempts: table.attempts(slot),
                    elapsed_ms: 0,
                }));
                continue;
            }
            let Some((lease_id, attempt)) = table.grant(slot, i as u32, now, self.cfg.lease_ms)
            else {
                continue;
            };
            lease_to_slot.insert(lease_id, slot);
            if let Some(j) = inner.sidecar.as_mut() {
                let _ = j.append_lease(&LeaseRecord {
                    epoch: self.cfg.epoch,
                    flat: flats[slot],
                    attempt,
                    worker: i as u32,
                });
            }
            let frame = encode_frame(&Msg::Lease {
                lease_id,
                epoch: self.cfg.epoch,
                flat: flats[slot],
                attempt,
            });
            let delivered = match inner.workers[i].stdin.as_mut() {
                Some(stdin) => {
                    stdin.write_all(frame.as_bytes()).and_then(|_| stdin.flush()).is_ok()
                }
                None => false,
            };
            if delivered {
                inner.workers[i].busy = Some(lease_id);
                ServiceStats::bump(&self.stats.leases_granted);
            } else {
                // Broken pipe: the worker is dying; EOF will follow. Undo
                // the grant with no backoff — it never left the building.
                table.revoke(slot, now, 0);
            }
        }
    }

    /// Block for the next event (bounded by the nearest deadline) and apply
    /// it to the table.
    fn pump_events(
        &self,
        inner: &mut Inner,
        table: &mut LeaseTable,
        lease_to_slot: &BTreeMap<u64, usize>,
        flats: &[u64],
        results: &mut [Option<Result<Vec<f64>, FailedEvaluation>>],
        now: u64,
    ) {
        let mut wake = now.saturating_add(self.cfg.heartbeat_ms.max(10));
        if let Some(d) = table.next_deadline_ms() {
            wake = wake.min(d);
        }
        if let Some(e) = table.next_eligible_ms(now) {
            wake = wake.min(e);
        }
        let timeout = Duration::from_millis(wake.saturating_sub(now).max(1));
        let event = match inner.rx.recv_timeout(timeout) {
            Ok(ev) => ev,
            Err(RecvTimeoutError::Timeout) => return,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let now = inner.clock.now_ms();
        // Drop events from a previous spawn generation: the index now names
        // a different process, and a predecessor's dying gasps (late frames,
        // its EOF) must not touch the current child's bookkeeping.
        let (idx, generation) = match &event {
            Event::Frame(i, g, _) | Event::Garbled(i, g, _) | Event::Closed(i, g) => {
                (*i as usize, *g)
            }
        };
        if idx >= inner.workers.len() || inner.workers[idx].generation != generation {
            return;
        }
        match event {
            Event::Frame(i, _, msg) => {
                self.apply_frame(inner, table, lease_to_slot, flats, results, i, msg, now)
            }
            Event::Garbled(i, _, _err) => {
                ServiceStats::bump(&self.stats.garbled_frames);
                // A garbled reply means the worker finished *something*;
                // its stream stays aligned (newline framing), but the
                // lease it was servicing must be re-granted.
                inner.workers[idx].last_seen_ms = now;
                inner.workers[idx].busy = None;
                self.revoke_all(table, i, now);
            }
            Event::Closed(i, _) => {
                if inner.workers[idx].alive {
                    // EOF means the process exited or closed stdout; kill
                    // first so wait() can never block on a live child.
                    let _ = inner.workers[idx].child.kill();
                    let _ = inner.workers[idx].child.wait();
                    inner.workers[idx].alive = false;
                    inner.workers[idx].busy = None;
                    ServiceStats::bump(&self.stats.worker_deaths);
                    self.revoke_all(table, i, now);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_frame(
        &self,
        inner: &mut Inner,
        table: &mut LeaseTable,
        lease_to_slot: &BTreeMap<u64, usize>,
        flats: &[u64],
        results: &mut [Option<Result<Vec<f64>, FailedEvaluation>>],
        i: u32,
        msg: Msg,
        now: u64,
    ) {
        let idx = i as usize;
        if idx >= inner.workers.len() {
            return;
        }
        match msg {
            Msg::Hello { .. } => {
                inner.workers[idx].last_seen_ms = now;
            }
            Msg::Heartbeat { epoch, .. } => {
                if epoch == self.cfg.epoch {
                    inner.workers[idx].last_seen_ms = now;
                } else {
                    ServiceStats::bump(&self.stats.wrong_epoch_dropped);
                }
            }
            Msg::Result { lease_id, epoch, flat, outcome, .. } => {
                inner.workers[idx].last_seen_ms = now;
                if inner.workers[idx].busy == Some(lease_id) {
                    inner.workers[idx].busy = None;
                }
                if epoch != self.cfg.epoch {
                    // A reply from a previous incarnation (or a chaos
                    // stale-epoch tag): fence it. The slot's live lease, if
                    // any, will expire and re-grant.
                    ServiceStats::bump(&self.stats.wrong_epoch_dropped);
                    return;
                }
                let Some(&slot) = lease_to_slot.get(&lease_id) else {
                    ServiceStats::bump(&self.stats.stale_dropped);
                    return;
                };
                if flat != flats[slot] {
                    // The reply's payload is for a different configuration
                    // than the quoted lease's slot. Lease ids are unique
                    // across the pool's lifetime, so this can only be a
                    // corrupted-but-checksum-valid frame or a protocol bug;
                    // either way, accepting it would poison the merge.
                    ServiceStats::bump(&self.stats.stale_dropped);
                    return;
                }
                match table.reply(slot, lease_id) {
                    ReplyVerdict::Accepted => {
                        ServiceStats::bump(&self.stats.accepted);
                        results[slot] = Some(outcome_to_result(outcome));
                    }
                    ReplyVerdict::Duplicate => {
                        ServiceStats::bump(&self.stats.duplicates_dropped)
                    }
                    ReplyVerdict::Stale => ServiceStats::bump(&self.stats.stale_dropped),
                }
            }
            // Coordinator-direction messages arriving from a worker are
            // nonsense; ignore them.
            Msg::Lease { .. } | Msg::Shutdown => {}
        }
    }
}

impl Drop for ServicePool {
    fn drop(&mut self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        for w in inner.workers.iter_mut() {
            if let Some(stdin) = w.stdin.as_mut() {
                let _ = stdin.write_all(encode_frame(&Msg::Shutdown).as_bytes());
                let _ = stdin.flush();
            }
            // Closing stdin EOFs the worker's read loop; the kill is a
            // backstop for stalled or frozen workers, and wait() reaps.
            w.stdin = None;
            let _ = w.child.kill();
            let _ = w.child.wait();
        }
        if let Some(j) = inner.sidecar.as_mut() {
            let _ = j.sync();
        }
    }
}

fn outcome_to_result(outcome: RawOutcome) -> Result<Vec<f64>, FailedEvaluation> {
    match outcome {
        RawOutcome::Ok(v) => Ok(v),
        RawOutcome::Err { error, attempts, elapsed_ms } => {
            Err(FailedEvaluation { error, attempts, elapsed_ms })
        }
    }
}

/// Spawn one worker process and its stdout reader thread.
fn spawn_worker(
    cfg: &ServiceConfig,
    index: u32,
    generation: u64,
    tx: &Sender<Event>,
    now: u64,
) -> io::Result<WorkerHandle> {
    let exe = std::env::current_exe()?;
    let mut cmd = Command::new(exe);
    cmd.env(ENV_ROLE, ROLE_WORKER)
        .env(ENV_EPOCH, cfg.epoch.to_string())
        .env(ENV_WORKER_ID, index.to_string())
        .env(ENV_HEARTBEAT_MS, cfg.heartbeat_ms.to_string())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    if cfg.chaos.is_active() {
        cmd.env(ENV_CHAOS, cfg.chaos.encode());
    } else {
        cmd.env_remove(ENV_CHAOS);
    }
    let mut child = cmd.spawn()?;
    let stdin = child.stdin.take();
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| io::Error::new(io::ErrorKind::Other, "worker stdout not piped"))?;
    let tx = tx.clone();
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => {
                    let _ = tx.send(Event::Closed(index, generation));
                    return;
                }
                Ok(_) => {}
            }
            let event = match decode_frame(&line) {
                Ok(msg) => Event::Frame(index, generation, msg),
                Err(e) => Event::Garbled(index, generation, e),
            };
            if tx.send(event).is_err() {
                return; // pool dropped; nobody is listening
            }
        }
    });
    Ok(WorkerHandle { child, stdin, generation, alive: true, last_seen_ms: now, busy: None })
}

impl Evaluator for ServicePool {
    fn n_objectives(&self) -> usize {
        self.n_objectives
    }

    fn objective_names(&self) -> Vec<String> {
        self.objective_names.clone()
    }

    fn evaluate(&self, config: &Configuration) -> Vec<f64> {
        // Infallible bridge: service-level failures surface as NaN
        // objectives, which the optimizer's validation turns into
        // non-finite failure records — never a panic.
        match self.try_evaluate_detailed(config) {
            Ok(v) => v,
            Err(_) => vec![f64::NAN; self.n_objectives],
        }
    }

    fn try_evaluate(&self, config: &Configuration) -> Result<Vec<f64>, EvalError> {
        self.try_evaluate_detailed(config).map_err(EvalError::from)
    }

    fn try_evaluate_detailed(&self, config: &Configuration) -> Result<Vec<f64>, FailedEvaluation> {
        match self.evaluate_batch(std::slice::from_ref(config)).pop() {
            Some(r) => r,
            None => Err(FailedEvaluation::single(EvalError::Transient {
                reason: "empty batch result".to_string(),
            })),
        }
    }

    fn try_evaluate_batch(&self, configs: &[Configuration]) -> Vec<Result<Vec<f64>, EvalError>> {
        self.evaluate_batch(configs)
            .into_iter()
            .map(|r| r.map_err(EvalError::from))
            .collect()
    }

    fn try_evaluate_batch_detailed(
        &self,
        configs: &[Configuration],
    ) -> Vec<Result<Vec<f64>, FailedEvaluation>> {
        self.evaluate_batch(configs)
    }
}
