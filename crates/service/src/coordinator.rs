//! The coordinator: lease scheduling, heartbeat tracking, and the
//! slot-ordered merge that makes multi-process exploration bit-identical to
//! a sequential run.
//!
//! [`ServicePool`] owns a pool of worker processes (or, over the socket
//! transport, worker *connections*) and implements [`Evaluator`], so a
//! `HyperMapper` run with `eval_workers = 0` (the sequential in-process
//! path) transparently shards each batch across processes: the optimizer
//! calls `try_evaluate_batch_detailed`, the pool drives the lease protocol
//! until every slot is `Done`, and returns results in slot order.
//!
//! # Why the front is bit-identical
//!
//! 1. Workers evaluate a *flat configuration index* with a deterministic
//!    evaluator, so every reply for slot `i` — whichever worker, attempt, or
//!    delivery produced it — carries the same bytes ([`RawOutcome`] wire
//!    codec is bit-exact for floats).
//! 2. The lease table accepts at most one reply per slot; duplicates, late
//!    replies quoting revoked leases, and replies fenced by worker epoch are
//!    dropped without side effects.
//! 3. Results are returned indexed by slot, so arrival order is irrelevant.
//!
//! Scheduling, timing, worker count, fault injection — and, since PR 9, the
//! transport itself with all its network weather — therefore cannot change
//! the merged objective vectors; only how long they take to arrive.
//!
//! # Transports
//!
//! [`TransportMode::Stdio`] is the PR-7 behavior: spawned children, frames
//! over pipes, liveness by EOF. The socket modes listen on TCP and bind each
//! connection to a worker slot via the `hello2`/`welcome` handshake:
//!
//! - a first connection (token 0) mints a fresh *session token* and starts a
//!   clean session (any leases from a predecessor are revoked);
//! - a reconnection presenting the current token **resumes** the session —
//!   the worker keeps its outstanding lease and busy state, so a partition
//!   heals without forking the worker's lease view;
//! - a connection presenting a stale token (the worker was reaped while
//!   away) is treated as a fresh session.
//!
//! Sockets can half-open: a frozen peer keeps the connection alive while
//! sending nothing. Liveness is therefore *clock-driven* — the heartbeat
//! sweep reaps on deadline, never blocking on a socket read; the per-
//! connection reader threads just translate bytes into channel events. A
//! run that permanently loses every worker degrades gracefully: after a
//! reconnect grace window it either evaluates the remaining slots with the
//! in-process fallback evaluator (bit-identical, since evaluators are
//! deterministic) or fails them with the transport event log attached —
//! never hangs.

use crate::chaos::{ChaosPlan, NetChaosPlan};
use crate::clock::{timeout_until, ServiceClock};
use crate::lease::{regrant_backoff_ms, LeaseTable, ReplyVerdict, SlotState};
use crate::wire::{encode_frame, FrameError, FrameReader, Framed, Msg};
use crate::worker::{
    ENV_CHAOS, ENV_CONNECT, ENV_EPOCH, ENV_HEARTBEAT_MS, ENV_NET_CHAOS, ENV_ROLE, ENV_WORKER_ID,
    ROLE_WORKER,
};
use hypermapper::evaluate::{Evaluator, FailedEvaluation};
use hypermapper::journal::{Journal, LeaseRecord, RawOutcome};
use hypermapper::space::{Configuration, ParamSpace};
use hypermapper::EvalError;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How worker frames reach the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportMode {
    /// Spawn local children and talk over stdio pipes (PR-7 behavior,
    /// byte-identical fingerprints).
    Stdio,
    /// Listen on `listen` (e.g. `127.0.0.1:0`) *and* spawn local children
    /// that dial back in. Exercises the full socket path without leaving
    /// the machine.
    Socket {
        /// Bind address; port 0 picks a free port (see
        /// [`ServicePool::listen_addr`]).
        listen: String,
    },
    /// Listen on `listen` and wait for remote workers started elsewhere
    /// (`--connect`). The pool spawns and respawns nothing.
    SocketRemote {
        /// Bind address for remote workers to dial.
        listen: String,
    },
}

impl TransportMode {
    fn listen(&self) -> Option<&str> {
        match self {
            TransportMode::Stdio => None,
            TransportMode::Socket { listen } | TransportMode::SocketRemote { listen } => {
                Some(listen)
            }
        }
    }

    fn is_socket(&self) -> bool {
        !matches!(self, TransportMode::Stdio)
    }
}

/// Tuning knobs for a [`ServicePool`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker processes (or remote connection slots) to keep alive. Must be
    /// ≥ 1.
    pub workers: usize,
    /// Lease deadline: a grant unanswered for this long is revoked and
    /// re-granted elsewhere.
    pub lease_ms: u64,
    /// Worker heartbeat period.
    pub heartbeat_ms: u64,
    /// Consecutive missed heartbeats before a silent worker is declared
    /// dead, its process killed and/or its connection severed, and its
    /// leases revoked.
    pub heartbeat_grace: u32,
    /// Grants per configuration before the coordinator gives up and records
    /// a transient failure for the slot.
    pub max_attempts: u32,
    /// Worker processes the pool may respawn over its lifetime. Generous by
    /// default: under chaos, respawns are routine. Ignored for
    /// [`TransportMode::SocketRemote`].
    pub respawn_budget: u32,
    /// Base of the deterministic re-grant backoff (doubles per attempt).
    pub backoff_base_ms: u64,
    /// Cap on the re-grant backoff.
    pub backoff_cap_ms: u64,
    /// Fault-injection plan shipped to workers. [`ChaosPlan::quiet`] for
    /// production.
    pub chaos: ChaosPlan,
    /// Network fault-injection plan shipped to socket workers.
    /// [`NetChaosPlan::quiet`] for production; ignored on stdio.
    pub net_chaos: NetChaosPlan,
    /// Worker epoch stamped on every frame; replies from other epochs are
    /// dropped. Bump it on every coordinator incarnation (see
    /// `Journal::append_worker_epoch`).
    pub epoch: u64,
    /// Optional sidecar journal path recording the lease grant history
    /// (`wepoch` + `lease` records) for post-mortem and resume audits.
    pub sidecar: Option<PathBuf>,
    /// The transport workers use to reach this pool.
    pub transport: TransportMode,
    /// Socket modes only: once *every* worker is gone and nothing can
    /// respawn, wait this long for reconnections before declaring the pool
    /// lost (and falling back or failing the batch). Stdio fails
    /// immediately, as in PR 7 — pipes cannot reconnect.
    pub reconnect_grace_ms: u64,
    /// Socket handshake deadline: a connection that has not completed
    /// `hello2` within this window is dropped by the accept path.
    pub handshake_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            lease_ms: 2_000,
            heartbeat_ms: 100,
            heartbeat_grace: 30,
            max_attempts: 32,
            respawn_budget: 256,
            backoff_base_ms: 10,
            backoff_cap_ms: 500,
            chaos: ChaosPlan::quiet(),
            net_chaos: NetChaosPlan::quiet(),
            epoch: 1,
            sidecar: None,
            transport: TransportMode::Stdio,
            reconnect_grace_ms: 1_500,
            handshake_ms: 1_000,
        }
    }
}

/// Monotonic counters describing everything the coordinator observed.
/// Readable at any time via [`ServicePool::stats`].
#[derive(Debug, Default)]
pub struct ServiceStats {
    leases_granted: AtomicU64,
    accepted: AtomicU64,
    duplicates_dropped: AtomicU64,
    stale_dropped: AtomicU64,
    wrong_epoch_dropped: AtomicU64,
    garbled_frames: AtomicU64,
    worker_deaths: AtomicU64,
    lease_expiries: AtomicU64,
    respawns: AtomicU64,
    exhausted: AtomicU64,
    disconnects: AtomicU64,
    reconnects: AtomicU64,
    duplicates_after_reconnect: AtomicU64,
    local_fallback_evals: AtomicU64,
}

/// A plain-number snapshot of [`ServiceStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Leases granted, re-grants included.
    pub leases_granted: u64,
    /// Replies accepted (exactly one per completed slot).
    pub accepted: u64,
    /// Re-deliveries of an already-accepted lease, dropped.
    pub duplicates_dropped: u64,
    /// Replies quoting a revoked or unknown lease, dropped.
    pub stale_dropped: u64,
    /// Replies fenced off by worker-epoch mismatch, dropped.
    pub wrong_epoch_dropped: u64,
    /// Frames that failed length/checksum/body validation (mid-frame EOFs
    /// from truncated socket streams land here too).
    pub garbled_frames: u64,
    /// Workers declared dead (EOF, exit, or heartbeat-grace expiry).
    pub worker_deaths: u64,
    /// Leases revoked because their deadline passed.
    pub lease_expiries: u64,
    /// Worker processes respawned.
    pub respawns: u64,
    /// Slots abandoned after `max_attempts` grants.
    pub exhausted: u64,
    /// Socket links lost (EOF/error on a live session, not yet a death).
    pub disconnects: u64,
    /// Socket sessions resumed by a reconnecting worker's token.
    pub reconnects: u64,
    /// Subset of `duplicates_dropped` where the accepted reply's retransmit
    /// arrived over a *different* connection than the one it was accepted
    /// on — the network-retransmit-after-reconnect shape.
    pub duplicates_after_reconnect: u64,
    /// Slots evaluated by the in-process fallback after the pool lost every
    /// worker for longer than the reconnect grace.
    pub local_fallback_evals: u64,
}

impl ServiceStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            leases_granted: self.leases_granted.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            duplicates_dropped: self.duplicates_dropped.load(Ordering::Relaxed),
            stale_dropped: self.stale_dropped.load(Ordering::Relaxed),
            wrong_epoch_dropped: self.wrong_epoch_dropped.load(Ordering::Relaxed),
            garbled_frames: self.garbled_frames.load(Ordering::Relaxed),
            worker_deaths: self.worker_deaths.load(Ordering::Relaxed),
            lease_expiries: self.lease_expiries.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            duplicates_after_reconnect: self.duplicates_after_reconnect.load(Ordering::Relaxed),
            local_fallback_evals: self.local_fallback_evals.load(Ordering::Relaxed),
        }
    }
}

/// What a reader thread (or the accept path) forwards to the coordinator
/// loop. Frame/garble/close events carry the *link id* of the connection
/// they came from: after a respawn or reconnect, the worker index points at
/// a new byte stream, and events still draining from the old stream's reader
/// thread (late frames, its final EOF) must not be attributed to the new one
/// — acting on a predecessor's EOF as if the live link closed is a deadlock.
enum Event {
    /// A validated frame from worker `i` over link `l`.
    Frame(u32, u64, Msg),
    /// A frame that failed validation (the error names how).
    Garbled(u32, u64, FrameError),
    /// Worker `i`'s link `l` reached EOF or errored.
    Closed(u32, u64),
    /// A socket peer completed the `hello2` handshake: `(worker, token,
    /// stream)`. The coordinator decides resume-vs-fresh and welcomes it.
    Connected(u32, u64, TcpStream),
}

/// The write side of one worker's current link.
enum Link {
    Stdio(ChildStdin),
    Socket(TcpStream),
}

impl Link {
    fn write_frame(&mut self, frame: &str) -> bool {
        match self {
            Link::Stdio(stdin) => {
                stdin.write_all(frame.as_bytes()).and_then(|_| stdin.flush()).is_ok()
            }
            Link::Socket(stream) => {
                stream.write_all(frame.as_bytes()).and_then(|_| stream.flush()).is_ok()
            }
        }
    }

    fn sever(&mut self) {
        if let Link::Socket(stream) = self {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

struct WorkerHandle {
    /// The spawned process, when this pool owns one (stdio always; socket
    /// mode when it spawns loopback children; `None` for remote workers).
    child: Option<Child>,
    /// Write half of the current connection; `None` while a socket worker
    /// is between connections.
    link: Option<Link>,
    /// Id of the current link, unique across the pool's lifetime. Events
    /// tagged with an older link id are from a dead predecessor stream.
    link_id: u64,
    /// Session token a reconnecting socket worker must present to resume.
    /// 0 when no session is established (stdio, or reaped).
    token: u64,
    alive: bool,
    last_seen_ms: u64,
    /// The lease id this worker is currently servicing, if any. Throttles
    /// grants to one outstanding lease per worker.
    busy: Option<u64>,
}

/// Upper bound on retained transport-event log lines.
const TRANSPORT_LOG_CAP: usize = 64;

struct Inner {
    workers: Vec<WorkerHandle>,
    tx: Sender<Event>,
    rx: Receiver<Event>,
    clock: ServiceClock,
    next_link: u64,
    next_token: u64,
    /// First lease id for the next batch's table. Threaded through so ids
    /// are unique across the pool's lifetime: a worker stalled in batch N
    /// may reply after batch N+1 has begun, and a restarted counter would
    /// let its stale id collide with a live lease and be accepted for the
    /// wrong slot.
    next_lease_id: u64,
    respawns_left: u32,
    sidecar: Option<Journal>,
    /// Resolved listener address (socket modes).
    listen_addr: Option<SocketAddr>,
    /// Stop flag shared with the accept thread.
    accept_stop: Option<Arc<AtomicBool>>,
    /// Ring of recent transport events (connects, disconnects, reaps,
    /// fallback decisions) for diagnostics and failure records.
    transport_log: Vec<String>,
    /// When every worker first looked permanently gone (socket grace
    /// timer); cleared the moment anything is alive again.
    all_dead_since: Option<u64>,
    /// Whether any socket worker ever completed a handshake. A remote pool
    /// that nothing has joined yet is *waiting*, not *lost* — the grace
    /// timer only arms once there were workers to lose.
    ever_connected: bool,
}

fn tlog(inner: &mut Inner, now: u64, msg: String) {
    if inner.transport_log.len() >= TRANSPORT_LOG_CAP {
        inner.transport_log.remove(0);
    }
    inner.transport_log.push(format!("[{now}ms] {msg}"));
}

/// A pool of worker processes/connections behind the [`Evaluator`]
/// interface.
pub struct ServicePool {
    space: ParamSpace,
    n_objectives: usize,
    objective_names: Vec<String>,
    cfg: ServiceConfig,
    inner: Mutex<Inner>,
    stats: ServiceStats,
    /// In-process evaluator of last resort: used only after every worker is
    /// permanently gone and the reconnect grace has expired. Deterministic
    /// evaluators make this bit-identical to the remote path.
    fallback: Option<Box<dyn Evaluator + Send>>,
}

impl ServicePool {
    /// Spawn/await `cfg.workers` workers and return the pool. For spawned
    /// modes the current binary is re-executed and must call
    /// [`crate::worker_entry`] first thing in `main`. The `space` must be
    /// the same space the workers' factory builds — flat indices are the
    /// shared vocabulary.
    pub fn launch(
        space: ParamSpace,
        n_objectives: usize,
        objective_names: Vec<String>,
        cfg: ServiceConfig,
    ) -> io::Result<ServicePool> {
        if cfg.workers == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "workers must be ≥ 1"));
        }
        let (tx, rx) = channel();
        let mut sidecar = match &cfg.sidecar {
            Some(path) => Some(Journal::open_or_create(path)?),
            None => None,
        };
        if let Some(j) = sidecar.as_mut() {
            if cfg.epoch > j.worker_epoch() {
                j.append_worker_epoch(cfg.epoch)?;
            }
        }
        let mut inner = Inner {
            workers: Vec::with_capacity(cfg.workers),
            tx,
            rx,
            clock: ServiceClock::start(),
            next_link: 0,
            next_token: 1,
            next_lease_id: 1,
            respawns_left: cfg.respawn_budget,
            sidecar,
            listen_addr: None,
            accept_stop: None,
            transport_log: Vec::new(),
            all_dead_since: None,
            ever_connected: false,
        };
        if let Some(listen) = cfg.transport.listen() {
            let listener = TcpListener::bind(listen)?;
            let addr = listener.local_addr()?;
            inner.listen_addr = Some(addr);
            let stop = Arc::new(AtomicBool::new(false));
            inner.accept_stop = Some(Arc::clone(&stop));
            spawn_accept_thread(listener, inner.tx.clone(), stop, cfg.handshake_ms);
        }
        match &cfg.transport {
            TransportMode::Stdio => {
                for i in 0..cfg.workers {
                    let now = inner.clock.now_ms();
                    let link_id = inner.next_link;
                    inner.next_link += 1;
                    let handle = spawn_stdio_worker(&cfg, i as u32, link_id, &inner.tx, now)?;
                    inner.workers.push(handle);
                }
            }
            TransportMode::Socket { .. } => {
                let addr = inner
                    .listen_addr
                    .ok_or_else(|| io::Error::new(io::ErrorKind::Other, "listener not bound"))?;
                for i in 0..cfg.workers {
                    let now = inner.clock.now_ms();
                    let child = spawn_socket_child(&cfg, i as u32, &addr)?;
                    inner.workers.push(WorkerHandle {
                        child: Some(child),
                        link: None,
                        link_id: 0,
                        token: 0,
                        alive: true,
                        last_seen_ms: now,
                        busy: None,
                    });
                }
            }
            TransportMode::SocketRemote { .. } => {
                let now = inner.clock.now_ms();
                for _ in 0..cfg.workers {
                    inner.workers.push(WorkerHandle {
                        child: None,
                        link: None,
                        link_id: 0,
                        token: 0,
                        alive: false,
                        last_seen_ms: now,
                        busy: None,
                    });
                }
            }
        }
        let wait_spawned = matches!(cfg.transport, TransportMode::Socket { .. });
        let pool = ServicePool {
            space,
            n_objectives,
            objective_names,
            cfg,
            inner: Mutex::new(inner),
            stats: ServiceStats::default(),
            fallback: None,
        };
        if wait_spawned {
            pool.await_spawned_connections();
        }
        Ok(pool)
    }

    /// Install an in-process evaluator used only when the pool permanently
    /// loses every worker (see [`StatsSnapshot::local_fallback_evals`]).
    pub fn with_local_fallback(mut self, evaluator: Box<dyn Evaluator + Send>) -> Self {
        self.fallback = Some(evaluator);
        self
    }

    /// The resolved socket listener address, if this pool listens.
    pub fn listen_addr(&self) -> Option<SocketAddr> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).listen_addr
    }

    /// Recent transport events (connections, disconnects, reaps, fallback
    /// decisions), oldest first. Bounded; for diagnostics.
    pub fn transport_events(&self) -> Vec<String> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).transport_log.clone()
    }

    /// Counters observed so far.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Startup barrier for spawned socket children: drain handshakes until
    /// every worker has a link or the window closes (stragglers are handled
    /// by the drive loop's reap/respawn machinery).
    fn await_spawned_connections(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let deadline = inner.clock.now_ms() + 10_000;
        while inner.workers.iter().any(|w| w.link.is_none()) {
            let now = inner.clock.now_ms();
            if now >= deadline {
                break;
            }
            match inner.rx.recv_timeout(Duration::from_millis(100)) {
                Ok(ev) => self.process_pre_batch_event(&mut inner, ev),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
    }

    /// Handle an event while no batch is running (startup). Only connection
    /// lifecycle matters; there are no leases to judge yet.
    fn process_pre_batch_event(&self, inner: &mut Inner, event: Event) {
        let now = inner.clock.now_ms();
        match event {
            Event::Connected(worker, token, stream) => {
                self.attach_connection(inner, None, worker, token, stream, now);
            }
            Event::Frame(i, l, _) => {
                let idx = i as usize;
                if idx < inner.workers.len() && inner.workers[idx].link_id == l {
                    inner.workers[idx].last_seen_ms = now;
                }
            }
            Event::Garbled(..) => ServiceStats::bump(&self.stats.garbled_frames),
            Event::Closed(i, l) => {
                let idx = i as usize;
                if idx < inner.workers.len() && inner.workers[idx].link_id == l {
                    self.handle_link_closed(inner, None, idx, now);
                }
            }
        }
    }

    /// Evaluate a batch by leasing each configuration to the worker pool.
    /// Returns one result per input, in input (slot) order, regardless of
    /// which workers answered or in what order.
    pub fn evaluate_batch(
        &self,
        configs: &[Configuration],
    ) -> Vec<Result<Vec<f64>, FailedEvaluation>> {
        if configs.is_empty() {
            return Vec::new();
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        self.drive(&mut inner, configs)
    }

    /// The coordinator loop for one batch.
    fn drive(
        &self,
        inner: &mut Inner,
        configs: &[Configuration],
    ) -> Vec<Result<Vec<f64>, FailedEvaluation>> {
        let n = configs.len();
        let flats: Vec<u64> = configs.iter().map(|c| self.space.flat_index(c)).collect();
        let mut table = LeaseTable::with_base(n, inner.next_lease_id);
        let mut lease_to_slot: BTreeMap<u64, usize> = BTreeMap::new();
        // Which link each accepted lease's reply arrived on, for classifying
        // transport-level duplicate retransmits after a reconnect.
        let mut accepted_link: BTreeMap<u64, u64> = BTreeMap::new();
        let mut results: Vec<Option<Result<Vec<f64>, FailedEvaluation>>> = vec![None; n];

        while !table.all_done() {
            let now = inner.clock.now_ms();
            self.sweep_heartbeats(inner, &mut table, now);
            self.sweep_expired(inner, &mut table, now);
            self.respawn_dead(inner, &table);

            if self.handle_total_loss(inner, &mut table, configs, &mut results, now) {
                break;
            }

            self.grant_leases(inner, &mut table, &mut lease_to_slot, &flats, &mut results, now);
            self.pump_events(
                inner,
                &mut table,
                &lease_to_slot,
                &mut accepted_link,
                &flats,
                &mut results,
                now,
            );
        }
        inner.next_lease_id = table.next_lease_id();

        results
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|| {
                    // Unreachable by construction (every Done slot stores a
                    // result), but a logic bug should surface as a failure
                    // record, not a panic in the optimizer.
                    Err(FailedEvaluation::single(EvalError::Transient {
                        reason: "coordinator finished a slot without a result".to_string(),
                    }))
                })
            })
            .collect()
    }

    /// Detect the pool being permanently out of workers and resolve the
    /// remaining slots (fallback or failure). Returns true when the batch
    /// is finished by this path.
    ///
    /// Stdio keeps PR-7 semantics: pipes cannot come back, so the moment
    /// everything is dead with no respawn budget the batch fails. Socket
    /// modes wait out `reconnect_grace_ms` first — remote workers reconnect,
    /// and declaring loss early would fork the fingerprint away from runs
    /// with luckier timing only in *failure* cases, which is acceptable: a
    /// successful run never takes this path.
    fn handle_total_loss(
        &self,
        inner: &mut Inner,
        table: &mut LeaseTable,
        configs: &[Configuration],
        results: &mut [Option<Result<Vec<f64>, FailedEvaluation>>],
        now: u64,
    ) -> bool {
        let all_dead = inner.workers.iter().all(|w| !w.alive);
        let lost = all_dead
            && match self.cfg.transport {
                // Remote workers arrive on their own schedule: before the
                // first one ever joins the pool is waiting, not lost; after
                // that, only the grace window decides. Spawned modes are
                // lost once the respawn budget is gone.
                TransportMode::SocketRemote { .. } => inner.ever_connected,
                _ => inner.respawns_left == 0,
            };
        if !lost {
            inner.all_dead_since = None;
            return false;
        }
        if self.cfg.transport.is_socket() {
            match inner.all_dead_since {
                None => {
                    inner.all_dead_since = Some(now);
                    tlog(inner, now, "all workers gone; reconnect grace started".to_string());
                    return false;
                }
                Some(t0) if now.saturating_sub(t0) < self.cfg.reconnect_grace_ms => {
                    return false;
                }
                Some(_) => {}
            }
        }
        // Permanently lost. Resolve every remaining slot.
        let via_fallback = self.fallback.is_some();
        tlog(
            inner,
            now,
            format!(
                "pool lost all workers ({}); resolving {} open slot(s) via {}",
                match self.cfg.transport {
                    TransportMode::Stdio => "respawn budget exhausted",
                    _ => "reconnect grace expired",
                },
                table.len() - table.done_count(),
                if via_fallback { "local fallback" } else { "failure records" },
            ),
        );
        for slot in 0..table.len() {
            if table.state(slot) == SlotState::Done {
                continue;
            }
            table.give_up(slot);
            results[slot] = Some(match &self.fallback {
                Some(evaluator) => {
                    ServiceStats::bump(&self.stats.local_fallback_evals);
                    evaluator.try_evaluate_detailed(&configs[slot])
                }
                None => Err(FailedEvaluation::single(EvalError::Transient {
                    reason: format!(
                        "service pool lost all workers{}; transport log: {}",
                        match self.cfg.transport {
                            TransportMode::Stdio => " and its respawn budget",
                            _ => " past the reconnect grace",
                        },
                        inner.transport_log.iter().rev().take(6).rev().cloned()
                            .collect::<Vec<_>>()
                            .join(" | "),
                    ),
                })),
            });
        }
        true
    }

    /// Kill and revoke workers whose heartbeats stopped for longer than the
    /// grace window. This is the *only* liveness verdict for a half-open
    /// socket (a frozen-but-connected peer sends nothing but keeps the
    /// stream up): it fires on the clock, never on a socket read.
    fn sweep_heartbeats(&self, inner: &mut Inner, table: &mut LeaseTable, now: u64) {
        let grace = self.cfg.heartbeat_ms.saturating_mul(self.cfg.heartbeat_grace as u64);
        for i in 0..inner.workers.len() {
            let w = &mut inner.workers[i];
            if w.alive && now.saturating_sub(w.last_seen_ms) > grace {
                self.reap_worker(inner, table, i, now, "heartbeat grace expired");
            }
        }
    }

    /// Declare worker `i` dead: sever its link, reap its process (if owned),
    /// clear its session, and revoke its leases.
    fn reap_worker(
        &self,
        inner: &mut Inner,
        table: &mut LeaseTable,
        i: usize,
        now: u64,
        why: &str,
    ) {
        let w = &mut inner.workers[i];
        if let Some(mut link) = w.link.take() {
            link.sever();
        }
        if let Some(child) = w.child.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        w.alive = false;
        w.busy = None;
        // Any later reconnect presents a now-stale token and starts fresh.
        w.token = 0;
        ServiceStats::bump(&self.stats.worker_deaths);
        tlog(inner, now, format!("worker {i} reaped: {why}"));
        self.revoke_all(table, i as u32, now);
    }

    /// Revoke leases whose deadline passed and free their holders for new
    /// grants. Freeing the holder matters under network faults: a dropped
    /// result frame leaves the worker healthy, heartbeating, and idle —
    /// pinning its `busy` flag until it "answers or dies" would starve it
    /// (and, with every worker in that state, deadlock the batch).
    fn sweep_expired(&self, inner: &mut Inner, table: &mut LeaseTable, now: u64) {
        for (slot, worker) in table.expired(now) {
            ServiceStats::bump(&self.stats.lease_expiries);
            if let SlotState::Leased { lease_id, .. } = table.state(slot) {
                let idx = worker as usize;
                if idx < inner.workers.len() && inner.workers[idx].busy == Some(lease_id) {
                    inner.workers[idx].busy = None;
                }
            }
            let backoff = regrant_backoff_ms(
                self.cfg.backoff_base_ms,
                table.attempts(slot),
                self.cfg.backoff_cap_ms,
            );
            table.revoke(slot, now, backoff);
        }
    }

    /// Revoke every lease held by `worker`, with per-slot backoff.
    fn revoke_all(&self, table: &mut LeaseTable, worker: u32, now: u64) {
        for slot in 0..table.len() {
            if matches!(table.state(slot), SlotState::Leased { worker: w, .. } if w == worker) {
                let backoff = regrant_backoff_ms(
                    self.cfg.backoff_base_ms,
                    table.attempts(slot),
                    self.cfg.backoff_cap_ms,
                );
                table.revoke(slot, now, backoff);
            }
        }
    }

    /// Respawn dead workers while work remains and the budget allows.
    /// Remote pools own no processes and spawn nothing — their workers
    /// come back (or don't) on their own.
    fn respawn_dead(&self, inner: &mut Inner, table: &LeaseTable) {
        if table.all_done() || matches!(self.cfg.transport, TransportMode::SocketRemote { .. }) {
            return;
        }
        for i in 0..inner.workers.len() {
            if inner.workers[i].alive || inner.respawns_left == 0 {
                continue;
            }
            let now = inner.clock.now_ms();
            let spawned = match &self.cfg.transport {
                TransportMode::Stdio => {
                    let link_id = inner.next_link;
                    match spawn_stdio_worker(&self.cfg, i as u32, link_id, &inner.tx, now) {
                        Ok(handle) => {
                            inner.next_link += 1;
                            Some(handle)
                        }
                        Err(_) => None,
                    }
                }
                TransportMode::Socket { .. } => match inner.listen_addr {
                    Some(addr) => match spawn_socket_child(&self.cfg, i as u32, &addr) {
                        Ok(child) => Some(WorkerHandle {
                            child: Some(child),
                            link: None,
                            link_id: 0,
                            token: 0,
                            alive: true,
                            last_seen_ms: now,
                            busy: None,
                        }),
                        Err(_) => None,
                    },
                    None => None,
                },
                TransportMode::SocketRemote { .. } => None,
            };
            match spawned {
                Some(handle) => {
                    // Reap the corpse before dropping its handle.
                    if let Some(child) = inner.workers[i].child.as_mut() {
                        let _ = child.kill();
                        let _ = child.wait();
                    }
                    inner.workers[i] = handle;
                    inner.respawns_left -= 1;
                    ServiceStats::bump(&self.stats.respawns);
                }
                None => {
                    // Spawn failures (fd pressure, fork limits) are retried
                    // on the next loop iteration; the budget is untouched.
                }
            }
        }
    }

    /// Grant claimable slots to connected idle workers, one outstanding
    /// lease each.
    fn grant_leases(
        &self,
        inner: &mut Inner,
        table: &mut LeaseTable,
        lease_to_slot: &mut BTreeMap<u64, usize>,
        flats: &[u64],
        results: &mut [Option<Result<Vec<f64>, FailedEvaluation>>],
        now: u64,
    ) {
        for i in 0..inner.workers.len() {
            let w = &inner.workers[i];
            if !w.alive || w.busy.is_some() || w.link.is_none() {
                continue;
            }
            let Some(slot) = table.claimable(now) else { break };
            if table.attempts(slot) >= self.cfg.max_attempts {
                table.give_up(slot);
                ServiceStats::bump(&self.stats.exhausted);
                results[slot] = Some(Err(FailedEvaluation {
                    error: EvalError::Transient {
                        reason: format!(
                            "lease attempt budget exhausted after {} grants",
                            table.attempts(slot)
                        ),
                    },
                    attempts: table.attempts(slot),
                    elapsed_ms: 0,
                }));
                continue;
            }
            let Some((lease_id, attempt)) = table.grant(slot, i as u32, now, self.cfg.lease_ms)
            else {
                continue;
            };
            lease_to_slot.insert(lease_id, slot);
            if let Some(j) = inner.sidecar.as_mut() {
                let _ = j.append_lease(&LeaseRecord {
                    epoch: self.cfg.epoch,
                    flat: flats[slot],
                    attempt,
                    worker: i as u32,
                });
            }
            let frame = encode_frame(&Msg::Lease {
                lease_id,
                epoch: self.cfg.epoch,
                flat: flats[slot],
                attempt,
            });
            let delivered = match inner.workers[i].link.as_mut() {
                Some(link) => link.write_frame(&frame),
                None => false,
            };
            if delivered {
                inner.workers[i].busy = Some(lease_id);
                ServiceStats::bump(&self.stats.leases_granted);
            } else {
                // Broken pipe/socket: the link is gone; an EOF event will
                // follow from its reader. Undo the grant with no backoff —
                // it never left the building.
                table.revoke(slot, now, 0);
                if inner.workers[i].link.take().is_some() {
                    ServiceStats::bump(&self.stats.disconnects);
                    tlog(inner, now, format!("worker {i} link broke on lease delivery"));
                }
            }
        }
    }

    /// A socket link died under a live session: keep the session (its lease
    /// view included) so a reconnecting worker can resume it; a stdio pipe
    /// closing means the process is gone. Child processes that actually
    /// exited are reaped immediately rather than waiting out the grace.
    fn handle_link_closed(
        &self,
        inner: &mut Inner,
        table: Option<&mut LeaseTable>,
        idx: usize,
        now: u64,
    ) {
        let is_stdio = matches!(inner.workers[idx].link, Some(Link::Stdio(_)) | None)
            && !self.cfg.transport.is_socket();
        let child_exited = match inner.workers[idx].child.as_mut() {
            Some(child) => matches!(child.try_wait(), Ok(Some(_))),
            None => false,
        };
        if is_stdio || child_exited {
            if inner.workers[idx].alive {
                match table {
                    Some(table) => self.reap_worker(
                        inner,
                        table,
                        idx,
                        now,
                        if child_exited { "process exited" } else { "pipe closed" },
                    ),
                    None => {
                        // No batch running: there are no leases to revoke.
                        let w = &mut inner.workers[idx];
                        if let Some(mut link) = w.link.take() {
                            link.sever();
                        }
                        if let Some(child) = w.child.as_mut() {
                            let _ = child.kill();
                            let _ = child.wait();
                        }
                        w.alive = false;
                        w.busy = None;
                        w.token = 0;
                        ServiceStats::bump(&self.stats.worker_deaths);
                    }
                }
            }
            return;
        }
        // Socket disconnect with a possibly-live peer: hold the session
        // open. The lease deadline and heartbeat grace bound how long.
        if inner.workers[idx].link.take().is_some() {
            ServiceStats::bump(&self.stats.disconnects);
            tlog(inner, now, format!("worker {idx} disconnected (session held for resume)"));
        }
    }

    /// Bind a completed `hello2` handshake to a worker slot: resume the
    /// session when the token matches, otherwise start a fresh one.
    fn attach_connection(
        &self,
        inner: &mut Inner,
        table: Option<&mut LeaseTable>,
        worker: u32,
        token: u64,
        mut stream: TcpStream,
        now: u64,
    ) {
        let idx = worker as usize;
        if idx >= inner.workers.len() {
            tlog(inner, now, format!("rejected connection for unknown worker {worker}"));
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return;
        }
        let resume = token != 0 && token == inner.workers[idx].token;
        let session_token;
        if resume {
            session_token = token;
            ServiceStats::bump(&self.stats.reconnects);
            tlog(inner, now, format!("worker {idx} reconnected; session resumed"));
        } else {
            // Fresh session: nothing granted to a predecessor may survive.
            if let Some(mut old) = inner.workers[idx].link.take() {
                old.sever();
            }
            if let Some(table) = table {
                self.revoke_all(table, worker, now);
            }
            inner.workers[idx].busy = None;
            session_token = inner.next_token;
            inner.next_token += 1;
            tlog(inner, now, format!("worker {idx} connected; new session"));
        }
        let link_id = inner.next_link;
        inner.next_link += 1;

        // Reader thread: translate this connection's bytes into events.
        let read_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                let _ = stream.shutdown(std::net::Shutdown::Both);
                return;
            }
        };
        let _ = read_half.set_read_timeout(None);
        spawn_socket_reader(read_half, worker, link_id, inner.tx.clone());

        // The write half keeps a deadline for the life of the link: the
        // welcome below and every later lease grant must not let one wedged
        // worker (full socket buffer, frozen peer) stall the event loop.
        if stream
            .set_write_timeout(Some(Duration::from_millis(self.cfg.handshake_ms.max(1))))
            .is_err()
        {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            tlog(inner, now, format!("worker {idx} write deadline failed; connection dropped"));
            return;
        }

        let welcome =
            encode_frame(&Msg::Welcome { worker, epoch: self.cfg.epoch, token: session_token });
        if stream.write_all(welcome.as_bytes()).and_then(|_| stream.flush()).is_err() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            tlog(inner, now, format!("worker {idx} welcome failed; connection dropped"));
            return;
        }

        let w = &mut inner.workers[idx];
        w.link = Some(Link::Socket(stream));
        w.link_id = link_id;
        w.token = session_token;
        w.alive = true;
        w.last_seen_ms = now;
        if !resume {
            w.busy = None;
        }
        inner.all_dead_since = None;
        inner.ever_connected = true;
    }

    /// Block for the next event (bounded by the nearest deadline) and apply
    /// it to the table.
    #[allow(clippy::too_many_arguments)]
    fn pump_events(
        &self,
        inner: &mut Inner,
        table: &mut LeaseTable,
        lease_to_slot: &BTreeMap<u64, usize>,
        accepted_link: &mut BTreeMap<u64, u64>,
        flats: &[u64],
        results: &mut [Option<Result<Vec<f64>, FailedEvaluation>>],
        now: u64,
    ) {
        let mut wake = now.saturating_add(self.cfg.heartbeat_ms.max(10));
        if let Some(d) = table.next_deadline_ms() {
            wake = wake.min(d);
        }
        if let Some(e) = table.next_eligible_ms(now) {
            wake = wake.min(e);
        }
        if let Some(t0) = inner.all_dead_since {
            wake = wake.min(t0.saturating_add(self.cfg.reconnect_grace_ms));
        }
        let event = match inner.rx.recv_timeout(timeout_until(now, wake)) {
            Ok(ev) => ev,
            Err(RecvTimeoutError::Timeout) => return,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let now = inner.clock.now_ms();
        if let Event::Connected(worker, token, stream) = event {
            self.attach_connection(inner, Some(table), worker, token, stream, now);
            return;
        }
        // Drop events from a previous link: the index now names a different
        // byte stream, and a predecessor's dying gasps (late frames, its
        // EOF) must not touch the current link's bookkeeping.
        let (idx, link) = match &event {
            Event::Frame(i, l, _) | Event::Garbled(i, l, _) | Event::Closed(i, l) => {
                (*i as usize, *l)
            }
            // Consumed by the early return above; nothing to do if the
            // compiler cannot see that.
            Event::Connected(..) => return,
        };
        if idx >= inner.workers.len() || inner.workers[idx].link_id != link {
            return;
        }
        match event {
            Event::Frame(i, l, msg) => self.apply_frame(
                inner,
                table,
                lease_to_slot,
                accepted_link,
                flats,
                results,
                i,
                l,
                msg,
                now,
            ),
            Event::Garbled(i, _, _err) => {
                ServiceStats::bump(&self.stats.garbled_frames);
                // A garbled reply means the worker finished *something*;
                // its stream stays aligned (newline framing), but the
                // lease it was servicing must be re-granted.
                inner.workers[idx].last_seen_ms = now;
                inner.workers[idx].busy = None;
                self.revoke_all(table, i, now);
            }
            Event::Closed(..) => {
                self.handle_link_closed(inner, Some(table), idx, now);
            }
            Event::Connected(..) => {}
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_frame(
        &self,
        inner: &mut Inner,
        table: &mut LeaseTable,
        lease_to_slot: &BTreeMap<u64, usize>,
        accepted_link: &mut BTreeMap<u64, u64>,
        flats: &[u64],
        results: &mut [Option<Result<Vec<f64>, FailedEvaluation>>],
        i: u32,
        link: u64,
        msg: Msg,
        now: u64,
    ) {
        let idx = i as usize;
        if idx >= inner.workers.len() {
            return;
        }
        match msg {
            Msg::Hello { .. } => {
                inner.workers[idx].last_seen_ms = now;
            }
            Msg::Heartbeat { epoch, .. } => {
                if epoch == self.cfg.epoch {
                    inner.workers[idx].last_seen_ms = now;
                } else {
                    ServiceStats::bump(&self.stats.wrong_epoch_dropped);
                }
            }
            Msg::Result { lease_id, epoch, flat, outcome, .. } => {
                inner.workers[idx].last_seen_ms = now;
                if inner.workers[idx].busy == Some(lease_id) {
                    inner.workers[idx].busy = None;
                }
                if epoch != self.cfg.epoch {
                    // A reply from a previous incarnation (or a chaos
                    // stale-epoch tag): fence it. The slot's live lease, if
                    // any, will expire and re-grant.
                    ServiceStats::bump(&self.stats.wrong_epoch_dropped);
                    return;
                }
                let Some(&slot) = lease_to_slot.get(&lease_id) else {
                    ServiceStats::bump(&self.stats.stale_dropped);
                    return;
                };
                if flat != flats[slot] {
                    // The reply's payload is for a different configuration
                    // than the quoted lease's slot. Lease ids are unique
                    // across the pool's lifetime, so this can only be a
                    // corrupted-but-checksum-valid frame or a protocol bug;
                    // either way, accepting it would poison the merge.
                    ServiceStats::bump(&self.stats.stale_dropped);
                    return;
                }
                match table.reply(slot, lease_id) {
                    ReplyVerdict::Accepted => {
                        ServiceStats::bump(&self.stats.accepted);
                        accepted_link.insert(lease_id, link);
                        results[slot] = Some(outcome_to_result(outcome));
                    }
                    ReplyVerdict::Duplicate => {
                        ServiceStats::bump(&self.stats.duplicates_dropped);
                        // Same winning lease, different connection: this is
                        // a network retransmit landing after a reconnect,
                        // not a worker double-send. Tag it so the chaos
                        // gate can assert the path was exercised.
                        if table.accepted_lease(slot) == Some(lease_id)
                            && accepted_link.get(&lease_id).is_some_and(|&l| l != link)
                        {
                            ServiceStats::bump(&self.stats.duplicates_after_reconnect);
                        }
                    }
                    ReplyVerdict::Stale => ServiceStats::bump(&self.stats.stale_dropped),
                }
            }
            // Handshake frames are consumed by the accept path; coordinator-
            // direction messages arriving from a worker are nonsense. Ignore.
            Msg::HelloSocket { .. } | Msg::Welcome { .. } | Msg::Lease { .. } | Msg::Shutdown => {}
        }
    }
}

impl Drop for ServicePool {
    fn drop(&mut self) {
        // Move the workers out from under the pool lock before reaping:
        // `child.wait()` with `inner` held would stall any thread still
        // probing `listen_addr()`/stats while we wait on N corpses.
        let (mut workers, stop, addr) = {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            (std::mem::take(&mut inner.workers), inner.accept_stop.take(), inner.listen_addr)
        };
        for w in workers.iter_mut() {
            if let Some(link) = w.link.as_mut() {
                let _ = link.write_frame(&encode_frame(&Msg::Shutdown));
            }
            // Dropping the link EOFs a stdio worker's read loop and closes
            // the socket; the kill is a backstop for stalled or frozen
            // spawned workers, and wait() reaps.
            if let Some(mut link) = w.link.take() {
                link.sever();
            }
            if let Some(child) = w.child.as_mut() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        // Stop the accept thread: raise the flag, then poke the listener so
        // its blocking accept() wakes up and observes it.
        if let Some(stop) = stop {
            stop.store(true, Ordering::Relaxed);
            if let Some(addr) = addr {
                let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
            }
        }
        // Sync last so death notices journaled during teardown land too.
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(j) = inner.sidecar.as_mut() {
            let _ = j.sync();
        }
    }
}

fn outcome_to_result(outcome: RawOutcome) -> Result<Vec<f64>, FailedEvaluation> {
    match outcome {
        RawOutcome::Ok(v) => Ok(v),
        RawOutcome::Err { error, attempts, elapsed_ms } => {
            Err(FailedEvaluation { error, attempts, elapsed_ms })
        }
    }
}

/// Spawn one stdio worker process and its stdout reader thread.
fn spawn_stdio_worker(
    cfg: &ServiceConfig,
    index: u32,
    link_id: u64,
    tx: &Sender<Event>,
    now: u64,
) -> io::Result<WorkerHandle> {
    let exe = std::env::current_exe()?;
    let mut cmd = Command::new(exe);
    cmd.env(ENV_ROLE, ROLE_WORKER)
        .env(ENV_EPOCH, cfg.epoch.to_string())
        .env(ENV_WORKER_ID, index.to_string())
        .env(ENV_HEARTBEAT_MS, cfg.heartbeat_ms.to_string())
        .env_remove(ENV_CONNECT)
        .env_remove(ENV_NET_CHAOS)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    if cfg.chaos.is_active() {
        cmd.env(ENV_CHAOS, cfg.chaos.encode());
    } else {
        cmd.env_remove(ENV_CHAOS);
    }
    let mut child = cmd.spawn()?;
    let stdin = child.stdin.take();
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| io::Error::new(io::ErrorKind::Other, "worker stdout not piped"))?;
    let tx = tx.clone();
    std::thread::spawn(move || {
        let mut reader = FrameReader::new(stdout);
        loop {
            let event = match reader.next_frame() {
                Ok(Framed::Msg(msg)) => Event::Frame(index, link_id, msg),
                Ok(Framed::Bad(e)) => Event::Garbled(index, link_id, e),
                Ok(Framed::Eof) | Err(_) => {
                    let _ = tx.send(Event::Closed(index, link_id));
                    return;
                }
            };
            if tx.send(event).is_err() {
                return; // pool dropped; nobody is listening
            }
        }
    });
    Ok(WorkerHandle {
        child: Some(child),
        link: stdin.map(Link::Stdio),
        link_id,
        token: 0,
        alive: true,
        last_seen_ms: now,
        busy: None,
    })
}

/// Spawn one socket worker child that dials back into `addr`.
fn spawn_socket_child(cfg: &ServiceConfig, index: u32, addr: &SocketAddr) -> io::Result<Child> {
    let exe = std::env::current_exe()?;
    let mut cmd = Command::new(exe);
    cmd.env(ENV_ROLE, ROLE_WORKER)
        .env(ENV_EPOCH, cfg.epoch.to_string())
        .env(ENV_WORKER_ID, index.to_string())
        .env(ENV_HEARTBEAT_MS, cfg.heartbeat_ms.to_string())
        .env(ENV_CONNECT, addr.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::inherit())
        .stderr(Stdio::inherit());
    if cfg.chaos.is_active() {
        cmd.env(ENV_CHAOS, cfg.chaos.encode());
    } else {
        cmd.env_remove(ENV_CHAOS);
    }
    if cfg.net_chaos.is_active() {
        cmd.env(ENV_NET_CHAOS, cfg.net_chaos.encode());
    } else {
        cmd.env_remove(ENV_NET_CHAOS);
    }
    cmd.spawn()
}

/// Reader thread for one accepted socket connection: frames and framing
/// failures become events; EOF or a read error becomes `Closed`. Liveness
/// decisions happen elsewhere (clock-driven) — this thread may block
/// indefinitely on a silent peer, and that is fine: reaping severs the
/// stream, which wakes the blocked read with an error.
fn spawn_socket_reader(stream: TcpStream, worker: u32, link_id: u64, tx: Sender<Event>) {
    std::thread::spawn(move || {
        let mut reader = FrameReader::new(stream);
        loop {
            let event = match reader.next_frame() {
                Ok(Framed::Msg(msg)) => Event::Frame(worker, link_id, msg),
                Ok(Framed::Bad(e)) => Event::Garbled(worker, link_id, e),
                Ok(Framed::Eof) | Err(_) => {
                    let _ = tx.send(Event::Closed(worker, link_id));
                    return;
                }
            };
            if tx.send(event).is_err() {
                return;
            }
        }
    });
}

/// Accept loop: each connection gets a short-lived handshake thread (a slow
/// or hostile peer must not block other workers from connecting) that reads
/// exactly the `hello2` frame under a deadline and hands the stream to the
/// coordinator as a [`Event::Connected`].
fn spawn_accept_thread(
    listener: TcpListener,
    tx: Sender<Event>,
    stop: Arc<AtomicBool>,
    handshake_ms: u64,
) {
    std::thread::spawn(move || loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                let tx = tx.clone();
                std::thread::spawn(move || handshake(stream, tx, handshake_ms));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                // Transient accept failure (fd pressure); back off briefly.
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    });
}

/// Read one `hello2` under the handshake deadline. The protocol guarantees
/// the worker sends nothing else until it is welcomed, so the handshake
/// reader's buffer is empty when we hand the stream over and the
/// coordinator's own reader thread starts exactly at the next frame.
fn handshake(stream: TcpStream, tx: Sender<Event>, handshake_ms: u64) {
    if stream.set_read_timeout(Some(Duration::from_millis(handshake_ms.max(1)))).is_err() {
        return;
    }
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = FrameReader::new(read_half);
    loop {
        match reader.next_frame() {
            Ok(Framed::Msg(Msg::HelloSocket { worker, token, .. })) => {
                let _ = tx.send(Event::Connected(worker, token, stream));
                return;
            }
            // Legacy or stray frames before the handshake: drop the
            // connection rather than guess.
            Ok(Framed::Msg(_)) | Ok(Framed::Eof) => {
                let _ = stream.shutdown(std::net::Shutdown::Both);
                return;
            }
            Ok(Framed::Bad(_)) => continue,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Timeout or hard error inside the handshake window.
                let _ = stream.shutdown(std::net::Shutdown::Both);
                return;
            }
        }
    }
}

impl Evaluator for ServicePool {
    fn n_objectives(&self) -> usize {
        self.n_objectives
    }

    fn objective_names(&self) -> Vec<String> {
        self.objective_names.clone()
    }

    fn evaluate(&self, config: &Configuration) -> Vec<f64> {
        // Infallible bridge: service-level failures surface as NaN
        // objectives, which the optimizer's validation turns into
        // non-finite failure records — never a panic.
        match self.try_evaluate_detailed(config) {
            Ok(v) => v,
            Err(_) => vec![f64::NAN; self.n_objectives],
        }
    }

    fn try_evaluate(&self, config: &Configuration) -> Result<Vec<f64>, EvalError> {
        self.try_evaluate_detailed(config).map_err(EvalError::from)
    }

    fn try_evaluate_detailed(&self, config: &Configuration) -> Result<Vec<f64>, FailedEvaluation> {
        match self.evaluate_batch(std::slice::from_ref(config)).pop() {
            Some(r) => r,
            None => Err(FailedEvaluation::single(EvalError::Transient {
                reason: "empty batch result".to_string(),
            })),
        }
    }

    fn try_evaluate_batch(&self, configs: &[Configuration]) -> Vec<Result<Vec<f64>, EvalError>> {
        self.evaluate_batch(configs)
            .into_iter()
            .map(|r| r.map_err(EvalError::from))
            .collect()
    }

    fn try_evaluate_batch_detailed(
        &self,
        configs: &[Configuration],
    ) -> Vec<Result<Vec<f64>, FailedEvaluation>> {
        self.evaluate_batch(configs)
    }
}
