//! Worker-process entry point.
//!
//! `hm-service` shards work across OS *processes* by re-executing the
//! current binary: the coordinator spawns `current_exe()` with
//! [`ENV_ROLE`]`=worker` plus its identity and chaos settings in the
//! environment, and the host binary routes into [`worker_entry`] as its very
//! first statement. In the parent (no role variable) `worker_entry` is a
//! no-op and the binary proceeds as the coordinator; in a child it never
//! returns.
//!
//! A worker is a loop over stdin frames: `lease` → evaluate → `result`, with
//! a side thread emitting heartbeats. All sabotage (the [`crate::chaos`]
//! faults) is *self-inflicted* here, keyed on the lease's `(flat, attempt)`,
//! so the coordinator code path under test is identical with and without
//! chaos.

use crate::chaos::{ChaosPlan, Fault};
use crate::wire::{decode_frame, encode_frame, garble_frame, Msg};
use hypermapper::evaluate::Evaluator;
use hypermapper::journal::RawOutcome;
use hypermapper::space::ParamSpace;
use hypermapper::EvalError;
use std::io::{self, BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Role marker: set to [`ROLE_WORKER`] in spawned worker processes.
pub const ENV_ROLE: &str = "HM_SERVICE_ROLE";
/// The value of [`ENV_ROLE`] that activates [`worker_entry`].
pub const ROLE_WORKER: &str = "worker";
/// Worker epoch (decimal `u64`) the child was spawned under.
pub const ENV_EPOCH: &str = "HM_SERVICE_EPOCH";
/// Worker index (decimal `u32`) within the coordinator's pool.
pub const ENV_WORKER_ID: &str = "HM_SERVICE_WORKER_ID";
/// Heartbeat period in ms (decimal `u64`).
pub const ENV_HEARTBEAT_MS: &str = "HM_SERVICE_HEARTBEAT_MS";
/// Optional [`ChaosPlan::encode`] string enabling self-sabotage.
pub const ENV_CHAOS: &str = "HM_SERVICE_CHAOS";

/// Exit code for a clean worker shutdown (EOF or `shutdown` frame).
const EXIT_OK: i32 = 0;
/// Exit code when the worker environment is missing or malformed.
const EXIT_BAD_ENV: i32 = 2;

/// Route a worker process into its serve loop; no-op in the coordinator.
///
/// Call this at the very top of `main()` in any binary that launches a
/// [`crate::ServicePool`]. The `factory` builds the parameter space and the
/// evaluator *inside the child*, after the fork boundary, so evaluators
/// never need to be serialized — both sides just construct the same
/// deterministic evaluator.
pub fn worker_entry<E, F>(factory: F)
where
    E: Evaluator,
    F: FnOnce() -> (ParamSpace, E),
{
    if std::env::var(ENV_ROLE).as_deref() != Ok(ROLE_WORKER) {
        return;
    }
    let code = serve(factory);
    std::process::exit(code);
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

/// Write one frame atomically: stdout's internal lock spans the whole
/// `write_all` + `flush`, so heartbeat and result frames never interleave.
fn send(frame: &str) {
    let mut out = io::stdout().lock();
    if out.write_all(frame.as_bytes()).and_then(|_| out.flush()).is_err() {
        // The coordinator is gone; there is nobody left to serve.
        std::process::exit(EXIT_OK);
    }
}

fn serve<E, F>(factory: F) -> i32
where
    E: Evaluator,
    F: FnOnce() -> (ParamSpace, E),
{
    let (Some(epoch), Some(worker), Some(heartbeat_ms)) =
        (env_u64(ENV_EPOCH), env_u64(ENV_WORKER_ID), env_u64(ENV_HEARTBEAT_MS))
    else {
        eprintln!("hm-service worker: missing or malformed identity environment");
        return EXIT_BAD_ENV;
    };
    let worker = worker as u32;
    let chaos = match std::env::var(ENV_CHAOS) {
        Ok(s) => match ChaosPlan::decode(&s) {
            Some(plan) => plan,
            None => {
                eprintln!("hm-service worker: malformed {ENV_CHAOS}");
                return EXIT_BAD_ENV;
            }
        },
        Err(_) => ChaosPlan::quiet(),
    };

    let (space, evaluator) = factory();
    send(&encode_frame(&Msg::Hello { worker, epoch, pid: std::process::id() }));

    // Heartbeats run on a side thread so a long evaluation (or an injected
    // stall) does not read as death. `Fault::Freeze` flips the mute flag to
    // simulate a wedged process.
    let mute = Arc::new(AtomicBool::new(false));
    let hb_mute = Arc::clone(&mute);
    std::thread::spawn(move || {
        let mut seq = 0u64;
        loop {
            std::thread::sleep(Duration::from_millis(heartbeat_ms.max(1)));
            if hb_mute.load(Ordering::Relaxed) {
                continue;
            }
            seq += 1;
            send(&encode_frame(&Msg::Heartbeat { worker, epoch, seq }));
        }
    });

    let stdin = io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        let mut input = stdin.lock();
        match input.read_line(&mut line) {
            Ok(0) | Err(_) => return EXIT_OK, // coordinator hung up
            Ok(_) => {}
        }
        drop(input);
        let (lease_id, flat, attempt) = match decode_frame(&line) {
            Ok(Msg::Lease { lease_id, epoch: _, flat, attempt }) => (lease_id, flat, attempt),
            Ok(Msg::Shutdown) => return EXIT_OK,
            // The coordinator never sends anything else; drop noise rather
            // than die over it.
            Ok(_) | Err(_) => continue,
        };

        let fault = chaos.fault_for(flat, attempt);
        match fault {
            Some(Fault::Kill) => {
                // No reply, no cleanup: the closest safe stand-in for
                // SIGKILL. Pipes close, the coordinator sees EOF.
                std::process::abort();
            }
            Some(Fault::Stall) => {
                std::thread::sleep(Duration::from_millis(chaos.stall_ms));
            }
            Some(Fault::Freeze) => {
                // Look wedged: heartbeats stop but the process lives. The
                // coordinator must reclaim us via heartbeat grace. Exit
                // eventually so a coordinator bug cannot hang the harness.
                mute.store(true, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(chaos.stall_ms.saturating_mul(4)));
                return EXIT_OK;
            }
            _ => {}
        }

        let outcome = if flat < space.size() {
            RawOutcome::from_detailed(evaluator.try_evaluate_detailed(&space.config_at(flat)))
        } else {
            // Defensive: a framing bug upstream must not panic the worker.
            RawOutcome::Err {
                error: EvalError::Transient {
                    reason: format!("flat index {flat} out of range for this space"),
                },
                attempts: 1,
                elapsed_ms: 0,
            }
        };

        let reply_epoch = match fault {
            Some(Fault::StaleEpoch) => epoch.saturating_sub(1),
            _ => epoch,
        };
        let mut frame =
            encode_frame(&Msg::Result { worker, lease_id, epoch: reply_epoch, flat, outcome });
        match fault {
            Some(Fault::Garble) => frame = garble_frame(&frame),
            Some(Fault::Late) => std::thread::sleep(Duration::from_millis(chaos.late_ms)),
            _ => {}
        }
        send(&frame);
        if fault == Some(Fault::Duplicate) {
            send(&frame);
        }
    }
}
