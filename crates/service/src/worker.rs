//! Worker-process entry point.
//!
//! `hm-service` shards work across OS *processes* by re-executing the
//! current binary: the coordinator spawns `current_exe()` with
//! [`ENV_ROLE`]`=worker` plus its identity and chaos settings in the
//! environment, and the host binary routes into [`worker_entry`] as its very
//! first statement. In the parent (no role variable) `worker_entry` is a
//! no-op and the binary proceeds as the coordinator; in a child it never
//! returns.
//!
//! A worker is a loop over inbound frames: `lease` → evaluate → `result`,
//! with a side thread emitting heartbeats. Two transports carry the frames:
//!
//! - **stdio** (the PR-7 default): the coordinator owns the worker's
//!   stdin/stdout pipes. Liveness is EOF — pipes cannot half-open.
//! - **socket** ([`ENV_CONNECT`] set, or [`run_socket_worker`]): the worker
//!   dials the coordinator's TCP listener, performs the `hello2`/`welcome`
//!   handshake, and *reconnects with capped-exponential backoff* whenever
//!   the link drops, presenting its session token so the coordinator resumes
//!   the same lease view instead of forking a new session.
//!
//! All sabotage (the [`crate::chaos`] faults) is *self-inflicted* here,
//! keyed on the lease's `(flat, attempt)`, so the coordinator code path
//! under test is identical with and without chaos. Socket workers add the
//! [`NetFault`] layer around result sends: drops, delays, reorders,
//! duplicate retransmits, mid-frame truncations, partitions, and reconnect
//! storms — the coordinator only ever *observes* network weather.

use crate::chaos::{ChaosPlan, Fault, NetChaosPlan, NetFault};
use crate::lease::regrant_backoff_ms;
use crate::wire::{
    encode_frame, garble_frame, is_timeout, FrameReader, Framed, Msg, SharedWriter,
    SocketTransport, Transport,
};
use hypermapper::evaluate::Evaluator;
use hypermapper::journal::RawOutcome;
use hypermapper::space::ParamSpace;
use hypermapper::EvalError;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Role marker: set to [`ROLE_WORKER`] in spawned worker processes.
pub const ENV_ROLE: &str = "HM_SERVICE_ROLE";
/// The value of [`ENV_ROLE`] that activates [`worker_entry`].
pub const ROLE_WORKER: &str = "worker";
/// Worker epoch (decimal `u64`) the child was spawned under.
pub const ENV_EPOCH: &str = "HM_SERVICE_EPOCH";
/// Worker index (decimal `u32`) within the coordinator's pool.
pub const ENV_WORKER_ID: &str = "HM_SERVICE_WORKER_ID";
/// Heartbeat period in ms (decimal `u64`).
pub const ENV_HEARTBEAT_MS: &str = "HM_SERVICE_HEARTBEAT_MS";
/// Optional [`ChaosPlan::encode`] string enabling self-sabotage.
pub const ENV_CHAOS: &str = "HM_SERVICE_CHAOS";
/// Coordinator socket address (`host:port`). Presence selects the socket
/// transport; absence selects stdio.
pub const ENV_CONNECT: &str = "HM_SERVICE_CONNECT";
/// Optional [`NetChaosPlan::encode`] string enabling network self-sabotage
/// (socket transport only).
pub const ENV_NET_CHAOS: &str = "HM_SERVICE_NET_CHAOS";

/// Exit code for a clean worker shutdown (EOF or `shutdown` frame).
const EXIT_OK: i32 = 0;
/// Exit code when the worker environment is missing or malformed.
const EXIT_BAD_ENV: i32 = 2;
/// Exit code when a socket worker exhausts its reconnect budget.
const EXIT_NO_COORDINATOR: i32 = 3;

/// Socket read timeout: doubles as the tick that flushes a held
/// [`NetFault::Reorder`] frame when no later send displaces it.
const SOCKET_TICK_MS: u64 = 200;
/// Reconnect budget: capped-exponential backoff (base 25 ms, cap 500 ms)
/// over this many attempts spans ~18 s of coordinator absence.
const RECONNECT_ATTEMPTS: u32 = 40;
const RECONNECT_BASE_MS: u64 = 25;
const RECONNECT_CAP_MS: u64 = 500;

/// Route a worker process into its serve loop; no-op in the coordinator.
///
/// Call this at the very top of `main()` in any binary that launches a
/// [`crate::ServicePool`]. The `factory` builds the parameter space and the
/// evaluator *inside the child*, after the fork boundary, so evaluators
/// never need to be serialized — both sides just construct the same
/// deterministic evaluator.
pub fn worker_entry<E, F>(factory: F)
where
    E: Evaluator,
    F: FnOnce() -> (ParamSpace, E),
{
    if std::env::var(ENV_ROLE).as_deref() != Ok(ROLE_WORKER) {
        return;
    }
    let code = match std::env::var(ENV_CONNECT) {
        Ok(addr) => serve_socket_env(factory, addr),
        Err(_) => serve(factory),
    };
    std::process::exit(code);
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

/// Write one frame atomically to stdout: its internal lock spans the whole
/// `write_all` + `flush`, so heartbeat and result frames never interleave.
fn send(frame: &str) {
    let mut out = io::stdout().lock();
    if out.write_all(frame.as_bytes()).and_then(|_| out.flush()).is_err() {
        // The coordinator is gone; there is nobody left to serve.
        std::process::exit(EXIT_OK);
    }
}

/// Outcome of servicing one lease, before the reply leaves the process.
enum Served {
    /// A result frame to deliver, plus the process fault that still applies
    /// to its *delivery* (garble/late/duplicate).
    Reply(String, Option<Fault>),
    /// The fault demands the process stop serving (freeze ran its course).
    Exit(i32),
}

/// Evaluate one lease under the process-level fault schedule. Shared by both
/// transports so sabotage semantics cannot drift between them. `Kill`
/// aborts here; `Stall`/`Freeze` sleep here; delivery-time faults are
/// returned for the caller's send path to apply.
#[allow(clippy::too_many_arguments)]
fn service_lease<E: Evaluator>(
    space: &ParamSpace,
    evaluator: &E,
    chaos: &ChaosPlan,
    mute: &AtomicBool,
    worker: u32,
    epoch: u64,
    lease_id: u64,
    flat: u64,
    attempt: u32,
) -> Served {
    let fault = chaos.fault_for(flat, attempt);
    match fault {
        Some(Fault::Kill) => {
            // No reply, no cleanup: the closest safe stand-in for SIGKILL.
            // Pipes close / the socket resets, and the coordinator notices.
            std::process::abort();
        }
        Some(Fault::Stall) => {
            std::thread::sleep(Duration::from_millis(chaos.stall_ms));
        }
        Some(Fault::Freeze) => {
            // Look wedged: heartbeats stop but the process (and any socket)
            // stays open. The coordinator must reclaim us via heartbeat
            // grace, never via a blocking read. Exit eventually so a
            // coordinator bug cannot hang the harness.
            mute.store(true, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(chaos.stall_ms.saturating_mul(4)));
            return Served::Exit(EXIT_OK);
        }
        _ => {}
    }

    let outcome = if flat < space.size() {
        RawOutcome::from_detailed(evaluator.try_evaluate_detailed(&space.config_at(flat)))
    } else {
        // Defensive: a framing bug upstream must not panic the worker.
        RawOutcome::Err {
            error: EvalError::Transient {
                reason: format!("flat index {flat} out of range for this space"),
            },
            attempts: 1,
            elapsed_ms: 0,
        }
    };

    let reply_epoch = match fault {
        Some(Fault::StaleEpoch) => epoch.saturating_sub(1),
        _ => epoch,
    };
    let mut frame =
        encode_frame(&Msg::Result { worker, lease_id, epoch: reply_epoch, flat, outcome });
    if fault == Some(Fault::Garble) {
        frame = garble_frame(&frame);
    }
    Served::Reply(frame, fault)
}

fn serve<E, F>(factory: F) -> i32
where
    E: Evaluator,
    F: FnOnce() -> (ParamSpace, E),
{
    let (Some(epoch), Some(worker), Some(heartbeat_ms)) =
        (env_u64(ENV_EPOCH), env_u64(ENV_WORKER_ID), env_u64(ENV_HEARTBEAT_MS))
    else {
        eprintln!("hm-service worker: missing or malformed identity environment");
        return EXIT_BAD_ENV;
    };
    let worker = worker as u32;
    let chaos = match std::env::var(ENV_CHAOS) {
        Ok(s) => match ChaosPlan::decode(&s) {
            Some(plan) => plan,
            None => {
                eprintln!("hm-service worker: malformed {ENV_CHAOS}");
                return EXIT_BAD_ENV;
            }
        },
        Err(_) => ChaosPlan::quiet(),
    };

    let (space, evaluator) = factory();
    send(&encode_frame(&Msg::Hello { worker, epoch, pid: std::process::id() }));

    // Heartbeats run on a side thread so a long evaluation (or an injected
    // stall) does not read as death. `Fault::Freeze` flips the mute flag to
    // simulate a wedged process.
    let mute = Arc::new(AtomicBool::new(false));
    let hb_mute = Arc::clone(&mute);
    std::thread::spawn(move || {
        let mut seq = 0u64;
        loop {
            std::thread::sleep(Duration::from_millis(heartbeat_ms.max(1)));
            if hb_mute.load(Ordering::Relaxed) {
                continue;
            }
            seq += 1;
            send(&encode_frame(&Msg::Heartbeat { worker, epoch, seq }));
        }
    });

    let mut reader = FrameReader::new(io::stdin());
    loop {
        let (lease_id, flat, attempt) = match reader.next_frame() {
            Ok(Framed::Msg(Msg::Lease { lease_id, epoch: _, flat, attempt })) => {
                (lease_id, flat, attempt)
            }
            Ok(Framed::Msg(Msg::Shutdown)) => return EXIT_OK,
            Ok(Framed::Eof) => return EXIT_OK, // coordinator hung up
            // The coordinator never sends anything else; drop noise rather
            // than die over it.
            Ok(Framed::Msg(_) | Framed::Bad(_)) => continue,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return EXIT_OK,
        };

        match service_lease(
            &space, &evaluator, &chaos, &mute, worker, epoch, lease_id, flat, attempt,
        ) {
            Served::Exit(code) => return code,
            Served::Reply(frame, fault) => {
                if fault == Some(Fault::Late) {
                    std::thread::sleep(Duration::from_millis(chaos.late_ms));
                }
                send(&frame);
                if fault == Some(Fault::Duplicate) {
                    send(&frame);
                }
            }
        }
    }
}

/// Everything a socket worker needs to find and keep finding its
/// coordinator.
pub struct SocketWorkerParams {
    /// Coordinator listener address, `host:port`.
    pub addr: String,
    /// Worker index within the coordinator's pool.
    pub worker: u32,
    /// Worker epoch to announce; the coordinator's `welcome` is
    /// authoritative and overrides this.
    pub epoch: u64,
    /// Heartbeat period in ms.
    pub heartbeat_ms: u64,
    /// Process-level fault schedule.
    pub chaos: ChaosPlan,
    /// Network-level fault schedule.
    pub net_chaos: NetChaosPlan,
}

/// The socket worker's connection state machine: dial → `hello2` → await
/// `welcome` → serve; on any link failure, redial with deterministic
/// capped-exponential backoff, presenting the session token so the
/// coordinator resumes this worker's lease view.
struct SocketSession {
    params: SocketWorkerParams,
    /// Session token from the last `welcome`; 0 before the first handshake.
    token: u64,
    /// Authoritative epoch, shared with the heartbeat thread. 0 means "not
    /// yet welcomed", which also mutes heartbeats.
    epoch: Arc<AtomicU64>,
    writer: SharedWriter,
    transport: Option<SocketTransport>,
}

impl SocketSession {
    /// Sever the current link (if any) and leave the writer detached so the
    /// heartbeat thread fails fast instead of racing the next handshake.
    fn disconnect(&mut self) {
        self.writer.detach();
        if let Some(mut t) = self.transport.take() {
            t.shutdown();
        }
    }

    /// Dial until welcomed or the attempt budget runs out. On success the
    /// writer is attached and the returned [`FrameReader`] — which must be
    /// used for *all* subsequent reads, since the coordinator may pipeline a
    /// lease right behind the `welcome` — is positioned after the handshake.
    fn connect(&mut self) -> Option<FrameReader<Box<dyn io::Read + Send>>> {
        self.disconnect();
        for attempt in 1..=RECONNECT_ATTEMPTS {
            match self.try_handshake() {
                Some(reader) => return Some(reader),
                None => std::thread::sleep(Duration::from_millis(regrant_backoff_ms(
                    RECONNECT_BASE_MS,
                    attempt,
                    RECONNECT_CAP_MS,
                ))),
            }
        }
        None
    }

    fn try_handshake(&mut self) -> Option<FrameReader<Box<dyn io::Read + Send>>> {
        let mut transport = SocketTransport::connect(&self.params.addr, SOCKET_TICK_MS).ok()?;
        let mut write_half = transport.writer().ok()?;
        let hello = encode_frame(&Msg::HelloSocket {
            worker: self.params.worker,
            epoch: self.epoch.load(Ordering::Relaxed).max(self.params.epoch),
            pid: std::process::id(),
            token: self.token,
        });
        write_half.write_all(hello.as_bytes()).and_then(|_| write_half.flush()).ok()?;
        let mut reader = FrameReader::new(transport.reader().ok()?);
        // Await the welcome for up to ~2 s of read ticks.
        let mut ticks = 0u32;
        loop {
            match reader.next_frame() {
                Ok(Framed::Msg(Msg::Welcome { worker, epoch, token })) => {
                    if worker != self.params.worker {
                        return None;
                    }
                    self.epoch.store(epoch, Ordering::Relaxed);
                    self.token = token;
                    self.writer.attach(write_half);
                    self.transport = Some(transport);
                    return Some(reader);
                }
                Ok(Framed::Bad(_)) => continue,
                Ok(Framed::Msg(_)) => continue,
                Ok(Framed::Eof) => return None,
                Err(e) if is_timeout(&e) => {
                    ticks += 1;
                    if ticks as u64 * SOCKET_TICK_MS > 2_000 {
                        return None;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return None,
            }
        }
    }
}

fn serve_socket_env<E, F>(factory: F, addr: String) -> i32
where
    E: Evaluator,
    F: FnOnce() -> (ParamSpace, E),
{
    let (Some(epoch), Some(worker), Some(heartbeat_ms)) =
        (env_u64(ENV_EPOCH), env_u64(ENV_WORKER_ID), env_u64(ENV_HEARTBEAT_MS))
    else {
        eprintln!("hm-service worker: missing or malformed identity environment");
        return EXIT_BAD_ENV;
    };
    let chaos = match std::env::var(ENV_CHAOS) {
        Ok(s) => match ChaosPlan::decode(&s) {
            Some(plan) => plan,
            None => {
                eprintln!("hm-service worker: malformed {ENV_CHAOS}");
                return EXIT_BAD_ENV;
            }
        },
        Err(_) => ChaosPlan::quiet(),
    };
    let net_chaos = match std::env::var(ENV_NET_CHAOS) {
        Ok(s) => match NetChaosPlan::decode(&s) {
            Some(plan) => plan,
            None => {
                eprintln!("hm-service worker: malformed {ENV_NET_CHAOS}");
                return EXIT_BAD_ENV;
            }
        },
        Err(_) => NetChaosPlan::quiet(),
    };
    run_socket_worker(
        factory,
        SocketWorkerParams {
            addr,
            worker: worker as u32,
            epoch,
            heartbeat_ms,
            chaos,
            net_chaos,
        },
    )
}

/// Run the socket worker loop until shutdown. Public so binaries can offer a
/// `--connect` mode for genuinely remote workers (no spawning coordinator on
/// this machine); returns the process exit code.
pub fn run_socket_worker<E, F>(factory: F, params: SocketWorkerParams) -> i32
where
    E: Evaluator,
    F: FnOnce() -> (ParamSpace, E),
{
    let (space, evaluator) = factory();
    let heartbeat_ms = params.heartbeat_ms;
    let worker = params.worker;
    let chaos = params.chaos;
    let net = params.net_chaos;

    let mute = Arc::new(AtomicBool::new(false));
    let epoch = Arc::new(AtomicU64::new(0));
    let writer = SharedWriter::detached();

    // Heartbeats: skip while detached (reconnect window) or pre-welcome
    // (epoch 0) — a heartbeat must never race the handshake onto the wire.
    {
        let mute = Arc::clone(&mute);
        let epoch = Arc::clone(&epoch);
        let writer = writer.clone();
        std::thread::spawn(move || {
            let mut seq = 0u64;
            loop {
                std::thread::sleep(Duration::from_millis(heartbeat_ms.max(1)));
                let e = epoch.load(Ordering::Relaxed);
                if mute.load(Ordering::Relaxed) || e == 0 || !writer.is_attached() {
                    continue;
                }
                seq += 1;
                writer.send(&Msg::Heartbeat { worker, epoch: e, seq });
            }
        });
    }

    let mut session = SocketSession {
        params,
        token: 0,
        epoch: Arc::clone(&epoch),
        writer: writer.clone(),
        transport: None,
    };
    let Some(mut reader) = session.connect() else {
        eprintln!("hm-service worker {worker}: no coordinator at {}", session.params.addr);
        return EXIT_NO_COORDINATOR;
    };

    // A frame held back by NetFault::Reorder, delivered after the next send
    // (or on a read-timeout tick, so it cannot be held forever).
    let mut pending: Option<String> = None;

    loop {
        match reader.next_frame() {
            Err(e) if is_timeout(&e) => {
                if let Some(p) = pending.take() {
                    session.writer.send_raw(&p);
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) | Ok(Framed::Eof) => {
                // Link lost: flush any held frame on the next link, after
                // reconnecting with the session token.
                match session.connect() {
                    Some(r) => {
                        reader = r;
                        if let Some(p) = pending.take() {
                            session.writer.send_raw(&p);
                        }
                    }
                    None => return EXIT_NO_COORDINATOR,
                }
            }
            Ok(Framed::Bad(_)) => continue,
            Ok(Framed::Msg(msg)) => {
                let (lease_id, flat, attempt) = match msg {
                    Msg::Lease { lease_id, epoch: _, flat, attempt } => (lease_id, flat, attempt),
                    Msg::Shutdown => return EXIT_OK,
                    _ => continue,
                };
                let e = epoch.load(Ordering::Relaxed);
                match service_lease(
                    &space, &evaluator, &chaos, &mute, worker, e, lease_id, flat, attempt,
                ) {
                    Served::Exit(code) => return code,
                    Served::Reply(frame, fault) => {
                        if fault == Some(Fault::Late) {
                            std::thread::sleep(Duration::from_millis(chaos.late_ms));
                        }
                        let net_fault = net.fault_for(flat, attempt);
                        if !net_send(
                            &mut session,
                            &mut reader,
                            &mut pending,
                            &net,
                            frame.clone(),
                            net_fault,
                        ) {
                            return EXIT_NO_COORDINATOR;
                        }
                        if fault == Some(Fault::Duplicate) {
                            // Plain duplicate: same link, back to back. The
                            // second copy rolls no new network die; a lost
                            // duplicate is indistinguishable from no fault.
                            session.writer.send_raw(&frame);
                        }
                    }
                }
            }
        }
    }
}

/// Deliver one result frame through the network fault layer. Returns `false`
/// only when a fault forced a reconnect and the reconnect budget ran out.
fn net_send(
    session: &mut SocketSession,
    reader: &mut FrameReader<Box<dyn io::Read + Send>>,
    pending: &mut Option<String>,
    net: &NetChaosPlan,
    frame: String,
    fault: Option<NetFault>,
) -> bool {
    // Any real send first releases a held reorder frame's *successor*: the
    // held frame goes out after the current one, which is the reordering.
    let deliver = |session: &SocketSession, frame: &str, pending: &mut Option<String>| {
        session.writer.send_raw(frame);
        if let Some(p) = pending.take() {
            session.writer.send_raw(&p);
        }
    };
    match fault {
        None => deliver(session, &frame, pending),
        Some(NetFault::Drop) => {
            // Lost on the wire; the lease expires and the coordinator
            // re-grants. Nothing to do — that is the fault.
        }
        Some(NetFault::Delay) => {
            std::thread::sleep(Duration::from_millis(net.delay_ms));
            deliver(session, &frame, pending);
        }
        Some(NetFault::Reorder) => {
            // Hold this frame until after the next send (or a tick).
            if let Some(p) = pending.replace(frame) {
                session.writer.send_raw(&p);
            }
        }
        Some(NetFault::DupRetransmit) => {
            // The failover shape: deliver, lose the link before the ack
            // would have arrived, reconnect, retransmit.
            deliver(session, &frame, pending);
            match session.connect() {
                Some(r) => *reader = r,
                None => return false,
            }
            session.writer.send_raw(&frame);
        }
        Some(NetFault::TruncateMidFrame) => {
            // Half a frame, then a severed link: the coordinator's reader
            // sees a mid-frame EOF and must report a checked frame error.
            session.writer.send_raw(&frame[..frame.len() / 2]);
            match session.connect() {
                Some(r) => *reader = r,
                None => return false,
            }
            session.writer.send_raw(&frame);
        }
        Some(NetFault::Partition) => {
            // Dark for partition_ms — long enough for the coordinator's
            // deadlines to notice — then resume the session and deliver.
            session.disconnect();
            std::thread::sleep(Duration::from_millis(net.partition_ms));
            match session.connect() {
                Some(r) => *reader = r,
                None => return false,
            }
            deliver(session, &frame, pending);
        }
        Some(NetFault::ReconnectStorm) => {
            for _ in 0..3 {
                match session.connect() {
                    Some(r) => *reader = r,
                    None => return false,
                }
            }
            deliver(session, &frame, pending);
        }
    }
    true
}
